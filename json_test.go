package bpmst

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

func TestTreeWriteJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := randomNet(rng, 6, 100)
	tree, err := BKRUS(n, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["metric"] != "Manhattan" {
		t.Errorf("metric = %v", doc["metric"])
	}
	if edges := doc["edges"].([]interface{}); len(edges) != n.NumSinks() {
		t.Errorf("edges = %d", len(edges))
	}
	if doc["cost"].(float64) != tree.Cost() {
		t.Error("cost mismatch")
	}
	if pl := doc["path_lengths"].([]interface{}); len(pl) != n.NumSinks()+1 {
		t.Error("path_lengths length wrong")
	}
}

func TestSteinerWriteJSON(t *testing.T) {
	n, err := NewNet(Point{}, []Point{{X: 2, Y: 0}, {X: 1, Y: 2}, {X: 1, Y: -2}}, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	st, err := BKST(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["planar"] != true {
		t.Errorf("planar = %v", doc["planar"])
	}
	if segs := doc["segments"].([]interface{}); len(segs) == 0 {
		t.Error("no segments")
	}
}
