package bpmst

// One testing.B benchmark per table and figure of the paper's evaluation
// (§7), each driving the same code as `cmd/experiments -run <id>` in
// quick mode, plus micro-benchmarks of the individual constructions.
// Regenerate the full-size tables with:
//
//	go run ./cmd/experiments            # full grids (hours on r4/r5)
//	go run ./cmd/experiments -quick     # reduced grids (seconds)

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func benchCfg() experiments.Config {
	return experiments.Config{Out: io.Discard, Quick: true, Cases: 3}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Characteristics regenerates Table 1 (benchmark
// characteristics: #pts, #edges, R, r).
func BenchmarkTable1Characteristics(b *testing.B) { runExperiment(b, "1") }

// BenchmarkTable2SpecialBenchmarks regenerates Table 2 (BMST_G, BKEX,
// BKRUS, BKH2 and BPRIM on the special benchmarks p1-p4).
func BenchmarkTable2SpecialBenchmarks(b *testing.B) { runExperiment(b, "2") }

// BenchmarkTable3LargeBenchmarks regenerates Table 3 (BKRUS and BKH2 on
// the large pr*/r* stand-ins).
func BenchmarkTable3LargeBenchmarks(b *testing.B) {
	cfg := benchCfg()
	cfg.ExchangeBudget = 2000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4RandomNets regenerates Table 4 (cost over MST for
// BPRIM, BRBC, BKRUS, BKH2, BMST_G and BKST on random nets).
func BenchmarkTable4RandomNets(b *testing.B) { runExperiment(b, "4") }

// BenchmarkTable5LowerUpperBounded regenerates Table 5 (lower+upper
// bounded BKRUS: skew s and cost ratio r).
func BenchmarkTable5LowerUpperBounded(b *testing.B) { runExperiment(b, "5") }

// BenchmarkFigure1BPRIMPathology regenerates Figure 1 (the BPRIM
// pathology on the chain configuration).
func BenchmarkFigure1BPRIMPathology(b *testing.B) { runExperiment(b, "f1") }

// BenchmarkFigure9TradeoffCurve regenerates Figure 9 (longest path and
// cost versus ε).
func BenchmarkFigure9TradeoffCurve(b *testing.B) { runExperiment(b, "f9") }

// BenchmarkFigure10RatioCurves regenerates Figure 10 (BKRUS/MST,
// BKEX/MST, BKRUS/BKEX, BKH2/BKEX versus ε).
func BenchmarkFigure10RatioCurves(b *testing.B) { runExperiment(b, "f10") }

// BenchmarkFigure11CostChart regenerates Figure 11 (the routing cost
// ordering chart).
func BenchmarkFigure11CostChart(b *testing.B) { runExperiment(b, "f11") }

// BenchmarkFigure12SkewTradeoff regenerates Figure 12 (skew versus cost
// under lower+upper bounds).
func BenchmarkFigure12SkewTradeoff(b *testing.B) { runExperiment(b, "f12") }

// BenchmarkFigure13ArcPathology regenerates Figure 13 (the
// cost(BKT)/cost(MST) ≈ N arc family).
func BenchmarkFigure13ArcPathology(b *testing.B) { runExperiment(b, "f13") }

// BenchmarkDepthStats regenerates the §5 BKEX depth-optimality study.
func BenchmarkDepthStats(b *testing.B) { runExperiment(b, "depth") }

// --- micro-benchmarks of the public constructions ---

func randomBenchNet(seed int64, sinks int) *Net {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, sinks)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	n, err := NewNet(Point{X: 500, Y: 500}, pts, Manhattan)
	if err != nil {
		panic(err)
	}
	_ = n.MST() // warm the distance matrix outside the timed loop
	return n
}

// observeBKRUS installs a default obs registry for the benchmark and
// returns a reporter that adds per-op construction-counter columns
// (edges examined, witness scans, bound rejections) next to ns/op.
func observeBKRUS(b *testing.B) func() {
	b.Helper()
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	b.Cleanup(func() { obs.SetDefault(nil) })
	return func() {
		b.StopTimer()
		sc := reg.Scope(core.ScopeName)
		ops := float64(b.N)
		b.ReportMetric(float64(sc.Counter(core.CtrEdgesExamined).Load())/ops, "edges/op")
		b.ReportMetric(float64(sc.Counter(core.CtrWitnessScans).Load())/ops, "wscans/op")
		b.ReportMetric(float64(sc.Counter(core.CtrBoundRejections).Load())/ops, "brejects/op")
	}
}

func BenchmarkBKRUS50(b *testing.B) {
	n := randomBenchNet(1, 50)
	report := observeBKRUS(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUS(n, 0.2); err != nil {
			b.Fatal(err)
		}
	}
	report()
}

func BenchmarkBKRUS200(b *testing.B) {
	n := randomBenchNet(2, 200)
	report := observeBKRUS(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUS(n, 0.2); err != nil {
			b.Fatal(err)
		}
	}
	report()
}

func BenchmarkBKRUSLarge(b *testing.B) {
	in, _ := bench.Large("r1")
	n, err := NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		b.Fatal(err)
	}
	n.MST()
	report := observeBKRUS(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUS(n, 0.2); err != nil {
			b.Fatal(err)
		}
	}
	report()
}

func BenchmarkBKH2Net15(b *testing.B) {
	n := randomBenchNet(3, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKH2(n, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBKEXNet10(b *testing.B) {
	n := randomBenchNet(4, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKEX(n, 0.2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBMSTGNet10(b *testing.B) {
	n := randomBenchNet(5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BMSTG(n, 0.2, GabowOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBPRIM200(b *testing.B) {
	n := randomBenchNet(6, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BPRIM(n, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBRBC200(b *testing.B) {
	n := randomBenchNet(7, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BRBC(n, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBKST15(b *testing.B) {
	n := randomBenchNet(8, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKST(n, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElmoreBKRUS30(b *testing.B) {
	n := randomBenchNet(9, 30)
	m := DefaultRCModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUSElmore(n, 0.5, m); err != nil {
			b.Fatal(err)
		}
	}
}
