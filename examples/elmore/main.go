// Delay-driven routing under the Elmore RC model (paper §3.2).
//
// Wirelength is only a proxy for delay: a long wire near the source
// loads the driver and slows EVERY sink. BKRUSElmore replaces path
// length with Elmore delay during construction — the bound applies to
// the worst source-sink delay, relative to R, the worst delay of the
// direct-star SPT.
//
//	go run ./examples/elmore
package main

import (
	"fmt"
	"log"
	"math/rand"

	bpmst "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	sinks := make([]bpmst.Point, 16)
	loads := make([]float64, 17) // per terminal, index 0 = source
	for i := range sinks {
		sinks[i] = bpmst.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		loads[i+1] = 0.5 + rng.Float64() // gate input caps differ per sink
	}
	net, err := bpmst.NewNet(bpmst.Point{X: 250, Y: 250}, sinks, bpmst.Manhattan)
	if err != nil {
		log.Fatal(err)
	}
	m := bpmst.RCModel{
		RUnit:   0.08, // ohm per um
		CUnit:   0.2,  // fF per um
		RDriver: 2.0,  // strong clock driver
		CDriver: 4.0,
		Load:    loads,
	}
	starR := bpmst.ElmoreStarR(net, m)
	mst := net.MST()
	fmt.Printf("net: %d sinks, Elmore R (star SPT) = %.0f\n", net.NumSinks(), starR)
	fmt.Printf("MST: cost %.0f, worst Elmore delay %.0f (%.2fx R)\n\n",
		mst.Cost(), bpmst.ElmoreRadius(mst, m), bpmst.ElmoreRadius(mst, m)/starR)
	fmt.Printf("%-6s %-10s %-14s %s\n", "eps", "cost", "worst delay", "delay bound")

	for _, eps := range []float64{0.0, 0.1, 0.2, 0.5, 1.0} {
		tree, err := bpmst.BKRUSElmore(net, eps, m)
		if err != nil {
			fmt.Printf("%-6.2f %s\n", eps, err)
			continue
		}
		fmt.Printf("%-6.2f %-10.0f %-14.0f %.0f\n",
			eps, tree.Cost(), bpmst.ElmoreRadius(tree, m), (1+eps)*starR)
	}

	// Per-sink delays of the eps=0.2 tree: none exceeds the bound.
	tree, err := bpmst.BKRUSElmore(net, 0.2, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-sink Elmore delays at eps=0.2:")
	delays := bpmst.ElmoreDelays(tree, m)
	for v := 1; v < len(delays); v++ {
		fmt.Printf("  sink %2d: %7.0f\n", v, delays[v])
	}

	// Buffer insertion (§8 future work): repeaters decouple downstream
	// capacitance and re-drive it, cutting the worst delay further.
	buf := bpmst.BufferSpec{RDrive: 0.5, CIn: 0.8, Delay: 40}
	buffered, err := bpmst.InsertBuffers(tree, m, buf, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith up to 4 repeaters: worst delay %.0f -> %.0f (%d buffers at terminals %v)\n",
		bpmst.ElmoreRadius(tree, m), buffered.WorstDelay(),
		buffered.NumBuffers(), buffered.BufferTerminals())
}
