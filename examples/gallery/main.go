// Gallery: render the paper's special benchmark trees and a congestion
// heatmap as SVG files, to eyeball what the constructions actually do.
//
//	go run ./examples/gallery -out /tmp/gallery
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/router"
	"repro/internal/viz"

	bpmst "repro"
)

func main() {
	out := flag.String("out", "gallery", "output directory for the SVG files")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	// p1-p4 under tight and loose bounds: the pathologies made visible.
	for _, name := range []string{"p1", "p2", "p3", "p4"} {
		in, _ := bench.ByName(name)
		net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
		if err != nil {
			log.Fatal(err)
		}
		for _, eps := range []float64{0.0, 0.5} {
			tree, err := bpmst.BKRUS(net, eps)
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*out, fmt.Sprintf("%s_eps%.1f.svg", name, eps))
			if err := writeSVG(path, tree.WriteSVG); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s cost %7.1f  radius %6.1f\n", filepath.Base(path), tree.Cost(), tree.Radius())
		}
	}

	// a Steiner tree over its Hanan grid
	in, _ := bench.ByName("p4")
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		log.Fatal(err)
	}
	st, err := bpmst.BKST(net, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeSVG(filepath.Join(*out, "p4_steiner.svg"), st.WriteSVG); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s cost %7.1f  (spanning at same eps: ", "p4_steiner.svg", st.Cost())
	span, _ := bpmst.BKRUS(net, 0.3)
	fmt.Printf("%.1f)\n", span.Cost())

	// congestion heatmap of a routed demo design
	nl := demoDesign()
	res, err := router.Route(context.Background(), nl, router.BKRUSPolicy(0.2))
	if err != nil {
		log.Fatal(err)
	}
	cm, err := router.NewCongestionMap(nl, res, 12, 12)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(*out, "congestion.svg"))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.Heatmap(f, cm, 12, 12, viz.DefaultStyle()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s peak gcell demand %d\n", "congestion.svg", cm.MaxDemand())
}

func writeSVG(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}

func demoDesign() *router.Netlist {
	nl := &router.Netlist{}
	for i := 0; i < 40; i++ {
		in := bench.Random(int64(i+500), 5, 120)
		nl.Add(fmt.Sprintf("net%d", i), in)
	}
	return nl
}
