// Bounded path length Steiner routing on the Hanan grid (paper §3.3).
//
// Spanning trees may only branch at terminals; rectilinear routing can
// branch anywhere on the grid induced by the terminal coordinates.
// BKST constructs a bounded path length Steiner tree whose wirelength is
// typically 5-30% below the best spanning construction — often below
// the (unbounded) MST itself.
//
//	go run ./examples/steiner
package main

import (
	"fmt"
	"log"
	"math/rand"

	bpmst "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	sinks := make([]bpmst.Point, 12)
	for i := range sinks {
		sinks[i] = bpmst.Point{X: float64(rng.Intn(60)), Y: float64(rng.Intn(60))}
	}
	net, err := bpmst.NewNet(bpmst.Point{X: 30, Y: 30}, sinks, bpmst.Manhattan)
	if err != nil {
		log.Fatal(err)
	}
	mst := net.MST()
	fmt.Printf("net: %d sinks, R = %.0f, cost(MST) = %.0f\n\n", net.NumSinks(), net.R(), mst.Cost())
	fmt.Printf("%-6s %-14s %-14s %-12s %s\n", "eps", "spanning cost", "Steiner cost", "saving", "Steiner radius")

	for _, eps := range []float64{0.0, 0.1, 0.3, 0.5, 1.0} {
		span, err := bpmst.BKRUS(net, eps)
		if err != nil {
			log.Fatal(err)
		}
		st, err := bpmst.BKST(net, eps)
		if err != nil {
			log.Fatal(err)
		}
		saving := 100 * (1 - st.Cost()/span.Cost())
		fmt.Printf("%-6.2f %-14.0f %-14.0f %-11.1f%% %.0f <= %.0f\n",
			eps, span.Cost(), st.Cost(), saving, st.Radius(), net.Bound(eps))
	}

	// Show the physical wires of one Steiner tree: segment endpoints are
	// Hanan grid points; junctions off the terminals are Steiner points.
	st, err := bpmst.BKST(net, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBKST eps=0.3: %d wire segments, total %.0f units\n", len(st.Segments()), st.Cost())
	for i, s := range st.Segments() {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(st.Segments())-8)
			break
		}
		fmt.Printf("  %v -- %v (%.0f)\n", s.A, s.B, s.Length)
	}
}
