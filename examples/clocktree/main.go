// Clock routing with lower AND upper path length bounds (paper §6).
//
// A clock net wants small skew: every flip-flop should see the edge at
// nearly the same time. Upper bounds cap the latest arrival; lower
// bounds prevent "double clocking" — a fast combinational path racing
// the clock through a slow flip-flop. Instead of padding fast paths with
// buffers (area + power), wirelength itself delays them: BKRUSLU keeps
// every source-sink path inside [eps1*R, (1+eps2)*R].
//
//	go run ./examples/clocktree
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	bpmst "repro"
)

func main() {
	// 24 clock pins spread over a block, driver at the center.
	rng := rand.New(rand.NewSource(42))
	sinks := make([]bpmst.Point, 24)
	for i := range sinks {
		sinks[i] = bpmst.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
	}
	net, err := bpmst.NewNet(bpmst.Point{X: 100, Y: 100}, sinks, bpmst.Manhattan)
	if err != nil {
		log.Fatal(err)
	}
	mst := net.MST()
	fmt.Printf("clock net: %d pins, R = %.1f, cost(MST) = %.1f\n\n", net.NumSinks(), net.R(), mst.Cost())
	fmt.Printf("%-14s %-10s %-10s %-10s %s\n", "window", "cost/MST", "shortest", "longest", "skew")

	// Tighten the window step by step: skew drops, cost rises.
	for _, w := range []struct{ eps1, eps2 float64 }{
		{0.0, 1.0}, {0.3, 0.7}, {0.5, 0.5}, {0.7, 0.3}, {0.8, 0.2}, {0.9, 0.1}, {1.0, 0.0},
	} {
		tree, err := bpmst.BKRUSLU(net, w.eps1, w.eps2)
		if errors.Is(err, bpmst.ErrInfeasible) {
			fmt.Printf("[%.1fR, %.1fR]   infeasible for a node-branching spanning tree\n", w.eps1, 1+w.eps2)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%.1fR, %.1fR]   %-10.3f %-10.1f %-10.1f %.3f\n",
			w.eps1, 1+w.eps2, tree.PerfRatio(mst), tree.ShortestSinkPath(), tree.Radius(), tree.Skew())
	}

	fmt.Println("\nTight windows are often infeasible for node-branching spanning trees")
	fmt.Println("on scattered pins (the paper notes the same). When the pins sit at")
	fmt.Println("similar distances — as in a balanced clock region — exact zero skew works:")

	// A ring of pins at (nearly) equal Manhattan radius around the driver.
	ring := make([]bpmst.Point, 12)
	for i := range ring {
		t := float64(i) * 80 / 12
		ring[i] = bpmst.Point{X: 100 + 80 - t, Y: 100 + t} // Manhattan radius 80
	}
	ringNet, err := bpmst.NewNet(bpmst.Point{X: 100, Y: 100}, ring, bpmst.Manhattan)
	if err != nil {
		log.Fatal(err)
	}
	zero, err := bpmst.BKRUSLU(ringNet, 1.0, 0.0) // window [R, R]
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nring net, window [R, R]: skew = %.3f (zero clock skew), cost = %.2fx MST\n",
		zero.Skew(), zero.PerfRatio(ringNet.MST()))
	fmt.Println("the paper reports ~3.9x MST for an exact zero-skew spanning tree.")
}
