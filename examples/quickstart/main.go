// Quickstart: construct a bounded path length routing tree for a small
// net and compare it against the two classical extremes (MST and SPT).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bpmst "repro"
)

func main() {
	// A driver at the origin and eight sinks of a small block.
	sinks := []bpmst.Point{
		{X: 12, Y: 3}, {X: 14, Y: 8}, {X: 9, Y: 11}, {X: 4, Y: 13},
		{X: 2, Y: 7}, {X: 7, Y: 2}, {X: 13, Y: 13}, {X: 5, Y: 5},
	}
	net, err := bpmst.NewNet(bpmst.Point{X: 0, Y: 0}, sinks, bpmst.Manhattan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("net: %d sinks, R = %g (farthest direct distance)\n\n", net.NumSinks(), net.R())

	mst := net.MST()
	spt := net.SPT()
	fmt.Printf("%-22s cost %7.2f   longest path %7.2f\n", "MST (min wirelength):", mst.Cost(), mst.Radius())
	fmt.Printf("%-22s cost %7.2f   longest path %7.2f\n\n", "SPT (min delay):", spt.Cost(), spt.Radius())

	// Sweep the trade-off: every BKRUS tree keeps paths within (1+eps)*R.
	for _, eps := range []float64{0.0, 0.1, 0.25, 0.5, 1.0} {
		tree, err := bpmst.BKRUS(net, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("BKRUS eps=%-4.2f  cost %7.2f (%.0f%% over MST)   longest path %7.2f <= bound %7.2f\n",
			eps, tree.Cost(), 100*(tree.PerfRatio(mst)-1), tree.Radius(), net.Bound(eps))
	}

	// The tree itself: terminal-index edges (0 is the source).
	tree, err := bpmst.BKRUS(net, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBKRUS eps=0.25 edges:")
	for _, e := range tree.Edges() {
		fmt.Printf("  %2d -- %-2d  length %.1f\n", e.U, e.V, e.W)
	}
}
