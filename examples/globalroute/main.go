// Global routing of a whole design: route many nets under a shared
// performance constraint and account the totals — the scenario the
// paper's introduction motivates, where critical path delay depends on
// the longest interconnection path of every net while power tracks the
// total wirelength.
//
//	go run ./examples/globalroute
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	bpmst "repro"
)

// net is one signal net of the synthetic design.
type design struct {
	nets []*bpmst.Net
}

// synthesize builds a design of numNets nets with realistic fanout
// distribution: most nets are small, a few are large (clock-like).
func synthesize(numNets int, seed int64) design {
	rng := rand.New(rand.NewSource(seed))
	var d design
	for i := 0; i < numNets; i++ {
		fanout := 2 + rng.Intn(4)
		if rng.Intn(10) == 0 {
			fanout = 10 + rng.Intn(20) // occasional high-fanout net
		}
		// each net lives in a local region of the chip
		ox, oy := rng.Float64()*2000, rng.Float64()*2000
		spread := 100 + rng.Float64()*300
		sinks := make([]bpmst.Point, fanout)
		for j := range sinks {
			sinks[j] = bpmst.Point{X: ox + rng.Float64()*spread, Y: oy + rng.Float64()*spread}
		}
		src := bpmst.Point{X: ox + rng.Float64()*spread, Y: oy + rng.Float64()*spread}
		n, err := bpmst.NewNet(src, sinks, bpmst.Manhattan)
		if err != nil {
			log.Fatal(err)
		}
		d.nets = append(d.nets, n)
	}
	return d
}

func main() {
	d := synthesize(200, 1)
	fmt.Printf("design: %d nets\n\n", len(d.nets))
	fmt.Printf("%-10s %-14s %-16s %-14s\n", "policy", "total wire", "worst path/R", "vs MST wire")

	type policy struct {
		name  string
		route func(n *bpmst.Net) (*bpmst.Tree, error)
	}
	policies := []policy{
		{"SPT", func(n *bpmst.Net) (*bpmst.Tree, error) { return n.SPT(), nil }},
		{"eps=0.1", func(n *bpmst.Net) (*bpmst.Tree, error) { return bpmst.BKRUS(n, 0.1) }},
		{"eps=0.25", func(n *bpmst.Net) (*bpmst.Tree, error) { return bpmst.BKRUS(n, 0.25) }},
		{"eps=0.5", func(n *bpmst.Net) (*bpmst.Tree, error) { return bpmst.BKRUS(n, 0.5) }},
		{"MST", func(n *bpmst.Net) (*bpmst.Tree, error) { return n.MST(), nil }},
	}

	var mstWire float64
	for _, n := range d.nets {
		mstWire += n.MST().Cost()
	}

	for _, p := range policies {
		var wire, worstRatio float64
		for _, n := range d.nets {
			tree, err := p.route(n)
			if err != nil {
				log.Fatal(err)
			}
			wire += tree.Cost()
			if r := tree.PathRatio(); r > worstRatio {
				worstRatio = r
			}
		}
		fmt.Printf("%-10s %-14.0f %-16.3f %+.1f%%\n",
			p.name, wire, worstRatio, 100*(wire/mstWire-1))
	}

	// Critical nets deserve the expensive treatment: route the ten nets
	// with the largest R delay-driven, everything else at eps=0.5.
	nets := append([]*bpmst.Net(nil), d.nets...)
	sort.Slice(nets, func(i, j int) bool { return nets[i].R() > nets[j].R() })
	m := bpmst.DefaultRCModel()
	var wire float64
	for i, n := range nets {
		var tree *bpmst.Tree
		var err error
		if i < 10 {
			tree, err = bpmst.BKRUSElmore(n, 0.1, m)
		} else {
			tree, err = bpmst.BKRUS(n, 0.5)
		}
		if err != nil {
			log.Fatal(err)
		}
		wire += tree.Cost()
	}
	fmt.Printf("\nmixed policy (10 critical nets delay-driven at eps=0.1, rest eps=0.5):\n")
	fmt.Printf("total wire %.0f (%+.1f%% over MST)\n", wire, 100*(wire/mstWire-1))
}
