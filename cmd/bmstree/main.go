// Command bmstree constructs a bounded path length routing tree for one
// instance and prints its edges and quality metrics.
//
// Usage:
//
//	bmstree -algo bkrus -eps 0.2 [-in file | -bench p1 | -random N]
//	bmstree -algo bkruslu -eps1 0.3 -eps2 0.5 -bench p4
//	bmstree -algo ahhk -c 0.5 -bench p3
//	bmstree -algo bkst -eps 0.1 -random 12 -seed 7
//	bmstree -algo list
//
// Instances come from a file in the text format of internal/bench
// (-in), a named paper benchmark (-bench p1..p4, pr1, pr2, r1..r5), or a
// seeded random net (-random N sinks). Algorithms are resolved through
// the internal/engine registry; run -algo list to see every registered
// constructor with the parameters it consults. -svg writes an SVG
// rendering of the result; -timeout aborts long constructions.
//
// Observability (see OBSERVABILITY.md): -metrics file.json dumps the
// construction counters of every instrumented layer as JSON, -pprof
// file writes a CPU profile, -trace file writes a runtime execution
// trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/obs"
	"repro/internal/steiner"
	"repro/internal/viz"
)

func main() {
	var (
		algo    = flag.String("algo", "bkrus", "constructor name, or \"list\" to print the registry")
		eps     = flag.Float64("eps", 0.2, "path length slack: bound = (1+eps)*R")
		eps1    = flag.Float64("eps1", 0, "lower bound factor for the *lu variants")
		eps2    = flag.Float64("eps2", 0.2, "upper bound slack for the *lu variants")
		cParam  = flag.Float64("c", 0.5, "AHHK trade-off constant (ahhk only)")
		inFile  = flag.String("in", "", "instance file (see internal/bench text format)")
		name    = flag.String("bench", "", "named benchmark: p1..p4, pr1, pr2, r1..r5")
		random  = flag.Int("random", 0, "generate a random net with this many sinks")
		seed    = flag.Int64("seed", 1, "seed for -random")
		depth   = flag.Int("depth", 0, "bkex exchange depth limit (0 = V-1)")
		xbudget = flag.Int("xbudget", 0, "exchange work budget for bkh2 (0 = unlimited)")
		gbudget = flag.Int("gbudget", 0, "tree enumeration budget for bmstg (0 = default)")
		timeout = flag.Duration("timeout", 0, "abort the construction after this long (0 = no limit)")
		quiet   = flag.Bool("quiet", false, "print only the summary line")
		svg     = flag.String("svg", "", "write an SVG rendering of the tree to this file")
		dump    = flag.String("dump", "", "write the loaded instance to this file (text format)")

		pprofFile = flag.String("pprof", "", "write a CPU profile to this file")
		traceFile = flag.String("trace", "", "write a runtime execution trace to this file")
		metrics   = flag.String("metrics", "", "write an observability snapshot (JSON) to this file")
	)
	flag.Parse()

	if *algo == "list" {
		printRegistry()
		return
	}

	// AHHK historically smuggled its c constant through -eps. The c flag
	// is now authoritative; an explicit -eps without -c keeps working,
	// with a deprecation note.
	ahhkC := *cParam
	if *algo == "ahhk" {
		epsSet, cSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "eps":
				epsSet = true
			case "c":
				cSet = true
			}
		})
		if epsSet && !cSet {
			fmt.Fprintln(os.Stderr, "bmstree: -eps for ahhk is deprecated; use -c (interpreting -eps as c this run)")
			ahhkC = *eps
		}
	}

	// Observability: -metrics installs a default registry so every layer
	// (core, steiner, baseline) records; -pprof/-trace are independent.
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetLabel("binary", "bmstree")
		reg.SetLabel("algo", *algo)
		obs.SetDefault(reg)
	}
	stopProfiles, err := obs.StartProfiles(*pprofFile, *traceFile)
	if err != nil {
		fatal(err)
	}
	finish := func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		if *metrics != "" {
			if err := obs.WriteFile(*metrics, obs.Default()); err != nil {
				fatal(err)
			}
		}
	}

	in, err := loadInstance(*inFile, *name, *random, *seed)
	if err != nil {
		fatal(err)
	}
	if *dump != "" {
		if err := dumpInstance(*dump, in); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	p := engine.Params{
		Eps: *eps, Eps1: *eps1, Eps2: *eps2, AHHKC: ahhkC,
		ExchangeDepth: *depth, ExchangeBudget: *xbudget, GabowBudget: *gbudget,
	}
	stopBuild := startBuildTimer()
	res, err := engine.Build(ctx, *algo, in, p)
	stopBuild()
	if err != nil {
		fatal(err)
	}

	mstCost := mst.Kruskal(in.DistMatrix()).Cost()
	switch {
	case res.Steiner != nil:
		st := res.Steiner
		if !*quiet {
			g := st.Grid()
			for _, e := range st.Edges() {
				fmt.Printf("wire %v -- %v  len %.4g\n", g.Coord(e.U), g.Coord(e.V), e.W)
			}
		}
		if *svg != "" {
			if err := writeSVG(*svg, func(f *os.File) error {
				return viz.Steiner(f, in, st, viz.DefaultStyle())
			}); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("algo=%s sinks=%d cost=%.6g radius=%.6g R=%.6g bound=%.6g cost/MST=%.4f planar=%v\n",
			*algo, in.NumSinks(), st.Cost(), st.Radius(), in.R(), in.Bound(*eps),
			st.Cost()/mstCost, steiner.IsPlanarEmbedding(st))
	default:
		tree := res.Tree
		if !*quiet {
			for _, e := range tree.Edges {
				fmt.Printf("edge %d -- %d  len %.4g\n", e.U, e.V, e.W)
			}
		}
		if *svg != "" {
			if err := writeSVG(*svg, func(f *os.File) error {
				return viz.Tree(f, in, tree, viz.DefaultStyle())
			}); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("algo=%s sinks=%d cost=%.6g radius=%.6g R=%.6g skew=%.4g cost/MST=%.4f\n",
			*algo, in.NumSinks(), tree.Cost(), tree.Radius(graph.Source), in.R(),
			skew(tree), tree.Cost()/mstCost)
	}
	finish()
}

// printRegistry lists every registered constructor with the Params
// fields it consults.
func printRegistry() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tkind\tparams\tdescription")
	for _, info := range engine.List() {
		needs := strings.Join(info.Needs, ",")
		if needs == "" {
			needs = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", info.Name, info.Kind, needs, info.Doc)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

// skew is the spread between the longest and shortest source-sink path.
func skew(t *graph.Tree) float64 {
	d := t.PathLengthsFrom(graph.Source)
	lo, hi := math.Inf(1), math.Inf(-1)
	for v := 1; v < t.N; v++ {
		lo = math.Min(lo, d[v])
		hi = math.Max(hi, d[v])
	}
	if t.N < 2 {
		return 0
	}
	return hi - lo
}

// startBuildTimer times the tree construction into the default
// registry's "run" scope; a no-op when observability is off.
func startBuildTimer() func() {
	if sc := obs.DefaultScope("run"); sc != nil {
		return sc.Timer("build_seconds").Start()
	}
	return func() {}
}

func loadInstance(file, name string, random int, seed int64) (*inst.Instance, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.ReadInstance(f)
	case name != "":
		in, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		return in, nil
	case random > 0:
		return bench.Random(seed, random, 100), nil
	default:
		return nil, fmt.Errorf("specify one of -in, -bench, -random")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bmstree:", err)
	os.Exit(1)
}

// dumpInstance writes the instance in the bench text format.
func dumpInstance(path string, in *inst.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteInstance(f, in)
}

// writeSVG renders into a freshly created file.
func writeSVG(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}
