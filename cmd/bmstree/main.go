// Command bmstree constructs a bounded path length routing tree for one
// instance and prints its edges and quality metrics.
//
// Usage:
//
//	bmstree -algo bkrus -eps 0.2 [-in file | -bench p1 | -random N]
//	bmstree -algo bkruslu -eps1 0.3 -eps2 0.5 -bench p4
//	bmstree -algo bkst -eps 0.1 -random 12 -seed 7
//
// Instances come from a file in the text format of internal/bench
// (-in), a named paper benchmark (-bench p1..p4, pr1, pr2, r1..r5), or a
// seeded random net (-random N sinks). Algorithms: mst, spt, maxst,
// bkrus, bkruslu, bprim, brbc, bkh2, bkex, bmstg, bkst, bkstlu,
// bkstplanar, elmore, bkh2elmore. -svg writes an SVG rendering of the
// result.
//
// Observability (see OBSERVABILITY.md): -metrics file.json dumps the
// construction counters of every instrumented layer as JSON, -pprof
// file writes a CPU profile, -trace file writes a runtime execution
// trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/inst"
	"repro/internal/obs"

	bpmst "repro"
)

func main() {
	var (
		algo   = flag.String("algo", "bkrus", "algorithm: mst|spt|maxst|bkrus|bkruslu|bprim|brbc|ahhk|bkh2|bkex|bmstg|bkst|bkstlu|bkstplanar|elmore|bkh2elmore")
		eps    = flag.Float64("eps", 0.2, "path length slack: bound = (1+eps)*R")
		eps1   = flag.Float64("eps1", 0, "lower bound factor for bkruslu")
		eps2   = flag.Float64("eps2", 0.2, "upper bound slack for bkruslu")
		inFile = flag.String("in", "", "instance file (see internal/bench text format)")
		name   = flag.String("bench", "", "named benchmark: p1..p4, pr1, pr2, r1..r5")
		random = flag.Int("random", 0, "generate a random net with this many sinks")
		seed   = flag.Int64("seed", 1, "seed for -random")
		depth  = flag.Int("depth", 0, "bkex exchange depth limit (0 = V-1)")
		quiet  = flag.Bool("quiet", false, "print only the summary line")
		svg    = flag.String("svg", "", "write an SVG rendering of the tree to this file")
		dump   = flag.String("dump", "", "write the loaded instance to this file (text format)")

		pprofFile = flag.String("pprof", "", "write a CPU profile to this file")
		traceFile = flag.String("trace", "", "write a runtime execution trace to this file")
		metrics   = flag.String("metrics", "", "write an observability snapshot (JSON) to this file")
	)
	flag.Parse()

	// Observability: -metrics installs a default registry so every layer
	// (core, steiner, baseline) records; -pprof/-trace are independent.
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetLabel("binary", "bmstree")
		reg.SetLabel("algo", *algo)
		obs.SetDefault(reg)
	}
	stopProfiles, err := obs.StartProfiles(*pprofFile, *traceFile)
	if err != nil {
		fatal(err)
	}
	finish := func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		if *metrics != "" {
			if err := obs.WriteFile(*metrics, obs.Default()); err != nil {
				fatal(err)
			}
		}
	}

	in, err := loadInstance(*inFile, *name, *random, *seed)
	if err != nil {
		fatal(err)
	}
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		fatal(err)
	}
	if *dump != "" {
		if err := dumpInstance(*dump, in); err != nil {
			fatal(err)
		}
	}

	if *algo == "bkst" || *algo == "bkstlu" || *algo == "bkstplanar" {
		var st *bpmst.SteinerTree
		stopBuild := startBuildTimer()
		switch *algo {
		case "bkst":
			st, err = bpmst.BKST(net, *eps)
		case "bkstlu":
			st, err = bpmst.BKSTLU(net, *eps1, *eps2)
		case "bkstplanar":
			st, err = bpmst.BKSTPlanar(net, *eps)
		}
		stopBuild()
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			for _, s := range st.Segments() {
				fmt.Printf("wire %v -- %v  len %.4g\n", s.A, s.B, s.Length)
			}
		}
		if *svg != "" {
			if err := writeSteinerSVG(*svg, st); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("algo=%s sinks=%d cost=%.6g radius=%.6g R=%.6g bound=%.6g cost/MST=%.4f planar=%v\n",
			*algo, net.NumSinks(), st.Cost(), st.Radius(), net.R(), net.Bound(*eps), st.PerfRatio(net.MST()), st.IsPlanar())
		finish()
		return
	}

	stopBuild := startBuildTimer()
	tree, err := buildTree(net, *algo, *eps, *eps1, *eps2, *depth)
	stopBuild()
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		for _, e := range tree.Edges() {
			fmt.Printf("edge %d -- %d  len %.4g\n", e.U, e.V, e.W)
		}
	}
	if *svg != "" {
		if err := writeTreeSVG(*svg, tree); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("algo=%s sinks=%d cost=%.6g radius=%.6g R=%.6g skew=%.4g cost/MST=%.4f\n",
		*algo, net.NumSinks(), tree.Cost(), tree.Radius(), net.R(), tree.Skew(),
		tree.PerfRatio(net.MST()))
	finish()
}

// startBuildTimer times the tree construction into the default
// registry's "run" scope; a no-op when observability is off.
func startBuildTimer() func() {
	if sc := obs.DefaultScope("run"); sc != nil {
		return sc.Timer("build_seconds").Start()
	}
	return func() {}
}

func loadInstance(file, name string, random int, seed int64) (*inst.Instance, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return bench.ReadInstance(f)
	case name != "":
		in, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		return in, nil
	case random > 0:
		return bench.Random(seed, random, 100), nil
	default:
		return nil, fmt.Errorf("specify one of -in, -bench, -random")
	}
}

func buildTree(net *bpmst.Net, algo string, eps, eps1, eps2 float64, depth int) (*bpmst.Tree, error) {
	switch algo {
	case "mst":
		return net.MST(), nil
	case "spt":
		return net.SPT(), nil
	case "maxst":
		return net.MaxST(), nil
	case "bkrus":
		return bpmst.BKRUS(net, eps)
	case "bkruslu":
		return bpmst.BKRUSLU(net, eps1, eps2)
	case "bprim":
		return bpmst.BPRIM(net, eps)
	case "brbc":
		return bpmst.BRBC(net, eps)
	case "ahhk":
		return bpmst.AHHK(net, eps) // eps reused as the c parameter
	case "bkh2":
		return bpmst.BKH2(net, eps)
	case "bkex":
		return bpmst.BKEX(net, eps, depth)
	case "bmstg":
		return bpmst.BMSTG(net, eps, bpmst.GabowOptions{})
	case "elmore":
		return bpmst.BKRUSElmore(net, eps, bpmst.DefaultRCModel())
	case "bkh2elmore":
		return bpmst.BKH2Elmore(net, eps, bpmst.DefaultRCModel())
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bmstree:", err)
	os.Exit(1)
}

// dumpInstance writes the instance in the bench text format.
func dumpInstance(path string, in *inst.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteInstance(f, in)
}

// writeTreeSVG renders a spanning tree to an SVG file.
func writeTreeSVG(path string, tree *bpmst.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tree.WriteSVG(f)
}

// writeSteinerSVG renders a Steiner tree to an SVG file.
func writeSteinerSVG(path string, st *bpmst.SteinerTree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return st.WriteSVG(f)
}
