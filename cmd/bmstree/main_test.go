package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"

	bpmst "repro"
)

func TestLoadInstanceSelectors(t *testing.T) {
	if _, err := loadInstance("", "", 0, 1); err == nil {
		t.Error("no selector accepted")
	}
	if _, err := loadInstance("", "nope", 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	in, err := loadInstance("", "p1", 0, 1)
	if err != nil || in.NumSinks() != 5 {
		t.Errorf("p1 load failed: %v %v", in, err)
	}
	in, err = loadInstance("", "", 7, 42)
	if err != nil || in.NumSinks() != 7 {
		t.Errorf("random load failed: %v", err)
	}
}

func TestLoadInstanceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	content := "metric manhattan\nsource 0 0\nsink 3 4\nsink 1 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := loadInstance(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumSinks() != 2 {
		t.Errorf("sinks = %d", in.NumSinks())
	}
	if _, err := loadInstance(filepath.Join(dir, "missing.txt"), "", 0, 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildTreeAlgorithms(t *testing.T) {
	in, err := loadInstance("", "", 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{"mst", "spt", "maxst", "bkrus", "bkruslu", "bprim", "brbc",
		"bkh2", "bkex", "bmstg", "elmore", "bkh2elmore", "ahhk"}
	for _, a := range algos {
		tr, err := buildTree(net, a, 0.3, 0, 0.3, 2)
		if err != nil {
			t.Errorf("%s: %v", a, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid tree: %v", a, err)
		}
	}
	if _, err := buildTree(net, "bogus", 0.3, 0, 0.3, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestMetricsReport exercises the -metrics pipeline: default registry
// install, timed build, JSON snapshot with construction counters.
func TestMetricsReport(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetLabel("binary", "bmstree")
	reg.SetLabel("algo", "bkrus")
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	in, err := loadInstance("", "p3", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		t.Fatal(err)
	}
	stop := startBuildTimer()
	if _, err := buildTree(net, "bkrus", 0.2, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	stop()

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := obs.WriteFile(path, obs.Default()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	scopes := map[string]obs.ScopeSnapshot{}
	for _, sc := range snap.Scopes {
		scopes[sc.Name] = sc
	}
	run, ok := scopes["run"]
	if !ok || len(run.Timers) == 0 || run.Timers[0].Count != 1 {
		t.Errorf("run scope missing build timer: %+v", run)
	}
	coreSc, ok := scopes[core.ScopeName]
	if !ok {
		t.Fatal("core scope missing from snapshot")
	}
	counters := map[string]int64{}
	for _, c := range coreSc.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{core.CtrEdgesExamined, core.CtrWitnessScans, core.CtrMerges} {
		if counters[name] == 0 {
			t.Errorf("counter %s missing or zero in snapshot", name)
		}
	}
}

func TestWriteTreeSVGFile(t *testing.T) {
	in, err := loadInstance("", "", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := buildTree(net, "bkrus", 0.2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := writeTreeSVG(path, tree); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Errorf("svg not written: %v", err)
	}
}

func TestDumpInstanceRoundtrip(t *testing.T) {
	in, err := loadInstance("", "p2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dump.txt")
	if err := dumpInstance(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := loadInstance(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() {
		t.Errorf("roundtrip terminals %d vs %d", back.N(), in.N())
	}
}
