package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/viz"
)

func TestLoadInstanceSelectors(t *testing.T) {
	if _, err := loadInstance("", "", 0, 1); err == nil {
		t.Error("no selector accepted")
	}
	if _, err := loadInstance("", "nope", 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	in, err := loadInstance("", "p1", 0, 1)
	if err != nil || in.NumSinks() != 5 {
		t.Errorf("p1 load failed: %v %v", in, err)
	}
	in, err = loadInstance("", "", 7, 42)
	if err != nil || in.NumSinks() != 7 {
		t.Errorf("random load failed: %v", err)
	}
}

func TestLoadInstanceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	content := "metric manhattan\nsource 0 0\nsink 3 4\nsink 1 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := loadInstance(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumSinks() != 2 {
		t.Errorf("sinks = %d", in.NumSinks())
	}
	if _, err := loadInstance(filepath.Join(dir, "missing.txt"), "", 0, 1); err == nil {
		t.Error("missing file accepted")
	}
}

// TestEngineDispatch drives the registry with the Params struct the CLI
// fills, over every spanning algorithm the CLI's flag set can select.
func TestEngineDispatch(t *testing.T) {
	in, err := loadInstance("", "", 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := engine.Params{Eps: 0.3, Eps1: 0, Eps2: 0.3, AHHKC: 0.5, ExchangeDepth: 2}
	algos := []string{"mst", "spt", "maxst", "bkrus", "bkruslu", "bprim", "brbc",
		"bkh2", "bkex", "bmstg", "elmore", "bkh2elmore", "ahhk"}
	for _, a := range algos {
		res, err := engine.Build(context.Background(), a, in, p)
		if err != nil {
			t.Errorf("%s: %v", a, err)
			continue
		}
		if err := res.Tree.Validate(); err != nil {
			t.Errorf("%s: invalid tree: %v", a, err)
		}
	}
	if _, err := engine.Build(context.Background(), "bogus", in, p); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSkew(t *testing.T) {
	in, err := loadInstance("", "p3", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Build(context.Background(), "spt", in, engine.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if s := skew(res.Tree); s <= 0 {
		t.Errorf("SPT skew on p3 = %g, want > 0", s)
	}
}

// TestMetricsReport exercises the -metrics pipeline: default registry
// install, timed build, JSON snapshot with construction counters.
func TestMetricsReport(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetLabel("binary", "bmstree")
	reg.SetLabel("algo", "bkrus")
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	in, err := loadInstance("", "p3", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	stop := startBuildTimer()
	if _, err := engine.Build(context.Background(), "bkrus", in, engine.Params{Eps: 0.2}); err != nil {
		t.Fatal(err)
	}
	stop()

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := obs.WriteFile(path, obs.Default()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	scopes := map[string]obs.ScopeSnapshot{}
	for _, sc := range snap.Scopes {
		scopes[sc.Name] = sc
	}
	run, ok := scopes["run"]
	if !ok || len(run.Timers) == 0 || run.Timers[0].Count != 1 {
		t.Errorf("run scope missing build timer: %+v", run)
	}
	coreSc, ok := scopes[core.ScopeName]
	if !ok {
		t.Fatal("core scope missing from snapshot")
	}
	counters := map[string]int64{}
	for _, c := range coreSc.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{core.CtrEdgesExamined, core.CtrWitnessScans, core.CtrMerges} {
		if counters[name] == 0 {
			t.Errorf("counter %s missing or zero in snapshot", name)
		}
	}
}

func TestWriteSVGFile(t *testing.T) {
	in, err := loadInstance("", "", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Build(context.Background(), "bkrus", in, engine.Params{Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.svg")
	err = writeSVG(path, func(f *os.File) error {
		return viz.Tree(f, in, res.Tree, viz.DefaultStyle())
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Errorf("svg not written: %v", err)
	}
}

func TestDumpInstanceRoundtrip(t *testing.T) {
	in, err := loadInstance("", "p2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dump.txt")
	if err := dumpInstance(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := loadInstance(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() {
		t.Errorf("roundtrip terminals %d vs %d", back.N(), in.N())
	}
}
