package main

import (
	"os"
	"path/filepath"
	"testing"

	bpmst "repro"
)

func TestLoadInstanceSelectors(t *testing.T) {
	if _, err := loadInstance("", "", 0, 1); err == nil {
		t.Error("no selector accepted")
	}
	if _, err := loadInstance("", "nope", 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	in, err := loadInstance("", "p1", 0, 1)
	if err != nil || in.NumSinks() != 5 {
		t.Errorf("p1 load failed: %v %v", in, err)
	}
	in, err = loadInstance("", "", 7, 42)
	if err != nil || in.NumSinks() != 7 {
		t.Errorf("random load failed: %v", err)
	}
}

func TestLoadInstanceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	content := "metric manhattan\nsource 0 0\nsink 3 4\nsink 1 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := loadInstance(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumSinks() != 2 {
		t.Errorf("sinks = %d", in.NumSinks())
	}
	if _, err := loadInstance(filepath.Join(dir, "missing.txt"), "", 0, 1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildTreeAlgorithms(t *testing.T) {
	in, err := loadInstance("", "", 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{"mst", "spt", "maxst", "bkrus", "bkruslu", "bprim", "brbc",
		"bkh2", "bkex", "bmstg", "elmore", "bkh2elmore", "ahhk"}
	for _, a := range algos {
		tr, err := buildTree(net, a, 0.3, 0, 0.3, 2)
		if err != nil {
			t.Errorf("%s: %v", a, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid tree: %v", a, err)
		}
	}
	if _, err := buildTree(net, "bogus", 0.3, 0, 0.3, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestWriteTreeSVGFile(t *testing.T) {
	in, err := loadInstance("", "", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bpmst.NewNet(in.Source(), in.Sinks(), in.Metric())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := buildTree(net, "bkrus", 0.2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := writeTreeSVG(path, tree); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Errorf("svg not written: %v", err)
	}
}

func TestDumpInstanceRoundtrip(t *testing.T) {
	in, err := loadInstance("", "p2", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dump.txt")
	if err := dumpInstance(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := loadInstance(path, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() {
		t.Errorf("roundtrip terminals %d vs %d", back.N(), in.N())
	}
}
