// Command bmstreed is the tree-construction service daemon: a
// long-running HTTP/JSON server that builds bounded path length
// spanning and Steiner trees through the internal/engine registry, with
// bounded-queue admission control, an instance cache, per-request
// deadlines, and graceful shutdown. All serving logic lives in
// internal/serve; this main only parses flags and owns the process
// lifecycle.
//
// Usage:
//
//	bmstreed [-addr :8344] [-workers N] [-queue N] [-cache-size N]
//	         [-cache-bytes N] [-sweep-workers N] [-refresh-workers N]
//	         [-default-timeout 5s] [-max-timeout 60s] [-drain 15s]
//
// Endpoints: POST /v1/build (batch construction), GET /v1/algos,
// GET /healthz, GET /metrics (obs snapshot JSON), /debug/pprof.
// SERVING.md is the API reference and operator runbook; OBSERVABILITY.md
// catalogues the serve-scope metrics.
//
// SIGINT/SIGTERM starts a graceful drain: /healthz flips to 503, new
// builds are rejected with 503, in-flight requests get up to -drain to
// finish, then the process exits 0. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound listen address to this file (for scripts wrapping port 0)")

		workers    = flag.Int("workers", 0, "concurrent build requests (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", serve.DefaultQueue, "requests allowed to wait for a worker slot (-1 = none: shed immediately)")
		cacheSize  = flag.Int("cache-size", serve.DefaultCacheSize, "resident instance-cache entries (-1 = disable the cache)")
		cacheBytes = flag.Int64("cache-bytes", 0, "byte budget for resident instance-cache state (0 = unbounded, entry count only)")
		sweepW     = flag.Int("sweep-workers", 0, "workers per eps_sweep net (0 = GOMAXPROCS, 1 = serial; results are identical)")
		refreshW   = flag.Int("refresh-workers", 0, "construction inner-loop workers per build (0 = layer default, 1 = serial kernels; trees are identical)")

		defTimeout = flag.Duration("default-timeout", serve.DefaultTimeout, "per-request deadline when the request carries no timeout_ms")
		maxTimeout = flag.Duration("max-timeout", serve.DefaultMaxWait, "upper clamp on client-requested timeouts")
		maxBatch   = flag.Int("max-batch", serve.DefaultMaxBatch, "nets per request")
		maxPoints  = flag.Int("max-points", serve.DefaultMaxPoints, "terminals per net")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	reg.SetLabel("binary", "bmstreed")

	srv := serve.New(serve.Config{
		Workers:        *workers,
		Queue:          normalize(*queue),
		CacheSize:      normalize(*cacheSize),
		CacheBytes:     *cacheBytes,
		SweepWorkers:   *sweepW,
		RefreshWorkers: *refreshW,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBatch:       *maxBatch,
		MaxPoints:      *maxPoints,
		Obs:            reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("bmstreed: listening on %s\n", bound)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until a shutdown signal; the signal handler drains and then
	// closes the listener, which unblocks Serve with ErrServerClosed.
	done := make(chan error, 1)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("bmstreed: %v: draining (up to %v)\n", sig, *drain)
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		go func() { // a second signal aborts the drain
			<-sigs
			cancel()
		}()
		done <- httpSrv.Shutdown(ctx)
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if err := <-done; err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Println("bmstreed: drained, bye")
}

// normalize maps the CLI convention (-1 = none) onto the serve.Config
// convention (negative = none, 0 = default).
func normalize(v int) int {
	if v < 0 {
		return -1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bmstreed:", err)
	os.Exit(1)
}
