// Command globalroute routes a whole netlist under one or more policies
// and reports aggregate wirelength, path ratios, and gcell congestion —
// the system-level view the paper's introduction motivates.
//
// Usage:
//
//	globalroute -in design.nl [-eps 0.2] [-grid 16] [-capacity 8]
//	globalroute -demo 100 -seed 3
//
// The netlist format is one block per net:
//
//	net clk0
//	source 10 10
//	sink 40 10
//	sink 10 55
//	end
//
// Observability (see OBSERVABILITY.md): -metrics file.json dumps the
// router and construction counters of the whole run as JSON, -pprof
// file writes a CPU profile, -trace file writes a runtime execution
// trace — the natural place to inspect worker scheduling.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/viz"
)

func main() {
	var (
		inFile   = flag.String("in", "", "netlist file")
		demo     = flag.Int("demo", 0, "generate a synthetic demo design with this many nets")
		seed     = flag.Int64("seed", 1, "seed for -demo")
		eps      = flag.Float64("eps", 0.2, "path length slack for the bounded policy")
		grid     = flag.Int("grid", 16, "gcell grid dimension for congestion")
		capacity = flag.Int("capacity", 0, "gcell capacity for overflow accounting (0 = skip)")
		workers  = flag.Int("workers", 0, "route nets concurrently with this many workers (0 = NumCPU)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		heatmap  = flag.String("heatmap", "", "write an SVG congestion heatmap of the bounded policy to this file")

		pprofFile = flag.String("pprof", "", "write a CPU profile to this file")
		traceFile = flag.String("trace", "", "write a runtime execution trace to this file")
		metrics   = flag.String("metrics", "", "write an observability snapshot (JSON) to this file")
	)
	flag.Parse()

	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetLabel("binary", "globalroute")
		obs.SetDefault(reg)
	}
	stopProfiles, err := obs.StartProfiles(*pprofFile, *traceFile)
	if err != nil {
		fatal(err)
	}

	nl, err := loadNetlist(*inFile, *demo, *seed)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	policies := []router.Policy{
		router.SPTPolicy(),
		router.BKRUSPolicy(*eps),
		router.AHHKPolicy(0.5),
		router.MSTPolicy(),
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\ttotal wire\tworst path/R\tmean path/R\tpeak gcell\toverflow")
	for _, p := range policies {
		res, err := router.RouteParallel(ctx, nl, p, router.Options{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		cm, err := router.NewCongestionMap(nl, res, *grid, *grid)
		if err != nil {
			fatal(err)
		}
		overflow := "-"
		if *capacity > 0 {
			overflow = fmt.Sprintf("%d", cm.Overflow(*capacity))
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.3f\t%.3f\t%d\t%s\n",
			res.Policy, res.TotalCost, res.WorstPathRatio, res.MeanPathRatio,
			cm.MaxDemand(), overflow)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
	if *heatmap != "" {
		res, err := router.RouteParallel(ctx, nl, router.BKRUSPolicy(*eps), router.Options{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		cm, err := router.NewCongestionMap(nl, res, *grid, *grid)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*heatmap)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := viz.Heatmap(f, cm, *grid, *grid, viz.DefaultStyle()); err != nil {
			fatal(err)
		}
		fmt.Printf("congestion heatmap written to %s\n", *heatmap)
	}
	if err := stopProfiles(); err != nil {
		fatal(err)
	}
	if *metrics != "" {
		if err := obs.WriteFile(*metrics, obs.Default()); err != nil {
			fatal(err)
		}
	}
}

func loadNetlist(file string, demo int, seed int64) (*router.Netlist, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return router.ReadNetlist(f)
	}
	if demo <= 0 {
		return nil, fmt.Errorf("specify -in or -demo")
	}
	rng := rand.New(rand.NewSource(seed))
	nl := &router.Netlist{}
	for i := 0; i < demo; i++ {
		fanout := 2 + rng.Intn(5)
		ox, oy := rng.Float64()*1000, rng.Float64()*1000
		spread := 50 + rng.Float64()*200
		sinks := make([]geom.Point, fanout)
		for j := range sinks {
			sinks[j] = geom.Point{X: ox + rng.Float64()*spread, Y: oy + rng.Float64()*spread}
		}
		src := geom.Point{X: ox + rng.Float64()*spread, Y: oy + rng.Float64()*spread}
		in, err := inst.New(src, sinks, geom.Manhattan)
		if err != nil {
			return nil, err
		}
		nl.Add(fmt.Sprintf("net%d", i), in)
	}
	return nl, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "globalroute:", err)
	os.Exit(1)
}
