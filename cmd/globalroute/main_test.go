package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadNetlistSelectors(t *testing.T) {
	if _, err := loadNetlist("", 0, 1); err == nil {
		t.Error("no selector accepted")
	}
	nl, err := loadNetlist("", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Nets) != 12 {
		t.Errorf("demo nets = %d", len(nl.Nets))
	}
	// deterministic per seed
	again, err := loadNetlist("", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Nets[5].In.Source() != again.Nets[5].In.Source() {
		t.Error("demo generation not deterministic")
	}
}

func TestLoadNetlistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.nl")
	content := "net a\nsource 0 0\nsink 5 5\nend\nnet b\nsource 10 10\nsink 12 10\nsink 10 15\nend\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	nl, err := loadNetlist(path, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Nets) != 2 || nl.Nets[1].Name != "b" {
		t.Errorf("netlist parse wrong: %+v", nl.Nets)
	}
	if _, err := loadNetlist(filepath.Join(dir, "missing"), 0, 1); err == nil {
		t.Error("missing file accepted")
	}
}
