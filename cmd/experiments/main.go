// Command experiments regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	experiments [-quick] [-cases N] [-xbudget N] [-gbudget N] [-timeout D] [-run ID]...
//
// Each -run selects one experiment: 1-5 for Tables 1-5, f1/f9/f10/f11/
// f12/f13 for the figures, depth for the BKEX depth study, lemmas for
// the Lemma 4.1-4.3 ablation, elmore for the §3.2 delay study, or all
// (default). -quick shrinks grids and case counts so the full suite
// finishes in seconds; without it the paper's full grids run, which
// takes hours on the largest benchmarks. -timeout cancels the run's
// context after the given duration; every construction aborts at its
// next cancellation check.
//
// Observability (see OBSERVABILITY.md): -metrics file.json dumps
// per-experiment wall times plus the accumulated construction counters
// of every instrumented layer as JSON, -pprof file writes a CPU
// profile, -trace file writes a runtime execution trace — useful for
// finding which experiment dominates a slow full run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced grids and case counts (seconds instead of hours)")
		cases   = flag.Int("cases", 0, "random cases per configuration (0 = 50, or 10 with -quick)")
		xbudget = flag.Int("xbudget", 0, "exchange expansion budget for BKH2/BKEX on large nets (0 = default)")
		gbudget = flag.Int("gbudget", 0, "spanning tree budget for the exact enumeration (0 = default)")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
		csv     = flag.Bool("csv", false, "render tables as CSV for downstream plotting")

		pprofFile = flag.String("pprof", "", "write a CPU profile to this file")
		traceFile = flag.String("trace", "", "write a runtime execution trace to this file")
		metrics   = flag.String("metrics", "", "write an observability snapshot (JSON) to this file")
	)
	var runs multiFlag
	flag.Var(&runs, "run", "experiment id: 1-5, f1, f9-f13, depth, lemmas, elmore, all (repeatable)")
	flag.Parse()

	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.SetLabel("binary", "experiments")
		obs.SetDefault(reg)
	}
	stopProfiles, err := obs.StartProfiles(*pprofFile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{
		Out:            os.Stdout,
		Ctx:            ctx,
		Quick:          *quick,
		Cases:          *cases,
		ExchangeBudget: *xbudget,
		GabowBudget:    *gbudget,
		CSV:            *csv,
	}
	if len(runs) == 0 {
		runs = []string{"all"}
	}
	for _, id := range runs {
		stop := startRunTimer(id)
		err := experiments.Run(id, cfg)
		stop()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := obs.WriteFile(*metrics, obs.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

// startRunTimer times one experiment into the default registry's
// "experiments" scope; a no-op when observability is off.
func startRunTimer(id string) func() {
	if sc := obs.DefaultScope("experiments"); sc != nil {
		return sc.Timer("run_" + id + "_seconds").Start()
	}
	return func() {}
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
