package bpmst

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - the Lemma 4.1-4.3 candidate-edge filters in the exact enumeration
//     (how much preprocessing buys on the exact search);
//   - the exchange search depth (BKH2's depth 2 versus deeper searches);
//   - BKST's layered-jumper fallback versus strictly planar routing;
//   - the DisjointSet member lists versus recomputing memberships (the
//     member-list structure is what makes the O(V) feasibility scan and
//     the O(V²) total merge bookkeeping possible).

import (
	"context"

	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/exchange"
	"repro/internal/steiner"
)

func BenchmarkAblationGabowLemmasOn(b *testing.B) {
	n := randomBenchNet(31, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BMSTG(n, 0.1, GabowOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGabowLemmasOff(b *testing.B) {
	n := randomBenchNet(31, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BMSTG(n, 0.1, GabowOptions{DisableLemmas: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkExchangeDepth(b *testing.B, depth int) {
	n := randomBenchNet(32, 12)
	in := n.in
	eps := 0.1
	start, err := core.BKRUS(in, eps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exchange.Improve(context.Background(), in, start, core.UpperOnly(in, eps), exchange.Options{MaxDepth: depth}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationExchangeDepth1(b *testing.B) { benchmarkExchangeDepth(b, 1) }
func BenchmarkAblationExchangeDepth2(b *testing.B) { benchmarkExchangeDepth(b, 2) }
func BenchmarkAblationExchangeDepth4(b *testing.B) { benchmarkExchangeDepth(b, 4) }
func BenchmarkAblationExchangeDepth6(b *testing.B) { benchmarkExchangeDepth(b, 6) }

func BenchmarkAblationBKSTLayered(b *testing.B) {
	n := randomBenchNet(33, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := steiner.BKST(n.in, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBKSTPlanar(b *testing.B) {
	n := randomBenchNet(33, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := steiner.BKSTPlanar(n.in, 0.2); err != nil &&
			err != steiner.ErrNotPlanar && err != steiner.ErrInfeasible {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExactVsExchange compares the two exact methods
// head-to-head at the net size where the paper says Gabow's method stops
// being practical.
func BenchmarkAblationExactGabow15(b *testing.B) {
	n := randomBenchNet(34, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.BMSTG(context.Background(), n.in, 0.2, exact.Options{MaxTrees: 100000}); err != nil && err != exact.ErrBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationExactBKEX15(b *testing.B) {
	n := randomBenchNet(34, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exchange.BKEX(context.Background(), n.in, 0.2, 6); err != nil {
			b.Fatal(err)
		}
	}
}
