// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON record, so benchmark results can be committed
// (BENCH_PR4.json) and diffed across PRs instead of living in commit
// messages.
//
// It reads benchmark output from stdin (or a file argument), parses
// every "BenchmarkX  N  val unit  val unit ..." result line plus the
// goos/goarch/cpu header lines, and writes a JSON document of the form
//
//	{
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "benchmarks": [
//	    {"name": "...", "package": "repro/internal/core",
//	     "iterations": 33, "ns_per_op": 35096999,
//	     "bytes_per_op": 5237144, "allocs_per_op": 5005,
//	     "extra": {"edges/op": 61385}}
//	  ]
//	}
//
// Non-benchmark lines (PASS, ok, test logs) are ignored, so the whole
// `go test -bench` transcript of several packages can be piped through
// in one shot.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json
//	benchjson -diff old.json new.json [-fail-over 20] [-require A,B]
//
// The -diff mode compares two committed reports benchmark by benchmark
// (keyed by package + name) and prints per-benchmark ns/op deltas,
// plus bytes/op deltas where both reports recorded allocations. With
// -fail-over PCT it exits 1 when any benchmark's time or bytes
// regressed by more than PCT percent; without it the diff is
// informational only. With -require, the listed benchmark names must
// be present in the new report — the GOMAXPROCS "-N" suffix is
// ignored, and a name covers its sub-benchmarks ("BenchmarkX" matches
// "BenchmarkX/n=1000-4") — so a CI gate fails loudly when a hot-path
// row silently drops out of the bench run instead of diffing nothing.
//
// Exit status: 0 on success, 1 when the input contains no benchmark
// lines, the output cannot be written, or -fail-over tripped, 2 on
// usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two reports: benchjson -diff old.json new.json")
	failOver := flag.Float64("fail-over", 0, "with -diff: exit 1 when any ns/op or bytes/op regression exceeds this percent (0 = never fail)")
	require := flag.String("require", "", "with -diff: comma-separated benchmark names that must appear in the new report (-N suffix ignored; a name covers its sub-benchmarks); exit 1 listing any missing")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output.txt]")
		fmt.Fprintln(os.Stderr, "       benchjson -diff [-fail-over PCT] [-require A,B] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		old, err := readReport(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		new_, err := readReport(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		lines, regressed := diffReports(old, new_, *failOver)
		for _, l := range lines {
			fmt.Println(l)
		}
		fail := false
		if missing := missingRequired(new_, splitRequire(*require)); len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: required benchmark(s) missing from %s: %s\n", flag.Arg(1), strings.Join(missing, ", "))
			fail = true
		}
		if *failOver > 0 && regressed > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%%\n", regressed, *failOver)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
		return
	}

	var in io.Reader
	switch flag.NArg() {
	case 0:
		in = os.Stdin
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	default:
		flag.Usage()
		os.Exit(2)
	}

	report, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d benchmarks\n", *out, len(report.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// readReport loads one committed benchjson document.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// benchKey identifies a benchmark across reports.
func benchKey(b Benchmark) string { return b.Package + " " + b.Name }

// splitRequire parses the -require flag value into clean names.
func splitRequire(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// stripProcs removes the "-N" GOMAXPROCS suffix go test appends to
// benchmark names, so requirements written without it match reports
// recorded on any machine.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// missingRequired returns the required names, in input order, that no
// benchmark of the report satisfies. A requirement is satisfied by a
// benchmark whose -N-stripped name equals it, or starts with it plus
// "/" (a parent name covers all its sub-benchmarks).
func missingRequired(rep *Report, required []string) []string {
	var missing []string
	for _, want := range required {
		found := false
		for _, b := range rep.Benchmarks {
			name := stripProcs(b.Name)
			if name == want || strings.HasPrefix(name, want+"/") {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

// diffReports compares old and new per benchmark — ns/op always,
// bytes/op when both reports recorded it — in new-report order, then
// lists benchmarks only one side has. It returns the rendered lines
// plus the count of regressions above failOver percent on either axis
// (0 when failOver <= 0: purely informational). Gating bytes/op next
// to time is what keeps the sub-quadratic memory contract honest: an
// O(n²) allocation sneaking back into a sparse path shows up as a
// bytes regression long before it dominates wall time.
func diffReports(old, new_ *Report, failOver float64) (lines []string, regressed int) {
	prev := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		prev[benchKey(b)] = b
	}
	seen := map[string]bool{}
	for _, b := range new_.Benchmarks {
		key := benchKey(b)
		seen[key] = true
		o, ok := prev[key]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-60s %14s %14.0f  (new)", b.Name, "-", b.NsPerOp))
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (b.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		bad := failOver > 0 && delta > failOver
		bytesCol := ""
		if o.BytesPerOp > 0 && b.BytesPerOp > 0 {
			bd := (b.BytesPerOp - o.BytesPerOp) / o.BytesPerOp * 100
			bytesCol = fmt.Sprintf("  B/op %+7.2f%%", bd)
			if failOver > 0 && bd > failOver {
				bad = true
			}
		}
		mark := ""
		if bad {
			mark = "  REGRESSION"
			regressed++
		}
		lines = append(lines, fmt.Sprintf("%-60s %14.0f %14.0f  %+7.2f%%%s%s",
			b.Name, o.NsPerOp, b.NsPerOp, delta, bytesCol, mark))
	}
	for _, b := range old.Benchmarks {
		if !seen[benchKey(b)] {
			lines = append(lines, fmt.Sprintf("%-60s %14.0f %14s  (removed)", b.Name, b.NsPerOp, "-"))
		}
	}
	return lines, regressed
}

// parse consumes a `go test -bench` transcript, possibly spanning
// several packages.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResultLine(line)
			if !ok {
				continue // a benchmark's own log line, not a result
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseResultLine parses one "BenchmarkName-P  N  v unit  v unit ..."
// line; ok=false when the line is not a well-formed result.
func parseResultLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, seen
}
