package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBKRUSStream/n=500-4         	      33	  35096999 ns/op	     61385 edges/op	 5237144 B/op	    5005 allocs/op
BenchmarkBKRUSEager/n=500-4          	      26	  42248791 ns/op	     61385 edges/op	 5195272 B/op	    3697 allocs/op
PASS
ok  	repro/internal/core	3.456s
goos: linux
goarch: amd64
pkg: repro/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepParallel/workers=4-4   	       5	 210000000 ns/op	        16.00 cells/op	 1000 B/op	      10 allocs/op
PASS
ok  	repro/internal/engine	1.234s
`

func TestParseTranscript(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkBKRUSStream/n=500-4" || b.Package != "repro/internal/core" {
		t.Errorf("first bench identity = %q pkg %q", b.Name, b.Package)
	}
	if b.Iterations != 33 || b.NsPerOp != 35096999 || b.BytesPerOp != 5237144 || b.AllocsPerOp != 5005 {
		t.Errorf("first bench values = %+v", b)
	}
	if b.Extra["edges/op"] != 61385 {
		t.Errorf("edges/op = %v", b.Extra["edges/op"])
	}
	last := rep.Benchmarks[2]
	if last.Package != "repro/internal/engine" || last.Extra["cells/op"] != 16 {
		t.Errorf("last bench = %+v", last)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := `BenchmarkFoo
Benchmark output that is not a result
BenchmarkBar-1   10   100 ns/op
some log line
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkBar-1" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

func TestParseResultLineRejectsMalformed(t *testing.T) {
	bad := []string{
		"BenchmarkX",
		"BenchmarkX abc 100 ns/op",
		"BenchmarkX 10 abc ns/op",
		"BenchmarkX 10 100 B/op", // no ns/op anywhere
		"BenchmarkX 0 100 ns/op",
	}
	for _, line := range bad {
		if _, ok := parseResultLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkA-4":  "BenchmarkA",
		"BenchmarkA-16": "BenchmarkA",
		"BenchmarkA":    "BenchmarkA",
		"BenchmarkBKRUSRefresh/n=1000/workers=4-4": "BenchmarkBKRUSRefresh/n=1000/workers=4",
		"BenchmarkX/mode=fast":                     "BenchmarkX/mode=fast",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitRequire(t *testing.T) {
	if got := splitRequire(""); got != nil {
		t.Errorf("empty flag parsed to %v", got)
	}
	got := splitRequire(" BenchmarkA , ,BenchmarkB/n=5,")
	if len(got) != 2 || got[0] != "BenchmarkA" || got[1] != "BenchmarkB/n=5" {
		t.Errorf("splitRequire = %v", got)
	}
}

func TestMissingRequired(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkBKRUSRefresh/n=1000/workers=1-4"},
		{Name: "BenchmarkBKRUSRefresh/n=1000/workers=4-4"},
		{Name: "BenchmarkBKRUSSparse/n=10000-4"},
	}}
	// Exact sub-benchmark names, with and without the -N suffix in the
	// requirement, plus a parent name covering its children.
	for _, ok := range [][]string{
		{"BenchmarkBKRUSRefresh/n=1000/workers=1"},
		{"BenchmarkBKRUSRefresh"},
		{"BenchmarkBKRUSRefresh/n=1000", "BenchmarkBKRUSSparse"},
	} {
		if m := missingRequired(rep, ok); m != nil {
			t.Errorf("require %v reported missing %v", ok, m)
		}
	}
	// A parent name must not match by bare string prefix: the boundary
	// is a "/" separator.
	m := missingRequired(rep, []string{"BenchmarkBKRUSRef", "BenchmarkBKRUSSparse/n=500", "BenchmarkGone"})
	want := []string{"BenchmarkBKRUSRef", "BenchmarkBKRUSSparse/n=500", "BenchmarkGone"}
	if len(m) != len(want) {
		t.Fatalf("missing = %v, want %v", m, want)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("missing[%d] = %q, want %q", i, m[i], want[i])
		}
	}
}

func TestDiffReports(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", Package: "p", NsPerOp: 100},
		{Name: "BenchmarkB-4", Package: "p", NsPerOp: 200},
		{Name: "BenchmarkGone-4", Package: "p", NsPerOp: 50},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", Package: "p", NsPerOp: 150}, // +50%
		{Name: "BenchmarkB-4", Package: "p", NsPerOp: 190}, // -5%
		{Name: "BenchmarkNew-4", Package: "p", NsPerOp: 10},
	}}

	lines, regressed := diffReports(old, cur, 20)
	if regressed != 1 {
		t.Errorf("regressed = %d, want 1 (only the +50%% one)", regressed)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "REGRESSION") || !strings.Contains(lines[0], "+50.00%") {
		t.Errorf("line 0 should mark the regression: %q", lines[0])
	}
	if strings.Contains(lines[1], "REGRESSION") || !strings.Contains(lines[1], "-5.00%") {
		t.Errorf("line 1 should be a clean improvement: %q", lines[1])
	}
	if !strings.Contains(lines[2], "(new)") {
		t.Errorf("line 2 should flag the new benchmark: %q", lines[2])
	}
	if !strings.Contains(lines[3], "(removed)") {
		t.Errorf("line 3 should flag the removed benchmark: %q", lines[3])
	}

	// Informational mode never counts regressions.
	if _, n := diffReports(old, cur, 0); n != 0 {
		t.Errorf("failOver=0 counted %d regressions, want 0", n)
	}

	// Bytes/op gates alongside time: a flat-time benchmark whose
	// allocation doubled is a regression too.
	oldB := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkM-4", Package: "p", NsPerOp: 100, BytesPerOp: 1000}}}
	curB := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkM-4", Package: "p", NsPerOp: 100, BytesPerOp: 2000}}}
	linesB, n := diffReports(oldB, curB, 20)
	if n != 1 || !strings.Contains(linesB[0], "REGRESSION") || !strings.Contains(linesB[0], "B/op +100.00%") {
		t.Errorf("bytes regression not gated: n=%d %q", n, linesB[0])
	}
	if _, n := diffReports(oldB, curB, 0); n != 0 {
		t.Errorf("informational mode counted a bytes regression")
	}

	// Same package+name keying: a matching name in another package is
	// a different benchmark.
	other := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkA-4", Package: "q", NsPerOp: 1}}}
	lines, _ = diffReports(old, other, 0)
	if !strings.Contains(lines[0], "(new)") {
		t.Errorf("cross-package match should not pair: %q", lines[0])
	}
}
