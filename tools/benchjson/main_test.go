package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBKRUSStream/n=500-4         	      33	  35096999 ns/op	     61385 edges/op	 5237144 B/op	    5005 allocs/op
BenchmarkBKRUSEager/n=500-4          	      26	  42248791 ns/op	     61385 edges/op	 5195272 B/op	    3697 allocs/op
PASS
ok  	repro/internal/core	3.456s
goos: linux
goarch: amd64
pkg: repro/internal/engine
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepParallel/workers=4-4   	       5	 210000000 ns/op	        16.00 cells/op	 1000 B/op	      10 allocs/op
PASS
ok  	repro/internal/engine	1.234s
`

func TestParseTranscript(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkBKRUSStream/n=500-4" || b.Package != "repro/internal/core" {
		t.Errorf("first bench identity = %q pkg %q", b.Name, b.Package)
	}
	if b.Iterations != 33 || b.NsPerOp != 35096999 || b.BytesPerOp != 5237144 || b.AllocsPerOp != 5005 {
		t.Errorf("first bench values = %+v", b)
	}
	if b.Extra["edges/op"] != 61385 {
		t.Errorf("edges/op = %v", b.Extra["edges/op"])
	}
	last := rep.Benchmarks[2]
	if last.Package != "repro/internal/engine" || last.Extra["cells/op"] != 16 {
		t.Errorf("last bench = %+v", last)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := `BenchmarkFoo
Benchmark output that is not a result
BenchmarkBar-1   10   100 ns/op
some log line
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkBar-1" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

func TestParseResultLineRejectsMalformed(t *testing.T) {
	bad := []string{
		"BenchmarkX",
		"BenchmarkX abc 100 ns/op",
		"BenchmarkX 10 abc ns/op",
		"BenchmarkX 10 100 B/op", // no ns/op anywhere
		"BenchmarkX 0 100 ns/op",
	}
	for _, line := range bad {
		if _, ok := parseResultLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
