// Command checkmetrics validates an observability snapshot written by
// the -metrics flag of the repository binaries: the file must be valid
// JSON, unmarshal into obs.Snapshot, and contain at least one scope
// with at least one instrument. Used by `make metrics-smoke`.
//
// Usage:
//
//	checkmetrics file.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkmetrics file.json")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		fatal(fmt.Errorf("%s: not a valid metrics snapshot: %w", path, err))
	}
	if len(snap.Scopes) == 0 {
		fatal(fmt.Errorf("%s: snapshot has no scopes", path))
	}
	instruments := 0
	for _, sc := range snap.Scopes {
		instruments += len(sc.Counters) + len(sc.Gauges) + len(sc.Timers) + len(sc.Histograms)
	}
	if instruments == 0 {
		fatal(fmt.Errorf("%s: snapshot has no instruments", path))
	}
	fmt.Printf("%s: ok (%d scopes, %d instruments, captured %s)\n",
		path, len(snap.Scopes), instruments, snap.CapturedAt)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checkmetrics:", err)
	os.Exit(1)
}
