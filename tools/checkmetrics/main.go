// Command checkmetrics validates an observability snapshot written by
// the -metrics flag of the repository binaries, so `make metrics-smoke`
// fails loudly instead of passing vacuously on a malformed file. The
// file must be valid JSON for exactly the obs.Snapshot shape (unknown
// fields are rejected), carry an RFC3339 capture timestamp, contain at
// least one scope with at least one instrument, and be internally
// consistent: unique non-empty names, non-negative counters and timer
// counts, ascending histogram bounds, and bucket counts that sum to
// the histogram count.
//
// Usage:
//
//	checkmetrics file.json
//
// Exit status: 0 when the snapshot is valid, 1 when it is malformed,
// 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkmetrics file.json")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	summary, err := validate(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("%s: %s\n", path, summary)
}

// validate checks one snapshot file and returns a one-line summary.
func validate(data []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var snap obs.Snapshot
	if err := dec.Decode(&snap); err != nil {
		return "", fmt.Errorf("not a valid metrics snapshot: %w", err)
	}
	if _, err := time.Parse(time.RFC3339Nano, snap.CapturedAt); err != nil {
		return "", fmt.Errorf("captured_at %q is not an RFC3339 timestamp", snap.CapturedAt)
	}
	if len(snap.Scopes) == 0 {
		return "", fmt.Errorf("snapshot has no scopes")
	}
	instruments := 0
	seenScopes := map[string]bool{}
	for _, sc := range snap.Scopes {
		if sc.Name == "" {
			return "", fmt.Errorf("snapshot has a scope with an empty name")
		}
		if seenScopes[sc.Name] {
			return "", fmt.Errorf("duplicate scope %q", sc.Name)
		}
		seenScopes[sc.Name] = true
		n, err := validateScope(sc)
		if err != nil {
			return "", fmt.Errorf("scope %q: %w", sc.Name, err)
		}
		instruments += n
	}
	if instruments == 0 {
		return "", fmt.Errorf("snapshot has no instruments")
	}
	return fmt.Sprintf("ok (%d scopes, %d instruments, captured %s)",
		len(snap.Scopes), instruments, snap.CapturedAt), nil
}

func validateScope(sc obs.ScopeSnapshot) (int, error) {
	seen := map[string]bool{}
	uniq := func(kind, name string) error {
		if name == "" {
			return fmt.Errorf("%s with an empty name", kind)
		}
		key := kind + "/" + name
		if seen[key] {
			return fmt.Errorf("duplicate %s %q", kind, name)
		}
		seen[key] = true
		return nil
	}
	for _, c := range sc.Counters {
		if err := uniq("counter", c.Name); err != nil {
			return 0, err
		}
		if c.Value < 0 {
			return 0, fmt.Errorf("counter %q is negative (%d): counters are monotone", c.Name, c.Value)
		}
	}
	for _, g := range sc.Gauges {
		if err := uniq("gauge", g.Name); err != nil {
			return 0, err
		}
	}
	for _, t := range sc.Timers {
		if err := uniq("timer", t.Name); err != nil {
			return 0, err
		}
		if t.Count < 0 || t.TotalSeconds < 0 || t.MeanSeconds < 0 {
			return 0, fmt.Errorf("timer %q has negative count or duration", t.Name)
		}
	}
	for _, h := range sc.Histograms {
		if err := uniq("histogram", h.Name); err != nil {
			return 0, err
		}
		var bucketSum int64
		for i, b := range h.Buckets {
			if b.Count < 0 {
				return 0, fmt.Errorf("histogram %q bucket le=%g has negative count", h.Name, b.Le)
			}
			if i > 0 && b.Le <= h.Buckets[i-1].Le {
				return 0, fmt.Errorf("histogram %q bounds are not ascending at le=%g", h.Name, b.Le)
			}
			bucketSum += b.Count
		}
		if h.Overflow < 0 {
			return 0, fmt.Errorf("histogram %q has negative overflow", h.Name)
		}
		if bucketSum+h.Overflow != h.Count {
			return 0, fmt.Errorf("histogram %q buckets sum to %d but count is %d",
				h.Name, bucketSum+h.Overflow, h.Count)
		}
	}
	return len(sc.Counters) + len(sc.Gauges) + len(sc.Timers) + len(sc.Histograms), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checkmetrics:", err)
	os.Exit(1)
}
