package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// realSnapshot builds a snapshot the way the binaries do, through a
// live registry, and returns its JSON.
func realSnapshot(t *testing.T) []byte {
	t.Helper()
	r := obs.NewRegistry()
	sc := r.Scope("core")
	sc.Counter("edges_examined").Add(42)
	sc.Gauge("total_weight").Set(12.5)
	sc.Timer("build_seconds").Observe(1500)
	sc.Histogram("net_build_seconds", 0.1, 1).Observe(0.5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateAcceptsRealSnapshot(t *testing.T) {
	summary, err := validate(realSnapshot(t))
	if err != nil {
		t.Fatalf("validate(real snapshot) = %v", err)
	}
	if !strings.Contains(summary, "1 scopes, 4 instruments") {
		t.Errorf("summary = %q, want 1 scope / 4 instruments", summary)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	ts := `"captured_at": "2026-08-05T12:00:00Z"`
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty file", ``, "not a valid metrics snapshot"},
		{"not json", `][`, "not a valid metrics snapshot"},
		{"wrong shape", `{"foo": 1}`, "not a valid metrics snapshot"},
		{"no timestamp", `{"scopes": [{"name": "core", "counters": [{"name": "x", "value": 1}]}]}`,
			"not an RFC3339 timestamp"},
		{"no scopes", `{` + ts + `, "scopes": []}`, "no scopes"},
		{"empty scope name", `{` + ts + `, "scopes": [{"name": ""}]}`, "empty name"},
		{"duplicate scopes", `{` + ts + `, "scopes": [
			{"name": "core", "counters": [{"name": "x", "value": 1}]},
			{"name": "core", "counters": [{"name": "y", "value": 1}]}]}`, "duplicate scope"},
		{"no instruments", `{` + ts + `, "scopes": [{"name": "core"}]}`, "no instruments"},
		{"negative counter", `{` + ts + `, "scopes": [
			{"name": "core", "counters": [{"name": "x", "value": -3}]}]}`, "negative"},
		{"duplicate counter", `{` + ts + `, "scopes": [
			{"name": "core", "counters": [{"name": "x", "value": 1}, {"name": "x", "value": 2}]}]}`,
			"duplicate counter"},
		{"negative timer", `{` + ts + `, "scopes": [
			{"name": "core", "timers": [{"name": "t", "count": -1, "total_seconds": 0, "mean_seconds": 0}]}]}`,
			"negative count"},
		{"histogram sum mismatch", `{` + ts + `, "scopes": [
			{"name": "core", "histograms": [{"name": "h", "count": 5, "sum": 1,
				"buckets": [{"le": 0.1, "count": 1}, {"le": 1, "count": 1}], "overflow": 1}]}]}`,
			"buckets sum to 3 but count is 5"},
		{"histogram bounds not ascending", `{` + ts + `, "scopes": [
			{"name": "core", "histograms": [{"name": "h", "count": 2, "sum": 1,
				"buckets": [{"le": 1, "count": 1}, {"le": 0.1, "count": 1}], "overflow": 0}]}]}`,
			"not ascending"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := validate([]byte(c.in))
			if err == nil {
				t.Fatalf("validate(%s) accepted a malformed snapshot", c.name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, c.wantErr)
			}
		})
	}
}
