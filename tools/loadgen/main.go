// Command loadgen drives a running bmstreed daemon with a deterministic
// burst of mixed-algorithm build requests and reports the status and
// latency distribution, so `make serve-smoke` exercises the serving
// path end to end: admission, building, the instance cache, and the
// metrics surface. It is stdlib-only, like everything in this module.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8344 [-n 60] [-c 8] [-algos bkrus,mst,bkst]
//	        [-sinks 24] [-sweep 0] [-workers 0] [-seed 1] [-timeout-ms 0]
//	        [-metrics-out file.json] [-expect-shed]
//
// The request mix is fully determined by -seed, -n, -algos, -sinks and
// -sweep, so a rerun against an identical daemon produces identical
// bodies. After the burst, loadgen fetches /metrics and optionally
// writes the snapshot to -metrics-out for tools/checkmetrics.
//
// In the default mode every request must return 200 or loadgen exits 1.
// With -expect-shed, non-200s are part of the experiment: loadgen
// instead requires at least one 429 and checks that the daemon's serve
// `shed` counter equals the number of 429s it observed — the
// load-shedding accounting contract. Run it against a fresh daemon that
// no other client is using, or the counter comparison is meaningless.
//
// Exit status: 0 on success, 1 on transport errors or failed checks,
// 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

type config struct {
	addr       string
	n, c       int
	algos      []string
	sinks      int
	sweep      int
	workers    int
	seed       int64
	timeoutMS  int64
	metricsOut string
	expectShed bool
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8344", "daemon address (host:port or http URL)")
		n          = flag.Int("n", 60, "total requests")
		c          = flag.Int("c", 8, "concurrent clients")
		algos      = flag.String("algos", "bkrus,mst,bkst", "comma-separated constructor mix, assigned round-robin")
		sinks      = flag.Int("sinks", 24, "sinks per net (Steiner nets are capped at 24: the Hanan grid is quadratic)")
		sweep      = flag.Int("sweep", 0, "when > 0, every third request carries an eps_sweep of this many values")
		workers    = flag.Int("workers", 0, "per-net workers field: construction inner-loop workers behind the daemon (0 = server default)")
		seed       = flag.Int64("seed", 1, "request-mix seed")
		timeoutMS  = flag.Int64("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
		metricsOut = flag.String("metrics-out", "", "write the post-burst /metrics snapshot to this file")
		expectShed = flag.Bool("expect-shed", false, "expect 429s and require the serve shed counter to match the observed count")
	)
	flag.Parse()
	if *n < 1 || *c < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -n and -c must be positive")
		os.Exit(2)
	}
	cfg := config{
		addr: *addr, n: *n, c: *c, algos: strings.Split(*algos, ","),
		sinks: *sinks, sweep: *sweep, workers: *workers, seed: *seed,
		timeoutMS: *timeoutMS, metricsOut: *metricsOut, expectShed: *expectShed,
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// outcome is one request's result.
type outcome struct {
	status  int
	latency time.Duration
	err     error
}

// run executes the burst and the post-burst checks. It is the whole
// program behind the flag parsing, so tests can drive it directly.
func run(cfg config, out io.Writer) error {
	base := cfg.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	bodies := makeBodies(cfg)

	client := &http.Client{Timeout: 2 * time.Minute}
	results := make([]outcome, len(bodies))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < cfg.c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = post(client, base, bodies[i])
			}
		}()
	}
	start := time.Now()
	for i := range bodies {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	byStatus, lats, firstErr := tally(results)
	report(out, cfg, base, elapsed, byStatus, lats)
	if firstErr != nil {
		return firstErr
	}

	snapshot, err := fetchMetrics(client, base, cfg.metricsOut)
	if err != nil {
		return err
	}

	if cfg.expectShed {
		return checkShed(out, snapshot, byStatus[http.StatusTooManyRequests])
	}
	if ok := byStatus[http.StatusOK]; ok != len(bodies) {
		return fmt.Errorf("%d of %d requests did not return 200", len(bodies)-ok, len(bodies))
	}
	return nil
}

// makeBodies renders the deterministic request mix.
func makeBodies(cfg config) [][]byte {
	rng := rand.New(rand.NewSource(cfg.seed))
	bodies := make([][]byte, cfg.n)
	for i := range bodies {
		algo := strings.TrimSpace(cfg.algos[i%len(cfg.algos)])
		sinks := cfg.sinks
		if strings.HasPrefix(algo, "bkst") && sinks > 24 {
			sinks = 24
		}
		net := serve.NetRequest{
			Name:    fmt.Sprintf("n%d", i),
			Algo:    algo,
			Eps:     0.25,
			Workers: cfg.workers,
			Source: serve.Point{
				X: rng.Float64() * 1000,
				Y: rng.Float64() * 1000,
			},
		}
		for s := 0; s < sinks; s++ {
			net.Sinks = append(net.Sinks, serve.Point{
				X: rng.Float64() * 1000,
				Y: rng.Float64() * 1000,
			})
		}
		if cfg.sweep > 0 && i%3 == 2 {
			net.Eps = 0
			for k := 0; k < cfg.sweep; k++ {
				net.EpsSweep = append(net.EpsSweep, float64(k)*0.2)
			}
		}
		req := serve.BuildRequest{TimeoutMS: cfg.timeoutMS, Nets: []serve.NetRequest{net}}
		//lint:ignore detflow rng is seeded from the -seed flag; request bodies are deterministic for a fixed seed by design
		data, err := json.Marshal(&req)
		if err != nil {
			panic(err) // request structs are marshal-safe by construction
		}
		bodies[i] = data
	}
	return bodies
}

// post sends one build request and classifies the answer.
func post(client *http.Client, base string, body []byte) outcome {
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/build", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{err: err, latency: time.Since(t0)}
	}
	_, err = io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return outcome{status: resp.StatusCode, latency: time.Since(t0), err: err}
}

// tally folds the outcomes into status counts and a sorted latency set.
func tally(results []outcome) (byStatus map[int]int, lats []time.Duration, firstErr error) {
	byStatus = map[int]int{}
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		byStatus[r.status]++
		lats = append(lats, r.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return byStatus, lats, firstErr
}

// report prints the human summary: status counts and the latency
// distribution of the burst.
func report(out io.Writer, cfg config, base string, elapsed time.Duration, byStatus map[int]int, lats []time.Duration) {
	fmt.Fprintf(out, "loadgen: %d requests, %d clients against %s in %v\n", cfg.n, cfg.c, base, elapsed.Round(time.Millisecond))
	codes := make([]int, 0, len(byStatus))
	for code := range byStatus {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(out, "  status %d: %d\n", code, byStatus[code])
	}
	if len(lats) > 0 {
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i].Round(time.Microsecond)
		}
		fmt.Fprintf(out, "  latency: min %v p50 %v p99 %v max %v\n", q(0), q(0.5), q(0.99), q(1))
	}
}

// fetchMetrics pulls /metrics and optionally writes the raw snapshot to
// path for tools/checkmetrics.
func fetchMetrics(client *http.Client, base, path string) ([]byte, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("fetching /metrics: %w", err)
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("reading /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned %d", resp.StatusCode)
	}
	if path != "" {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// checkShed enforces the load-shedding accounting contract: the serve
// scope's shed counter must equal the 429s this (sole) client observed,
// and there must have been at least one.
func checkShed(out io.Writer, snapshot []byte, observed int) error {
	var snap obs.Snapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return fmt.Errorf("decoding /metrics: %w", err)
	}
	shed, found := int64(0), false
	for _, sc := range snap.Scopes {
		if sc.Name != serve.ScopeName {
			continue
		}
		for _, c := range sc.Counters {
			if c.Name == serve.CtrShed {
				shed, found = c.Value, true
			}
		}
	}
	if !found {
		return fmt.Errorf("/metrics has no %s/%s counter", serve.ScopeName, serve.CtrShed)
	}
	if observed == 0 {
		return fmt.Errorf("expected the burst to shed, but saw no 429s (shed counter: %d)", shed)
	}
	if shed != int64(observed) {
		return fmt.Errorf("shed counter %d != observed 429 count %d", shed, observed)
	}
	fmt.Fprintf(out, "  shed accounting: %d 429s observed, shed counter %d\n", observed, shed)
	return nil
}
