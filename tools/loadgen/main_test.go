package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
	"repro/internal/serve"
)

func serveURL(t *testing.T, cfg serve.Config) (string, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(serve.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), ts
}

// TestRunMixedBurst drives an in-process daemon with the default mix
// and checks the success path: all 200s, a parseable report, and a
// valid metrics snapshot on disk.
func TestRunMixedBurst(t *testing.T) {
	addr, _ := serveURL(t, serve.Config{})
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	cfg := config{
		addr: addr, n: 12, c: 3,
		algos: []string{"bkrus", "mst", "bkst"},
		sinks: 8, sweep: 2, seed: 42,
		metricsOut: metrics,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "status 200: 12") {
		t.Errorf("report missing the 200 count:\n%s", out.String())
	}

	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics-out is not a snapshot: %v", err)
	}
	if len(snap.Scopes) == 0 {
		t.Error("metrics-out snapshot has no scopes")
	}
}

// TestMakeBodiesDeterministic pins the request-mix contract: same
// config, same bytes.
func TestMakeBodiesDeterministic(t *testing.T) {
	cfg := config{n: 6, algos: []string{"bkrus", "bkst"}, sinks: 40, sweep: 3, seed: 9}
	a, b := makeBodies(cfg), makeBodies(cfg)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("body %d differs between runs", i)
		}
	}
	// Steiner nets are capped while spanning nets are not.
	var big, capped serve.BuildRequest
	if err := json.Unmarshal(a[0], &big); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(a[1], &capped); err != nil {
		t.Fatal(err)
	}
	if len(big.Nets[0].Sinks) != 40 || len(capped.Nets[0].Sinks) != 24 {
		t.Errorf("sink counts = %d, %d; want 40 (bkrus), 24 (bkst cap)",
			len(big.Nets[0].Sinks), len(capped.Nets[0].Sinks))
	}
}

// TestRunExpectShed saturates a workers=1 queue=0 daemon whose single
// worker is parked on a never-finishing build, so every loadgen request
// sheds, and checks the 429/shed-counter accounting.
func TestRunExpectShed(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := engine.NewRegistry()
	reg.Register(engine.Info{Name: "block", Kind: engine.Spanning, Doc: "parks until released"},
		func(ctx context.Context, in *inst.Instance, p engine.Params) (engine.Result, error) {
			select {
			case <-release:
				return engine.Result{Tree: graph.NewTree(in.N())}, nil
			case <-ctx.Done():
				return engine.Result{}, ctx.Err()
			}
		})
	addr, ts := serveURL(t, serve.Config{
		Registry:       reg,
		Workers:        1,
		Queue:          -1, // no waiting: a busy worker sheds immediately
		DefaultTimeout: 30 * time.Second,
	})

	// Park the worker.
	parked := make(chan struct{})
	go func() {
		body := `{"nets":[{"algo":"block","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`
		resp, err := http.Post(ts.URL+"/v1/build", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		close(parked)
	}()
	waitBusy(t, ts.URL)

	var out bytes.Buffer
	cfg := config{
		addr: addr, n: 5, c: 2,
		algos: []string{"block"}, sinks: 2, seed: 3,
		expectShed: true,
	}
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run -expect-shed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "shed accounting: 5 429s observed, shed counter 5") {
		t.Errorf("shed accounting line missing:\n%s", out.String())
	}

	release <- struct{}{}
	<-parked
}

// waitBusy polls /metrics until the inflight gauge shows the parked
// request holding the only worker slot.
func waitBusy(t *testing.T, url string) {
	t.Helper()
	for i := 0; i < 500; i++ {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range snap.Scopes {
			if sc.Name != serve.ScopeName {
				continue
			}
			for _, g := range sc.Gauges {
				if g.Name == serve.GaugeInflight && g.Value >= 1 {
					return
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("worker never became busy")
}
