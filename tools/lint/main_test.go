package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadFailureExitsTwo is the regression test for the load-error
// contract: a package that cannot be built must produce exit code 2
// (not 0, not the findings code 1) and the failing package must be
// named on stderr.
func TestLoadFailureExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module scratch\n\ngo 1.22\n",
		"broken/bad.go": "package broken\n\nfunc oops( {\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "scratch/broken") {
		t.Errorf("stderr does not name the failing package:\n%s", errb.String())
	}
}

// TestTypeErrorExitsTwo covers the other load-failure flavor: the
// package parses but does not type-check.
func TestTypeErrorExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":       "module scratch\n\ngo 1.22\n",
		"badty/bad.go": "package badty\n\nvar x int = \"not an int\"\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "scratch/badty") {
		t.Errorf("stderr does not name the failing package:\n%s", errb.String())
	}
}

// TestPartialLoadExitsTwo is the regression test for the module-wide
// load contract: when a healthy package imports a broken one, the run
// must refuse the whole load with exit 2 and name the broken package —
// not silently analyze the healthy remainder with a shrunken call
// graph.
func TestPartialLoadExitsTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module scratch\n\ngo 1.22\n",
		"ok/ok.go":      "package ok\n\nimport \"scratch/broken\"\n\nfunc Use() int { return broken.N }\n",
		"broken/bad.go": "package broken\n\nvar N int = \"not an int\"\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "./ok"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "scratch/broken") {
		t.Errorf("stderr does not name the broken dependency:\n%s", errb.String())
	}
}

// TestAnalyzerSubset: -analyzer restricts the run to the named
// analyzers, so a module with a floatcmp finding lints clean when only
// detflow and lockorder are selected.
func TestAnalyzerSubset(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"w/w.go": "package w\n\nfunc eq(a, b float64) bool { return a == b }\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "-analyzer", "detflow,lockorder", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	code = run([]string{"-dir", dir, "-analyzer", "floatcmp", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code with -analyzer floatcmp = %d, want 1; stderr:\n%s", code, errb.String())
	}
}

// TestUnknownAnalyzerExitsTwo: a name outside the registry is a usage
// error, not a silent no-op run.
func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-analyzer", "nosuch", "."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "nosuch") {
		t.Errorf("stderr does not echo the unknown name:\n%s", errb.String())
	}
}

// TestFindingsExitOne: a loadable package with a violation exits 1 and
// prints the diagnostic.
func TestFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"w/w.go": "package w\n\nfunc eq(a, b float64) bool { return a == b }\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "floatcmp") {
		t.Errorf("stdout has no floatcmp diagnostic:\n%s", out.String())
	}
}

// TestListNamesEveryAnalyzer: -list must print one line per registered
// analyzer, so the help output cannot drift from the registry.
func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output does not mention %q:\n%s", a.Name, out.String())
		}
	}
	if got, want := len(strings.Split(strings.TrimRight(out.String(), "\n"), "\n")), len(analysis.All()); got != want {
		t.Errorf("-list prints %d lines, want %d (one per analyzer)", got, want)
	}
}

// TestCleanExitZero: a clean module exits 0 with no output.
func TestCleanExitZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"c/c.go": "package c\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected stdout:\n%s", out.String())
	}
}

// TestJSONFormat pins the machine-readable contract: -format json
// emits an array with file/line/col/analyzer/message/suppressed, keeps
// findings that a reasoned //lint:ignore covers (flagged suppressed),
// and bases the exit code on unsuppressed findings only.
func TestJSONFormat(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"w/w.go": "package w\n\n" +
			"func eq(a, b float64) bool { return a == b }\n\n" +
			"//lint:ignore floatcmp pinned on purpose for the json test\n" +
			"func eq2(a, b float64) bool { return a == b }\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "-format", "json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one unsuppressed finding); stderr:\n%s", code, errb.String())
	}
	var findings []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, out.String())
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (one active, one suppressed):\n%s", len(findings), out.String())
	}
	var active, suppressed int
	for _, f := range findings {
		if f.Analyzer != "floatcmp" {
			t.Errorf("unexpected analyzer %q", f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Message == "" {
			t.Errorf("finding is missing position or message fields: %+v", f)
		}
		if f.Suppressed {
			suppressed++
			if f.Line != 6 {
				t.Errorf("suppressed finding at line %d, want 6", f.Line)
			}
		} else {
			active++
			if f.Line != 3 {
				t.Errorf("active finding at line %d, want 3", f.Line)
			}
		}
	}
	if active != 1 || suppressed != 1 {
		t.Errorf("active=%d suppressed=%d, want 1 and 1", active, suppressed)
	}
}

// TestJSONCleanTree: a clean module must emit an empty array (not
// null) and exit 0, so the CI annotation step can always parse stdout.
func TestJSONCleanTree(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"c/c.go": "package c\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	var out, errb strings.Builder
	code := run([]string{"-dir", dir, "-format", "json", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean-tree stdout = %q, want []", got)
	}
}

// TestUnknownFormatExitsTwo: -format outside {text,json} is a usage
// error.
func TestUnknownFormatExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-format", "xml", "."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "xml") {
		t.Errorf("stderr does not echo the unknown format:\n%s", errb.String())
	}
}
