// Command lint runs the repository's domain-invariant analyzers
// (floatcmp, maporder, wallclock, obsgate — see internal/analysis)
// over the packages matching the given patterns and prints one
// file:line:col diagnostic per finding. It exits 0 on a clean tree, 1
// when there are findings, and 2 on usage or load errors.
//
// Usage:
//
//	lint [-list] [packages]
//
// With no patterns it lints ./... . Findings are suppressed per line
// with `//lint:ignore <analyzer> <reason>`; see the "Code invariants"
// section of the README for what each analyzer enforces and when a
// suppression is legitimate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lint [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
