// Command lint runs the repository's domain-invariant analyzers (see
// internal/analysis: floatcmp, maporder, wallclock, obsgate, ctxpoll,
// parallelgate, waitpair, sharedwrite, errdrop, detflow, ctxflow,
// allocloop, lockorder, indexbound, nilflow, intwidth, chanleak) over
// the packages matching the given patterns
// and prints one file:line:col diagnostic per finding. It exits 0 on a
// clean tree, 1 when there are findings, and 2 on usage or load errors
// — a package that fails to list, parse or type-check is reported by
// import path on stderr. Partial loads are refused the same way: a
// broken or export-less dependency anywhere in the pattern's closure
// names the failing package and exits 2, because silently analyzing
// the remainder would shrink the interprocedural call graph the
// module-wide analyzers depend on.
//
// Usage:
//
//	lint [-list] [-dir dir] [-analyzer names] [-format text|json] [packages]
//
// With no patterns it lints ./... . The packages are loaded together
// as one module so the interprocedural analyzers see cross-package
// call chains. -analyzer restricts the run to a comma-separated subset
// (e.g. -analyzer detflow,lockorder). Findings are suppressed per line
// with `//lint:ignore <analyzer> <reason>`; see the "Code invariants"
// section of the README for what each analyzer enforces and when a
// suppression is legitimate.
//
// -format json emits one JSON array of findings (file, line, col,
// analyzer, message, suppressed) for machine consumers — CI turns it
// into GitHub annotations. JSON mode also includes the findings that
// reasoned //lint:ignore directives cover, flagged "suppressed": true,
// so the suppression load is auditable; only unsuppressed findings
// count toward the exit code, which is the same in both formats.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, separated from main so the exit-code
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", "", "directory to resolve package patterns in (default: current directory)")
	only := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	format := fs.String("format", "text", "output format: text or json")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lint [-list] [-dir dir] [-analyzer names] [-format text|json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "lint: unknown -format=%s (want text or json)\n", *format)
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
		if analyzers == nil {
			fmt.Fprintf(stderr, "lint: unknown analyzer in -analyzer=%s (use -list)\n", *only)
			return 2
		}
	}

	mod, err := analysis.LoadModule(*dir, fs.Args()...)
	if err != nil {
		var le *analysis.LoadError
		if errors.As(err, &le) {
			fmt.Fprintf(stderr, "lint: cannot load package %s: %v\n", le.ImportPath, le.Err)
		} else {
			fmt.Fprintln(stderr, "lint:", err)
		}
		return 2
	}
	if *format == "json" {
		return runJSON(mod, analyzers, stdout, stderr)
	}
	findings := 0
	for _, pkg := range mod.Pkgs {
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable diagnostic shape. The field set
// is a compatibility contract with the CI annotation step; extend it,
// don't rename it.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// runJSON prints every finding — suppressed ones flagged — as one JSON
// array. The exit code ignores suppressed findings, matching text mode.
func runJSON(mod *analysis.Module, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	out := []jsonFinding{} // encode [] on a clean tree, not null
	active := 0
	for _, pkg := range mod.Pkgs {
		for _, d := range analysis.RunAll(pkg, analyzers) {
			out = append(out, jsonFinding{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
			if !d.Suppressed {
				active++
			}
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, "lint:", err)
		return 2
	}
	if active > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", active)
		return 1
	}
	return 0
}

// selectAnalyzers filters the registry down to the comma-separated
// names, preserving registry order. Returns nil when a name matches no
// analyzer.
func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 || len(out) == 0 {
		return nil
	}
	return out
}
