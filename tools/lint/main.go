// Command lint runs the repository's domain-invariant analyzers (see
// internal/analysis: floatcmp, maporder, wallclock, obsgate, ctxpoll,
// parallelgate, waitpair, sharedwrite, errdrop) over the packages
// matching the given patterns and prints one file:line:col diagnostic
// per finding. It exits 0 on a clean tree, 1 when there are findings,
// and 2 on usage or load errors — a package that fails to list, parse
// or type-check is reported by import path on stderr.
//
// Usage:
//
//	lint [-list] [-dir dir] [packages]
//
// With no patterns it lints ./... . Findings are suppressed per line
// with `//lint:ignore <analyzer> <reason>`; see the "Code invariants"
// section of the README for what each analyzer enforces and when a
// suppression is legitimate.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, separated from main so the exit-code
// contract is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", "", "directory to resolve package patterns in (default: current directory)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: lint [-list] [-dir dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		var le *analysis.LoadError
		if errors.As(err, &le) {
			fmt.Fprintf(stderr, "lint: cannot load package %s: %v\n", le.ImportPath, le.Err)
		} else {
			fmt.Fprintln(stderr, "lint:", err)
		}
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
