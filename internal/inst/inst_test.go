package inst

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Point{}, nil, geom.Manhattan); err == nil {
		t.Error("instance without sinks accepted")
	}
	if _, err := New(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Metric(9)); err == nil {
		t.Error("invalid metric accepted")
	}
	in, err := New(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Euclidean)
	if err != nil || in.Metric() != geom.Euclidean {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on error")
		}
	}()
	MustNew(geom.Point{}, nil, geom.Manhattan)
}

func TestAccessors(t *testing.T) {
	src := geom.Point{X: 1, Y: 2}
	sinks := []geom.Point{{X: 4, Y: 2}, {X: 1, Y: 3}}
	in := MustNew(src, sinks, geom.Manhattan)
	if in.N() != 3 || in.NumSinks() != 2 {
		t.Errorf("N/NumSinks = %d/%d", in.N(), in.NumSinks())
	}
	if in.Source() != src {
		t.Errorf("Source = %v", in.Source())
	}
	if in.Point(0) != src || in.Point(2) != sinks[1] {
		t.Error("Point indexing wrong")
	}
	got := in.Sinks()
	if len(got) != 2 || got[0] != sinks[0] {
		t.Errorf("Sinks = %v", got)
	}
	// mutating the returned slices must not affect the instance
	got[0] = geom.Point{X: -1, Y: -1}
	if in.Point(1) == got[0] {
		t.Error("Sinks leaked internal storage")
	}
	all := in.Points()
	all[0] = geom.Point{X: 9, Y: 9}
	if in.Source() == all[0] {
		t.Error("Points leaked internal storage")
	}
	if in.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", in.NumEdges())
	}
}

func TestRAndNearestR(t *testing.T) {
	in := MustNew(geom.Point{}, []geom.Point{{X: 3, Y: 0}, {X: 0, Y: 7}, {X: 1, Y: 1}}, geom.Manhattan)
	if in.R() != 7 {
		t.Errorf("R = %v, want 7", in.R())
	}
	if in.NearestR() != 2 {
		t.Errorf("NearestR = %v, want 2", in.NearestR())
	}
}

func TestBound(t *testing.T) {
	in := MustNew(geom.Point{}, []geom.Point{{X: 10, Y: 0}}, geom.Manhattan)
	if b := in.Bound(0.5); math.Abs(b-15) > 1e-12 {
		t.Errorf("Bound(0.5) = %v, want 15", b)
	}
	if !math.IsInf(in.Bound(math.Inf(1)), 1) {
		t.Error("Bound(+Inf) should be +Inf")
	}
}

func TestDistMatrixCached(t *testing.T) {
	in := MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}}, geom.Manhattan)
	dm1 := in.DistMatrix()
	dm2 := in.DistMatrix()
	if dm1 != dm2 {
		t.Error("DistMatrix should be cached")
	}
	if dm1.At(0, 2) != 2 {
		t.Errorf("At(0,2) = %v", dm1.At(0, 2))
	}
}

func TestNewRejectsNonFinite(t *testing.T) {
	bad := []geom.Point{
		{X: math.NaN(), Y: 0},
		{X: 0, Y: math.Inf(1)},
	}
	for _, p := range bad {
		if _, err := New(geom.Point{}, []geom.Point{p}, geom.Manhattan); err == nil {
			t.Errorf("non-finite sink %v accepted", p)
		}
		if _, err := New(p, []geom.Point{{X: 1, Y: 1}}, geom.Manhattan); err == nil {
			t.Errorf("non-finite source %v accepted", p)
		}
	}
}

func TestOracleMatchesMatrix(t *testing.T) {
	in := MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 2}, {X: 4, Y: 1}, {X: 3, Y: 3}}, geom.Euclidean)
	o := in.Oracle()
	dm := in.DistMatrix()
	if o.Len() != dm.Len() {
		t.Fatalf("oracle len %d, matrix len %d", o.Len(), dm.Len())
	}
	for i := 0; i < o.Len(); i++ {
		for j := 0; j < o.Len(); j++ {
			if o.At(i, j) != dm.At(i, j) || in.Dist(i, j) != dm.At(i, j) {
				t.Fatalf("oracle/matrix mismatch at (%d,%d): %g vs %g", i, j, o.At(i, j), dm.At(i, j))
			}
		}
	}
}

func TestIndexCachedAndReleased(t *testing.T) {
	in := MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 5}}, geom.Manhattan)
	ix1 := in.Index()
	if ix1 != in.Index() {
		t.Fatal("Index should be cached")
	}
	dm1 := in.DistMatrix()
	base := in.MemBytes()
	if base <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", base)
	}
	in.Release()
	if got := in.MemBytes(); got >= base {
		t.Fatalf("Release did not shrink MemBytes: %d -> %d", base, got)
	}
	if in.Index() == ix1 || in.DistMatrix() == dm1 {
		t.Fatal("Release should drop cached geometry")
	}
	if in.N() != 3 || in.R() != 7 {
		t.Fatalf("Release must not touch terminals/radii: n=%d R=%g", in.N(), in.R())
	}
}
