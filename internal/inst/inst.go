// Package inst defines the routing instance shared by every algorithm in
// the repository: a source terminal, a set of sink terminals, and the
// plane metric. Node ids follow the repository convention: node 0 is the
// source, nodes 1..n are the sinks.
package inst

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Instance is an immutable routing problem: a signal source driving a set
// of sinks on a metric plane. Construct with New; the zero value is not
// usable. The terminal set and metric never change; the distance matrix
// and geometric index are lazily built caches, droppable with Release.
type Instance struct {
	pts    []geom.Point // pts[0] = source
	metric geom.Metric
	dm     *geom.DistMatrix // lazily built (dense mode)
	idx    *geom.Index      // lazily built (sparse mode)
	r      float64          // farthest source-to-sink distance (the paper's R)
	nearR  float64          // nearest source-to-sink distance (the paper's r)
}

// New builds an instance from a source, its sinks, and a metric. The sink
// slice is copied. Coordinates must be finite.
func New(source geom.Point, sinks []geom.Point, m geom.Metric) (*Instance, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("inst: invalid metric %d", int(m))
	}
	if len(sinks) == 0 {
		return nil, errors.New("inst: instance needs at least one sink")
	}
	pts := make([]geom.Point, 0, len(sinks)+1)
	pts = append(pts, source)
	pts = append(pts, sinks...)
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("inst: terminal %d has non-finite coordinates %v", i, p)
		}
	}
	in := &Instance{pts: pts, metric: m, nearR: math.Inf(1)}
	// Precompute both radii: the points are immutable, R is read in
	// per-edge inner loops (exchange, Gabow pruning), and paying the
	// scan here keeps R/NearestR O(1) on every later call.
	for i := 1; i < len(pts); i++ {
		d := m.Dist(pts[0], pts[i])
		if d > in.r {
			in.r = d
		}
		if d < in.nearR {
			in.nearR = d
		}
	}
	return in, nil
}

// MustNew is New but panics on error; intended for fixtures and examples.
func MustNew(source geom.Point, sinks []geom.Point, m geom.Metric) *Instance {
	in, err := New(source, sinks, m)
	if err != nil {
		panic(err)
	}
	return in
}

// N returns the total number of terminals (source + sinks).
func (in *Instance) N() int { return len(in.pts) }

// NumSinks returns the number of sinks.
func (in *Instance) NumSinks() int { return len(in.pts) - 1 }

// Source returns the source location.
func (in *Instance) Source() geom.Point { return in.pts[0] }

// Sinks returns the sink locations (a copy).
func (in *Instance) Sinks() []geom.Point {
	return append([]geom.Point(nil), in.pts[1:]...)
}

// Point returns the location of node id (0 = source).
func (in *Instance) Point(id int) geom.Point { return in.pts[id] }

// Points returns all terminal locations, source first (a copy).
func (in *Instance) Points() []geom.Point {
	return append([]geom.Point(nil), in.pts...)
}

// Metric returns the plane metric.
func (in *Instance) Metric() geom.Metric { return in.metric }

// DistMatrix returns the pairwise terminal distance matrix, computing and
// caching it on first use. Instances are not safe for concurrent first
// use; share the instance only after the matrix is built (or call
// DistMatrix once up front).
func (in *Instance) DistMatrix() *geom.DistMatrix {
	if in.dm == nil {
		in.dm = geom.NewDistMatrix(in.pts, in.metric)
	}
	return in.dm
}

// Dist returns the metric distance between terminals i and j, computed
// on demand from the coordinates. The value is bit-identical to
// DistMatrix().At(i, j) — both evaluate the same metric on the same
// points — but touches no O(n²) state.
func (in *Instance) Dist(i, j int) float64 {
	return in.metric.Dist(in.pts[i], in.pts[j])
}

// Oracle is a zero-materialization distance oracle over an instance's
// terminals. It satisfies graph.Weights structurally, so every consumer
// of a DistMatrix can run off an Oracle instead: At is an O(1) metric
// evaluation, bit-identical to the matrix entry, with no n×n backing
// store. The zero value is unusable; obtain one from Instance.Oracle.
type Oracle struct {
	pts []geom.Point
	m   geom.Metric
}

// At returns the distance between terminals i and j.
func (o Oracle) At(i, j int) float64 { return o.m.Dist(o.pts[i], o.pts[j]) }

// Len returns the number of terminals.
func (o Oracle) Len() int { return len(o.pts) }

// Oracle returns the instance's on-demand distance oracle. Unlike
// DistMatrix this allocates nothing and is always safe for concurrent
// use.
func (in *Instance) Oracle() Oracle {
	return Oracle{pts: in.pts, m: in.metric}
}

// Index returns the instance's grid-bucketed octant neighbor index,
// building and caching it on first use. Like DistMatrix, the first
// build is not safe for concurrent use; share the instance only after
// the index exists (or call Index once up front).
func (in *Instance) Index() *geom.Index {
	if in.idx == nil {
		in.idx = geom.NewIndex(in.pts, in.metric)
	}
	return in.idx
}

// Release drops the instance's lazy geometry caches — the O(n²)
// distance matrix and the octant index — mirroring core.Scratch.Release
// for sweep teardown. The terminals and precomputed radii survive, so
// the instance stays fully usable; the caches rebuild on next demand.
func (in *Instance) Release() {
	in.dm = nil
	in.idx = nil
}

// MemBytes estimates the heap bytes retained by the instance: the
// terminal slice plus whichever lazy geometry caches currently exist.
// Byte-accounted caches (internal/serve) use this to decide eviction.
func (in *Instance) MemBytes() int64 {
	b := int64(cap(in.pts)) * 16
	if in.dm != nil {
		b += in.dm.MemBytes()
	}
	if in.idx != nil {
		b += in.idx.MemBytes()
	}
	return b
}

// R returns the direct distance from the source to the farthest sink —
// the paper's R, the radius of the shortest path tree. Precomputed at
// construction; O(1).
func (in *Instance) R() float64 { return in.r }

// NearestR returns the direct distance from the source to the nearest
// sink — the paper's lowercase r in Table 1. Precomputed at
// construction; O(1).
func (in *Instance) NearestR() float64 { return in.nearR }

// Bound returns the path-length upper bound (1+eps)*R. eps = +Inf yields
// +Inf (the unconstrained MST case in the paper's tables).
func (in *Instance) Bound(eps float64) float64 {
	if math.IsInf(eps, 1) {
		return math.Inf(1)
	}
	return (1 + eps) * in.R()
}

// NumEdges returns the number of edges of the implied complete graph.
func (in *Instance) NumEdges() int {
	n := in.N()
	return n * (n - 1) / 2
}
