package delay

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// SizedTree is a routing tree with a wire width assigned to every edge —
// the paper's §8 "wire sizing" future-work item. A wire of width w has
// resistance RUnit·l/w and capacitance CUnit·l·w: widening a wire near
// the driver cuts the resistance seen by the whole subtree at the price
// of more capacitive load.
type SizedTree struct {
	Tree   *graph.Tree
	Model  Model
	Widths []float64 // parallel to Tree.Edges; 1.0 = minimum width
}

// NewSizedTree wraps a tree with uniform minimum-width wires.
func NewSizedTree(t *graph.Tree, m Model) (*SizedTree, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	w := make([]float64, len(t.Edges))
	for i := range w {
		w[i] = 1
	}
	return &SizedTree{Tree: t, Model: m, Widths: w}, nil
}

// Delays returns the source-to-node Elmore delays under the width
// assignment (driver term included).
func (st *SizedTree) Delays() []float64 {
	t := st.Tree
	m := st.Model
	// adjacency carrying the edge index for width lookup
	type adj struct {
		to, edge int
		l        float64
	}
	neighbors := make([][]adj, t.N)
	for i, e := range t.Edges {
		neighbors[e.U] = append(neighbors[e.U], adj{to: e.V, edge: i, l: e.W})
		neighbors[e.V] = append(neighbors[e.V], adj{to: e.U, edge: i, l: e.W})
	}
	fa := make([]int, t.N)
	faEdge := make([]int, t.N)
	faLen := make([]float64, t.N)
	order := make([]int, 0, t.N)
	seen := make([]bool, t.N)
	seen[graph.Source] = true
	fa[graph.Source] = -1
	stack := []int{graph.Source}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, a := range neighbors[u] {
			if !seen[a.to] {
				seen[a.to] = true
				fa[a.to] = u
				faEdge[a.to] = a.edge
				faLen[a.to] = a.l
				stack = append(stack, a.to)
			}
		}
	}
	// post-order: downstream capacitance with width-scaled wire caps
	caps := make([]float64, t.N)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		caps[v] += m.LoadAt(v)
		if p := fa[v]; p >= 0 {
			caps[p] += caps[v] + m.CUnit*faLen[v]*st.Widths[faEdge[v]]
		}
	}
	// pre-order: delays with width-scaled wire resistance
	d := make([]float64, t.N)
	d[graph.Source] = m.RDriver * (m.CDriver + caps[graph.Source])
	for _, v := range order[1:] {
		l := faLen[v]
		w := st.Widths[faEdge[v]]
		r := m.RUnit * l / w
		c := m.CUnit * l * w
		d[v] = d[fa[v]] + r*(c/2+caps[v])
	}
	return d
}

// WorstDelay returns the maximum source-sink delay under the sizing.
func (st *SizedTree) WorstDelay() float64 {
	var r float64
	for v, dv := range st.Delays() {
		if v != graph.Source && dv > r {
			r = dv
		}
	}
	return r
}

// WireArea returns the total metal area (Σ length·width), the cost a
// sizer trades against delay.
func (st *SizedTree) WireArea() float64 {
	var a float64
	for i, e := range st.Tree.Edges {
		a += e.W * st.Widths[i]
	}
	return a
}

// SizeWires greedily widens wires to minimize the worst source-sink
// Elmore delay: at each step it tries bumping every edge to its next
// allowed width and keeps the change with the largest improvement,
// stopping after maxChanges bumps or when nothing helps. allowed must be
// an ascending list of widths starting at 1 (minimum width).
func SizeWires(t *graph.Tree, m Model, allowed []float64, maxChanges int) (*SizedTree, error) {
	//lint:ignore floatcmp API contract check against an assigned (never computed) width value
	if len(allowed) == 0 || allowed[0] != 1 {
		return nil, fmt.Errorf("delay: allowed widths must start at 1, got %v", allowed)
	}
	if !sort.Float64sAreSorted(allowed) {
		return nil, fmt.Errorf("delay: allowed widths must ascend, got %v", allowed)
	}
	st, err := NewSizedTree(t, m)
	if err != nil {
		return nil, err
	}
	next := func(w float64) (float64, bool) {
		for _, a := range allowed {
			if a > w {
				return a, true
			}
		}
		return w, false
	}
	best := st.WorstDelay()
	for changes := 0; changes < maxChanges; changes++ {
		bestEdge := -1
		bestWidth := 0.0
		for i := range st.Widths {
			w, ok := next(st.Widths[i])
			if !ok {
				continue
			}
			old := st.Widths[i]
			st.Widths[i] = w
			if d := st.WorstDelay(); d < best-1e-12 {
				best = d
				bestEdge = i
				bestWidth = w
			}
			st.Widths[i] = old
		}
		if bestEdge == -1 {
			break
		}
		st.Widths[bestEdge] = bestWidth
	}
	return st, nil
}
