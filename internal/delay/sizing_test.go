package delay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/mst"
)

func TestNewSizedTreeValidation(t *testing.T) {
	tr := chainTree(3, 1)
	if _, err := NewSizedTree(tr, Model{RUnit: -1}); err == nil {
		t.Error("invalid model accepted")
	}
	forest := chainTree(3, 1)
	forest.RemoveEdge(0, 1)
	if _, err := NewSizedTree(forest, DefaultModel()); err == nil {
		t.Error("forest accepted")
	}
}

func TestUniformWidthMatchesPlainElmore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	in := inst.MustNew(geom.Point{}, pts, geom.Manhattan)
	tr := mst.Kruskal(in.DistMatrix())
	m := Model{RUnit: 0.2, CUnit: 0.3, RDriver: 2, CDriver: 1}
	st, err := NewSizedTree(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	want := SourceDelays(tr, m)
	got := st.Delays()
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Errorf("node %d: sized(1.0) %v vs plain %v", v, got[v], want[v])
		}
	}
	if st.WireArea() != tr.Cost() {
		t.Errorf("uniform min-width area %v != wirelength %v", st.WireArea(), tr.Cost())
	}
}

func TestSizeWiresValidation(t *testing.T) {
	tr := chainTree(3, 1)
	m := DefaultModel()
	if _, err := SizeWires(tr, m, nil, 3); err == nil {
		t.Error("empty width set accepted")
	}
	if _, err := SizeWires(tr, m, []float64{2, 4}, 3); err == nil {
		t.Error("width set not starting at 1 accepted")
	}
	if _, err := SizeWires(tr, m, []float64{1, 4, 2}, 3); err == nil {
		t.Error("unsorted width set accepted")
	}
}

// A resistive trunk driving a heavy load: widening the trunk must help.
func TestSizeWiresImprovesTrunk(t *testing.T) {
	tr := chainTree(4, 50) // long wires
	m := Model{RUnit: 1, CUnit: 0.01, RDriver: 0.1, CDriver: 0,
		Load: []float64{0, 0, 0, 20}} // big load at the far end
	st, err := SizeWires(tr, m, []float64{1, 2, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewSizedTree(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorstDelay() >= base.WorstDelay() {
		t.Errorf("sizing did not improve: %v vs %v", st.WorstDelay(), base.WorstDelay())
	}
	// wires should have been widened, growing area
	if st.WireArea() <= base.WireArea() {
		t.Error("no wire got widened")
	}
	for _, w := range st.Widths {
		if w != 1 && w != 2 && w != 4 {
			t.Errorf("width %v outside allowed set", w)
		}
	}
}

func TestSizeWiresNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		pts := make([]geom.Point, 8)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		}
		in := inst.MustNew(geom.Point{}, pts, geom.Manhattan)
		tr := mst.Kruskal(in.DistMatrix())
		m := Model{RUnit: 0.3, CUnit: 0.1, RDriver: 1, CDriver: 1}
		st, err := SizeWires(tr, m, []float64{1, 1.5, 2}, 4)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := NewSizedTree(tr, m)
		if st.WorstDelay() > base.WorstDelay()+1e-9 {
			t.Errorf("trial %d: sizing hurt", trial)
		}
	}
}

func TestSizeWiresRespectsChangeLimit(t *testing.T) {
	tr := chainTree(6, 30)
	m := Model{RUnit: 1, CUnit: 0.01, RDriver: 0.1, Load: []float64{0, 0, 0, 0, 0, 10}}
	st, err := SizeWires(tr, m, []float64{1, 2, 4, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	bumps := 0.0
	for _, w := range st.Widths {
		if w > 1 {
			bumps++ // each edge above 1 consumed at least one change
		}
	}
	if bumps > 2 {
		t.Errorf("more widened edges (%v) than the change budget", bumps)
	}
}
