package delay

import (
	"context"
	"math/rand"
	"testing"
)

func TestImproveElmoreValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 5, 50)
	m := DefaultModel()
	start, err := BKRUSElmore(in, 0.5, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImproveElmore(context.Background(), in, start, -1, m, 2, 0); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := ImproveElmore(context.Background(), in, start, 0.5, Model{RUnit: -1}, 2, 0); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestBKH2ElmoreNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := Model{RUnit: 0.1, CUnit: 0.2, RDriver: 0.5, CDriver: 1}
	improvedAny := false
	for trial := 0; trial < 12; trial++ {
		in := randomInstance(rng, 4+rng.Intn(8), 50)
		eps := 0.2 + float64(rng.Intn(8))/10
		start, err := BKRUSElmore(in, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		better, err := BKH2Elmore(context.Background(), in, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		if better.Cost() > start.Cost()+1e-9 {
			t.Errorf("trial %d: BKH2Elmore increased cost %v -> %v", trial, start.Cost(), better.Cost())
		}
		if better.Cost() < start.Cost()-1e-9 {
			improvedAny = true
		}
		bound := (1 + eps) * StarR(in, m)
		if r := SourceRadius(better, m); !withinBound(r, bound) {
			t.Errorf("trial %d: delay bound violated: %v > %v", trial, r, bound)
		}
		if err := better.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !improvedAny {
		t.Log("no trial improved (legal, but exchanges usually find something)")
	}
}
