package delay

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// VanGinneken places buffers on the tree to minimize the worst
// source-sink Elmore delay, optimally over placements at tree nodes —
// the classical dynamic program (van Ginneken, ISCAS 1990) behind the
// paper's §8 "effects of buffering" item.
//
// The DP walks the tree bottom-up maintaining, per subtree, a Pareto
// frontier of (downstream capacitance, required arrival time) options:
// RAT(sink) = 0, wires and buffers subtract their delay, siblings merge
// by summing capacitance and keeping the worse RAT, and dominated
// options (both more capacitive and tighter) are pruned. The root
// option with the best RAT after the driver delay yields the minimum
// achievable worst delay; the chosen placement is reconstructed from
// back-pointers.
//
// maxBuffers caps the number of buffers (< 0 = unlimited). Placements
// are restricted to tree nodes (terminals), matching BufferedTree.
func VanGinneken(t *graph.Tree, m Model, buf Buffer, maxBuffers int) (*BufferedTree, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := buf.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	limit := maxBuffers
	if limit < 0 || limit > t.N-1 {
		limit = t.N - 1
	}

	// Root the tree at the source.
	adj := t.Adjacency()
	fa := make([]int, t.N)
	faLen := make([]float64, t.N)
	order := make([]int, 0, t.N)
	seen := make([]bool, t.N)
	seen[graph.Source] = true
	fa[graph.Source] = -1
	stack := []int{graph.Source}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, a := range adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				fa[a.To] = u
				faLen[a.To] = a.W
				stack = append(stack, a.To)
			}
		}
	}
	children := make([][]int, t.N)
	for _, v := range order[1:] {
		children[fa[v]] = append(children[fa[v]], v)
	}
	for _, c := range children {
		sort.Ints(c) // deterministic merge order
	}

	// option is one Pareto point of a subtree: seen-from-above cap and
	// required arrival time, with the buffer placement that achieves it.
	type option struct {
		cap     float64
		rat     float64
		buffers int
		placed  map[int]bool // buffer placement within the subtree
	}
	prune := func(opts []option) []option {
		// sort by cap ascending, rat descending; keep the RAT frontier
		// per buffer count (options with more buffers must strictly win)
		sort.Slice(opts, func(i, j int) bool {
			//lint:ignore floatcmp a comparator must stay an exact strict weak order; epsilon ties would break sort transitivity
			if opts[i].cap != opts[j].cap {
				return opts[i].cap < opts[j].cap
			}
			return opts[i].rat > opts[j].rat
		})
		var out []option
		for _, o := range opts {
			dominated := false
			for _, k := range out {
				if k.cap <= o.cap && k.rat >= o.rat && k.buffers <= o.buffers {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, o)
			}
		}
		return out
	}

	opts := make([][]option, t.N)
	// bottom-up over the reverse pre-order
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		// start from the node's own load
		cur := []option{{cap: m.LoadAt(v), rat: 0, placed: map[int]bool{}}}
		// fold in children: wire from v to child c
		for _, c := range children[v] {
			l := faLen[c]
			wireCap := m.CUnit * l
			wireR := m.RUnit * l
			var merged []option
			for _, oc := range opts[c] {
				// the wire sees the child's cap; its delay charges the child's RAT
				childCap := oc.cap + wireCap
				childRAT := oc.rat - wireR*(wireCap/2+oc.cap)
				for _, ov := range cur {
					if ov.buffers+oc.buffers > limit {
						continue
					}
					placed := make(map[int]bool, len(ov.placed)+len(oc.placed))
					for k := range ov.placed {
						placed[k] = true
					}
					for k := range oc.placed {
						placed[k] = true
					}
					rat := ov.rat
					if childRAT < rat {
						rat = childRAT
					}
					merged = append(merged, option{
						cap:     ov.cap + childCap,
						rat:     rat,
						buffers: ov.buffers + oc.buffers,
						placed:  placed,
					})
				}
			}
			cur = prune(merged)
		}
		// optionally buffer at v (not at the source: the driver sits there)
		if v != graph.Source {
			var withBuf []option
			for _, o := range cur {
				if o.buffers+1 > limit {
					continue
				}
				placed := make(map[int]bool, len(o.placed)+1)
				for k := range o.placed {
					placed[k] = true
				}
				placed[v] = true
				withBuf = append(withBuf, option{
					cap:     buf.CIn,
					rat:     o.rat - buf.Delay - buf.RDrive*o.cap,
					buffers: o.buffers + 1,
					placed:  placed,
				})
			}
			cur = prune(append(cur, withBuf...))
		}
		opts[v] = cur
	}

	// pick the root option maximizing RAT after the driver delay
	best := -1
	bestVal := 0.0
	for i, o := range opts[graph.Source] {
		val := o.rat - m.RDriver*(m.CDriver+o.cap)
		if best == -1 || val > bestVal {
			best = i
			bestVal = val
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("delay: van Ginneken produced no options")
	}
	at := make([]bool, t.N)
	for v := range opts[graph.Source][best].placed {
		at[v] = true
	}
	return NewBufferedTree(t, m, buf, at)
}
