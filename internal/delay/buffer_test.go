package delay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

func chainTree(n int, step float64) *graph.Tree {
	t := graph.NewTree(n)
	for v := 1; v < n; v++ {
		t.AddEdge(v-1, v, step)
	}
	return t
}

func TestBufferValidate(t *testing.T) {
	if (Buffer{RDrive: -1}).Validate() == nil {
		t.Error("negative RDrive accepted")
	}
	if (Buffer{RDrive: 1, CIn: 1, Delay: 1}).Validate() != nil {
		t.Error("valid buffer rejected")
	}
}

func TestNewBufferedTreeValidation(t *testing.T) {
	tr := chainTree(3, 1)
	m := DefaultModel()
	buf := Buffer{RDrive: 1, CIn: 0.5, Delay: 1}
	if _, err := NewBufferedTree(tr, m, buf, []bool{false, false}); err == nil {
		t.Error("wrong placement length accepted")
	}
	if _, err := NewBufferedTree(tr, m, buf, []bool{true, false, false}); err == nil {
		t.Error("buffer at source accepted")
	}
	forest := graph.NewTree(3)
	forest.AddEdge(0, 1, 1)
	if _, err := NewBufferedTree(forest, m, buf, make([]bool, 3)); err == nil {
		t.Error("forest accepted")
	}
}

func TestUnbufferedMatchesSourceDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	in := inst.MustNew(geom.Point{}, pts, geom.Manhattan)
	tr := mst.Kruskal(in.DistMatrix())
	m := Model{RUnit: 0.1, CUnit: 0.2, RDriver: 2, CDriver: 1}
	bt, err := NewBufferedTree(tr, m, Buffer{RDrive: 1, CIn: 0.5, Delay: 1}, make([]bool, tr.N))
	if err != nil {
		t.Fatal(err)
	}
	want := SourceDelays(tr, m)
	got := bt.Delays()
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Errorf("node %d: buffered(none) %v vs plain %v", v, got[v], want[v])
		}
	}
}

// Hand check: chain S -l- a -l- b with a buffer at a.
func TestBufferedDelayHandComputed(t *testing.T) {
	m := Model{RUnit: 1, CUnit: 1, RDriver: 2, CDriver: 0, Load: []float64{0, 0, 3}}
	buf := Buffer{RDrive: 0.5, CIn: 0.25, Delay: 7}
	tr := chainTree(3, 2) // wires of length 2
	at := []bool{false, true, false}
	bt, err := NewBufferedTree(tr, m, buf, at)
	if err != nil {
		t.Fatal(err)
	}
	// stage caps: C_b = 3. C_a = load(a)=0 + wire(a,b)=2 + C_b = 5.
	// Stage of source sees buffer CIn at a: C_S = wire(S,a)=2 + 0.25 = 2.25.
	// d(S) = rd*(cd + C_S) = 2*2.25 = 4.5
	// d(a) = d(S) + r*2*(c*2/2 + CIn) = 4.5 + 2*(1+0.25) = 7.0,
	//        then buffer: +Delay 7 + RDrive*C_a = 7 + 0.5*5 = +9.5 -> 16.5
	// d(b) = 16.5 + 2*(1 + 3) = 24.5
	d := bt.Delays()
	if math.Abs(d[0]-4.5) > 1e-9 || math.Abs(d[1]-16.5) > 1e-9 || math.Abs(d[2]-24.5) > 1e-9 {
		t.Errorf("delays = %v, want [4.5 16.5 24.5]", d)
	}
	if bt.NumBuffers() != 1 {
		t.Errorf("NumBuffers = %d", bt.NumBuffers())
	}
}

// A weak driver on a long heavily loaded chain: buffering must help.
func TestInsertBuffersImprovesLongChain(t *testing.T) {
	n := 12
	tr := chainTree(n, 10)
	loads := make([]float64, n)
	for i := 1; i < n; i++ {
		loads[i] = 2
	}
	m := Model{RUnit: 0.5, CUnit: 0.5, RDriver: 10, CDriver: 1, Load: loads}
	buf := Buffer{RDrive: 0.5, CIn: 0.2, Delay: 3}
	improvement, err := BufferImprovement(tr, m, buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if improvement < 0.3 {
		t.Errorf("buffering improved worst delay only %.1f%%, expected > 30%%", improvement*100)
	}
}

func TestInsertBuffersNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		pts := make([]geom.Point, 8)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		in := inst.MustNew(geom.Point{}, pts, geom.Manhattan)
		tr := mst.Kruskal(in.DistMatrix())
		m := Model{RUnit: 0.2, CUnit: 0.3, RDriver: 3, CDriver: 1}
		buf := Buffer{RDrive: 1, CIn: 0.3, Delay: 2}
		bt, err := InsertBuffers(tr, m, buf, 3)
		if err != nil {
			t.Fatal(err)
		}
		if bt.WorstDelay() > SourceRadius(tr, m)+1e-9 {
			t.Errorf("trial %d: buffering made the worst delay worse", trial)
		}
	}
}

func TestInsertBuffersRespectsLimit(t *testing.T) {
	tr := chainTree(10, 10)
	m := Model{RUnit: 0.5, CUnit: 0.5, RDriver: 10, CDriver: 1}
	buf := Buffer{RDrive: 0.2, CIn: 0.1, Delay: 0.5}
	bt, err := InsertBuffers(tr, m, buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumBuffers() > 2 {
		t.Errorf("placed %d buffers, limit 2", bt.NumBuffers())
	}
}
