package delay

import (
	"context"
	"fmt"

	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/inst"
)

// ImproveElmore applies negative-sum-exchange search to a delay-bounded
// tree: exchanges reduce wirelength while the Elmore worst delay stays
// within (1+eps)·R. This extends the paper's §5 post-processing to the
// §3.2 delay model — exchanges that save wire also unload the driver, so
// they frequently reduce delay too. maxDepth caps the chained exchanges
// (2 gives the BKH2-analogue); budget caps search work (0 = unlimited).
// Cancellation propagates through the underlying exchange search.
func ImproveElmore(ctx context.Context, in *inst.Instance, start *graph.Tree, eps float64, m Model, maxDepth, budget int) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("delay: negative eps %g", eps)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	//lint:ignore ctxflow StarR is a single O(n) Elmore fold; cancellation propagates through the exchange search below
	bound := (1 + eps) * StarR(in, m)
	res, err := exchange.ImproveFunc(ctx, in, start, func(t *graph.Tree) bool {
		return withinBound(SourceRadius(t, m), bound)
	}, exchange.Options{MaxDepth: maxDepth, MaxExpansions: budget})
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// BKH2Elmore is the delay-model analogue of BKH2: BKRUSElmore followed by
// depth-2 exchange search under the Elmore delay bound.
func BKH2Elmore(ctx context.Context, in *inst.Instance, eps float64, m Model) (*graph.Tree, error) {
	start, err := BKRUSElmoreBuild(ctx, in, eps, m)
	if err != nil {
		return nil, err
	}
	return ImproveElmore(ctx, in, start, eps, m, 2, 0)
}
