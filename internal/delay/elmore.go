// Package delay implements the paper's §3.2: the Elmore RC delay model
// and the BKRUS variant that bounds signal propagation delay instead of
// wirelength.
//
// A routing tree is an RC tree: every wire segment of length l has
// resistance r_s·l and capacitance c_s·l, every sink has a load
// capacitance, and the source drives the net through a driver resistance
// r_d with intrinsic capacitance c_d. The Elmore delay from node x to
// node y is
//
//	delay(x,y) = Σ_{k ∈ path(x→y), k≠x} r_s·l_k·(c_s·l_k/2 + C_k)
//
// where l_k is the length of the wire from k to its parent (the tree
// rooted at x) and C_k is the total downstream capacitance below that
// wire. When x is the source the driver adds r_d·(c_d + C_total).
package delay

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/inst"
)

// Model holds the RC parameters of the net.
type Model struct {
	RUnit   float64   // wire resistance per unit length (r_s)
	CUnit   float64   // wire capacitance per unit length (c_s)
	RDriver float64   // driver output resistance (r_d)
	CDriver float64   // driver intrinsic capacitance (c_d)
	Load    []float64 // per-node sink load capacitance; nil means all zero
}

// DefaultModel returns RC parameters representative of a late-90s CMOS
// process in normalized units: useful defaults for examples and tests.
func DefaultModel() Model {
	return Model{RUnit: 0.1, CUnit: 0.2, RDriver: 5, CDriver: 1}
}

// Validate checks physical sanity: non-negative parameters.
func (m Model) Validate() error {
	if m.RUnit < 0 || m.CUnit < 0 || m.RDriver < 0 || m.CDriver < 0 {
		return fmt.Errorf("delay: negative RC parameter in %+v", m)
	}
	for i, c := range m.Load {
		if c < 0 {
			return fmt.Errorf("delay: negative load capacitance %g at node %d", c, i)
		}
	}
	return nil
}

// LoadAt returns the load capacitance of node i (0 beyond the slice).
func (m Model) LoadAt(i int) float64 {
	if i < len(m.Load) {
		return m.Load[i]
	}
	return 0
}

// componentDelays computes Elmore delays from root across the connected
// component of root in the given edge set. It returns the delay of every
// reached node (delays[x] = NaN for unreached nodes), and the total
// capacitance of the component (wire + loads), which is what the driver
// sees when root is the source. The driver term is NOT included.
func componentDelays(n int, edges []graph.Edge, root int, m Model) (delays []float64, totalCap float64) {
	adj := make([][]graph.Adj, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], graph.Adj{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], graph.Adj{To: e.U, W: e.W})
	}
	delays = make([]float64, n)
	for i := range delays {
		delays[i] = math.NaN()
	}
	// Post-order: downstream capacitance below each node (rooted at root).
	caps := make([]float64, n)
	parent := make([]int, n)
	parentLen := make([]float64, n)
	order := make([]int, 0, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, a := range adj[u] {
			if parent[a.To] == -2 {
				parent[a.To] = u
				parentLen[a.To] = a.W
				stack = append(stack, a.To)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		k := order[i]
		caps[k] += m.LoadAt(k)
		if p := parent[k]; p >= 0 {
			caps[p] += caps[k] + m.CUnit*parentLen[k]
		}
	}
	totalCap = caps[root]
	// Pre-order: accumulate delays down the tree.
	delays[root] = 0
	for _, k := range order[1:] {
		l := parentLen[k]
		delays[k] = delays[parent[k]] + m.RUnit*l*(m.CUnit*l/2+caps[k])
	}
	return delays, totalCap
}

// SourceDelays returns the Elmore delay from the source (node 0) to every
// node of tree t, including the driver term r_d·(c_d + C_total).
// Unreachable nodes get NaN.
func SourceDelays(t *graph.Tree, m Model) []float64 {
	delays, total := componentDelays(t.N, t.Edges, graph.Source, m)
	driver := m.RDriver * (m.CDriver + total)
	for i := range delays {
		if !math.IsNaN(delays[i]) {
			delays[i] += driver
		}
	}
	return delays
}

// DelaysFromNode returns Elmore delays from an arbitrary node (tree
// re-rooted there, no driver term), the paper's delay(u,v).
func DelaysFromNode(t *graph.Tree, root int, m Model) []float64 {
	delays, _ := componentDelays(t.N, t.Edges, root, m)
	return delays
}

// SourceRadius returns the maximum source-sink Elmore delay of the tree,
// the paper's r[source].
func SourceRadius(t *graph.Tree, m Model) float64 {
	var r float64
	for v, d := range SourceDelays(t, m) {
		if v != graph.Source && d > r {
			r = d
		}
	}
	return r
}

// StarR returns the paper's R under the Elmore model: the worst
// source-sink delay of the shortest path tree, which on a metric plane is
// the star of direct source-sink wires.
func StarR(in *inst.Instance, m Model) float64 {
	dm := in.DistMatrix()
	n := in.N()
	star := graph.NewTree(n)
	for v := 1; v < n; v++ {
		star.AddEdge(graph.Source, v, dm.At(graph.Source, v))
	}
	return SourceRadius(star, m)
}

// withinBound reports v <= bound within the same relative tolerance the
// core engine uses: bounded trees legitimately sit exactly on the bound.
func withinBound(v, bound float64) bool {
	return v <= bound+1e-9*math.Max(1, math.Abs(bound))
}

// ErrInfeasible is returned when the Elmore-bounded construction cannot
// span the net within the bound. Unlike the wirelength case, adding any
// wire raises every sink's delay through the shared driver resistance, so
// completion is not guaranteed for tight bounds and strong drivers are
// required (the paper assumes a low-resistance driver so the SPT star is
// always a solution; with such a driver the construction completes).
var ErrInfeasible = errors.New("delay: no spanning tree satisfies the Elmore delay bound")

// BKRUSElmore runs the bounded Kruskal construction with the Elmore delay
// model replacing wirelength: every source-sink delay of the result is at
// most (1+eps)·R where R = StarR(in, m). Feasibility tests follow §3.2:
//
//	(3-a') the merged tree containing the source keeps r[source] ≤ bound
//	       (all delays recomputed on the tentative merged topology);
//	(3-b') a source-free merged tree must contain a witness x with
//	       r_d·(c_d + c_s·d(S,x) + C_M) + r_s·d(S,x)·(c_s·d(S,x)/2 + C_M)
//	       + r_M[x] ≤ bound, i.e. a direct source wire through x could
//	       still serve every node.
//
// Because every committed wire loads the shared driver, greedy merges
// can strand a component even when feasible trees exist. BKRUSElmore
// therefore retries with progressively tighter internal acceptance
// bounds and ultimately falls back to the direct star, whose worst delay
// equals R — so for eps ≥ 0 a bound-respecting tree is always returned.
//
// The radii recomputation makes this O(E·V²); intended for the ≤ a few
// hundred sink nets that dominate delay-driven routing.
func BKRUSElmore(in *inst.Instance, eps float64, m Model) (*graph.Tree, error) {
	return BKRUSElmoreBuild(context.Background(), in, eps, m)
}

// BKRUSElmoreBuild is BKRUSElmore with a context polled inside the
// greedy edge scan of every ladder step, so the O(E·V²) construction
// aborts with ctx.Err() within a bounded number of edge examinations.
func BKRUSElmoreBuild(ctx context.Context, in *inst.Instance, eps float64, m Model) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("delay: negative eps %g", eps)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	//lint:ignore ctxflow StarR is a single O(n) Elmore fold over the star tree before the cancellable ladder begins
	starR := StarR(in, m)
	bound := (1 + eps) * starR
	best := (*graph.Tree)(nil)
	for _, f := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		accept := starR + f*(bound-starR)
		t, ok, err := buildElmore(ctx, in, m, accept)
		if err != nil {
			return nil, err
		}
		if ok && withinBound(SourceRadius(t, m), bound) {
			if best == nil || t.Cost() < best.Cost() {
				best = t
			}
			break // the first (loosest) completing ladder step is kept
		}
	}
	if best == nil {
		best = starTree(in)
		//lint:ignore ctxflow post-ladder O(n) Elmore fold on the finished fallback tree; the cancellable work already returned
		if !withinBound(SourceRadius(best, m), bound) {
			return nil, ErrInfeasible
		}
	}
	return best, nil
}

// starTree returns the direct source-sink star.
func starTree(in *inst.Instance) *graph.Tree {
	dm := in.DistMatrix()
	n := in.N()
	t := graph.NewTree(n)
	for v := 1; v < n; v++ {
		t.AddEdge(graph.Source, v, dm.At(graph.Source, v))
	}
	return t
}

// buildElmore runs one greedy bounded-Kruskal pass with the given
// acceptance bound, reporting whether it spanned the net.
func buildElmore(ctx context.Context, in *inst.Instance, m Model, bound float64) (*graph.Tree, bool, error) {
	dm := in.DistMatrix()
	n := in.N()
	ds := graph.NewDisjointSet(n)
	compEdges := make([][]graph.Edge, n) // edges per representative
	compLoad := make([]float64, n)       // sink load cap per representative
	var totalLoad float64
	for i := 0; i < n; i++ {
		compLoad[i] = m.LoadAt(i)
		totalLoad += m.LoadAt(i)
	}
	edges := graph.CompleteEdges(dm)
	graph.SortEdges(edges)
	t := graph.NewTree(n)

	chk := cancel.New(ctx, 16)
	for _, ed := range edges {
		if len(t.Edges) == n-1 {
			break
		}
		if err := chk.Tick(); err != nil {
			return nil, false, err
		}
		ru, rv := ds.Find(ed.U), ds.Find(ed.V)
		if ru == rv {
			continue
		}
		merged := make([]graph.Edge, 0, len(compEdges[ru])+len(compEdges[rv])+1)
		merged = append(merged, compEdges[ru]...)
		merged = append(merged, compEdges[rv]...)
		merged = append(merged, ed)
		// Every terminal outside the merged component must still join the
		// final tree, so its load capacitance inevitably reaches the
		// driver. Folding that floor into the driver term strengthens the
		// paper's tests soundly: it rejects merges that could only ever
		// complete by overloading the driver later.
		pendingLoad := totalLoad - compLoad[ru] - compLoad[rv]

		srcIn := ds.Same(graph.Source, ed.U) || ds.Same(graph.Source, ed.V)
		var ok bool
		if srcIn {
			delays, total := componentDelays(n, merged, graph.Source, m)
			driver := m.RDriver * (m.CDriver + total + pendingLoad)
			ok = true
			for v := range delays {
				if v != graph.Source && !math.IsNaN(delays[v]) && !withinBound(delays[v]+driver, bound) {
					ok = false
					break
				}
			}
		} else {
			ok = elmoreWitnessExists(n, merged, ds, ed, dm, m, bound, pendingLoad)
		}
		if !ok {
			continue
		}
		// Commit: capture member lists via Union, then store edges on the
		// surviving representative.
		ds.Union(ed.U, ed.V)
		r := ds.Find(ed.U)
		load := compLoad[ru] + compLoad[rv]
		compEdges[ru], compEdges[rv] = nil, nil
		compLoad[ru], compLoad[rv] = 0, 0
		compEdges[r] = merged
		compLoad[r] = load
		t.Edges = append(t.Edges, ed)
	}
	return t, len(t.Edges) == n-1, nil
}

// elmoreWitnessExists applies test (3-b'): some node x of the tentative
// merged component could carry a direct source wire serving every node
// within the bound.
func elmoreWitnessExists(n int, merged []graph.Edge, ds *graph.DisjointSet, ed graph.Edge, dm graph.Weights, m Model, bound, pendingLoad float64) bool {
	// Total capacitance of the merged component is root-independent.
	_, compCap := componentDelays(n, merged, ed.U, m)
	candidates := make([]int, 0, ds.Size(ed.U)+ds.Size(ed.V))
	candidates = append(candidates, ds.Members(ed.U)...)
	candidates = append(candidates, ds.Members(ed.V)...)
	for _, x := range candidates {
		dSx := dm.At(graph.Source, x)
		driver := m.RDriver * (m.CDriver + m.CUnit*dSx + compCap + pendingLoad)
		wire := m.RUnit * dSx * (m.CUnit*dSx/2 + compCap)
		if !withinBound(driver+wire, bound) {
			continue
		}
		delays, _ := componentDelays(n, merged, x, m)
		var radius float64
		for v := range delays {
			if !math.IsNaN(delays[v]) && delays[v] > radius {
				radius = delays[v]
			}
		}
		if withinBound(driver+wire+radius, bound) {
			return true
		}
	}
	return false
}
