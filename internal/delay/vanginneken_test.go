package delay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

// bruteBestBuffers enumerates every placement of at most maxBuffers
// buffers over the non-source nodes and returns the minimum achievable
// worst delay.
func bruteBestBuffers(t *graph.Tree, m Model, buf Buffer, maxBuffers int) float64 {
	n := t.N
	best := math.Inf(1)
	at := make([]bool, n)
	var rec func(v, used int)
	rec = func(v, used int) {
		if v == n {
			bt, err := NewBufferedTree(t, m, buf, at)
			if err != nil {
				return
			}
			if w := bt.WorstDelay(); w < best {
				best = w
			}
			return
		}
		rec(v+1, used)
		if used < maxBuffers {
			at[v] = true
			rec(v+1, used+1)
			at[v] = false
		}
	}
	rec(1, 0)
	return best
}

func TestVanGinnekenValidation(t *testing.T) {
	tr := chainTree(3, 1)
	if _, err := VanGinneken(tr, Model{RUnit: -1}, Buffer{}, 1); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := VanGinneken(tr, DefaultModel(), Buffer{RDrive: -1}, 1); err == nil {
		t.Error("invalid buffer accepted")
	}
	forest := chainTree(3, 1)
	forest.RemoveEdge(0, 1)
	if _, err := VanGinneken(forest, DefaultModel(), Buffer{}, 1); err == nil {
		t.Error("forest accepted")
	}
}

// The DP must be exactly optimal over node placements: compare against
// brute force on small random trees.
func TestVanGinnekenMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		pts := make([]geom.Point, 7)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		}
		in := inst.MustNew(geom.Point{}, pts, geom.Manhattan)
		tr := mst.Kruskal(in.DistMatrix())
		loads := make([]float64, tr.N)
		for i := 1; i < tr.N; i++ {
			loads[i] = rng.Float64() * 3
		}
		m := Model{RUnit: 0.3, CUnit: 0.2, RDriver: 2 + rng.Float64()*4, CDriver: 1, Load: loads}
		buf := Buffer{RDrive: 0.3, CIn: 0.3, Delay: 1 + rng.Float64()*4}
		maxBuf := 1 + rng.Intn(3)

		vg, err := VanGinneken(tr, m, buf, maxBuf)
		if err != nil {
			t.Fatal(err)
		}
		if vg.NumBuffers() > maxBuf {
			t.Errorf("trial %d: %d buffers over limit %d", trial, vg.NumBuffers(), maxBuf)
		}
		want := bruteBestBuffers(tr, m, buf, maxBuf)
		if got := vg.WorstDelay(); math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("trial %d: VG %v vs brute optimum %v", trial, got, want)
		}
	}
}

// The DP can never lose to the greedy.
func TestVanGinnekenBeatsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		pts := make([]geom.Point, 10)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
		}
		in := inst.MustNew(geom.Point{}, pts, geom.Manhattan)
		tr := mst.Kruskal(in.DistMatrix())
		m := Model{RUnit: 0.4, CUnit: 0.3, RDriver: 6, CDriver: 1}
		buf := Buffer{RDrive: 0.4, CIn: 0.4, Delay: 3}
		vg, err := VanGinneken(tr, m, buf, 3)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := InsertBuffers(tr, m, buf, 3)
		if err != nil {
			t.Fatal(err)
		}
		if vg.WorstDelay() > greedy.WorstDelay()+1e-9 {
			t.Errorf("trial %d: VG %v worse than greedy %v", trial, vg.WorstDelay(), greedy.WorstDelay())
		}
	}
}

func TestVanGinnekenUnlimitedBuffers(t *testing.T) {
	tr := chainTree(6, 40)
	loads := make([]float64, 6)
	loads[5] = 10
	m := Model{RUnit: 0.5, CUnit: 0.5, RDriver: 5, CDriver: 1, Load: loads}
	buf := Buffer{RDrive: 0.2, CIn: 0.1, Delay: 1}
	vg, err := VanGinneken(tr, m, buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	unbuffered := SourceRadius(tr, m)
	if vg.WorstDelay() >= unbuffered {
		t.Errorf("unlimited VG (%v) should beat unbuffered (%v) on a long loaded chain",
			vg.WorstDelay(), unbuffered)
	}
}

func TestVanGinnekenZeroBudgetIsUnbuffered(t *testing.T) {
	tr := chainTree(5, 10)
	m := DefaultModel()
	buf := Buffer{RDrive: 0.5, CIn: 0.5, Delay: 5}
	vg, err := VanGinneken(tr, m, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vg.NumBuffers() != 0 {
		t.Errorf("zero budget placed %d buffers", vg.NumBuffers())
	}
	if math.Abs(vg.WorstDelay()-SourceRadius(tr, m)) > 1e-9 {
		t.Error("zero-budget delay differs from plain Elmore")
	}
}
