package delay

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Buffer models a repeater cell for the paper's §8 future-work item
// "considering the effects of buffering": a buffer inserted at a tree
// node decouples its subtree from the upstream wire — the upstream stage
// sees only the buffer's input capacitance, and the buffer re-drives the
// subtree through its own output resistance.
type Buffer struct {
	RDrive float64 // output resistance of the buffer
	CIn    float64 // input capacitance presented upstream
	Delay  float64 // intrinsic switching delay
}

// Validate checks physical sanity.
func (b Buffer) Validate() error {
	if b.RDrive < 0 || b.CIn < 0 || b.Delay < 0 {
		return fmt.Errorf("delay: negative buffer parameter %+v", b)
	}
	return nil
}

// BufferedTree is a routing tree with repeaters at a subset of its
// nodes. The source is always a (driver) stage root.
type BufferedTree struct {
	Tree  *graph.Tree
	Model Model
	Buf   Buffer
	At    []bool // At[v]: a buffer sits at node v (never the source)
	fa    []int
	order []int // pre-order from the source
	faLen []float64
}

// NewBufferedTree prepares buffered-delay computation for tree t with
// buffers at the given nodes. The tree must span nodes 0..N-1 with the
// source at node 0.
func NewBufferedTree(t *graph.Tree, m Model, buf Buffer, at []bool) (*BufferedTree, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := buf.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(at) != t.N {
		return nil, fmt.Errorf("delay: buffer placement length %d over %d nodes", len(at), t.N)
	}
	if at[graph.Source] {
		return nil, fmt.Errorf("delay: the source already drives the net; no buffer allowed there")
	}
	bt := &BufferedTree{Tree: t, Model: m, Buf: buf, At: append([]bool(nil), at...)}
	bt.index()
	return bt, nil
}

func (bt *BufferedTree) index() {
	t := bt.Tree
	adj := t.Adjacency()
	bt.fa = make([]int, t.N)
	bt.faLen = make([]float64, t.N)
	bt.order = make([]int, 0, t.N)
	seen := make([]bool, t.N)
	seen[graph.Source] = true
	bt.fa[graph.Source] = -1
	stack := []int{graph.Source}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		bt.order = append(bt.order, u)
		for _, a := range adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				bt.fa[a.To] = u
				bt.faLen[a.To] = a.W
				stack = append(stack, a.To)
			}
		}
	}
}

// stageCaps returns, for every node, the capacitance of its downstream
// stage subtree: the wire and load caps below it, with buffered subtrees
// replaced by the buffer input capacitance.
func (bt *BufferedTree) stageCaps() []float64 {
	caps := make([]float64, bt.Tree.N)
	m := bt.Model
	for i := len(bt.order) - 1; i >= 0; i-- {
		v := bt.order[i]
		caps[v] += m.LoadAt(v)
		if p := bt.fa[v]; p >= 0 {
			contribution := caps[v]
			if bt.At[v] {
				contribution = bt.Buf.CIn // subtree decoupled
			}
			caps[p] += contribution + m.CUnit*bt.faLen[v]
		}
	}
	return caps
}

// Delays returns the source-to-node delay of every node, staged through
// the buffers: each stage root (the source driver, or a buffer) drives
// its stage's RC tree; crossing a buffer adds its intrinsic delay plus
// its drive delay into the downstream stage capacitance.
func (bt *BufferedTree) Delays() []float64 {
	m := bt.Model
	caps := bt.stageCaps()
	d := make([]float64, bt.Tree.N)
	d[graph.Source] = m.RDriver * (m.CDriver + caps[graph.Source])
	for _, v := range bt.order[1:] {
		p := bt.fa[v]
		l := bt.faLen[v]
		// wire delay within the parent's stage, charged against the
		// downstream cap as seen by that stage
		downstream := caps[v]
		if bt.At[v] {
			downstream = bt.Buf.CIn
		}
		d[v] = d[p] + m.RUnit*l*(m.CUnit*l/2+downstream)
		if bt.At[v] {
			// the signal re-launches here
			d[v] += bt.Buf.Delay + bt.Buf.RDrive*caps[v]
		}
	}
	return d
}

// WorstDelay returns the maximum source-sink delay.
func (bt *BufferedTree) WorstDelay() float64 {
	var r float64
	for v, dv := range bt.Delays() {
		if v != graph.Source && dv > r {
			r = dv
		}
	}
	return r
}

// NumBuffers returns how many buffers are placed.
func (bt *BufferedTree) NumBuffers() int {
	n := 0
	for _, b := range bt.At {
		if b {
			n++
		}
	}
	return n
}

// InsertBuffers greedily places up to maxBuffers repeaters on the tree
// to minimize the worst source-sink Elmore delay: at each step it tries
// every unbuffered non-source node and keeps the placement with the
// largest improvement, stopping when no placement helps. Greedy
// placement is not optimal (van Ginneken's dynamic program is), but it
// demonstrates the §8 buffering effect and is a sound upper bound.
func InsertBuffers(t *graph.Tree, m Model, buf Buffer, maxBuffers int) (*BufferedTree, error) {
	at := make([]bool, t.N)
	bt, err := NewBufferedTree(t, m, buf, at)
	if err != nil {
		return nil, err
	}
	best := bt.WorstDelay()
	for placed := 0; placed < maxBuffers; placed++ {
		bestNode := -1
		// deterministic candidate order
		candidates := make([]int, 0, t.N-1)
		for v := 1; v < t.N; v++ {
			if !bt.At[v] {
				candidates = append(candidates, v)
			}
		}
		sort.Ints(candidates)
		for _, v := range candidates {
			bt.At[v] = true
			if w := bt.WorstDelay(); w < best-1e-12 {
				best = w
				bestNode = v
			}
			bt.At[v] = false
		}
		if bestNode == -1 {
			break
		}
		bt.At[bestNode] = true
	}
	return bt, nil
}

// BufferImprovement returns the relative worst-delay reduction of a
// buffered tree over the unbuffered one (0 = no gain).
func BufferImprovement(t *graph.Tree, m Model, buf Buffer, maxBuffers int) (float64, error) {
	unbuffered := SourceRadius(t, m)
	bt, err := InsertBuffers(t, m, buf, maxBuffers)
	if err != nil {
		return 0, err
	}
	if unbuffered == 0 {
		return 0, nil
	}
	return math.Max(0, 1-bt.WorstDelay()/unbuffered), nil
}
