package delay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

func randomInstance(rng *rand.Rand, sinks int, extent float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, geom.Manhattan)
}

func TestModelValidate(t *testing.T) {
	if DefaultModel().Validate() != nil {
		t.Error("default model invalid")
	}
	if (Model{RUnit: -1}).Validate() == nil {
		t.Error("negative RUnit accepted")
	}
	if (Model{Load: []float64{0, -1}}).Validate() == nil {
		t.Error("negative load accepted")
	}
}

func TestLoadAt(t *testing.T) {
	m := Model{Load: []float64{0, 2.5}}
	if m.LoadAt(1) != 2.5 || m.LoadAt(0) != 0 || m.LoadAt(9) != 0 {
		t.Error("LoadAt wrong")
	}
}

// Hand-computed two-segment line: S --l1-- a --l2-- b.
// C_b = CL(b); C_a = CL(a) + cs*l2 + C_b; C_total = C_a + cs*l1.
// delay(S,a) = rd*(cd + C_total) + rs*l1*(cs*l1/2 + C_a)
// delay(S,b) = delay(S,a) + rs*l2*(cs*l2/2 + C_b)
func TestSourceDelaysHandComputed(t *testing.T) {
	m := Model{RUnit: 2, CUnit: 3, RDriver: 10, CDriver: 1, Load: []float64{0, 0.5, 1.5}}
	tr := graph.NewTree(3)
	tr.AddEdge(0, 1, 4) // l1 = 4
	tr.AddEdge(1, 2, 2) // l2 = 2

	cb := 1.5
	ca := 0.5 + 3*2 + cb
	total := ca + 3*4
	wantDriver := 10 * (1 + total)
	wantA := wantDriver + 2*4*(3*4/2+ca)
	wantB := wantA + 2*2*(3*2/2.0+cb)

	d := SourceDelays(tr, m)
	if math.Abs(d[0]-wantDriver) > 1e-9 {
		t.Errorf("delay at source = %v, want driver term %v", d[0], wantDriver)
	}
	if math.Abs(d[1]-wantA) > 1e-9 {
		t.Errorf("delay(S,a) = %v, want %v", d[1], wantA)
	}
	if math.Abs(d[2]-wantB) > 1e-9 {
		t.Errorf("delay(S,b) = %v, want %v", d[2], wantB)
	}
	if r := SourceRadius(tr, m); math.Abs(r-wantB) > 1e-9 {
		t.Errorf("SourceRadius = %v, want %v", r, wantB)
	}
}

func TestDelaysFromNodeReroots(t *testing.T) {
	m := Model{RUnit: 1, CUnit: 1, Load: []float64{0, 1, 1}}
	tr := graph.NewTree(3)
	tr.AddEdge(0, 1, 1)
	tr.AddEdge(1, 2, 1)
	// From node 2: path 2->1->0. Rooted at 2: C_1 = CL(1) + c*1(edge 1-0)
	// + C_0; C_0 = CL(0) = 0. So C_1 = 1 + 1 = 2; C_0 = 0.
	// delay(2,1) = r*1*(c*1/2 + C_1) = 1*(0.5+2) = 2.5
	// delay(2,0) = 2.5 + 1*(0.5+0) = 3.0
	d := DelaysFromNode(tr, 2, m)
	if math.Abs(d[1]-2.5) > 1e-9 || math.Abs(d[0]-3.0) > 1e-9 {
		t.Errorf("delays from 2 = %v, want [3 2.5 0]", d)
	}
	if d[2] != 0 {
		t.Errorf("self-delay = %v", d[2])
	}
}

func TestComponentDelaysUnreachable(t *testing.T) {
	m := DefaultModel()
	forest := graph.NewTree(4)
	forest.AddEdge(0, 1, 1)
	d := SourceDelays(forest, m)
	if !math.IsNaN(d[2]) || !math.IsNaN(d[3]) {
		t.Error("unreachable nodes should be NaN")
	}
	if math.IsNaN(d[1]) {
		t.Error("reachable node should have a delay")
	}
}

func TestStarRMatchesManualStar(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 3, Y: 0}, {X: 0, Y: 5}}, geom.Manhattan)
	m := Model{RUnit: 1, CUnit: 1, RDriver: 2, CDriver: 1, Load: []float64{0, 1, 1}}
	// star: wires 3 and 5. total cap = 3+5+1+1 = 10. driver = 2*(1+10)=22.
	// delay sink1 = 22 + 1*3*(3/2+1) = 22+7.5 = 29.5
	// delay sink2 = 22 + 1*5*(5/2+1) = 22+17.5 = 39.5
	if r := StarR(in, m); math.Abs(r-39.5) > 1e-9 {
		t.Errorf("StarR = %v, want 39.5", r)
	}
}

// Property: Elmore delay grows monotonically with load capacitance.
func TestDelayMonotoneInLoadProperty(t *testing.T) {
	f := func(seed int64, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 6, 50)
		tr := mst.Kruskal(in.DistMatrix())
		base := Model{RUnit: 0.5, CUnit: 0.3, RDriver: 3, CDriver: 1}
		extra := float64(extraRaw)/255 + 0.001
		heavier := base
		heavier.Load = make([]float64, in.N())
		for i := 1; i < in.N(); i++ {
			heavier.Load[i] = extra
		}
		d0 := SourceDelays(tr, base)
		d1 := SourceDelays(tr, heavier)
		for v := 1; v < in.N(); v++ {
			if d1[v] < d0[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: with zero wire resistance, every sink delay equals the driver
// term exactly.
func TestZeroResistanceDelayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 5, 50)
		tr := mst.Kruskal(in.DistMatrix())
		m := Model{RUnit: 0, CUnit: 0.3, RDriver: 3, CDriver: 1}
		d := SourceDelays(tr, m)
		driver := d[0]
		for v := 1; v < in.N(); v++ {
			if math.Abs(d[v]-driver) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBKRUSElmoreNegativeEps(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}}, geom.Manhattan)
	if _, err := BKRUSElmore(in, -1, DefaultModel()); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := BKRUSElmore(in, 0, Model{RUnit: -1}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestBKRUSElmoreBoundHolds(t *testing.T) {
	// With a moderately strong driver most runs complete; every tree that
	// is returned must satisfy the delay bound. Occasional infeasibility
	// at tight eps is legitimate (§3.2 requires a low-resistance driver
	// for a guaranteed solution) but must stay rare.
	rng := rand.New(rand.NewSource(41))
	m := Model{RUnit: 0.1, CUnit: 0.2, RDriver: 1, CDriver: 1}
	okCount := 0
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), 50)
		eps := float64(rng.Intn(10)) / 10
		tr, err := BKRUSElmore(in, eps, m)
		if err != nil {
			continue
		}
		okCount++
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bound := (1 + eps) * StarR(in, m)
		if r := SourceRadius(tr, m); r > bound+1e-9 {
			t.Errorf("trial %d: Elmore radius %v > bound %v", trial, r, bound)
		}
	}
	if okCount < 12 {
		t.Errorf("only %d/15 runs completed; infeasibility should be rare", okCount)
	}
}

func TestBKRUSElmoreStrongDriverAlwaysCompletes(t *testing.T) {
	// The paper's assumption: with a very low driver resistance the SPT
	// star is always a solution, so the construction must complete.
	rng := rand.New(rand.NewSource(59))
	m := Model{RUnit: 0.1, CUnit: 0.2, RDriver: 0.01, CDriver: 0.1}
	for trial := 0; trial < 15; trial++ {
		in := randomInstance(rng, 4+rng.Intn(10), 50)
		eps := float64(rng.Intn(10)) / 10
		tr, err := BKRUSElmore(in, eps, m)
		if err != nil {
			t.Fatalf("trial %d (eps=%v): %v", trial, eps, err)
		}
		bound := (1 + eps) * StarR(in, m)
		if r := SourceRadius(tr, m); r > bound+1e-9 {
			t.Errorf("trial %d: Elmore radius %v > bound %v", trial, r, bound)
		}
	}
}

func TestBKRUSElmoreCheaperThanStarWhenLoose(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := Model{RUnit: 0.1, CUnit: 0.2, RDriver: 0.5, CDriver: 1}
	better := 0
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 12, 50)
		tr, err := BKRUSElmore(in, 2.0, m)
		if err != nil {
			t.Fatal(err)
		}
		dm := in.DistMatrix()
		var starCost float64
		for v := 1; v < in.N(); v++ {
			starCost += dm.At(0, v)
		}
		if tr.Cost() < starCost-1e-9 {
			better++
		}
	}
	if better == 0 {
		t.Error("loose Elmore BKRUS never beat the star; it should share wires")
	}
}

func TestBKRUSElmoreApproachesMSTWithStrongDriver(t *testing.T) {
	// With a very strong driver and loose bound the delay constraint is
	// inert and BKRUS-Elmore should land on a near-MST cost.
	rng := rand.New(rand.NewSource(47))
	in := randomInstance(rng, 10, 50)
	m := Model{RUnit: 0.01, CUnit: 0.01, RDriver: 0.001, CDriver: 0}
	tr, err := BKRUSElmore(in, 5, m)
	if err != nil {
		t.Fatal(err)
	}
	mstCost := mst.Kruskal(in.DistMatrix()).Cost()
	if tr.Cost() > mstCost*1.3 {
		t.Errorf("cost %v far above MST %v despite inert bound", tr.Cost(), mstCost)
	}
}

func TestBKRUSElmoreSingleSink(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 5, Y: 5}}, geom.Manhattan)
	tr, err := BKRUSElmore(in, 0, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != 1 {
		t.Errorf("edges = %v", tr.Edges)
	}
}

func BenchmarkBKRUSElmore30(b *testing.B) {
	in := randomInstance(rand.New(rand.NewSource(51)), 30, 100)
	in.DistMatrix()
	m := DefaultModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUSElmore(in, 0.5, m); err != nil {
			b.Fatal(err)
		}
	}
}
