package router

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/obs"
)

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		workers, nets, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := clampWorkers(c.workers, c.nets); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.workers, c.nets, got, c.want)
		}
	}
}

// A failing net must abort the whole run with a wrapped sentinel, and
// the failure must be visible in the scope's counters.
func TestRouteParallelAbortsOnError(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(11)), 12)
	bad := Policy{Name: "bad", Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
		return nil, errSentinel
	}}
	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	_, err := RouteParallel(context.Background(), nl, bad, Options{Workers: 3, Obs: sc})
	if err == nil {
		t.Fatal("failing policy did not abort the run")
	}
	if !errors.Is(err, errSentinel) {
		t.Errorf("error does not wrap the build failure: %v", err)
	}
	if got := sc.Counter(CtrNetsFailed).Load(); got != int64(len(nl.Nets)) {
		t.Errorf("nets_failed = %d, want %d", got, len(nl.Nets))
	}
	if got := sc.Counter(CtrNetsRouted).Load(); got != 0 {
		t.Errorf("nets_routed = %d, want 0", got)
	}
}

// Parallel routing with an explicit scope must match serial Route
// exactly and record a consistent metric set.
func TestRouteParallelDeterminismAndMetrics(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(7)), 20)
	serial, err := Route(context.Background(), nl, BKRUSPolicy(0.25))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	par, err := RouteParallel(context.Background(), nl, BKRUSPolicy(0.25), Options{Workers: 4, Obs: sc})
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCost != serial.TotalCost || par.WorstPathRatio != serial.WorstPathRatio {
		t.Errorf("parallel result differs: cost %v vs %v, worst %v vs %v",
			par.TotalCost, serial.TotalCost, par.WorstPathRatio, serial.WorstPathRatio)
	}
	for i := range par.Nets {
		if par.Nets[i].Cost != serial.Nets[i].Cost {
			t.Errorf("net %d cost %v vs %v", i, par.Nets[i].Cost, serial.Nets[i].Cost)
		}
	}

	hist := sc.Histogram(HistNetBuildSeconds, netBuildBuckets...)
	if count := hist.Count(); count != int64(len(nl.Nets)) {
		t.Errorf("latency histogram has %d observations, want %d", count, len(nl.Nets))
	}
	if got := sc.Counter(CtrNetsRouted).Load(); got != int64(len(nl.Nets)) {
		t.Errorf("nets_routed = %d, want %d", got, len(nl.Nets))
	}
	if got := sc.Counter(CtrNetsFailed).Load(); got != 0 {
		t.Errorf("nets_failed = %d, want 0", got)
	}
	if got := sc.Gauge(GaugeWorkers).Load(); got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
	util := sc.Gauge(GaugeWorkerUtilization).Load()
	if util <= 0 || util > 1.0+1e-9 {
		t.Errorf("worker utilization %v outside (0, 1]", util)
	}
	if n := sc.Timer(TimerRouteWall).Count(); n != 1 {
		t.Errorf("route_wall observations = %d, want 1", n)
	}
}

// RouteParallel without a default registry must not record anywhere and
// still work; with one installed it must feed the router scope.
func TestRouteParallelDefaultRegistry(t *testing.T) {
	nl := smallNetlist()
	if _, err := RouteParallel(context.Background(), nl, MSTPolicy(), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	if _, err := RouteParallel(context.Background(), nl, MSTPolicy(), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(ScopeName).Counter(CtrNetsRouted).Load(); got != int64(len(nl.Nets)) {
		t.Errorf("default scope nets_routed = %d, want %d", got, len(nl.Nets))
	}
}

// Cancelling the context mid-run must stop the feed, return ctx.Err(),
// and leave no worker goroutines behind.
func TestRouteParallelCancellation(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(5)), 50)
	ctx, cancel := context.WithCancel(context.Background())

	built := 0
	slow := Policy{Name: "slow", Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
		built++
		if built == 3 {
			cancel() // cancel from inside the run, mid-feed
		}
		return mst.Kruskal(in.DistMatrix()), nil
	}}

	before := runtime.NumGoroutine()
	// Workers: 1 keeps the build counter race-free and guarantees nets
	// remain queued at cancellation time.
	_, err := RouteParallel(ctx, nl, slow, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if built >= len(nl.Nets) {
		t.Errorf("all %d nets built despite cancellation", built)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}

	// An already-cancelled context must fail fast without building.
	calls := 0
	counting := Policy{Name: "count", Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
		calls++
		return mst.Kruskal(in.DistMatrix()), nil
	}}
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := RouteParallel(dead, nl, counting, Options{Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("pre-cancelled run built %d nets, want 0", calls)
	}
}
