package router

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
)

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		workers, nets, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := clampWorkers(c.workers, c.nets); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.workers, c.nets, got, c.want)
		}
	}
}

// A failing net must abort the whole run with a wrapped sentinel, and
// the failure must be visible in the scope's counters.
func TestRouteParallelObservedAbortsOnError(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(11)), 12)
	bad := Policy{Name: "bad", Build: func(in *inst.Instance) (*graph.Tree, error) {
		return nil, errSentinel
	}}
	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	_, err := RouteParallelObserved(nl, bad, 3, sc)
	if err == nil {
		t.Fatal("failing policy did not abort the run")
	}
	if !errors.Is(err, errSentinel) {
		t.Errorf("error does not wrap the build failure: %v", err)
	}
	if got := sc.Counter(CtrNetsFailed).Load(); got != int64(len(nl.Nets)) {
		t.Errorf("nets_failed = %d, want %d", got, len(nl.Nets))
	}
	if got := sc.Counter(CtrNetsRouted).Load(); got != 0 {
		t.Errorf("nets_routed = %d, want 0", got)
	}
}

// Observed parallel routing must match serial Route exactly and record
// a consistent metric set.
func TestRouteParallelObservedDeterminismAndMetrics(t *testing.T) {
	nl := randomNetlist(rand.New(rand.NewSource(7)), 20)
	serial, err := Route(nl, BKRUSPolicy(0.25))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	par, err := RouteParallelObserved(nl, BKRUSPolicy(0.25), 4, sc)
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalCost != serial.TotalCost || par.WorstPathRatio != serial.WorstPathRatio {
		t.Errorf("parallel result differs: cost %v vs %v, worst %v vs %v",
			par.TotalCost, serial.TotalCost, par.WorstPathRatio, serial.WorstPathRatio)
	}
	for i := range par.Nets {
		if par.Nets[i].Cost != serial.Nets[i].Cost {
			t.Errorf("net %d cost %v vs %v", i, par.Nets[i].Cost, serial.Nets[i].Cost)
		}
	}

	hist := sc.Histogram(HistNetBuildSeconds, netBuildBuckets...)
	if count := hist.Count(); count != int64(len(nl.Nets)) {
		t.Errorf("latency histogram has %d observations, want %d", count, len(nl.Nets))
	}
	if got := sc.Counter(CtrNetsRouted).Load(); got != int64(len(nl.Nets)) {
		t.Errorf("nets_routed = %d, want %d", got, len(nl.Nets))
	}
	if got := sc.Counter(CtrNetsFailed).Load(); got != 0 {
		t.Errorf("nets_failed = %d, want 0", got)
	}
	if got := sc.Gauge(GaugeWorkers).Load(); got != 4 {
		t.Errorf("workers gauge = %v, want 4", got)
	}
	util := sc.Gauge(GaugeWorkerUtilization).Load()
	if util <= 0 || util > 1.0+1e-9 {
		t.Errorf("worker utilization %v outside (0, 1]", util)
	}
	if n := sc.Timer(TimerRouteWall).Count(); n != 1 {
		t.Errorf("route_wall observations = %d, want 1", n)
	}
}

// RouteParallel without a default registry must not record anywhere and
// still work; with one installed it must feed the router scope.
func TestRouteParallelDefaultRegistry(t *testing.T) {
	nl := smallNetlist()
	if _, err := RouteParallel(nl, MSTPolicy(), 2); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	if _, err := RouteParallel(nl, MSTPolicy(), 2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(ScopeName).Counter(CtrNetsRouted).Load(); got != int64(len(nl.Nets)) {
		t.Errorf("default scope nets_routed = %d, want %d", got, len(nl.Nets))
	}
}
