package router

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// ScopeName is the obs scope the router layer records into; see
// OBSERVABILITY.md for the metric catalogue.
const ScopeName = "router"

// Router metric names (scope "router").
const (
	// TimerRouteWall is the wall-clock duration of each RouteParallel
	// call (one observation per routed design).
	TimerRouteWall = "route_wall"
	// HistNetBuildSeconds is the per-net tree construction latency
	// histogram.
	HistNetBuildSeconds = "net_build_seconds"
	// CtrNetsRouted counts successfully routed nets.
	CtrNetsRouted = "nets_routed"
	// CtrNetsFailed counts nets whose policy build returned an error.
	CtrNetsFailed = "nets_failed"
	// GaugeWorkers is the resolved worker count of the last parallel run.
	GaugeWorkers = "workers"
	// GaugeWorkerUtilization is busy-time / (wall-time x workers) of the
	// last parallel run: 1.0 means every worker built trees the whole
	// time, low values mean the run was dominated by a few slow nets.
	GaugeWorkerUtilization = "worker_utilization"
)

// netBuildBuckets are the latency histogram upper bounds in seconds,
// log-spaced to cover single-net constructions from microseconds (tiny
// nets) to tens of seconds (the r4/r5 stand-ins).
var netBuildBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10,
}

// clampWorkers resolves a requested worker count: 0 or negative means
// GOMAXPROCS, and more workers than nets would only idle.
func clampWorkers(workers, nets int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nets {
		workers = nets
	}
	return workers
}

// Options tunes a RouteParallel run.
type Options struct {
	// Workers is the worker-pool size; 0 or negative means GOMAXPROCS.
	Workers int
	// Obs receives the run's router metrics (per-net build latencies,
	// success/failure counts, wall time, worker utilization). nil keeps
	// the historical opportunistic behaviour: record into the process
	// default registry's router scope when one is installed.
	Obs *obs.Scope
}

// RouteParallel routes the netlist with the policy across a bounded
// worker pool. Nets are independent, so results are identical to Route;
// only wall-clock changes. The first error aborts the run. Cancelling
// ctx stops the job feed and skips queued nets — in-flight builds
// finish, every worker exits (no goroutine leaks), and ctx.Err() is
// returned.
func RouteParallel(ctx context.Context, nl *Netlist, p Policy, opt Options) (*Result, error) {
	if len(nl.Nets) == 0 {
		return nil, fmt.Errorf("router: empty netlist")
	}
	sc := opt.Obs
	if sc == nil {
		sc = obs.DefaultScope(ScopeName)
	}
	workers := clampWorkers(opt.Workers, len(nl.Nets))
	start := time.Now()
	done := ctx.Done()

	results := make([]NetResult, len(nl.Nets))
	errs := make([]error, len(nl.Nets))
	busy := make([]time.Duration, workers) // per-worker build time, no sharing
	var hist *obs.Histogram
	if sc != nil {
		hist = sc.Histogram(HistNetBuildSeconds, netBuildBuckets...)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain the queue without building
				}
				n := nl.Nets[i]
				t0 := time.Now()
				t, err := p.Build(ctx, n.In)
				d := time.Since(t0)
				busy[w] += d
				if hist != nil {
					hist.Observe(d.Seconds())
				}
				if err != nil {
					errs[i] = fmt.Errorf("router: net %q: %w", n.Name, err)
					continue
				}
				r := n.In.R()
				radius := t.Radius(0)
				ratio := math.Inf(1)
				if r > 0 {
					ratio = radius / r
				}
				results[i] = NetResult{
					Name: n.Name, Tree: t,
					Cost: t.Cost(), Radius: radius, R: r, PathRatio: ratio,
				}
			}
		}(w)
	}
feed:
	for i := range nl.Nets {
		select {
		case jobs <- i:
		case <-done:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if sc != nil {
		wall := time.Since(start)
		sc.Timer(TimerRouteWall).Observe(wall)
		sc.Gauge(GaugeWorkers).Set(float64(workers))
		var busyTotal time.Duration
		for _, d := range busy {
			busyTotal += d
		}
		util := 0.0
		if wall > 0 {
			util = busyTotal.Seconds() / (wall.Seconds() * float64(workers))
		}
		sc.Gauge(GaugeWorkerUtilization).Set(util)
		var failed int64
		for i := range errs {
			if errs[i] != nil {
				failed++
			}
		}
		sc.Counter(CtrNetsRouted).Add(int64(len(nl.Nets)) - failed)
		sc.Counter(CtrNetsFailed).Add(failed)
	}

	res := &Result{Policy: p.Name}
	var ratioSum float64
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Nets = append(res.Nets, results[i])
		res.TotalCost += results[i].Cost
		ratioSum += results[i].PathRatio
		if results[i].PathRatio > res.WorstPathRatio {
			res.WorstPathRatio = results[i].PathRatio
		}
	}
	res.MeanPathRatio = ratioSum / float64(len(res.Nets))
	return res, nil
}
