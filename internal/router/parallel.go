package router

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// RouteParallel routes the netlist with the policy across the given
// number of workers (0 = GOMAXPROCS). Nets are independent, so results
// are identical to Route; only wall-clock changes. The first error
// aborts the run.
func RouteParallel(nl *Netlist, p Policy, workers int) (*Result, error) {
	if len(nl.Nets) == 0 {
		return nil, fmt.Errorf("router: empty netlist")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nl.Nets) {
		workers = len(nl.Nets)
	}

	results := make([]NetResult, len(nl.Nets))
	errs := make([]error, len(nl.Nets))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				n := nl.Nets[i]
				t, err := p.Build(n.In)
				if err != nil {
					errs[i] = fmt.Errorf("router: net %q: %w", n.Name, err)
					continue
				}
				r := n.In.R()
				radius := t.Radius(0)
				ratio := math.Inf(1)
				if r > 0 {
					ratio = radius / r
				}
				results[i] = NetResult{
					Name: n.Name, Tree: t,
					Cost: t.Cost(), Radius: radius, R: r, PathRatio: ratio,
				}
			}
		}()
	}
	for i := range nl.Nets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	res := &Result{Policy: p.Name}
	var ratioSum float64
	for i := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Nets = append(res.Nets, results[i])
		res.TotalCost += results[i].Cost
		ratioSum += results[i].PathRatio
		if results[i].PathRatio > res.WorstPathRatio {
			res.WorstPathRatio = results[i].PathRatio
		}
	}
	res.MeanPathRatio = ratioSum / float64(len(res.Nets))
	return res, nil
}
