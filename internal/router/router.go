// Package router routes whole designs: many nets sharing a chip — the
// global routing context the paper's introduction places its trees in
// (performance-driven global routing, after Cong–Kahng–Robins 1992).
//
// It provides a netlist container with text IO, per-net routing
// policies built on the bounded path length constructions, aggregate
// quality accounting, and grid-based congestion estimation. Routing a
// netlist is embarrassingly parallel: nets are independent, so
// RouteParallel farms them to a bounded worker pool over an index
// channel and writes each result into a per-net slot. Invariants the
// implementation maintains:
//
//   - Determinism: results are written by net index, never appended
//     from workers, so Route and RouteParallel produce identical
//     Results for any worker count.
//   - Error isolation: a failing net records its error in its own
//     slot; after the pool drains, the first error (in net order)
//     aborts the run. Workers never abandon queued nets mid-run.
//   - Cost: one policy build per net — O(V³) per net for the BKRUS
//     policy — plus O(nets) assembly; the congestion map rasterises
//     tree edges onto a gcell grid in O(edges · gridspan).
//
// Per-net build latencies, worker utilisation, and success/failure
// counts are recorded into the "router" obs scope (see OBSERVABILITY.md)
// when observability is enabled.
package router

import (
	"context"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

// Net is one named signal net of a design.
type Net struct {
	Name string
	In   *inst.Instance
}

// Netlist is an ordered collection of nets.
type Netlist struct {
	Nets []Net
}

// Add appends a net.
func (nl *Netlist) Add(name string, in *inst.Instance) {
	nl.Nets = append(nl.Nets, Net{Name: name, In: in})
}

// Bounds returns the bounding box of every terminal of every net.
func (nl *Netlist) Bounds() (geom.BBox, error) {
	var pts []geom.Point
	for _, n := range nl.Nets {
		pts = append(pts, n.In.Points()...)
	}
	if len(pts) == 0 {
		return geom.BBox{}, fmt.Errorf("router: empty netlist")
	}
	return geom.Bounds(pts), nil
}

// Policy builds a routing tree for one net. Build receives the routing
// run's context so cancellation propagates into long per-net
// constructions.
type Policy struct {
	Name  string
	Build func(ctx context.Context, in *inst.Instance) (*graph.Tree, error)
}

// BKRUSPolicy routes every net with the bounded Kruskal construction.
func BKRUSPolicy(eps float64) Policy {
	return Policy{
		Name: fmt.Sprintf("bkrus(eps=%g)", eps),
		Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
			return core.BKRUSBuild(ctx, in, core.UpperOnly(in, eps), core.Config{})
		},
	}
}

// MSTPolicy routes every net at minimal wirelength, ignoring paths.
func MSTPolicy() Policy {
	return Policy{
		Name: "mst",
		Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
			return mst.Kruskal(in.DistMatrix()), nil
		},
	}
}

// SPTPolicy routes every net as the direct shortest path tree.
func SPTPolicy() Policy {
	return Policy{
		Name: "spt",
		Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
			return mst.SPT(in.DistMatrix(), graph.Source), nil
		},
	}
}

// AHHKPolicy routes with the Prim-Dijkstra trade-off heuristic.
func AHHKPolicy(c float64) Policy {
	return Policy{
		Name: fmt.Sprintf("ahhk(c=%g)", c),
		Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
			return baseline.AHHKBuild(ctx, in, c)
		},
	}
}

// NetResult is the routed tree of one net with its quality metrics.
type NetResult struct {
	Name      string
	Tree      *graph.Tree
	Cost      float64
	Radius    float64
	R         float64 // direct distance to the farthest sink
	PathRatio float64 // Radius / R
}

// Result aggregates a routed design.
type Result struct {
	Policy         string
	Nets           []NetResult
	TotalCost      float64
	WorstPathRatio float64
	MeanPathRatio  float64
}

// Route routes every net of the netlist under the policy, sequentially.
// Cancellation propagates into each policy build.
func Route(ctx context.Context, nl *Netlist, p Policy) (*Result, error) {
	if len(nl.Nets) == 0 {
		return nil, fmt.Errorf("router: empty netlist")
	}
	res := &Result{Policy: p.Name}
	var ratioSum float64
	for _, n := range nl.Nets {
		t, err := p.Build(ctx, n.In)
		if err != nil {
			return nil, fmt.Errorf("router: net %q: %w", n.Name, err)
		}
		r := n.In.R()
		radius := t.Radius(graph.Source)
		ratio := math.Inf(1)
		if r > 0 {
			ratio = radius / r
		}
		nr := NetResult{
			Name: n.Name, Tree: t,
			Cost: t.Cost(), Radius: radius, R: r, PathRatio: ratio,
		}
		res.Nets = append(res.Nets, nr)
		res.TotalCost += nr.Cost
		ratioSum += ratio
		if ratio > res.WorstPathRatio {
			res.WorstPathRatio = ratio
		}
	}
	res.MeanPathRatio = ratioSum / float64(len(res.Nets))
	return res, nil
}
