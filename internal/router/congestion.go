package router

import (
	"fmt"

	"repro/internal/geom"
)

// CongestionMap estimates routing demand: the chip is divided into a
// grid of global routing cells (gcells) and every routed wire adds one
// unit of demand to each gcell its rectilinear embedding crosses. Tree
// edges are embedded as L-shapes with the corner on the source side,
// matching how the trees would be laid down in two-layer HV routing.
type CongestionMap struct {
	Cols, Rows int
	BBox       geom.BBox
	Demand     []int // row-major gcell demand
}

// NewCongestionMap rasterizes a routed design onto a cols x rows gcell
// grid covering the netlist's bounding box.
func NewCongestionMap(nl *Netlist, res *Result, cols, rows int) (*CongestionMap, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("router: invalid gcell grid %dx%d", cols, rows)
	}
	if len(nl.Nets) != len(res.Nets) {
		return nil, fmt.Errorf("router: result does not match netlist (%d vs %d nets)",
			len(res.Nets), len(nl.Nets))
	}
	bb, err := nl.Bounds()
	if err != nil {
		return nil, err
	}
	cm := &CongestionMap{Cols: cols, Rows: rows, BBox: bb, Demand: make([]int, cols*rows)}
	for i, n := range nl.Nets {
		src := n.In.Source()
		for _, e := range res.Nets[i].Tree.Edges {
			p, q := n.In.Point(e.U), n.In.Point(e.V)
			cm.addEdge(p, q, src)
		}
	}
	return cm, nil
}

// addEdge rasterizes the L-shaped embedding of the wire p-q, corner
// chosen nearer the net's source.
func (cm *CongestionMap) addEdge(p, q, src geom.Point) {
	c1 := geom.Point{X: p.X, Y: q.Y}
	c2 := geom.Point{X: q.X, Y: p.Y}
	corner := c1
	if geom.Manhattan.Dist(c2, src) < geom.Manhattan.Dist(c1, src) {
		corner = c2
	}
	cm.addSegment(p, corner)
	cm.addSegment(corner, q)
}

// addSegment adds demand along an axis-aligned segment.
func (cm *CongestionMap) addSegment(a, b geom.Point) {
	if a == b {
		return
	}
	switch {
	case geom.Eq(a.Y, b.Y): // horizontal
		row := cm.rowOf(a.Y)
		c0, c1 := cm.colOf(min(a.X, b.X)), cm.colOf(max(a.X, b.X))
		for c := c0; c <= c1; c++ {
			cm.Demand[row*cm.Cols+c]++
		}
	case geom.Eq(a.X, b.X): // vertical
		col := cm.colOf(a.X)
		r0, r1 := cm.rowOf(min(a.Y, b.Y)), cm.rowOf(max(a.Y, b.Y))
		for r := r0; r <= r1; r++ {
			cm.Demand[r*cm.Cols+col]++
		}
	default:
		// diagonal segments do not occur: addEdge always splits into
		// axis-aligned legs
		panic("router: non-rectilinear segment")
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (cm *CongestionMap) colOf(x float64) int {
	w := cm.BBox.Width()
	if w == 0 {
		return 0
	}
	c := int(float64(cm.Cols) * (x - cm.BBox.MinX) / w)
	if c < 0 {
		c = 0
	}
	if c >= cm.Cols {
		c = cm.Cols - 1
	}
	return c
}

func (cm *CongestionMap) rowOf(y float64) int {
	h := cm.BBox.Height()
	if h == 0 {
		return 0
	}
	r := int(float64(cm.Rows) * (y - cm.BBox.MinY) / h)
	if r < 0 {
		r = 0
	}
	if r >= cm.Rows {
		r = cm.Rows - 1
	}
	return r
}

// At returns the demand of gcell (col, row).
func (cm *CongestionMap) At(col, row int) int {
	return cm.Demand[row*cm.Cols+col]
}

// MaxDemand returns the most congested gcell's demand.
func (cm *CongestionMap) MaxDemand() int {
	m := 0
	for _, d := range cm.Demand {
		if d > m {
			m = d
		}
	}
	return m
}

// MeanDemand returns the average gcell demand.
func (cm *CongestionMap) MeanDemand() float64 {
	var s int
	for _, d := range cm.Demand {
		s += d
	}
	return float64(s) / float64(len(cm.Demand))
}

// Overflow counts gcells whose demand exceeds the given capacity.
func (cm *CongestionMap) Overflow(capacity int) int {
	n := 0
	for _, d := range cm.Demand {
		if d > capacity {
			n++
		}
	}
	return n
}
