package router

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

var errSentinel = errors.New("boom")

func smallNetlist() *Netlist {
	nl := &Netlist{}
	nl.Add("n1", inst.MustNew(geom.Point{X: 0, Y: 0},
		[]geom.Point{{X: 10, Y: 0}, {X: 5, Y: 5}}, geom.Manhattan))
	nl.Add("n2", inst.MustNew(geom.Point{X: 20, Y: 20},
		[]geom.Point{{X: 25, Y: 20}, {X: 20, Y: 28}, {X: 30, Y: 30}}, geom.Manhattan))
	return nl
}

func randomNetlist(rng *rand.Rand, nets int) *Netlist {
	nl := &Netlist{}
	for i := 0; i < nets; i++ {
		sinks := make([]geom.Point, 2+rng.Intn(6))
		for j := range sinks {
			sinks[j] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		src := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		nl.Add("n", inst.MustNew(src, sinks, geom.Manhattan))
	}
	return nl
}

func TestRoutePolicies(t *testing.T) {
	nl := smallNetlist()
	for _, p := range []Policy{MSTPolicy(), SPTPolicy(), BKRUSPolicy(0.2), AHHKPolicy(0.5)} {
		res, err := Route(context.Background(), nl, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(res.Nets) != 2 {
			t.Fatalf("%s: %d nets routed", p.Name, len(res.Nets))
		}
		if res.TotalCost <= 0 {
			t.Errorf("%s: total cost %v", p.Name, res.TotalCost)
		}
		for _, nr := range res.Nets {
			if err := nr.Tree.Validate(); err != nil {
				t.Errorf("%s net %s: %v", p.Name, nr.Name, err)
			}
		}
	}
}

func TestRouteQualityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := randomNetlist(rng, 30)
	mstRes, err := Route(context.Background(), nl, MSTPolicy())
	if err != nil {
		t.Fatal(err)
	}
	sptRes, err := Route(context.Background(), nl, SPTPolicy())
	if err != nil {
		t.Fatal(err)
	}
	bkRes, err := Route(context.Background(), nl, BKRUSPolicy(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if !(mstRes.TotalCost <= bkRes.TotalCost+1e-9 && bkRes.TotalCost <= sptRes.TotalCost+1e-9) {
		t.Errorf("cost ordering broken: mst %v, bkrus %v, spt %v",
			mstRes.TotalCost, bkRes.TotalCost, sptRes.TotalCost)
	}
	if sptRes.WorstPathRatio > 1+1e-9 {
		t.Errorf("SPT worst path ratio %v", sptRes.WorstPathRatio)
	}
	if bkRes.WorstPathRatio > 1.2+1e-9 {
		t.Errorf("BKRUS(0.2) worst ratio %v above its bound", bkRes.WorstPathRatio)
	}
}

func TestRouteEmptyNetlist(t *testing.T) {
	if _, err := Route(context.Background(), &Netlist{}, MSTPolicy()); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestNetlistIORoundtrip(t *testing.T) {
	nl := smallNetlist()
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nets) != len(nl.Nets) {
		t.Fatalf("net count %d vs %d", len(back.Nets), len(nl.Nets))
	}
	for i := range nl.Nets {
		if back.Nets[i].Name != nl.Nets[i].Name {
			t.Errorf("net %d name %q vs %q", i, back.Nets[i].Name, nl.Nets[i].Name)
		}
		if back.Nets[i].In.N() != nl.Nets[i].In.N() {
			t.Errorf("net %d terminals %d vs %d", i, back.Nets[i].In.N(), nl.Nets[i].In.N())
		}
		if back.Nets[i].In.Source() != nl.Nets[i].In.Source() {
			t.Errorf("net %d source moved", i)
		}
	}
}

func TestReadNetlistErrors(t *testing.T) {
	cases := []string{
		"",                                   // no nets
		"net a\nsource 0 0\nsink 1 1\n",      // unterminated
		"source 0 0\n",                       // outside net
		"net a\nnet b\n",                     // nested
		"net a\nsink 1 1\nend\n",             // no source
		"net a\nsource 0 0\nend\n",           // no sinks
		"net a\nsource 0 0\nsource 1 1\nend", // duplicate source
		"net a\nsource x y\nsink 1 1\nend\n", // bad floats
		"net\nsource 0 0\nsink 1 1\nend\n",   // missing name
		"net a\nwarp 1 2\nend\n",             // unknown directive
		"net a\nsource 0 0\nsink 1\nend\n",   // arity
		"end\n",                              // end outside net
	}
	for i, c := range cases {
		if _, err := ReadNetlist(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestCongestionMap(t *testing.T) {
	nl := &Netlist{}
	// one horizontal two-pin net spanning the whole region
	nl.Add("h", inst.MustNew(geom.Point{X: 0, Y: 0},
		[]geom.Point{{X: 100, Y: 0}}, geom.Manhattan))
	res, err := Route(context.Background(), nl, MSTPolicy())
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCongestionMap(nl, res, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// the single wire crosses every column of the single row
	for c := 0; c < 10; c++ {
		if cm.At(c, 0) != 1 {
			t.Errorf("col %d demand %d, want 1", c, cm.At(c, 0))
		}
	}
	if cm.MaxDemand() != 1 || cm.MeanDemand() != 1 {
		t.Errorf("max/mean = %d/%v", cm.MaxDemand(), cm.MeanDemand())
	}
	if cm.Overflow(0) != 10 || cm.Overflow(1) != 0 {
		t.Errorf("overflow counts wrong: %d %d", cm.Overflow(0), cm.Overflow(1))
	}
}

func TestCongestionLCorner(t *testing.T) {
	nl := &Netlist{}
	// a single diagonal two-pin net: must rasterize as an L, not a diagonal
	nl.Add("d", inst.MustNew(geom.Point{X: 0, Y: 0},
		[]geom.Point{{X: 100, Y: 100}}, geom.Manhattan))
	res, err := Route(context.Background(), nl, MSTPolicy())
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCongestionMap(nl, res, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// total demand = cells on one horizontal leg + one vertical leg
	var total int
	for _, d := range cm.Demand {
		total += d
	}
	if total < 7 || total > 8 { // 4 + 4 with the corner maybe double-counted
		t.Errorf("L rasterization covered %d cells, want 7-8", total)
	}
}

func TestCongestionValidation(t *testing.T) {
	nl := smallNetlist()
	res, err := Route(context.Background(), nl, MSTPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCongestionMap(nl, res, 0, 5); err == nil {
		t.Error("zero columns accepted")
	}
	other := &Netlist{}
	other.Add("x", inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 1}}, geom.Manhattan))
	if _, err := NewCongestionMap(other, res, 4, 4); err == nil {
		t.Error("mismatched result accepted")
	}
}

// Bounded routing spreads wires compared to the SPT star: on a design of
// many nets sharing a center region, the SPT's direct spokes pile into
// the middle gcells.
func TestCongestionSPTvsBKRUS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nl := &Netlist{}
	for i := 0; i < 20; i++ {
		sinks := make([]geom.Point, 6)
		for j := range sinks {
			sinks[j] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		nl.Add("n", inst.MustNew(geom.Point{X: 50, Y: 50}, sinks, geom.Manhattan))
	}
	sptRes, _ := Route(context.Background(), nl, SPTPolicy())
	bkRes, _ := Route(context.Background(), nl, BKRUSPolicy(0.5))
	sptCm, err := NewCongestionMap(nl, sptRes, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	bkCm, err := NewCongestionMap(nl, bkRes, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bkCm.MaxDemand() > sptCm.MaxDemand() {
		t.Errorf("BKRUS peak congestion %d above SPT %d on a shared-center design",
			bkCm.MaxDemand(), sptCm.MaxDemand())
	}
}

func TestNetlistBoundsEmpty(t *testing.T) {
	if _, err := (&Netlist{}).Bounds(); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestRouteParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl := randomNetlist(rng, 40)
	seq, err := Route(context.Background(), nl, BKRUSPolicy(0.3))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 64} {
		par, err := RouteParallel(context.Background(), nl, BKRUSPolicy(0.3), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.TotalCost != seq.TotalCost {
			t.Errorf("workers=%d: total %v vs %v", workers, par.TotalCost, seq.TotalCost)
		}
		if par.WorstPathRatio != seq.WorstPathRatio {
			t.Errorf("workers=%d: worst ratio differs", workers)
		}
		for i := range seq.Nets {
			if par.Nets[i].Cost != seq.Nets[i].Cost {
				t.Errorf("workers=%d: net %d cost differs", workers, i)
			}
		}
	}
}

func TestRouteParallelPropagatesError(t *testing.T) {
	nl := smallNetlist()
	bad := Policy{Name: "bad", Build: func(ctx context.Context, in *inst.Instance) (*graph.Tree, error) {
		if in.NumSinks() == 3 {
			return nil, errSentinel
		}
		return mst.Kruskal(in.DistMatrix()), nil
	}}
	if _, err := RouteParallel(context.Background(), nl, bad, Options{Workers: 2}); err == nil {
		t.Error("policy error not propagated")
	}
	if _, err := RouteParallel(context.Background(), &Netlist{}, MSTPolicy(), Options{Workers: 2}); err == nil {
		t.Error("empty netlist accepted")
	}
}
