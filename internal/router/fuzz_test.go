package router

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadNetlist checks the netlist parser never panics and that
// accepted netlists round-trip through WriteNetlist.
func FuzzReadNetlist(f *testing.F) {
	f.Add("net a\nsource 0 0\nsink 1 2\nend\n")
	f.Add("# c\nnet x\nsource -1 2e3\nsink 0 0\nsink 7 7\nend\nnet y\nsource 1 1\nsink 2 2\nend\n")
	f.Add("net a\nsource 0 0\nsink nan nan\nend\n")
	f.Fuzz(func(t *testing.T, input string) {
		nl, err := ReadNetlist(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(nl.Nets) == 0 {
			t.Fatal("accepted empty netlist")
		}
		var buf bytes.Buffer
		if err := WriteNetlist(&buf, nl); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadNetlist(&buf)
		if err != nil {
			t.Fatalf("round-trip failed: %v\nwritten: %q", err, buf.String())
		}
		if len(back.Nets) != len(nl.Nets) {
			t.Fatal("round-trip changed net count")
		}
	})
}
