package router

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/inst"
)

// WriteNetlist serializes a netlist in the repository's text format:
//
//	# comments
//	net <name>
//	source <x> <y>
//	sink <x> <y>
//	end
//
// All nets use the Manhattan metric in this format (the global routing
// context is rectilinear).
func WriteNetlist(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# netlist: %d nets\n", len(nl.Nets))
	for _, n := range nl.Nets {
		fmt.Fprintf(bw, "net %s\n", n.Name)
		s := n.In.Source()
		fmt.Fprintf(bw, "source %g %g\n", s.X, s.Y)
		for _, p := range n.In.Sinks() {
			fmt.Fprintf(bw, "sink %g %g\n", p.X, p.Y)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// ReadNetlist parses the text format written by WriteNetlist.
func ReadNetlist(r io.Reader) (*Netlist, error) {
	nl := &Netlist{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	var (
		name      string
		inNet     bool
		hasSource bool
		source    geom.Point
		sinks     []geom.Point
	)
	finish := func() error {
		if !hasSource {
			return fmt.Errorf("router: net %q has no source", name)
		}
		in, err := inst.New(source, sinks, geom.Manhattan)
		if err != nil {
			return fmt.Errorf("router: net %q: %w", name, err)
		}
		nl.Add(name, in)
		inNet, hasSource, sinks = false, false, nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "net":
			if inNet {
				return nil, fmt.Errorf("router: line %d: nested net", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("router: line %d: net needs a name", lineNo)
			}
			name = fields[1]
			inNet = true
		case "source", "sink":
			if !inNet {
				return nil, fmt.Errorf("router: line %d: %s outside a net", lineNo, fields[0])
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("router: line %d: %s needs x y", lineNo, fields[0])
			}
			x, errX := strconv.ParseFloat(fields[1], 64)
			y, errY := strconv.ParseFloat(fields[2], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("router: line %d: bad coordinates", lineNo)
			}
			if fields[0] == "source" {
				if hasSource {
					return nil, fmt.Errorf("router: line %d: duplicate source", lineNo)
				}
				source = geom.Point{X: x, Y: y}
				hasSource = true
			} else {
				sinks = append(sinks, geom.Point{X: x, Y: y})
			}
		case "end":
			if !inNet {
				return nil, fmt.Errorf("router: line %d: end outside a net", lineNo)
			}
			if err := finish(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("router: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inNet {
		return nil, fmt.Errorf("router: unterminated net %q", name)
	}
	if len(nl.Nets) == 0 {
		return nil, fmt.Errorf("router: no nets")
	}
	return nl, nil
}
