package experiments

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/table"
)

// Table3 reproduces the paper's Table 3: BKRUS and BKH2 on the large
// benchmarks (pr1, pr2, r1-r5 stand-ins). Columns follow the paper:
// BKRUS perf ratio and CPU, path ratio, BKH2 perf ratio and CPU, and the
// percentage cost reduction of BKH2 over BKRUS. BKH2 runs under an
// exchange budget on these sizes (the paper capped CPU at ~12 hours);
// budget-truncated results carry a trailing '+'.
func Table3(cfg Config) error {
	tb := table.New("Table 3: BKRUS and BKH2 on large benchmarks",
		"bench", "eps", "KR.perf", "KR.cpu", "path", "H2.perf", "H2.cpu", "reduction%")
	names := bench.LargeNames()
	if cfg.Quick {
		names = []string{"pr1", "r1"}
	}
	for _, name := range names {
		in, _ := bench.ByName(name)
		mstCost := mstCostOf(in)
		for _, eps := range epsGrid(cfg.Quick) {
			if err := cfg.ctx().Err(); err != nil {
				return err
			}
			kr, cpuKR, err := timed(func() (*graph.Tree, error) { return cfg.spanning("bkrus", in, engine.Params{Eps: eps}) })
			if err != nil {
				tb.AddRow(name, epsLabel(eps), "-", "-", "-", "-", "-", "-")
				continue
			}
			perfKR, pathKR := ratios(kr, in, mstCost)
			type h2res struct {
				t         *graph.Tree
				truncated bool
			}
			h2, cpuH2, err := timed(func() (h2res, error) {
				t, trunc, err := cfg.bkh2(in, eps)
				return h2res{t, trunc}, err
			})
			if err != nil {
				tb.AddRow(name, epsLabel(eps),
					fmt.Sprintf("%.3f", perfKR), fmt.Sprintf("%.2f", cpuKR),
					fmt.Sprintf("%.3f", pathKR), "-", "-", "-")
				continue
			}
			perfH2, _ := ratios(h2.t, in, mstCost)
			mark := ""
			if h2.truncated {
				mark = "+"
			}
			reduction := (1 - h2.t.Cost()/kr.Cost()) * 100
			if math.Abs(reduction) < 1e-6 {
				reduction = 0 // clamp edge-resummation fp noise
			}
			tb.AddRow(name, epsLabel(eps),
				fmt.Sprintf("%.3f", perfKR), fmt.Sprintf("%.2f", cpuKR),
				fmt.Sprintf("%.3f", pathKR),
				fmt.Sprintf("%.3f%s", perfH2, mark), fmt.Sprintf("%.2f", cpuH2),
				fmt.Sprintf("%.2f", reduction))
		}
	}
	return cfg.render(tb)
}
