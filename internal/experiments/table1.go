package experiments

import (
	"repro/internal/bench"
	"repro/internal/table"
)

// Table1 prints the benchmark characteristics table (paper Table 1):
// point and edge counts and the direct distances to the farthest (R) and
// nearest (r) sinks. The p* rows reproduce the published figures; the
// pr*/r* rows describe the synthetic stand-ins.
func Table1(cfg Config) error {
	tb := table.New("Table 1: Characteristics of Benchmarks", "bench", "#pts", "#edges", "R", "r")
	for _, b := range bench.All() {
		if cfg.Quick && b.In.N() > 700 {
			continue // skip the minute-scale distance matrices in quick mode
		}
		tb.AddRow(b.Name, b.In.N(), b.In.NumEdges(), b.In.R(), b.In.NearestR())
	}
	return cfg.render(tb)
}
