package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/stats"
	"repro/internal/table"
)

// Figure1 reproduces the paper's Figure 1 phenomenon on the p3
// configuration: at a tight ε, bounded-Prim strands far sinks on direct
// source connections while BKRUS builds a far cheaper tree of the same
// radius class.
func Figure1(cfg Config) error {
	in := bench.P3()
	tb := table.New("Figure 1: BPRIM pathology on the chain configuration (p3)",
		"eps", "cost(MST)", "cost(BKT)", "cost(BPRIM)", "BPRIM/BKT")
	mstCost := mstCostOf(in)
	for _, eps := range []float64{0.25, 0.0} {
		bk, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps})
		if err != nil {
			return err
		}
		bp, err := cfg.spanning("bprim", in, engine.Params{Eps: eps})
		if err != nil {
			return err
		}
		tb.AddRow(epsLabel(eps), mstCost, bk.Cost(), bp.Cost(), bp.Cost()/bk.Cost())
	}
	return cfg.render(tb)
}

// figureSweep is the ε series used by Figures 9 and 10.
func figureSweep(quick bool) []float64 {
	if quick {
		return []float64{0.0, 0.2, 0.5, 1.0}
	}
	return []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0, 1.5}
}

// Figure9 reproduces the trade-off curve: average longest path ratio and
// average cost ratio of BKRUS versus ε over the random set. The two
// series move in opposite directions — the paper's smooth trade-off.
func Figure9(cfg Config) error {
	tb := table.New("Figure 9: BKRUS trade-off curve over random nets (15 sinks)",
		"eps", "path/R", "cost/MST")
	cases := cfg.cases()
	for _, eps := range figureSweep(cfg.Quick) {
		var path, cost stats.Acc
		for k := 0; k < cases; k++ {
			in := bench.RandomCase(15, k)
			t, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps})
			if err != nil {
				return err
			}
			perf, pr := ratios(t, in, mstCostOf(in))
			cost.Add(perf)
			path.Add(pr)
			in.Release() // drop the per-case geometry caches before the next case
		}
		tb.AddRow(epsLabel(eps), path.Mean(), cost.Mean())
	}
	return cfg.render(tb)
}

// Figure10 reproduces the ratio curves: cost(BKRUS)/cost(MST),
// cost(BKEX)/cost(MST), cost(BKRUS)/cost(BKEX) and
// cost(BKH2)/cost(BKEX) versus ε on the random set (BKEX is the
// optimum reference).
func Figure10(cfg Config) error {
	tb := table.New("Figure 10: ratio curves over random nets (10 sinks)",
		"eps", "BKRUS/MST", "BKEX/MST", "BKRUS/BKEX", "BKH2/BKEX")
	cases := cfg.cases()
	for _, eps := range figureSweep(cfg.Quick) {
		var krMST, exMST, krEX, h2EX stats.Acc
		for k := 0; k < cases; k++ {
			in := bench.RandomCase(10, k)
			mstCost := mstCostOf(in)
			kr, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps})
			if err != nil {
				return err
			}
			ex, err := optimalTree(cfg, in, eps)
			if err != nil {
				return err
			}
			h2, _, err := cfg.bkh2(in, eps)
			if err != nil {
				return err
			}
			krMST.Add(kr.Cost() / mstCost)
			exMST.Add(ex.Cost() / mstCost)
			krEX.Add(kr.Cost() / ex.Cost())
			h2EX.Add(h2.Cost() / ex.Cost())
			in.Release()
		}
		tb.AddRow(epsLabel(eps), krMST.Mean(), exMST.Mean(), krEX.Mean(), h2EX.Mean())
	}
	return cfg.render(tb)
}

// Figure11 reproduces the routing cost chart: the average relative cost
// position of every construction, normalized to the MST, at a
// representative ε. Expected ordering (cheap to expensive):
// BKST < MST <= BMST_G = BKEX <= BKH2 <= BKRUS <= SPT <= MaxST.
func Figure11(cfg Config) error {
	tb := table.New("Figure 11: routing cost chart (cost/MST at eps = 0.2, random 10-sink nets)",
		"construction", "cost/MST")
	cases := cfg.cases()
	var st, g, h2, kr, spt, maxst stats.Acc
	for k := 0; k < cases; k++ {
		// Per-construction failures are skipped, so cancellation must be
		// surfaced at the case boundary.
		if err := cfg.ctx().Err(); err != nil {
			return err
		}
		in := bench.RandomCase(10, k)
		mstCost := mstCostOf(in)
		eps := 0.2
		if t, err := cfg.steinerTree("bkst", in, engine.Params{Eps: eps}); err == nil {
			st.Add(t.Cost() / mstCost)
		}
		if t, err := optimalTree(cfg, in, eps); err == nil {
			g.Add(t.Cost() / mstCost)
		}
		if t, _, err := cfg.bkh2(in, eps); err == nil {
			h2.Add(t.Cost() / mstCost)
		}
		if t, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps}); err == nil {
			kr.Add(t.Cost() / mstCost)
		}
		if t, err := cfg.spanning("spt", in, engine.Params{}); err == nil {
			spt.Add(t.Cost() / mstCost)
		}
		if t, err := cfg.spanning("maxst", in, engine.Params{}); err == nil {
			maxst.Add(t.Cost() / mstCost)
		}
		in.Release()
	}
	tb.AddRow("BKST (Steiner)", st.Mean())
	tb.AddRow("MST (unbounded)", 1.0)
	tb.AddRow("BMST_G / BKEX (optimal)", g.Mean())
	tb.AddRow("BKH2", h2.Mean())
	tb.AddRow("BKRUS", kr.Mean())
	tb.AddRow("SPT", spt.Mean())
	tb.AddRow("Maximal ST", maxst.Mean())
	return cfg.render(tb)
}

// Figure12 reproduces the lower/upper bound trade-off: the skew ratio s
// and cost ratio of LUB-BKRUS across the (ε1, ε2) grid on p4, the
// paper's typical curve between routing cost and clock skew.
func Figure12(cfg Config) error {
	in := bench.P4()
	mstCost := mstCostOf(in)
	tb := table.New("Figure 12: skew vs cost trade-off (LUB BKRUS on p4)",
		"eps1", "eps2", "skew", "cost/MST")
	eps1s, eps2s := lubGrid(cfg.Quick)
	for _, e1 := range eps1s {
		for _, e2 := range eps2s {
			t, err := cfg.spanning("bkruslu", in, engine.Params{Eps1: e1, Eps2: e2})
			if err != nil {
				if cerr := cfg.ctx().Err(); cerr != nil {
					return cerr
				}
				tb.AddRow(fmt.Sprintf("%.1f", e1), fmt.Sprintf("%.1f", e2), "-", "-")
				continue
			}
			tb.AddRow(fmt.Sprintf("%.1f", e1), fmt.Sprintf("%.1f", e2), skew(t), t.Cost()/mstCost)
		}
	}
	return cfg.render(tb)
}

// Figure13 reproduces the pathology family: N sinks on the Manhattan
// circle arc at distance R force cost(BKT)/cost(MST) ≈ N at ε = 0.
func Figure13(cfg Config) error {
	tb := table.New("Figure 13: cost(BKT)/cost(MST) approaches N on the arc family",
		"N sinks", "cost(BKT)", "cost(MST)", "ratio")
	ns := []int{2, 4, 6, 8, 10}
	if cfg.Quick {
		ns = []int{4, 8}
	}
	for _, n := range ns {
		in := arcFamily(n)
		bkt, err := cfg.spanning("bkrus", in, engine.Params{Eps: 0})
		if err != nil {
			return err
		}
		mstCost := mstCostOf(in)
		tb.AddRow(n, bkt.Cost(), mstCost, bkt.Cost()/mstCost)
	}
	return cfg.render(tb)
}

// bkexDepth runs BKRUS followed by exchange search capped at the given
// chain depth — the engine's bkex constructor with an explicit depth.
func (c Config) bkexDepth(in *inst.Instance, eps float64, depth int) (*graph.Tree, error) {
	return c.spanning("bkex", in, engine.Params{Eps: eps, ExchangeDepth: depth})
}

// arcFamily places n sinks on the Manhattan circle of radius 20 with
// tiny arc spacing, the Figure 13 worst case.
func arcFamily(n int) *inst.Instance {
	sinks := make([]geom.Point, n)
	for i := range sinks {
		t := float64(i) * 0.01
		sinks[i] = geom.Point{X: 20 - t, Y: t}
	}
	return inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
}

// DepthStats reproduces the §5 BKEX depth study: the fraction of random
// instances solved to optimality by negative-sum-exchange search at each
// depth limit (the paper reports 96.9%, 97.3%, 99.7% for depths 2, 3, 4
// over 2750 cases).
func DepthStats(cfg Config) error {
	tb := table.New("BKEX depth statistics (fraction of random cases solved optimally)",
		"depth", "optimal%", "cases")
	cases := cfg.cases() * len(bench.RandomSetSizes)
	type job struct {
		in  *inst.Instance
		eps float64
	}
	var jobs []job
	i := 0
	for _, size := range bench.RandomSetSizes {
		for k := 0; k < cfg.cases(); k++ {
			eps := []float64{0.0, 0.1, 0.2, 0.5, 1.0}[i%5]
			i++
			jobs = append(jobs, job{bench.RandomCase(size, k), eps})
		}
	}
	optima := make([]float64, len(jobs))
	for j, jb := range jobs {
		t, err := optimalTree(cfg, jb.in, jb.eps)
		if err != nil {
			return err
		}
		optima[j] = t.Cost()
	}
	for _, depth := range []int{1, 2, 3, 4, 6} {
		hit := 0
		for j, jb := range jobs {
			t, err := cfg.bkexDepth(jb.in, jb.eps, depth)
			if err != nil {
				return err
			}
			if t.Cost() <= optima[j]*(1+1e-9) {
				hit++
			}
		}
		tb.AddRow(depth, 100*float64(hit)/float64(len(jobs)), cases)
	}
	return cfg.render(tb)
}

// All runs every table and figure in paper order.
func All(cfg Config) error {
	steps := []func(Config) error{
		Table1, Table2, Table3, Table4, Table5,
		Figure1, Figure9, Figure10, Figure11, Figure12, Figure13,
		DepthStats, LemmaStats, ElmoreStats,
	}
	for _, step := range steps {
		if err := step(cfg); err != nil {
			return err
		}
		fmt.Fprintln(cfg.out())
	}
	return nil
}

// byID maps every experiment id to its runner: "1".."5" for tables,
// "f1","f9".."f13" for figures, "depth" for the depth study, "lemmas"
// for the Lemma 4.1-4.3 ablation, "elmore" for the §3.2 delay study,
// and "all" for the whole suite in paper order.
var byID = map[string]func(Config) error{
	"1": Table1, "2": Table2, "3": Table3, "4": Table4, "5": Table5,
	"f1": Figure1, "f9": Figure9, "f10": Figure10,
	"f11": Figure11, "f12": Figure12, "f13": Figure13,
	"depth":  DepthStats,
	"lemmas": LemmaStats,
	"elmore": ElmoreStats,
	"all":    All,
}

// IDs lists every experiment id, sorted.
func IDs() []string {
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run dispatches a single experiment by id ("" = "all"). Unknown ids
// error with the full id list.
func Run(id string, cfg Config) error {
	if id == "" {
		id = "all"
	}
	f, ok := byID[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return f(cfg)
}
