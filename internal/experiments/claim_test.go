package experiments

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// The abstract claims BKRUS cost is empirically at most 1.19x the
// optimal BMST. Measured over our random set the mean ratio is ~1.03
// but the worst case reaches ~1.55 (4% of runs exceed 1.19) — the 1.19
// figure is specific to the paper's own benchmark pool. This study test
// keeps the measurement reproducible on a reduced sample; EXPERIMENTS.md
// records the 1000-run numbers.
func TestAbstractClaim119(t *testing.T) {
	cfg := Config{}
	worst := 0.0
	worstDesc := ""
	var sum float64
	over119 := 0
	n := 0
	for _, size := range bench.RandomSetSizes {
		for k := 0; k < 10; k++ {
			for _, eps := range []float64{0.0, 0.1, 0.2, 0.5} {
				in := bench.RandomCase(size, k)
				bk, err := core.BKRUS(in, eps)
				if err != nil {
					t.Fatal(err)
				}
				opt, err := optimalTree(cfg, in, eps)
				if err != nil {
					t.Fatal(err)
				}
				r := bk.Cost() / opt.Cost()
				sum += r
				if r > 1.19 {
					over119++
				}
				if r > worst {
					worst = r
					worstDesc = fmt.Sprintf("size=%d case=%d eps=%.1f", size, k, eps)
				}
				n++
			}
		}
	}
	fmt.Printf("BKRUS/optimal over %d runs: mean %.4f, worst %.4f (%s), >1.19 in %d runs\n",
		n, sum/float64(n), worst, worstDesc, over119)
}
