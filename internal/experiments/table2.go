package experiments

import (
	"errors"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/table"
)

// Table2 reproduces the paper's Table 2: the special benchmarks p1-p4
// across the ε grid, comparing the exact methods (BMST_G, BKEX), the
// heuristics (BKRUS, BKH2) and the BPRIM baseline. Cells where an exact
// method exceeds its budget print "-", mirroring the paper's memory
// overflow dashes.
func Table2(cfg Config) error {
	tb := table.New("Table 2: BMST_G, BKEX, BKRUS, BKH2 and BPRIM on special benchmarks",
		"bench", "eps",
		"G.path", "G.perf", "G.cpu",
		"EX.path", "EX.perf", "EX.cpu",
		"KR.path", "KR.perf", "KR.cpu",
		"H2.path", "H2.perf", "H2.cpu",
		"BP.path", "BP.perf")
	names := []string{"p1", "p2", "p3", "p4"}
	if cfg.Quick {
		names = []string{"p1", "p3"}
	}
	for _, name := range names {
		in, _ := bench.ByName(name)
		mstCost := mstCostOf(in)
		for _, eps := range epsGrid(cfg.Quick) {
			// Budget blows print as "-" cells, so cancellation must be
			// surfaced here rather than rendered as an empty table.
			if err := cfg.ctx().Err(); err != nil {
				return err
			}
			row := []interface{}{name, epsLabel(eps)}
			row = append(row, cellsExact(cfg, in, eps, mstCost)...)
			row = append(row, cellsBKEX(cfg, in, eps, mstCost)...)
			row = append(row, cellsSimple(in, eps, mstCost, func() (*graph.Tree, error) {
				return cfg.spanning("bkrus", in, engine.Params{Eps: eps})
			})...)
			row = append(row, cellsBKH2(cfg, in, eps, mstCost)...)
			bp, err := cfg.spanning("bprim", in, engine.Params{Eps: eps})
			if err != nil {
				row = append(row, "-", "-")
			} else {
				perf, path := ratios(bp, in, mstCost)
				row = append(row, fmt.Sprintf("%.3f", path), fmt.Sprintf("%.3f", perf))
			}
			tb.AddRow(row...)
		}
	}
	return cfg.render(tb)
}

// cellsSimple runs a constructor and formats path/perf/cpu cells.
func cellsSimple(in *inst.Instance, eps float64, mstCost float64, f func() (*graph.Tree, error)) []interface{} {
	t, cpu, err := timed(f)
	if err != nil {
		return []interface{}{"-", "-", "-"}
	}
	perf, path := ratios(t, in, mstCost)
	return []interface{}{fmt.Sprintf("%.3f", path), fmt.Sprintf("%.3f", perf), fmt.Sprintf("%.2f", cpu)}
}

func cellsExact(cfg Config, in *inst.Instance, eps float64, mstCost float64) []interface{} {
	budget := cfg.GabowBudget
	if budget == 0 && in.NumSinks() > 20 {
		budget = 50000 // p4-scale enumeration is where Gabow's space blows up
	}
	t, cpu, err := timed(func() (*graph.Tree, error) {
		return cfg.spanning("bmstg", in, engine.Params{Eps: eps, GabowBudget: budget})
	})
	if errors.Is(err, exact.ErrBudget) {
		return []interface{}{"-", "-", "-"}
	}
	if err != nil {
		return []interface{}{"-", "-", "-"}
	}
	perf, path := ratios(t, in, mstCost)
	return []interface{}{fmt.Sprintf("%.3f", path), fmt.Sprintf("%.3f", perf), fmt.Sprintf("%.2f", cpu)}
}

func cellsBKEX(cfg Config, in *inst.Instance, eps float64, mstCost float64) []interface{} {
	type bkexRes struct {
		t         *graph.Tree
		truncated bool
	}
	r, cpu, err := timed(func() (bkexRes, error) {
		start, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps})
		if err != nil {
			return bkexRes{}, err
		}
		res, err := exchange.Improve(cfg.ctx(), in, start, core.UpperOnly(in, eps), exchange.Options{
			MaxDepth:      6, // the paper's empirically sufficient depth
			MaxExpansions: cfg.exchangeBudget(in.NumSinks(), 6),
		})
		if err != nil {
			return bkexRes{}, err
		}
		return bkexRes{res.Tree, res.Truncated}, nil
	})
	if err != nil {
		return []interface{}{"-", "-", "-"}
	}
	perf, path := ratios(r.t, in, mstCost)
	mark := ""
	if r.truncated {
		mark = "+" // search work budget hit: value is an upper bound
	}
	return []interface{}{fmt.Sprintf("%.3f", path), fmt.Sprintf("%.3f%s", perf, mark), fmt.Sprintf("%.2f", cpu)}
}

func cellsBKH2(cfg Config, in *inst.Instance, eps float64, mstCost float64) []interface{} {
	t, cpu, err := timed(func() (*graph.Tree, error) {
		tr, _, err := cfg.bkh2(in, eps)
		return tr, err
	})
	if err != nil {
		return []interface{}{"-", "-", "-"}
	}
	perf, path := ratios(t, in, mstCost)
	return []interface{}{fmt.Sprintf("%.3f", path), fmt.Sprintf("%.3f", perf), fmt.Sprintf("%.2f", cpu)}
}
