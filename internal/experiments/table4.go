package experiments

import (
	"errors"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/stats"
	"repro/internal/table"
)

// table4Eps is the paper's ε grid for the random benchmark set.
func table4Eps(quick bool) []float64 {
	if quick {
		return []float64{0.0, 0.2, 0.5, 1.0}
	}
	return []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0}
}

// Table4 reproduces the paper's Table 4: the ratio of routing cost over
// the MST for BPRIM, BRBC (max only, as in the paper), BKRUS, BKH2, the
// optimum (BMST_G), and BKST on random nets of 5-15 sinks, averaged over
// seeded cases. BKST rows report min/avg/max since Steiner trees beat
// the MST itself.
func Table4(cfg Config) error {
	tb := table.New("Table 4: routing cost over MST on random nets",
		"net", "eps",
		"BP.ave", "BP.max", "BRBC.max",
		"KR.ave", "KR.max",
		"H2.ave", "H2.max",
		"G.ave", "G.max",
		"ST.min", "ST.ave", "ST.max")
	sizes := bench.RandomSetSizes
	if cfg.Quick {
		sizes = []int{5, 10}
	}
	cases := cfg.cases()
	for _, size := range sizes {
		for _, eps := range table4Eps(cfg.Quick) {
			// Infeasible cases are silently skipped, so cancellation must
			// be surfaced at the row boundary.
			if err := cfg.ctx().Err(); err != nil {
				return err
			}
			var bp, brbc, kr, h2, g, st stats.Acc
			for k := 0; k < cases; k++ {
				in := bench.RandomCase(size, k)
				mstCost := mstCostOf(in)
				if t, err := cfg.spanning("bprim", in, engine.Params{Eps: eps}); err == nil {
					bp.Add(t.Cost() / mstCost)
				}
				if t, err := cfg.spanning("brbc", in, engine.Params{Eps: eps}); err == nil {
					brbc.Add(t.Cost() / mstCost)
				}
				if t, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps}); err == nil {
					kr.Add(t.Cost() / mstCost)
				}
				if t, _, err := cfg.bkh2(in, eps); err == nil {
					h2.Add(t.Cost() / mstCost)
				}
				if t, err := optimalTree(cfg, in, eps); err == nil {
					g.Add(t.Cost() / mstCost)
				}
				if t, err := cfg.steinerTree("bkst", in, engine.Params{Eps: eps}); err == nil {
					st.Add(t.Cost() / mstCost)
				}
			}
			tb.AddRow(size, epsLabel(eps),
				f3(bp.Mean()), f3(bp.Max()), f3(brbc.Max()),
				f3(kr.Mean()), f3(kr.Max()),
				f3(h2.Mean()), f3(h2.Max()),
				f3(g.Mean()), f3(g.Max()),
				f3(st.Min()), f3(st.Mean()), f3(st.Max()))
		}
	}
	return cfg.render(tb)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// optimalTree returns the (empirically) optimal bounded tree: the Gabow
// enumeration under a tree budget, falling back to depth-6
// negative-sum-exchange search under a work budget when the enumeration
// space explodes. The paper found depth 6 optimal on all 2750 random
// cases; a budget-truncated fallback is still a valid (near-optimal)
// tree, so the reported optimum column is an upper bound in the rare
// truncated cases.
func optimalTree(cfg Config, in *inst.Instance, eps float64) (*graph.Tree, error) {
	budget := cfg.GabowBudget
	if budget == 0 {
		budget = 30000
	}
	t, err := cfg.spanning("bmstg", in, engine.Params{Eps: eps, GabowBudget: budget})
	if errors.Is(err, exact.ErrBudget) {
		start, err := cfg.spanning("bkrus", in, engine.Params{Eps: eps})
		if err != nil {
			return nil, err
		}
		res, err := exchange.Improve(cfg.ctx(), in, start, core.UpperOnly(in, eps), exchange.Options{
			MaxDepth:      6,
			MaxExpansions: cfg.exchangeBudget(in.NumSinks(), 6),
		})
		if err != nil {
			return nil, err
		}
		return res.Tree, nil
	}
	return t, err
}
