// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each Table*/Figure* function runs the corresponding
// experiment and renders a plain-text table; cmd/experiments exposes
// them on the command line and bench_test.go wires them into testing.B.
//
// Absolute CPU seconds are reported for relative comparison only — the
// paper's numbers are from 1996 HP-PA/SUN workstations. Cost and path
// ratios are the reproducible quantities; see EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/steiner"
	"repro/internal/table"
)

// Config controls experiment scope.
type Config struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Ctx bounds every construction in the run; cancelling it makes the
	// experiment return ctx.Err() at the next algorithm boundary
	// (nil = context.Background()).
	Ctx context.Context
	// Quick shrinks grids and case counts so the whole suite runs in
	// seconds (used by CI and the bench harness). Full mode reproduces
	// the paper's grids and can take hours on the largest benchmarks.
	Quick bool
	// Cases overrides the number of random cases per configuration
	// (0 = paper's 50, or 10 in quick mode).
	Cases int
	// ExchangeBudget caps BKH2/BKEX exchange expansions on the large
	// benchmarks (0 = a size-dependent default). Results reached at the
	// budget are marked with a trailing '+'.
	ExchangeBudget int
	// GabowBudget caps BMSTG tree enumeration (0 = internal default).
	GabowBudget int
	// CSV renders tables as comma-separated values instead of aligned
	// text, for downstream plotting.
	CSV bool
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// spanning dispatches a spanning constructor through the engine
// registry under the configured context. Every experiment that selects
// an algorithm goes through here (or steinerTree), so there is exactly
// one dispatch path to audit.
func (c Config) spanning(name string, in *inst.Instance, p engine.Params) (*graph.Tree, error) {
	res, err := engine.Build(c.ctx(), name, in, p)
	if err != nil {
		return nil, err
	}
	return res.Tree, nil
}

// steinerTree dispatches a Steiner constructor through the engine
// registry under the configured context.
func (c Config) steinerTree(name string, in *inst.Instance, p engine.Params) (*steiner.SteinerTree, error) {
	res, err := engine.Build(c.ctx(), name, in, p)
	if err != nil {
		return nil, err
	}
	return res.Steiner, nil
}

// render writes a result table in the configured format.
func (c Config) render(tb *table.Table) error {
	if c.CSV {
		return tb.RenderCSV(c.out())
	}
	return tb.Render(c.out())
}

func (c Config) cases() int {
	if c.Cases > 0 {
		return c.Cases
	}
	if c.Quick {
		return 10
	}
	return bench.RandomCases
}

// epsGrid is the paper's ε column for Tables 2 and 3 (∞ first).
func epsGrid(quick bool) []float64 {
	if quick {
		return []float64{math.Inf(1), 1.0, 0.5, 0.2, 0.0}
	}
	return []float64{math.Inf(1), 1.5, 1.0, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0}
}

// epsLabel renders ε the way the paper prints it.
func epsLabel(eps float64) string {
	if math.IsInf(eps, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", eps)
}

// timed runs f and returns its result along with elapsed seconds.
func timed[T any](f func() (T, error)) (T, float64, error) {
	start := time.Now()
	v, err := f()
	return v, time.Since(start).Seconds(), nil2(err)
}

func nil2(err error) error { return err }

// ratios computes the paper's two quality columns for a tree: the
// performance ratio cost/cost(MST) and the path ratio radius/R.
func ratios(t *graph.Tree, in *inst.Instance, mstCost float64) (perf, path float64) {
	perf = t.Cost() / mstCost
	path = t.Radius(graph.Source) / in.R()
	return perf, path
}

// mstCostOf computes the MST reference cost of an instance.
func mstCostOf(in *inst.Instance) float64 {
	return mst.Kruskal(in.DistMatrix()).Cost()
}

// exchangeBudget picks an exchange expansion budget for an instance
// size and search depth. Depth-2 searches on small nets converge fast
// and run unlimited; deeper or larger searches are exponential and get
// a budget.
func (c Config) exchangeBudget(sinks, depth int) int {
	if c.ExchangeBudget > 0 {
		return c.ExchangeBudget
	}
	if depth <= 2 && sinks <= 100 {
		return 0 // unlimited
	}
	if c.Quick {
		return 100000
	}
	if depth > 2 {
		return 5000000 // deep searches: keep the per-call tail bounded
	}
	return 50000000
}

// bkh2Budget is the depth-2 budget.
func (c Config) bkh2Budget(sinks int) int { return c.exchangeBudget(sinks, 2) }

// bkh2 runs BKRUS + depth-2 exchange with the configured budget,
// reporting whether the search was truncated. The engine's bkh2
// constructor runs the same pipeline but drops the truncation flag, so
// the exchange layer is driven directly here.
func (c Config) bkh2(in *inst.Instance, eps float64) (*graph.Tree, bool, error) {
	start, err := c.spanning("bkrus", in, engine.Params{Eps: eps})
	if err != nil {
		return nil, false, err
	}
	res, err := exchange.Improve(c.ctx(), in, start, core.UpperOnly(in, eps), exchange.Options{
		MaxDepth:      2,
		MaxExpansions: c.bkh2Budget(in.NumSinks()),
	})
	if err != nil {
		return nil, false, err
	}
	return res.Tree, res.Truncated, nil
}
