package experiments

import (
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/table"
)

// lubGrid is the (ε1, ε2) grid of the paper's Table 5.
func lubGrid(quick bool) (eps1, eps2 []float64) {
	if quick {
		return []float64{0.0, 0.3, 0.7}, []float64{0.3, 1.0, 2.0}
	}
	return []float64{0.0, 0.1, 0.3, 0.5, 0.7, 1.0},
		[]float64{0.0, 0.1, 0.3, 0.5, 1.0, 1.5, 2.0}
}

// Table5 reproduces the paper's Table 5: lower and upper bounded BKRUS.
// For each benchmark and (ε1, ε2) pair it reports s — the ratio of the
// longest over the shortest source-sink path (1.0 = zero clock skew) —
// and r — the routing cost over the MST. Infeasible combinations print
// "-", as many are (the paper notes node-branching spanning heuristics
// cannot satisfy every window).
func Table5(cfg Config) error {
	names := []string{"p1", "p2", "p3", "p4"}
	if !cfg.Quick {
		names = append(names, "pr1", "pr2", "r1", "r2", "r3", "r4", "r5")
	}
	eps1s, eps2s := lubGrid(cfg.Quick)
	cols := []string{"eps1", "eps2"}
	for _, n := range names {
		cols = append(cols, n+".s", n+".r")
	}
	tb := table.New("Table 5: lower and upper bounded BKRUS (s = skew ratio, r = cost/MST)", cols...)
	type entry struct {
		in      *inst.Instance
		mstCost float64
	}
	ins := make(map[string]entry, len(names))
	for _, n := range names {
		in, _ := bench.ByName(n)
		ins[n] = entry{in: in, mstCost: mstCostOf(in)}
	}
	for _, e1 := range eps1s {
		for _, e2 := range eps2s {
			// Infeasible windows print "-", so cancellation must be
			// surfaced at the row boundary.
			if err := cfg.ctx().Err(); err != nil {
				return err
			}
			row := []interface{}{fmt.Sprintf("%.1f", e1), fmt.Sprintf("%.1f", e2)}
			for _, n := range names {
				en := ins[n]
				t, err := cfg.spanning("bkruslu", en.in, engine.Params{Eps1: e1, Eps2: e2})
				if err != nil {
					row = append(row, "-", "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", skew(t)), fmt.Sprintf("%.2f", t.Cost()/en.mstCost))
			}
			tb.AddRow(row...)
		}
	}
	return cfg.render(tb)
}

// skew returns longest/shortest source-sink path length of a tree.
func skew(t *graph.Tree) float64 {
	d := t.PathLengthsFrom(graph.Source)
	longest, shortest := 0.0, math.Inf(1)
	for v := 1; v < t.N; v++ {
		if d[v] > longest {
			longest = d[v]
		}
		if d[v] < shortest {
			shortest = d[v]
		}
	}
	if shortest == 0 {
		return math.Inf(1)
	}
	return longest / shortest
}
