package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Out: buf, Quick: true, Cases: 3}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p1", "p4", "20.4", "R", "r"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// the p1 pathology: at eps=0 every method's perf ratio is high
	if !strings.Contains(out, "p1") || !strings.Contains(out, "inf") {
		t.Errorf("Table2 incomplete:\n%s", out)
	}
	// at eps=inf everything is the MST: perf ratio 1.000 must appear
	if !strings.Contains(out, "1.000") {
		t.Errorf("Table2 missing unit ratios:\n%s", out)
	}
}

func TestTable3Quick(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.ExchangeBudget = 2000
	if err := Table3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pr1") || !strings.Contains(out, "r1") {
		t.Errorf("Table3 missing benchmarks:\n%s", out)
	}
	if !strings.Contains(out, "reduction%") {
		t.Errorf("Table3 missing reduction column:\n%s", out)
	}
}

func TestTable4Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BP.ave", "BRBC.max", "ST.min", "5", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	var buf bytes.Buffer
	if err := Table5(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p1.s") || !strings.Contains(out, "p4.r") {
		t.Errorf("Table5 missing columns:\n%s", out)
	}
	// infeasible combos must exist on the special benchmarks
	if !strings.Contains(out, "-") {
		t.Errorf("Table5 has no infeasible combinations (suspicious):\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	for name, f := range map[string]func(Config) error{
		"f1": Figure1, "f9": Figure9, "f10": Figure10,
		"f11": Figure11, "f12": Figure12, "f13": Figure13,
	} {
		var buf bytes.Buffer
		if err := f(quickCfg(&buf)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestFigure13RatioGrows(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure13(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	// quick mode prints N=4 and N=8; the 8-sink ratio must be ~7.9
	out := buf.String()
	if !strings.Contains(out, "7.9") {
		t.Errorf("Figure 13 ratio for N=8 not ~7.9:\n%s", out)
	}
}

func TestDepthStatsQuick(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Quick: true, Cases: 2}
	if err := DepthStats(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimal%") {
		t.Errorf("DepthStats missing column:\n%s", out)
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	if err := Run("1", cfg); err != nil {
		t.Fatal(err)
	}
	err := Run("zzz", cfg)
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	for _, id := range IDs() {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("unknown-id error does not mention %q: %v", id, err)
		}
	}
	if err := Run("f13", cfg); err != nil {
		t.Fatal(err)
	}
}

// A cancelled Config.Ctx must abort an experiment with ctx.Err() rather
// than completing on stale data or masking the cancellation as a table
// cell.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.Ctx = ctx
	for _, id := range []string{"f9", "f12", "2", "lemmas"} {
		if err := Run(id, cfg); !errors.Is(err, context.Canceled) {
			t.Errorf("Run(%q) with cancelled ctx returned %v, want context.Canceled", id, err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.out() == nil {
		t.Error("nil Out should map to a discard writer")
	}
	if c.cases() != 50 {
		t.Errorf("full-mode cases = %d, want 50", c.cases())
	}
	if (Config{Quick: true}).cases() != 10 {
		t.Error("quick-mode cases should be 10")
	}
	if (Config{Cases: 7}).cases() != 7 {
		t.Error("explicit cases ignored")
	}
	if c.bkh2Budget(50) != 0 {
		t.Error("small nets should be unlimited")
	}
	if (Config{Quick: true}).bkh2Budget(500) == 0 {
		t.Error("large nets need a budget in quick mode")
	}
	if (Config{ExchangeBudget: 9}).bkh2Budget(500) != 9 {
		t.Error("explicit budget ignored")
	}
}

func TestLemmaStatsQuick(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Quick: true, Cases: 3}
	if err := LemmaStats(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trees.on") {
		t.Errorf("LemmaStats missing column:\n%s", buf.String())
	}
}

func TestElmoreStatsQuick(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Quick: true, Cases: 3}
	if err := ElmoreStats(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "strong") || !strings.Contains(out, "weak") {
		t.Errorf("ElmoreStats missing drivers:\n%s", out)
	}
}

func TestCSVMode(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Quick: true, Cases: 2, CSV: true}
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bench,#pts") {
		t.Errorf("CSV header missing:\n%s", buf.String())
	}
}
