package experiments

import (
	"repro/internal/bench"
	"repro/internal/delay"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/table"
)

// ElmoreStats characterizes the §3.2 delay-bounded construction, which
// the paper describes but does not table: across random nets and driver
// strengths, the cost of BKRUSElmore relative to the MST and the star,
// and its worst delay relative to the bound. The MST column shows why
// wirelength alone is a poor proxy — its delay ratio routinely exceeds
// the bound that BKRUSElmore meets by construction.
func ElmoreStats(cfg Config) error {
	tb := table.New("Elmore-bounded BKRUS on random nets (16 sinks)",
		"driver", "eps", "cost/MST", "cost/star", "delay/R", "MST.delay/R")
	cases := cfg.cases()
	type driver struct {
		name string
		m    delay.Model
	}
	drivers := []driver{
		{"strong", delay.Model{RUnit: 0.1, CUnit: 0.2, RDriver: 0.2, CDriver: 1}},
		{"weak", delay.Model{RUnit: 0.1, CUnit: 0.2, RDriver: 3, CDriver: 1}},
	}
	epsGrid := []float64{0.0, 0.2, 0.5, 1.0}
	if cfg.Quick {
		epsGrid = []float64{0.0, 0.5}
	}
	for _, dr := range drivers {
		for _, eps := range epsGrid {
			var costMST, costStar, delayR, mstDelayR stats.Acc
			for k := 0; k < cases; k++ {
				if err := cfg.ctx().Err(); err != nil {
					return err
				}
				in := bench.RandomCase(16, k)
				m := dr.m
				starR := delay.StarR(in, m)
				t, err := cfg.spanning("elmore", in, engine.Params{Eps: eps, RC: m})
				if err != nil {
					continue // never happens since the star fallback
				}
				mstTree, err := cfg.spanning("mst", in, engine.Params{})
				if err != nil {
					return err
				}
				dm := in.DistMatrix()
				var starCost float64
				for v := 1; v < in.N(); v++ {
					starCost += dm.At(graph.Source, v)
				}
				costMST.Add(t.Cost() / mstTree.Cost())
				costStar.Add(t.Cost() / starCost)
				delayR.Add(delay.SourceRadius(t, m) / starR)
				mstDelayR.Add(delay.SourceRadius(mstTree, m) / starR)
			}
			tb.AddRow(dr.name, epsLabel(eps),
				costMST.Mean(), costStar.Mean(), delayR.Mean(), mstDelayR.Mean())
		}
	}
	return cfg.render(tb)
}
