package experiments

import (
	"errors"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/stats"
	"repro/internal/table"
)

// LemmaStats quantifies the paper's Lemma 4.1-4.3 preprocessing: how many
// candidate edges survive, how many spanning trees the exact enumeration
// pops before reaching the optimum, and the peak heap size — with and
// without the filters, averaged over random nets per ε.
func LemmaStats(cfg Config) error {
	tb := table.New("Lemma 4.1-4.3 ablation on the exact enumeration (random 10-sink nets)",
		"eps", "edges.on", "edges.off", "trees.on", "trees.off", "heap.on", "heap.off", "budget.off%")
	cases := cfg.cases()
	epsGrid := []float64{0.0, 0.1, 0.3, 0.5}
	if cfg.Quick {
		epsGrid = []float64{0.0, 0.3}
	}
	budget := cfg.GabowBudget
	if budget == 0 {
		budget = 30000
	}
	for _, eps := range epsGrid {
		var edgesOn, edgesOff, treesOn, treesOff, heapOn, heapOff stats.Acc
		blown := 0
		for k := 0; k < cases; k++ {
			in := bench.RandomCase(10, k)
			b := core.UpperOnly(in, eps)
			_, on, err := exact.BMSTGWithStats(cfg.ctx(), in, b, exact.Options{MaxTrees: budget})
			if err != nil {
				if cerr := cfg.ctx().Err(); cerr != nil {
					return cerr
				}
				continue // budget blow with lemmas is very rare; skip the pair
			}
			_, off, err := exact.BMSTGWithStats(cfg.ctx(), in, b, exact.Options{MaxTrees: budget, DisableLemmas: true})
			if errors.Is(err, exact.ErrBudget) {
				blown++
				// count the truncated run's work anyway: it is a lower bound
			} else if err != nil {
				continue
			}
			edgesOn.Add(float64(on.CandidateEdges))
			edgesOff.Add(float64(off.CandidateEdges))
			treesOn.Add(float64(on.TreesPopped))
			treesOff.Add(float64(off.TreesPopped))
			heapOn.Add(float64(on.PeakHeap))
			heapOff.Add(float64(off.PeakHeap))
		}
		tb.AddRow(epsLabel(eps),
			edgesOn.Mean(), edgesOff.Mean(),
			treesOn.Mean(), treesOff.Mean(),
			heapOn.Mean(), heapOff.Mean(),
			100*float64(blown)/float64(cases))
	}
	return cfg.render(tb)
}
