// Package viz renders routing trees as standalone SVG documents, so the
// constructions can be inspected visually: terminals, the source, tree
// edges (as L-shaped rectilinear wires for Manhattan nets), Steiner
// segments, and an optional Hanan grid underlay.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/steiner"
)

// Style controls the rendered appearance. The zero value is unusable;
// start from DefaultStyle.
type Style struct {
	Width     int     // canvas width in pixels
	Margin    float64 // canvas margin in pixels
	WireColor string
	WireWidth float64
	SinkColor string
	SinkR     float64
	SrcColor  string
	SrcR      float64
	GridColor string // Hanan grid underlay ("" = none)
	Rectilin  bool   // draw spanning edges as L-shapes instead of straight lines
}

// DefaultStyle returns a readable default appearance.
func DefaultStyle() Style {
	return Style{
		Width:     640,
		Margin:    24,
		WireColor: "#1f77b4",
		WireWidth: 2,
		SinkColor: "#d62728",
		SinkR:     4,
		SrcColor:  "#2ca02c",
		SrcR:      6,
	}
}

// transform maps plane coordinates onto the SVG canvas.
type transform struct {
	scale         float64
	dx, dy        float64
	width, height float64
}

func newTransform(b geom.BBox, style Style) transform {
	w := math.Max(b.Width(), 1e-9)
	h := math.Max(b.Height(), 1e-9)
	inner := float64(style.Width) - 2*style.Margin
	scale := inner / w
	if hScale := inner / h; hScale < scale {
		scale = hScale
	}
	return transform{
		scale:  scale,
		dx:     style.Margin - b.MinX*scale,
		dy:     style.Margin + b.MaxY*scale, // flip y: SVG grows downward
		width:  w*scale + 2*style.Margin,
		height: h*scale + 2*style.Margin,
	}
}

func (t transform) x(v float64) float64 { return t.dx + v*t.scale }
func (t transform) y(v float64) float64 { return t.dy - v*t.scale }

// Tree renders a spanning tree over the instance's terminals.
func Tree(w io.Writer, in *inst.Instance, tr *graph.Tree, style Style) error {
	tf := newTransform(geom.Bounds(in.Points()), style)
	var b strings.Builder
	openSVG(&b, tf)
	for _, e := range tr.Edges {
		p, q := in.Point(e.U), in.Point(e.V)
		if style.Rectilin && in.Metric() == geom.Manhattan && !geom.Eq(p.X, q.X) && !geom.Eq(p.Y, q.Y) {
			corner := geom.Point{X: p.X, Y: q.Y}
			wire(&b, tf, p, corner, style)
			wire(&b, tf, corner, q, style)
		} else {
			wire(&b, tf, p, q, style)
		}
	}
	terminals(&b, tf, in, style)
	closeSVG(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

// Steiner renders a Steiner tree with its grid segments, optionally over
// the Hanan grid.
func Steiner(w io.Writer, in *inst.Instance, st *steiner.SteinerTree, style Style) error {
	tf := newTransform(geom.Bounds(in.Points()), style)
	var b strings.Builder
	openSVG(&b, tf)
	g := st.Grid()
	if style.GridColor != "" {
		for _, x := range g.Xs {
			line(&b, tf, geom.Point{X: x, Y: g.Ys[0]}, geom.Point{X: x, Y: g.Ys[len(g.Ys)-1]}, style.GridColor, 0.5)
		}
		for _, y := range g.Ys {
			line(&b, tf, geom.Point{X: g.Xs[0], Y: y}, geom.Point{X: g.Xs[len(g.Xs)-1], Y: y}, style.GridColor, 0.5)
		}
	}
	for _, e := range st.Edges() {
		wire(&b, tf, g.Coord(e.U), g.Coord(e.V), style)
	}
	terminals(&b, tf, in, style)
	closeSVG(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func openSVG(b *strings.Builder, tf transform) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		tf.width, tf.height, tf.width, tf.height)
	fmt.Fprintf(b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
}

func closeSVG(b *strings.Builder) { b.WriteString("</svg>\n") }

func wire(b *strings.Builder, tf transform, p, q geom.Point, style Style) {
	line(b, tf, p, q, style.WireColor, style.WireWidth)
}

func line(b *strings.Builder, tf transform, p, q geom.Point, color string, width float64) {
	fmt.Fprintf(b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f" stroke-linecap="round"/>`+"\n",
		tf.x(p.X), tf.y(p.Y), tf.x(q.X), tf.y(q.Y), color, width)
}

func terminals(b *strings.Builder, tf transform, in *inst.Instance, style Style) {
	for i := 1; i < in.N(); i++ {
		p := in.Point(i)
		fmt.Fprintf(b, `<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s"/>`+"\n",
			tf.x(p.X), tf.y(p.Y), style.SinkR, style.SinkColor)
	}
	s := in.Source()
	fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		tf.x(s.X)-style.SrcR, tf.y(s.Y)-style.SrcR, 2*style.SrcR, 2*style.SrcR, style.SrcColor)
}
