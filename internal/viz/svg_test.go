package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/steiner"
)

func fixtureInstance() *inst.Instance {
	return inst.MustNew(geom.Point{X: 0, Y: 0}, []geom.Point{
		{X: 10, Y: 0}, {X: 5, Y: 8}, {X: 2, Y: 3},
	}, geom.Manhattan)
}

func TestTreeSVGWellFormed(t *testing.T) {
	in := fixtureInstance()
	tr, err := core.BKRUS(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Tree(&buf, in, tr, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	if strings.Count(out, "<line") < len(tr.Edges) {
		t.Errorf("expected at least %d wire lines", len(tr.Edges))
	}
	if strings.Count(out, "<circle") != in.NumSinks() {
		t.Errorf("expected %d sink circles", in.NumSinks())
	}
	if strings.Count(out, "<rect") != 2 { // background + source marker
		t.Errorf("expected background and source rects, got %d", strings.Count(out, "<rect"))
	}
}

func TestTreeSVGRectilinear(t *testing.T) {
	in := fixtureInstance()
	tr, err := core.BKRUS(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	style := DefaultStyle()
	style.Rectilin = true
	var straight, rect bytes.Buffer
	if err := Tree(&straight, in, tr, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	if err := Tree(&rect, in, tr, style); err != nil {
		t.Fatal(err)
	}
	// at least one diagonal edge exists in the fixture, so the
	// rectilinear rendering must emit more segments
	if strings.Count(rect.String(), "<line") <= strings.Count(straight.String(), "<line") {
		t.Error("rectilinear rendering should split diagonal edges into L-shapes")
	}
}

func TestSteinerSVGWithGrid(t *testing.T) {
	in := fixtureInstance()
	st, err := steiner.BKST(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	style := DefaultStyle()
	style.GridColor = "#eeeeee"
	var buf bytes.Buffer
	if err := Steiner(&buf, in, st, style); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	grid := st.Grid()
	minLines := len(st.Edges()) + grid.Cols() + grid.Rows()
	if strings.Count(out, "<line") < minLines {
		t.Errorf("expected >= %d lines (wires + grid), got %d", minLines, strings.Count(out, "<line"))
	}
}

func TestTransformDegenerate(t *testing.T) {
	// all points identical: transform must not divide by zero
	in := inst.MustNew(geom.Point{X: 1, Y: 1}, []geom.Point{{X: 1, Y: 1}}, geom.Manhattan)
	tr, err := core.BKRUS(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Tree(&buf, in, tr, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("degenerate transform produced NaN/Inf coordinates")
	}
}

type fakeGrid struct {
	cols, rows int
	data       []int
}

func (f fakeGrid) At(c, r int) int { return f.data[r*f.cols+c] }
func (f fakeGrid) MaxDemand() int {
	m := 0
	for _, d := range f.data {
		if d > m {
			m = d
		}
	}
	return m
}

func TestHeatmap(t *testing.T) {
	g := fakeGrid{cols: 2, rows: 2, data: []int{0, 1, 2, 4}}
	var buf bytes.Buffer
	if err := Heatmap(&buf, g, 2, 2, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<rect") != 5 { // background + 4 cells
		t.Errorf("rect count = %d", strings.Count(out, "<rect"))
	}
	if !strings.Contains(out, "#ffffff") { // idle cell stays white
		t.Error("idle cell not white")
	}
	if !strings.Contains(out, "#d62728") { // max cell fully saturated
		t.Error("max cell not saturated")
	}
	if strings.Count(out, "<text") != 4 { // small grid overlays values
		t.Errorf("text overlays = %d", strings.Count(out, "<text"))
	}
	if err := Heatmap(&buf, g, 0, 2, DefaultStyle()); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	g := fakeGrid{cols: 1, rows: 1, data: []int{0}}
	var buf bytes.Buffer
	if err := Heatmap(&buf, g, 1, 1, DefaultStyle()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("zero-demand grid produced NaN")
	}
}
