package viz

import (
	"fmt"
	"io"
	"strings"
)

// HeatGrid is the minimal view of a congestion map the heatmap renderer
// needs; internal/router's CongestionMap satisfies it.
type HeatGrid interface {
	At(col, row int) int
	MaxDemand() int
}

// Heatmap renders a gcell demand grid as an SVG heatmap: white for idle
// cells through saturated red for the most congested cell, with cell
// demand values overlaid when the grid is small enough to read.
func Heatmap(w io.Writer, g HeatGrid, cols, rows int, style Style) error {
	if cols <= 0 || rows <= 0 {
		return fmt.Errorf("viz: invalid heatmap grid %dx%d", cols, rows)
	}
	cell := (float64(style.Width) - 2*style.Margin) / float64(cols)
	width := float64(style.Width)
	height := cell*float64(rows) + 2*style.Margin
	maxD := g.MaxDemand()

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			d := g.At(c, r)
			x := style.Margin + float64(c)*cell
			// flip rows so row 0 (lowest y) renders at the bottom
			y := style.Margin + float64(rows-1-r)*cell
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#ccc" stroke-width="0.5"/>`+"\n",
				x, y, cell, cell, heatColor(d, maxD))
			if cols <= 24 && rows <= 24 {
				fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-size="%.1f" text-anchor="middle" fill="#333">%d</text>`+"\n",
					x+cell/2, y+cell/2+3, cell/3, d)
			}
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// heatColor maps demand onto a white-to-red ramp.
func heatColor(d, maxD int) string {
	if maxD == 0 || d == 0 {
		return "#ffffff"
	}
	f := float64(d) / float64(maxD)
	// white (255,255,255) -> red (214,39,40)
	r := 255 - int(f*float64(255-214))
	g := 255 - int(f*float64(255-39))
	b := 255 - int(f*float64(255-40))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}
