package serve

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/steiner"
)

// Point is a terminal location in the request/response JSON.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BuildRequest is the POST /v1/build body: a batch of nets built in one
// request under one deadline. SERVING.md is the API reference.
type BuildRequest struct {
	// TimeoutMS bounds the whole request (admission wait included) in
	// milliseconds. 0 means the server default; values above the server
	// maximum are clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Nets are built in order; the response lists results in the same
	// order.
	Nets []NetRequest `json:"nets"`
}

// NetRequest is one net of a batch: an instance (source, sinks, metric)
// plus the constructor name and its parameters, mirroring engine.Params
// field for field.
type NetRequest struct {
	// Name labels the net in results and error messages. Empty means
	// "net <index>".
	Name string `json:"name,omitempty"`
	// Metric is "l1"/"manhattan" (default) or "l2"/"euclidean".
	Metric string  `json:"metric,omitempty"`
	Source Point   `json:"source"`
	Sinks  []Point `json:"sinks"`
	// Algo is a constructor name from the engine registry (GET
	// /v1/algos lists them).
	Algo string `json:"algo"`

	Eps     float64 `json:"eps,omitempty"`
	Eps1    float64 `json:"eps1,omitempty"`
	Eps2    float64 `json:"eps2,omitempty"`
	C       float64 `json:"c,omitempty"`
	Depth   int     `json:"depth,omitempty"`
	XBudget int     `json:"xbudget,omitempty"`
	GBudget int     `json:"gbudget,omitempty"`

	// Workers overrides the server's construction worker count for
	// this net (engine.Params.RefreshWorkers): 0 means the server
	// default, 1 forces the serial kernels, up to MaxNetWorkers. The
	// tree is byte-identical at every setting; this only trades build
	// latency for CPU.
	Workers int `json:"workers,omitempty"`

	// EpsSweep, when non-empty, builds the net once per listed eps
	// (overriding Eps) as an engine sweep sharing one sorted-edge
	// stream; the result carries one tree per eps, in input order.
	EpsSweep []float64 `json:"eps_sweep,omitempty"`
}

// BuildResponse is the 200 body of POST /v1/build.
type BuildResponse struct {
	Results []NetResult `json:"results"`
}

// NetResult is one net's outcome: one tree, or one per eps_sweep value.
type NetResult struct {
	Name     string       `json:"name"`
	Algo     string       `json:"algo"`
	Kind     string       `json:"kind"` // "spanning" or "steiner"
	CacheHit bool         `json:"cache_hit"`
	Trees    []TreeResult `json:"trees"`
}

// TreeResult is one constructed tree with its quality metrics. Spanning
// trees carry Edges (node ids: 0 = source, i = i'th sink of the
// request); Steiner trees carry Wires (rectilinear segments between
// Hanan grid points).
type TreeResult struct {
	Eps       float64 `json:"eps"`
	Cost      float64 `json:"cost"`
	Radius    float64 `json:"radius"`
	R         float64 `json:"r"`
	PathRatio float64 `json:"path_ratio"`
	Edges     []Edge  `json:"edges,omitempty"`
	Wires     []Wire  `json:"wires,omitempty"`
}

// Edge is one spanning-tree edge between request node ids.
type Edge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// Wire is one Steiner-tree grid segment.
type Wire struct {
	From Point   `json:"from"`
	To   Point   `json:"to"`
	Len  float64 `json:"len"`
}

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// AlgosResponse is the GET /v1/algos body.
type AlgosResponse struct {
	Algos []AlgoInfo `json:"algos"`
}

// AlgoInfo describes one registered constructor.
type AlgoInfo struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Params []string `json:"params,omitempty"`
	Doc    string   `json:"doc"`
}

// parseMetric resolves the request metric name; empty defaults to L1,
// the wirelength model of the paper.
func parseMetric(s string) (geom.Metric, error) {
	switch strings.ToLower(s) {
	case "", "l1", "manhattan":
		return geom.Manhattan, nil
	case "l2", "euclidean":
		return geom.Euclidean, nil
	default:
		return 0, fmt.Errorf("unknown metric %q (want l1/manhattan or l2/euclidean)", s)
	}
}

// netLabel names a net for error messages: its Name, or its index.
func (n *NetRequest) netLabel(i int) string {
	if n.Name != "" {
		return fmt.Sprintf("net %d (%s)", i, n.Name)
	}
	return fmt.Sprintf("net %d", i)
}

// params maps the request fields onto engine.Params (Obs and Scratch
// are the server's business, not the client's; Workers merges with the
// server default in buildTrees, see Server.refreshWorkersFor).
func (n *NetRequest) params() engine.Params {
	return engine.Params{
		Eps: n.Eps, Eps1: n.Eps1, Eps2: n.Eps2, AHHKC: n.C,
		ExchangeDepth: n.Depth, ExchangeBudget: n.XBudget, GabowBudget: n.GBudget,
	}
}

// checkedNet is a validated NetRequest with its resolved constructor
// and metric, produced before any admission or building happens so a
// malformed batch is rejected whole with 400.
type checkedNet struct {
	req    *NetRequest
	label  string
	ctor   engine.Constructor
	metric geom.Metric
}

// treeResult encodes a spanning-tree build.
func treeResult(eps float64, in *inst.Instance, t *graph.Tree) TreeResult {
	out := TreeResult{
		Eps:    eps,
		Cost:   t.Cost(),
		Radius: t.Radius(graph.Source),
		R:      in.R(),
		Edges:  make([]Edge, 0, len(t.Edges)),
	}
	if out.R > 0 {
		out.PathRatio = out.Radius / out.R
	}
	for _, e := range t.Edges {
		out.Edges = append(out.Edges, Edge{U: e.U, V: e.V, W: e.W})
	}
	return out
}

// steinerResult encodes a Steiner-tree build.
func steinerResult(eps float64, in *inst.Instance, st *steiner.SteinerTree) TreeResult {
	out := TreeResult{
		Eps:    eps,
		Cost:   st.Cost(),
		Radius: st.Radius(),
		R:      in.R(),
		Wires:  make([]Wire, 0, len(st.Edges())),
	}
	if out.R > 0 {
		out.PathRatio = out.Radius / out.R
	}
	g := st.Grid()
	for _, e := range st.Edges() {
		from, to := g.Coord(e.U), g.Coord(e.V)
		out.Wires = append(out.Wires, Wire{
			From: Point{X: from.X, Y: from.Y},
			To:   Point{X: to.X, Y: to.Y},
			Len:  e.W,
		})
	}
	return out
}

// encodeResult dispatches on which tree the engine result holds.
func encodeResult(eps float64, in *inst.Instance, res engine.Result) TreeResult {
	if res.Steiner != nil {
		return steinerResult(eps, in, res.Steiner)
	}
	return treeResult(eps, in, res.Tree)
}
