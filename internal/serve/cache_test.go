package serve

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/geom"
)

func pts(xy ...float64) []geom.Point {
	out := make([]geom.Point, len(xy)/2)
	for i := range out {
		out[i] = geom.Point{X: xy[2*i], Y: xy[2*i+1]}
	}
	return out
}

func TestCacheHitAndEviction(t *testing.T) {
	c := newInstCache(2)
	src := geom.Point{}
	a := pts(1, 1, 2, 2)
	b := pts(3, 3, 4, 4)
	d := pts(5, 5, 6, 6)

	e1, hit, err := c.lookup(geom.Manhattan, src, a)
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	e2, hit, _ := c.lookup(geom.Manhattan, src, a)
	if !hit || e2 != e1 {
		t.Fatalf("second lookup must re-serve the same entry (hit=%v)", hit)
	}

	if _, _, err := c.lookup(geom.Manhattan, src, b); err != nil {
		t.Fatal(err)
	}
	// a is most recent (just re-looked-up)… touch it again, then insert a
	// third set: b must be the eviction victim.
	if _, hit, _ := c.lookup(geom.Manhattan, src, a); !hit {
		t.Fatal("a fell out of a non-full cache")
	}
	if _, _, err := c.lookup(geom.Manhattan, src, d); err != nil {
		t.Fatal(err)
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	// Check a first: a miss on b would re-insert it and evict a.
	if _, hit, _ := c.lookup(geom.Manhattan, src, a); !hit {
		t.Error("a was evicted despite being recently used")
	}
	if _, hit, _ := c.lookup(geom.Manhattan, src, b); hit {
		t.Error("b survived eviction as the least recently used entry")
	}
}

func TestCacheMetricSeparatesEntries(t *testing.T) {
	c := newInstCache(4)
	src := geom.Point{}
	sinks := pts(1, 2, 3, 4)
	e1, _, _ := c.lookup(geom.Manhattan, src, sinks)
	e2, hit, _ := c.lookup(geom.Euclidean, src, sinks)
	if hit || e1 == e2 {
		t.Error("same points under different metrics must be distinct entries")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newInstCache(0)
	src := geom.Point{}
	sinks := pts(1, 1)
	e1, hit, err := c.lookup(geom.Manhattan, src, sinks)
	if err != nil || hit || e1 == nil || e1.in == nil {
		t.Fatalf("disabled cache must still hand out a private entry: %v %v %v", e1, hit, err)
	}
	if _, hit, _ := c.lookup(geom.Manhattan, src, sinks); hit {
		t.Error("disabled cache retained an entry")
	}
	if c.len() != 0 {
		t.Errorf("len = %d, want 0", c.len())
	}
}

func TestCacheBitExactKey(t *testing.T) {
	c := newInstCache(4)
	src := geom.Point{}
	_, _, err := c.lookup(geom.Manhattan, src, pts(1, math.Copysign(0, -1)))
	if err != nil {
		t.Fatal(err)
	}
	// +0 and -0 compare equal as floats but are different request bytes:
	// the cache must treat them as distinct keys.
	if _, hit, _ := c.lookup(geom.Manhattan, src, pts(1, 0)); hit {
		t.Error("cache conflated -0 and +0 sink coordinates")
	}
}

func TestCacheRejectsBadNet(t *testing.T) {
	c := newInstCache(4)
	// Non-finite coordinate: inst.New must reject it and the cache must
	// stay empty.
	if _, _, err := c.lookup(geom.Manhattan, geom.Point{X: 1, Y: 1}, pts(math.NaN(), 2)); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if c.len() != 0 {
		t.Errorf("failed lookup left %d entries resident", c.len())
	}
}

func TestGateAdmissionOrder(t *testing.T) {
	g := newGate(1, 1)
	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.active() != 1 || g.workers() != 1 || g.queueLimit() != 1 {
		t.Fatalf("gate state after acquire: active=%d workers=%d depth=%d", g.active(), g.workers(), g.queueLimit())
	}

	type res struct {
		rel func()
		err error
	}
	second := make(chan res, 1)
	go func() {
		r, err := g.acquire(context.Background())
		second <- res{r, err}
	}()
	for i := 0; g.waiting() != 1; i++ {
		if i > 500 {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := g.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("third acquire: err = %v, want errQueueFull", err)
	}

	rel()
	got := <-second
	if got.err != nil {
		t.Fatalf("queued acquire failed: %v", got.err)
	}
	got.rel()
	if g.active() != 0 || g.waiting() != 0 {
		t.Errorf("gate not drained: active=%d waiting=%d", g.active(), g.waiting())
	}
}

func TestGateQueuedCancel(t *testing.T) {
	g := newGate(1, 4)
	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire under dead ctx: err = %v", err)
	}
	if g.waiting() != 0 {
		t.Errorf("canceled waiter still counted: %d", g.waiting())
	}
}
