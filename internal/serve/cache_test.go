package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

func pts(xy ...float64) []geom.Point {
	out := make([]geom.Point, len(xy)/2)
	for i := range out {
		out[i] = geom.Point{X: xy[2*i], Y: xy[2*i+1]}
	}
	return out
}

func TestCacheHitAndEviction(t *testing.T) {
	c := newInstCache(2, 0)
	src := geom.Point{}
	a := pts(1, 1, 2, 2)
	b := pts(3, 3, 4, 4)
	d := pts(5, 5, 6, 6)

	e1, hit, err := c.lookup(geom.Manhattan, src, a)
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	e2, hit, _ := c.lookup(geom.Manhattan, src, a)
	if !hit || e2 != e1 {
		t.Fatalf("second lookup must re-serve the same entry (hit=%v)", hit)
	}

	if _, _, err := c.lookup(geom.Manhattan, src, b); err != nil {
		t.Fatal(err)
	}
	// a is most recent (just re-looked-up)… touch it again, then insert a
	// third set: b must be the eviction victim.
	if _, hit, _ := c.lookup(geom.Manhattan, src, a); !hit {
		t.Fatal("a fell out of a non-full cache")
	}
	if _, _, err := c.lookup(geom.Manhattan, src, d); err != nil {
		t.Fatal(err)
	}
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	// Check a first: a miss on b would re-insert it and evict a.
	if _, hit, _ := c.lookup(geom.Manhattan, src, a); !hit {
		t.Error("a was evicted despite being recently used")
	}
	if _, hit, _ := c.lookup(geom.Manhattan, src, b); hit {
		t.Error("b survived eviction as the least recently used entry")
	}
}

func TestCacheMetricSeparatesEntries(t *testing.T) {
	c := newInstCache(4, 0)
	src := geom.Point{}
	sinks := pts(1, 2, 3, 4)
	e1, _, _ := c.lookup(geom.Manhattan, src, sinks)
	e2, hit, _ := c.lookup(geom.Euclidean, src, sinks)
	if hit || e1 == e2 {
		t.Error("same points under different metrics must be distinct entries")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newInstCache(0, 0)
	src := geom.Point{}
	sinks := pts(1, 1)
	e1, hit, err := c.lookup(geom.Manhattan, src, sinks)
	if err != nil || hit || e1 == nil || e1.in == nil {
		t.Fatalf("disabled cache must still hand out a private entry: %v %v %v", e1, hit, err)
	}
	if _, hit, _ := c.lookup(geom.Manhattan, src, sinks); hit {
		t.Error("disabled cache retained an entry")
	}
	if c.len() != 0 {
		t.Errorf("len = %d, want 0", c.len())
	}
}

func TestCacheBitExactKey(t *testing.T) {
	c := newInstCache(4, 0)
	src := geom.Point{}
	_, _, err := c.lookup(geom.Manhattan, src, pts(1, math.Copysign(0, -1)))
	if err != nil {
		t.Fatal(err)
	}
	// +0 and -0 compare equal as floats but are different request bytes:
	// the cache must treat them as distinct keys.
	if _, hit, _ := c.lookup(geom.Manhattan, src, pts(1, 0)); hit {
		t.Error("cache conflated -0 and +0 sink coordinates")
	}
}

func TestCacheRejectsBadNet(t *testing.T) {
	c := newInstCache(4, 0)
	// Non-finite coordinate: inst.New must reject it and the cache must
	// stay empty.
	if _, _, err := c.lookup(geom.Manhattan, geom.Point{X: 1, Y: 1}, pts(math.NaN(), 2)); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if c.len() != 0 {
		t.Errorf("failed lookup left %d entries resident", c.len())
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	c := newInstCache(16, 100)
	src := geom.Point{}
	a := pts(1, 1)
	b := pts(2, 2)
	d := pts(3, 3)

	ea, _, _ := c.lookup(geom.Manhattan, src, a)
	c.reaccount(ea, 60)
	eb, _, _ := c.lookup(geom.Manhattan, src, b)
	c.reaccount(eb, 60)
	// 120 > 100: a (older) must go, b stays, total drops to b's share.
	if got := c.bytes(); got != 60 {
		t.Fatalf("bytes = %d, want 60 after shedding a", got)
	}
	if _, hit, _ := c.lookup(geom.Manhattan, src, a); hit {
		t.Error("a survived the byte budget")
	}

	// Re-measuring the same entry must replace, not add.
	eb2, hit, _ := c.lookup(geom.Manhattan, src, b)
	if !hit || eb2 != eb {
		t.Fatal("b fell out under budget")
	}
	c.reaccount(eb, 80)
	if got := c.bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80 after re-measure", got)
	}

	// A single entry over budget stays resident (the most recent entry is
	// never shed: its bytes are live in the holder's hands regardless).
	c.reaccount(eb, 500)
	if got, n := c.bytes(), c.len(); got != 500 || n != 1 {
		t.Fatalf("oversized sole-use entry: bytes=%d len=%d", got, n)
	}
	// ...until a newer entry displaces it.
	ed, _, _ := c.lookup(geom.Manhattan, src, d)
	c.reaccount(ed, 10)
	if _, hit, _ := c.lookup(geom.Manhattan, src, b); hit {
		t.Error("oversized b survived a newer entry")
	}
	if got := c.bytes(); got > 100 {
		t.Errorf("bytes = %d, want <= budget", got)
	}

	// Reaccounting an evicted entry must not corrupt the total.
	c.reaccount(eb, 1<<30)
	if got := c.bytes(); got > 100 {
		t.Errorf("evicted entry re-entered the total: %d", got)
	}
}

// gaugeValue fetches one serve-scope gauge from /metrics.
func gaugeValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	for _, sc := range snap.Scopes {
		if sc.Name != ScopeName {
			continue
		}
		for _, g := range sc.Gauges {
			if g.Name == name {
				return g.Value
			}
		}
	}
	t.Fatalf("gauge %s/%s not in snapshot", ScopeName, name)
	return 0
}

// TestCacheByteBudgetBurst is the satellite regression test: a burst of
// distinct nets, each pinning tens of kilobytes of dense edge state,
// must not accumulate past the configured byte budget the way the
// entry-count-only cache would.
func TestCacheByteBudgetBurst(t *testing.T) {
	const budget = 200_000
	s, ts := newTestServer(t, Config{CacheSize: 1000, CacheBytes: budget})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		body := `{"nets":[` + randomNetJSON(rng, 40, "bkrus", `"eps":0.3`) + `]}`
		if code, data, _ := postBuild(t, ts.URL, body); code != http.StatusOK {
			t.Fatalf("net %d: status %d: %s", i, code, data)
		}
		if got := s.cache.bytes(); got > budget {
			t.Fatalf("net %d: cache holds %d accounted bytes, budget %d", i, got, budget)
		}
	}
	if n := s.cache.len(); n >= 12 {
		t.Errorf("all %d entries resident; the byte budget never evicted", n)
	}
	got := gaugeValue(t, ts.URL, GaugeCacheBytes)
	if got <= 0 || got > budget {
		t.Errorf("cache_bytes gauge = %g, want in (0, %d]", got, budget)
	}
}

func TestGateAdmissionOrder(t *testing.T) {
	g := newGate(1, 1)
	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.active() != 1 || g.workers() != 1 || g.queueLimit() != 1 {
		t.Fatalf("gate state after acquire: active=%d workers=%d depth=%d", g.active(), g.workers(), g.queueLimit())
	}

	type res struct {
		rel func()
		err error
	}
	second := make(chan res, 1)
	go func() {
		r, err := g.acquire(context.Background())
		second <- res{r, err}
	}()
	for i := 0; g.waiting() != 1; i++ {
		if i > 500 {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := g.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("third acquire: err = %v, want errQueueFull", err)
	}

	rel()
	got := <-second
	if got.err != nil {
		t.Fatalf("queued acquire failed: %v", got.err)
	}
	got.rel()
	if g.active() != 0 || g.waiting() != 0 {
		t.Errorf("gate not drained: active=%d waiting=%d", g.active(), g.waiting())
	}
}

func TestGateQueuedCancel(t *testing.T) {
	g := newGate(1, 4)
	rel, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire under dead ctx: err = %v", err)
	}
	if g.waiting() != 0 {
		t.Errorf("canceled waiter still counted: %d", g.waiting())
	}
}
