package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
)

// newTestServer boots a Server over httptest. The caller owns ts.Close.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postBuild(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/build", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/build: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data, resp.Header
}

// counterValue fetches one serve-scope counter from /metrics.
func counterValue(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	for _, sc := range snap.Scopes {
		if sc.Name != ScopeName {
			continue
		}
		for _, c := range sc.Counters {
			if c.Name == name {
				return c.Value
			}
		}
	}
	t.Fatalf("counter %s/%s not in snapshot", ScopeName, name)
	return 0
}

// randomNetJSON renders a seeded random net as request JSON fields.
func randomNetJSON(rng *rand.Rand, sinks int, algo, extra string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"algo":%q,"source":{"x":%g,"y":%g},"sinks":[`, algo, rng.Float64()*100, rng.Float64()*100)
	for i := 0; i < sinks; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"x":%g,"y":%g}`, rng.Float64()*100, rng.Float64()*100)
	}
	b.WriteString("]")
	if extra != "" {
		b.WriteString("," + extra)
	}
	b.WriteString("}")
	return b.String()
}

// TestBuildPinnedAgainstEngine pins the service response against a
// direct engine.Build with the same instance and parameters: the
// daemon must be a transport, never a different construction.
func TestBuildPinnedAgainstEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	src := geom.Point{X: 3, Y: 4}
	sinks := []geom.Point{{X: 50, Y: 0}, {X: 0, Y: 45}, {X: 30, Y: 30}, {X: 12, Y: 41}}
	body := `{"nets":[{"name":"pin","algo":"bkrus","eps":0.25,"metric":"l2",
		"source":{"x":3,"y":4},
		"sinks":[{"x":50,"y":0},{"x":0,"y":45},{"x":30,"y":30},{"x":12,"y":41}]}]}`

	code, data, _ := postBuild(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, data)
	}
	var got BuildResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Results) != 1 || len(got.Results[0].Trees) != 1 {
		t.Fatalf("want 1 result with 1 tree, got %+v", got)
	}

	in, err := inst.New(src, sinks, geom.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Build(context.Background(), "bkrus", in, engine.Params{Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeResult(0.25, in, res)

	gotJSON, _ := json.Marshal(got.Results[0].Trees[0])
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("served tree differs from direct engine build:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if got.Results[0].Kind != "spanning" || got.Results[0].Name != "pin" {
		t.Errorf("result header wrong: %+v", got.Results[0])
	}
}

// TestSteinerResponse checks the Steiner branch of the encoding: wires,
// not node-id edges.
func TestSteinerResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"nets":[{"algo":"bkst","eps":0.4,
		"source":{"x":0,"y":0},
		"sinks":[{"x":10,"y":0},{"x":0,"y":10},{"x":8,"y":8}]}]}`
	code, data, _ := postBuild(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, data)
	}
	var got BuildResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	r := got.Results[0]
	if r.Kind != "steiner" || len(r.Trees) != 1 {
		t.Fatalf("want one steiner tree, got %+v", r)
	}
	if len(r.Trees[0].Wires) == 0 || len(r.Trees[0].Edges) != 0 {
		t.Errorf("steiner result must carry wires, not edges: %+v", r.Trees[0])
	}
}

// TestSweepWorkerCountInvariance is the determinism contract of
// DESIGN.md §11: the same request body yields byte-identical response
// bodies whether eps sweeps run serially or on a parallel pool.
func TestSweepWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	body := `{"nets":[` + randomNetJSON(rng, 40, "bkrus", `"eps_sweep":[0,0.1,0.2,0.4,0.8,2]`) + `]}`

	_, serial := newTestServer(t, Config{SweepWorkers: 1})
	_, pooled := newTestServer(t, Config{SweepWorkers: 4})

	c1, b1, _ := postBuild(t, serial.URL, body)
	c2, b2, _ := postBuild(t, pooled.URL, body)
	if c1 != http.StatusOK || c2 != http.StatusOK {
		t.Fatalf("statuses %d %d", c1, c2)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("sweep responses differ between 1 and 4 workers:\n%s\n%s", b1, b2)
	}
}

// TestRequestWorkersInvariance pins the construction-worker contract at
// the HTTP surface: the same net built serially, under a server-side
// -refresh-workers default, and under a request-level "workers"
// override produces byte-identical response bodies — the field only
// steers hardware use, never the tree.
func TestRequestWorkersInvariance(t *testing.T) {
	netAt := func(w int) string {
		rng := rand.New(rand.NewSource(9))
		extra := `"eps":0.3`
		if w > 0 {
			extra += fmt.Sprintf(`,"workers":%d`, w)
		}
		return `{"nets":[` + randomNetJSON(rng, 40, "bkrus", extra) + `]}`
	}

	_, serial := newTestServer(t, Config{RefreshWorkers: 1})
	_, serverDefault := newTestServer(t, Config{RefreshWorkers: 2})
	_, override := newTestServer(t, Config{RefreshWorkers: 1})

	c1, want, _ := postBuild(t, serial.URL, netAt(0))
	c2, viaDefault, _ := postBuild(t, serverDefault.URL, netAt(0))
	c3, viaOverride, _ := postBuild(t, override.URL, netAt(4))
	if c1 != http.StatusOK || c2 != http.StatusOK || c3 != http.StatusOK {
		t.Fatalf("statuses %d %d %d", c1, c2, c3)
	}
	if !bytes.Equal(want, viaDefault) {
		t.Errorf("server-default workers changed the response:\n%s\n%s", want, viaDefault)
	}
	if !bytes.Equal(want, viaOverride) {
		t.Errorf("request-level workers changed the response:\n%s\n%s", want, viaOverride)
	}
}

// TestMalformedRequests walks the 400 surface: bad JSON, unknown
// fields, limit violations, unknown names.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2, MaxPoints: 5, MaxSweep: 3})
	net1 := `{"algo":"bkrus","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}`
	cases := []struct {
		name, body string
	}{
		{"invalid json", `{"nets":`},
		{"unknown field", `{"nets":[],"bogus":1}`},
		{"no nets", `{"nets":[]}`},
		{"negative timeout", `{"timeout_ms":-5,"nets":[` + net1 + `]}`},
		{"too many nets", `{"nets":[` + net1 + `,` + net1 + `,` + net1 + `]}`},
		{"no sinks", `{"nets":[{"algo":"bkrus","source":{"x":0,"y":0},"sinks":[]}]}`},
		{"too many points", `{"nets":[{"algo":"bkrus","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1},{"x":2,"y":2},{"x":3,"y":3},{"x":4,"y":4},{"x":5,"y":5}]}]}`},
		{"unknown algo", `{"nets":[{"algo":"nope","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`},
		{"unknown metric", `{"nets":[{"algo":"bkrus","metric":"l7","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`},
		{"oversized sweep", `{"nets":[{"algo":"bkrus","eps_sweep":[0.1,0.2,0.3,0.4],"source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`},
		{"negative workers", `{"nets":[{"algo":"bkrus","workers":-1,"source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`},
		{"oversized workers", `{"nets":[{"algo":"bkrus","workers":65,"source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`},
	}
	for _, c := range cases {
		code, data, _ := postBuild(t, ts.URL, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", c.name, code, data)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
			t.Errorf("%s: 400 body is not an error document: %s", c.name, data)
		}
	}
	if got := counterValue(t, ts.URL, CtrBadRequests); got != int64(len(cases)) {
		t.Errorf("bad_requests = %d, want %d", got, len(cases))
	}
}

// blockingRegistry registers a "block" constructor that parks until its
// gate channel closes (or the context dies), plus a trivial "quick"
// constructor, so admission behaviour is deterministic in tests.
func blockingRegistry(proceed <-chan struct{}) *engine.Registry {
	reg := engine.NewRegistry()
	star := func(in *inst.Instance) *graph.Tree {
		tr := graph.NewTree(in.N())
		dm := in.DistMatrix()
		for v := 1; v < in.N(); v++ {
			tr.AddEdge(0, v, dm.At(0, v))
		}
		return tr
	}
	reg.Register(engine.Info{Name: "block", Kind: engine.Spanning, Doc: "parks until released"},
		func(ctx context.Context, in *inst.Instance, p engine.Params) (engine.Result, error) {
			select {
			case <-proceed:
				return engine.Result{Tree: star(in)}, nil
			case <-ctx.Done():
				return engine.Result{}, ctx.Err()
			}
		})
	reg.Register(engine.Info{Name: "quick", Kind: engine.Spanning, Doc: "immediate star"},
		func(ctx context.Context, in *inst.Instance, p engine.Params) (engine.Result, error) {
			return engine.Result{Tree: star(in)}, nil
		})
	return reg
}

const blockNet = `{"nets":[{"algo":"block","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`

// TestDeadlineExceeded408 wires a request deadline through the context
// into a construction that never finishes on its own.
func TestDeadlineExceeded408(t *testing.T) {
	proceed := make(chan struct{}) // never closed: only the deadline ends the build
	_, ts := newTestServer(t, Config{Registry: blockingRegistry(proceed)})

	code, data, _ := postBuild(t, ts.URL, `{"timeout_ms":50,`+blockNet[1:])
	if code != http.StatusRequestTimeout {
		t.Fatalf("status %d (want 408), body %s", code, data)
	}
	if got := counterValue(t, ts.URL, CtrTimeouts); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// TestQueueFullShedding saturates a workers=1 queue=1 daemon and
// requires the third request to shed with 429 + Retry-After while the
// shed counter matches, and the admitted two to finish once released.
func TestQueueFullShedding(t *testing.T) {
	proceed := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Registry:       blockingRegistry(proceed),
		Workers:        1,
		Queue:          1,
		DefaultTimeout: 30 * time.Second,
	})

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		for i := 0; i < 500; i++ {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	type outcome struct {
		code int
		body []byte
	}
	results := make(chan outcome, 2)
	post := func() {
		code, body, _ := postBuild(t, ts.URL, blockNet)
		results <- outcome{code, body}
	}
	go post() // occupies the single worker slot
	waitFor("worker busy", func() bool { return s.gate.active() == 1 })
	go post() // waits in the queue
	waitFor("request queued", func() bool { return s.gate.waiting() == 1 })

	code, data, hdr := postBuild(t, ts.URL, blockNet) // queue full: shed
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (want 429), body %s", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := counterValue(t, ts.URL, CtrShed); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	close(proceed)
	for i := 0; i < 2; i++ {
		out := <-results
		if out.code != http.StatusOK {
			t.Errorf("admitted request %d: status %d, body %s", i, out.code, out.body)
		}
	}
	if got := counterValue(t, ts.URL, CtrRequestsOK); got != 2 {
		t.Errorf("requests_ok = %d, want 2", got)
	}
}

// TestInstanceCacheHit sends the same net twice and requires the second
// answer to come from the cached instance — flagged in the response,
// counted in the metrics, and byte-identical to the first.
func TestInstanceCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(11))
	body := `{"nets":[` + randomNetJSON(rng, 30, "bkrus", `"eps":0.2`) + `]}`

	c1, b1, _ := postBuild(t, ts.URL, body)
	c2, b2, _ := postBuild(t, ts.URL, body)
	if c1 != http.StatusOK || c2 != http.StatusOK {
		t.Fatalf("statuses %d %d", c1, c2)
	}
	var r1, r2 BuildResponse
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Results[0].CacheHit {
		t.Error("first request reported a cache hit")
	}
	if !r2.Results[0].CacheHit {
		t.Error("second request missed the instance cache")
	}
	r2.Results[0].CacheHit = false
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("cached build differs from cold build:\n%s\n%s", j1, j2)
	}
	if hits := counterValue(t, ts.URL, CtrCacheHits); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if misses := counterValue(t, ts.URL, CtrCacheMisses); misses != 1 {
		t.Errorf("cache_misses = %d, want 1", misses)
	}
}

// TestConcurrentClients hammers one daemon from many goroutines with a
// small set of distinct bodies and requires every answer to be 200 and
// byte-identical per body — the determinism contract under real
// concurrency, meant to run under -race.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, Queue: 256, DefaultTimeout: 60 * time.Second})

	rng := rand.New(rand.NewSource(23))
	bodies := []string{
		`{"nets":[` + randomNetJSON(rng, 24, "bkrus", `"eps":0.2`) + `]}`,
		`{"nets":[` + randomNetJSON(rng, 16, "mst", "") + `,` + randomNetJSON(rng, 12, "spt", "") + `]}`,
		`{"nets":[` + randomNetJSON(rng, 10, "bkst", `"eps":0.5`) + `]}`,
		`{"nets":[` + randomNetJSON(rng, 20, "bkrus", `"eps_sweep":[0.1,0.3,0.9]`) + `]}`,
	}

	const clients = 8
	const rounds = 4
	got := make([][][]byte, len(bodies))
	for i := range got {
		got[i] = make([][]byte, clients*rounds)
	}
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for bi, body := range bodies {
					resp, err := http.Post(ts.URL+"/v1/build", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err.Error()
						return
					}
					data, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("client %d: status %d err %v body %s", c, resp.StatusCode, err, data)
						return
					}
					got[bi][c*rounds+r] = data
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	for bi := range bodies {
		// cache_hit flips once the instance is resident, so compare with
		// the flag normalized.
		norm := func(data []byte) []byte {
			var r BuildResponse
			if err := json.Unmarshal(data, &r); err != nil {
				t.Fatalf("body %d: %v", bi, err)
			}
			for i := range r.Results {
				r.Results[i].CacheHit = false
			}
			out, _ := json.Marshal(r)
			return out
		}
		want := norm(got[bi][0])
		for i := 1; i < len(got[bi]); i++ {
			if !bytes.Equal(want, norm(got[bi][i])) {
				t.Fatalf("body %d: response %d differs from response 0", bi, i)
			}
		}
	}
}

// TestDrainingRejects pins the graceful-shutdown surface: healthz flips
// to 503 and new builds are refused while draining.
func TestDrainingRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	s.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	code, _, _ := postBuild(t, ts.URL, blockNet)
	if code != http.StatusServiceUnavailable {
		t.Errorf("build during drain: status %d, want 503", code)
	}
	if got := counterValue(t, ts.URL, CtrDrainRejects); got != 1 {
		t.Errorf("drain_rejects = %d, want 1", got)
	}
}

// TestAlgosEndpoint lists the default registry through the API.
func TestAlgosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/algos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got AlgosResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	names := map[string]string{}
	for _, a := range got.Algos {
		names[a.Name] = a.Kind
	}
	if names["bkrus"] != "spanning" || names["bkst"] != "steiner" {
		t.Errorf("registry listing incomplete: %v", names)
	}
	if len(got.Algos) != len(engine.Names()) {
		t.Errorf("%d algos served, registry has %d", len(got.Algos), len(engine.Names()))
	}
}

// TestMetricsSnapshotShape requires /metrics to produce a snapshot that
// the checkmetrics validator semantics accept: scopes present, gauges
// published, build timers per algo.
func TestMetricsSnapshotShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, _ := postBuild(t, ts.URL, `{"nets":[{"algo":"mst","source":{"x":0,"y":0},"sinks":[{"x":1,"y":1}]}]}`)
	if code != http.StatusOK {
		t.Fatalf("build status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	var serveScope *obs.ScopeSnapshot
	for i := range snap.Scopes {
		if snap.Scopes[i].Name == ScopeName {
			serveScope = &snap.Scopes[i]
		}
	}
	if serveScope == nil {
		t.Fatal("no serve scope in snapshot")
	}
	timers := map[string]bool{}
	for _, tm := range serveScope.Timers {
		timers[tm.Name] = tm.Count > 0
	}
	if !timers[TimerRequest] || !timers[BuildTimerName("mst")] {
		t.Errorf("request/build timers missing or empty: %v", timers)
	}
	gauges := map[string]float64{}
	for _, g := range serveScope.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges[GaugeWorkers] <= 0 || gauges[GaugeQueueLimit] <= 0 {
		t.Errorf("admission gauges not published: %v", gauges)
	}
}
