package serve

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/inst"
)

// cacheEntry is one resident instance: the immutable inst.Instance plus
// the core.Scratch whose partially drained sorted-edge stream is keyed
// to it. entry.mu serializes every use of the pair — the scratch is not
// safe for concurrent use, and neither is the instance's lazy distance
// matrix build — so concurrent requests for the same point set queue on
// the entry instead of re-sorting the edge list each.
type cacheEntry struct {
	hash   uint64
	metric geom.Metric
	pts    []geom.Point // full key material; hash collisions compare here
	// elem and bytes are cache bookkeeping, touched only under the
	// cache's mutex. elem is nil once the entry is evicted (or was never
	// resident), which is how reaccount knows to leave the byte total
	// alone.
	elem    *list.Element
	bytes   int64
	mu      sync.Mutex
	in      *inst.Instance
	scratch core.Scratch
}

// instCache is the LRU instance cache keyed by point-set hash. Repeated
// requests for the same (metric, source, sinks) re-serve one
// cacheEntry, so the drained sorted-edge prefix and the grown P-matrix
// survive across requests. Capacity counts entries; capBytes
// additionally bounds the accounted resident bytes (instance geometry
// caches plus scratch buffers, re-measured after every build), because
// entries are wildly unequal — one n=2048 dense entry outweighs
// thousands of small nets. capBytes <= 0 means unbounded, the
// historical entry-count-only behavior. A capacity <= 0 disables
// residency: lookups still return a private entry (the build path is
// uniform) but nothing is retained.
type instCache struct {
	mu       sync.Mutex
	cap      int
	capBytes int64
	total    int64 // accounted bytes across resident entries
	ents     map[uint64][]*cacheEntry
	lru      *list.List // front = most recent; values are *cacheEntry
}

func newInstCache(capacity int, capBytes int64) *instCache {
	return &instCache{
		cap:      capacity,
		capBytes: capBytes,
		ents:     map[uint64][]*cacheEntry{},
		lru:      list.New(),
	}
}

// pointSetHash is the cache key: FNV-1a over the metric tag and the
// exact float64 bit patterns of source then sinks, in order. Order
// matters by design — node ids in the response index the request's
// point list.
func pointSetHash(m geom.Metric, source geom.Point, sinks []geom.Point) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(m)
	_, _ = h.Write(buf[:1]) // fnv.Write never fails
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:]) // fnv.Write never fails
	}
	put(source.X)
	put(source.Y)
	for _, p := range sinks {
		put(p.X)
		put(p.Y)
	}
	return h.Sum64()
}

// samePoints reports bit-exact equality of the key material, resolving
// hash collisions. Bit comparison (not float ==) is deliberate: cache
// identity is "same request bytes", and it sidesteps NaN/-0 equality
// pitfalls entirely.
func samePoints(e *cacheEntry, m geom.Metric, source geom.Point, sinks []geom.Point) bool {
	if e.metric != m || len(e.pts) != len(sinks)+1 {
		return false
	}
	eq := func(a, b geom.Point) bool {
		return math.Float64bits(a.X) == math.Float64bits(b.X) &&
			math.Float64bits(a.Y) == math.Float64bits(b.Y)
	}
	if !eq(e.pts[0], source) {
		return false
	}
	for i, p := range sinks {
		if !eq(e.pts[i+1], p) {
			return false
		}
	}
	return true
}

// lookup returns the cache entry for (metric, source, sinks), creating
// and inserting it on a miss (evicting the least recently used entry
// beyond capacity). hit reports whether the entry was already resident.
// Point validation happens here via inst.New, so a malformed net never
// enters the cache. The caller must hold entry.mu while building with
// the entry's instance or scratch.
func (c *instCache) lookup(m geom.Metric, source geom.Point, sinks []geom.Point) (e *cacheEntry, hit bool, err error) {
	key := pointSetHash(m, source, sinks)
	if c.cap > 0 {
		c.mu.Lock()
		for _, cand := range c.ents[key] {
			if samePoints(cand, m, source, sinks) {
				c.lru.MoveToFront(cand.elem)
				c.mu.Unlock()
				return cand, true, nil
			}
		}
		c.mu.Unlock()
	}

	// Miss: build the instance outside the cache lock (inst.New copies
	// and validates the points).
	in, err := inst.New(source, sinks, m)
	if err != nil {
		return nil, false, err
	}
	e = &cacheEntry{hash: key, metric: m, pts: in.Points(), in: in}
	if c.cap <= 0 {
		return e, false, nil // residency disabled: private entry
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check: a racing request may have inserted the same point set
	// while we were validating.
	for _, cand := range c.ents[key] {
		if samePoints(cand, m, source, sinks) {
			c.lru.MoveToFront(cand.elem)
			return cand, true, nil
		}
	}
	e.elem = c.lru.PushFront(e)
	c.ents[key] = append(c.ents[key], e)
	for c.lru.Len() > c.cap {
		c.evictOldestLocked()
	}
	c.shedBytesLocked()
	return e, false, nil
}

// reaccount records the entry's measured resident size and sheds
// least-recently-used entries while the byte total is over budget. The
// caller holds entry.mu (so the measurement is stable); the lock order
// entry.mu → cache.mu is the only nesting of the two and lookup takes
// cache.mu alone, so the pair stays acyclic. Evicted and private
// entries (elem == nil) are not accounted.
func (c *instCache) reaccount(e *cacheEntry, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.elem == nil {
		return
	}
	c.total += bytes - e.bytes
	e.bytes = bytes
	c.shedBytesLocked()
}

// shedBytesLocked evicts from the cold end until the byte budget holds.
// The most recent entry always stays resident: it is the one a request
// is (or just was) building with, and evicting it would only thrash —
// the bytes are live in the holder's hands regardless.
func (c *instCache) shedBytesLocked() {
	if c.capBytes <= 0 {
		return
	}
	for c.total > c.capBytes && c.lru.Len() > 1 {
		c.evictOldestLocked()
	}
}

// evictOldestLocked drops the least recently used entry. The entry is
// only unlinked — a request that already holds it finishes its build on
// the private reference and the garbage collector reclaims the O(n²)
// scratch state once the last holder returns.
func (c *instCache) evictOldestLocked() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	old := c.lru.Remove(back).(*cacheEntry)
	c.total -= old.bytes
	old.elem = nil
	bucket := c.ents[old.hash]
	for i, cand := range bucket {
		if cand == old {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.ents, old.hash)
	} else {
		c.ents[old.hash] = bucket
	}
}

// len returns the number of resident entries.
func (c *instCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// bytes returns the accounted resident byte total.
func (c *instCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
