package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is the admission gate's shed signal; the handler maps it
// to 429 with a Retry-After header.
var errQueueFull = errors.New("serve: build queue is full")

// gate is the bounded worker-pool admission layer: at most `workers`
// requests build concurrently (each admitted request executes on its
// own net/http handler goroutine, so a slot is a permit, not a spawned
// worker), and at most `depth` more may wait for a slot. A request that
// finds both the slots and the queue full is shed immediately — the
// load-shedding contract that keeps latency bounded when the daemon is
// saturated.
type gate struct {
	sem    chan struct{} // capacity = workers; a held token is a build permit
	depth  int64         // max waiters beyond the active slots
	queued atomic.Int64  // current waiters (approximate under contention, never above depth)
}

// newGate returns a gate admitting `workers` concurrent builds with a
// waiting queue of `depth` requests.
func newGate(workers, depth int) *gate {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &gate{sem: make(chan struct{}, workers), depth: int64(depth)}
}

// acquire obtains a build permit, waiting in the bounded queue when all
// slots are busy. It returns errQueueFull when the queue is at depth,
// and ctx.Err() when the request deadline (or the client connection)
// expires while queued. The returned release function must be called
// exactly once after the build.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot admits immediately without touching the
	// queue accounting, so an idle daemon never sheds.
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	default:
	}
	if g.queued.Add(1) > g.depth {
		g.queued.Add(-1)
		return nil, errQueueFull
	}
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *gate) release() { <-g.sem }

// waiting returns the number of requests currently queued for a slot.
func (g *gate) waiting() int64 { return g.queued.Load() }

// active returns the number of build permits currently held.
func (g *gate) active() int { return len(g.sem) }

// workers returns the slot capacity.
func (g *gate) workers() int { return cap(g.sem) }

// queueLimit returns the configured queue depth.
func (g *gate) queueLimit() int64 { return g.depth }
