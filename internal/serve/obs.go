package serve

import (
	"repro/internal/obs"
)

// ScopeName is the obs scope the serving layer records into; see
// OBSERVABILITY.md for the catalogue and SERVING.md for how each metric
// maps onto an HTTP status.
const ScopeName = "serve"

// Serve metric names (scope "serve"). Counters accumulate over the
// daemon's lifetime; gauges describe the current admission state and
// are refreshed on every /metrics scrape.
const (
	CtrRequests     = "requests"      // /v1/build requests received
	CtrRequestsOK   = "requests_ok"   // requests answered 200
	CtrBadRequests  = "bad_requests"  // requests answered 400
	CtrShed         = "shed"          // requests answered 429 (queue full)
	CtrTimeouts     = "timeouts"      // requests answered 408 (deadline exceeded)
	CtrCanceled     = "canceled"      // requests aborted by client disconnect
	CtrDrainRejects = "drain_rejects" // requests answered 503 (draining)
	CtrBuilds       = "builds"        // individual tree constructions (sweep cells count each)
	CtrCacheHits    = "cache_hits"    // nets served from a cached instance entry
	CtrCacheMisses  = "cache_misses"  // nets that created (or bypassed) a cache entry

	GaugeWorkers      = "workers"       // configured worker-slot count
	GaugeQueueLimit   = "queue_limit"   // configured queue depth
	GaugeQueueDepth   = "queue_depth"   // requests currently waiting for a slot
	GaugeInflight     = "inflight"      // requests currently holding a slot
	GaugeCacheEntries = "cache_entries" // instance-cache entries resident
	GaugeCacheBytes   = "cache_bytes"   // accounted bytes resident in the instance cache

	TimerRequest = "request_seconds" // whole /v1/build request, admission wait included
)

// BuildTimerName returns the per-algorithm build timer name, e.g.
// "build_bkrus_seconds" — one timer per constructor name actually
// served, created on first use.
func BuildTimerName(algo string) string { return "build_" + algo + "_seconds" }

// Counters is the serving layer's obs-backed instrument set. Like the
// construction layers' counter sets, every recording call site is
// gated on the set pointer so the handlers stay one pointer test when
// observation is off.
type Counters struct {
	Requests     *obs.Counter
	RequestsOK   *obs.Counter
	BadRequests  *obs.Counter
	Shed         *obs.Counter
	Timeouts     *obs.Counter
	Canceled     *obs.Counter
	DrainRejects *obs.Counter
	Builds       *obs.Counter
	CacheHits    *obs.Counter
	CacheMisses  *obs.Counter

	Workers      *obs.Gauge
	QueueLimit   *obs.Gauge
	QueueDepth   *obs.Gauge
	Inflight     *obs.Gauge
	CacheEntries *obs.Gauge
	CacheBytes   *obs.Gauge

	Request *obs.Timer
}

// NewCounters resolves the serve instrument set inside sc (nil sc
// yields a standalone set not attached to any registry).
func NewCounters(sc *obs.Scope) *Counters {
	return &Counters{
		Requests:     sc.Counter(CtrRequests),
		RequestsOK:   sc.Counter(CtrRequestsOK),
		BadRequests:  sc.Counter(CtrBadRequests),
		Shed:         sc.Counter(CtrShed),
		Timeouts:     sc.Counter(CtrTimeouts),
		Canceled:     sc.Counter(CtrCanceled),
		DrainRejects: sc.Counter(CtrDrainRejects),
		Builds:       sc.Counter(CtrBuilds),
		CacheHits:    sc.Counter(CtrCacheHits),
		CacheMisses:  sc.Counter(CtrCacheMisses),

		Workers:      sc.Gauge(GaugeWorkers),
		QueueLimit:   sc.Gauge(GaugeQueueLimit),
		QueueDepth:   sc.Gauge(GaugeQueueDepth),
		Inflight:     sc.Gauge(GaugeInflight),
		CacheEntries: sc.Gauge(GaugeCacheEntries),
		CacheBytes:   sc.Gauge(GaugeCacheBytes),

		Request: sc.Timer(TimerRequest),
	}
}
