// Package serve is the tree-construction service layer behind the
// bmstreed daemon: a stdlib-only HTTP/JSON front end over the
// internal/engine constructor registry, built for sustained concurrent
// traffic.
//
// The package composes the library pieces that already exist into a
// serving pipeline:
//
//   - dispatch: every net of a POST /v1/build batch resolves its
//     constructor through the engine registry, so the daemon serves all
//     registered algorithms with no per-algorithm code;
//   - deadlines: each request runs under a context deadline (client
//     requested, server clamped) that the construction loops poll via
//     internal/cancel stride checkers, so a cancelled build stops
//     mid-scan, not at the next net;
//   - admission: a bounded worker-slot gate with a bounded waiting
//     queue; a saturated daemon sheds with 429 + Retry-After instead of
//     letting latency grow without bound;
//   - reuse: an LRU instance cache keyed by point-set hash pins one
//     core.Scratch per resident instance, so repeated requests for the
//     same net re-serve the partially drained sorted-edge prefix
//     instead of re-sorting O(n²) edges, and ε-sweeps run through the
//     engine sweep machinery (engine.SweepParallel when multi-core);
//   - observation: every admission decision and build lands in an
//     internal/obs registry served at /metrics, with /debug/pprof for
//     profiles.
//
// Handlers are plain http.Handler values (see Server.Handler), so the
// whole pipeline is unit-testable with httptest; cmd/bmstreed is a thin
// flag-parsing main around this package. SERVING.md is the operator
// runbook and API reference; DESIGN.md §11 documents the architecture
// and the determinism contract (same request body → byte-identical
// response body, regardless of worker counts).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cancel"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Defaults for the zero Config fields. SERVING.md's tuning section
// explains how to size each for a deployment.
const (
	DefaultQueue     = 64
	DefaultCacheSize = 32
	DefaultMaxBatch  = 256
	DefaultMaxPoints = 2048
	DefaultMaxSweep  = 64
	DefaultTimeout   = 5 * time.Second
	DefaultMaxWait   = 60 * time.Second
	DefaultMaxBody   = 8 << 20
	// MaxNetWorkers caps the per-net "workers" request field; a larger
	// ask is a client error, not a bigger goroutine fan-out.
	MaxNetWorkers = 64
)

// Config sizes the serving pipeline. The zero value of every field is a
// usable default; negative Queue and CacheSize mean "none" (shed when
// all workers are busy / retain no instances).
type Config struct {
	// Registry resolves constructor names; nil means engine.Default().
	Registry *engine.Registry
	// Workers bounds concurrently building requests. 0 means
	// runtime.GOMAXPROCS.
	Workers int
	// Queue bounds requests waiting for a worker slot beyond Workers.
	// 0 means DefaultQueue; negative means no queue (immediate shed).
	Queue int
	// CacheSize bounds resident instance-cache entries (each pins O(n²)
	// sorted-edge state). 0 means DefaultCacheSize; negative disables
	// the cache.
	CacheSize int
	// CacheBytes additionally bounds the accounted bytes resident in the
	// instance cache (instance geometry caches plus scratch buffers,
	// re-measured after every build). 0 or negative means unbounded —
	// the historical entry-count-only behavior.
	CacheBytes int64
	// SweepWorkers is the worker count handed to engine.SweepParallel
	// for eps_sweep nets. 0 means runtime.GOMAXPROCS; 1 forces the
	// serial sweep (byte-identical results either way).
	SweepWorkers int
	// RefreshWorkers bounds the construction inner-loop workers handed
	// to each build (engine.Params.RefreshWorkers): the BKRUS P-matrix
	// refresh, BMST_G branch solves, and BKST pair seeding. 0 defers to
	// the per-layer knobs (GOMAXPROCS by default), 1 forces the serial
	// kernels; trees are byte-identical at every count. A request may
	// override per net with the "workers" field. Under eps_sweep the
	// engine clamps the per-cell value so sweep workers × refresh
	// workers never exceeds the budget.
	RefreshWorkers int
	// MaxBatch bounds nets per request (0 = DefaultMaxBatch).
	MaxBatch int
	// MaxPoints bounds terminals per net (0 = DefaultMaxPoints).
	MaxPoints int
	// MaxSweep bounds eps_sweep values per net (0 = DefaultMaxSweep).
	MaxSweep int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (0 = the DefaultTimeout constant).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (0 = DefaultMaxWait).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body (0 = DefaultMaxBody).
	MaxBodyBytes int64
	// Obs receives the serve-scope metrics plus every construction
	// layer's scopes; nil means a fresh private registry (so /metrics
	// always serves something).
	Obs *obs.Registry
}

// Server is the serving pipeline: admission gate, instance cache, and
// the HTTP handlers. Construct with New; the zero value is not usable.
type Server struct {
	reg   *engine.Registry
	obsd  *obs.Registry
	scope *obs.Scope
	c     *Counters

	gate  *gate
	cache *instCache

	sweepWorkers   int
	refreshWorkers int
	maxBatch       int
	maxPoints      int
	maxSweep       int
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxBody        int64

	draining atomic.Bool
}

// New builds a Server from cfg, resolving zero fields to the documented
// defaults.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = engine.Default()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := cfg.Queue
	switch {
	case queue == 0:
		queue = DefaultQueue
	case queue < 0:
		queue = 0
	}
	cacheSize := cfg.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = DefaultCacheSize
	case cacheSize < 0:
		cacheSize = 0
	}
	sweepWorkers := cfg.SweepWorkers
	if sweepWorkers <= 0 {
		sweepWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		reg:            reg,
		gate:           newGate(workers, queue),
		cache:          newInstCache(cacheSize, cfg.CacheBytes),
		sweepWorkers:   sweepWorkers,
		refreshWorkers: cfg.RefreshWorkers,
		maxBatch:       orDefault(cfg.MaxBatch, DefaultMaxBatch),
		maxPoints:      orDefault(cfg.MaxPoints, DefaultMaxPoints),
		maxSweep:       orDefault(cfg.MaxSweep, DefaultMaxSweep),
		defaultTimeout: orDefaultDur(cfg.DefaultTimeout, DefaultTimeout),
		maxTimeout:     orDefaultDur(cfg.MaxTimeout, DefaultMaxWait),
		maxBody:        DefaultMaxBody,
	}
	if cfg.MaxBodyBytes > 0 {
		s.maxBody = cfg.MaxBodyBytes
	}
	s.obsd = cfg.Obs
	if s.obsd == nil {
		s.obsd = obs.NewRegistry()
	}
	s.scope = s.obsd.Scope(ScopeName)
	s.c = NewCounters(s.scope)
	if s.c != nil {
		s.c.Workers.Set(float64(s.gate.workers()))
		s.c.QueueLimit.Set(float64(s.gate.queueLimit()))
	}
	return s
}

func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func orDefaultDur(v, def time.Duration) time.Duration {
	if v <= 0 {
		return def
	}
	return v
}

// Obs returns the registry the server records into (the one served at
// /metrics).
func (s *Server) Obs() *obs.Registry { return s.obsd }

// StartDrain flips the server into draining mode: /healthz turns 503
// (load balancers stop routing here) and new builds are rejected with
// 503, while requests already admitted run to completion. Pair with
// http.Server.Shutdown, which waits for the in-flight handlers.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the daemon's full route table:
//
//	POST /v1/build     batch tree construction
//	GET  /v1/algos     the constructor registry
//	GET  /healthz      liveness / drain state
//	GET  /metrics      obs snapshot (JSON)
//	     /debug/pprof  runtime profiles
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/build", s.handleBuild)
	mux.HandleFunc("GET /v1/algos", s.handleAlgos)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON encodes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The response status is already on the wire; an encode failure here
	// means the client went away, and there is nothing left to tell it.
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with the uniform error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// timeoutFor resolves the effective request deadline: the client's
// timeout_ms if given, else the server default, clamped to the maximum.
func (s *Server) timeoutFor(ms int64) time.Duration {
	d := s.defaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.maxTimeout {
		d = s.maxTimeout
	}
	return d
}

// validate checks the whole batch up front — limits, metric and
// constructor resolution — so a malformed request is rejected with 400
// before it costs a worker slot.
func (s *Server) validate(req *BuildRequest) ([]checkedNet, error) {
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative, got %d", req.TimeoutMS)
	}
	if len(req.Nets) == 0 {
		return nil, errors.New("request has no nets")
	}
	if len(req.Nets) > s.maxBatch {
		return nil, fmt.Errorf("batch of %d nets exceeds the limit of %d", len(req.Nets), s.maxBatch)
	}
	out := make([]checkedNet, len(req.Nets))
	for i := range req.Nets {
		n := &req.Nets[i]
		label := n.netLabel(i)
		m, err := parseMetric(n.Metric)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", label, err)
		}
		if len(n.Sinks) == 0 {
			return nil, fmt.Errorf("%s: needs at least one sink", label)
		}
		if len(n.Sinks)+1 > s.maxPoints {
			return nil, fmt.Errorf("%s: %d terminals exceed the limit of %d", label, len(n.Sinks)+1, s.maxPoints)
		}
		if len(n.EpsSweep) > s.maxSweep {
			return nil, fmt.Errorf("%s: eps_sweep of %d values exceeds the limit of %d", label, len(n.EpsSweep), s.maxSweep)
		}
		if n.Workers < 0 || n.Workers > MaxNetWorkers {
			return nil, fmt.Errorf("%s: workers must be in [0, %d], got %d", label, MaxNetWorkers, n.Workers)
		}
		ctor, err := s.reg.Lookup(n.Algo)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", label, err)
		}
		out[i] = checkedNet{req: n, label: label, ctor: ctor, metric: m}
	}
	return out, nil
}

// handleBuild is POST /v1/build: validate, admit, build every net under
// the request deadline, answer with the batch results. Status mapping
// (documented with worked examples in SERVING.md):
//
//	200 every net built;
//	400 malformed body, unknown algo/metric, limits exceeded, or an
//	    unbuildable net (e.g. an infeasible Steiner instance);
//	408 the request deadline expired (queued or mid-build);
//	429 admission queue full — load shed, retry after Retry-After;
//	503 the daemon is draining for shutdown.
func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if s.c != nil {
		s.c.Requests.Inc()
	}
	var stopReq func()
	if s.c != nil {
		stopReq = s.c.Request.Start()
	}
	defer func() {
		if stopReq != nil {
			stopReq()
		}
	}()

	if s.draining.Load() {
		if s.c != nil {
			s.c.DrainRejects.Inc()
		}
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req BuildRequest
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	//lint:ignore ctxflow request validation is O(nets) with constant per-net work, bounded by maxBatch
	nets, err := s.validate(&req)
	if err != nil {
		s.badRequest(w, err.Error())
		return
	}

	ctx, cancelTimeout := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancelTimeout()

	release, err := s.gate.acquire(ctx)
	if err != nil {
		s.admissionError(w, err)
		return
	}
	defer release()

	resp := BuildResponse{Results: make([]NetResult, len(nets))}
	chk := cancel.New(ctx, 1)
	for i := range nets {
		if err := chk.Err(); err != nil {
			s.netError(w, nets[i].label, err)
			return
		}
		nr, err := s.buildNet(ctx, nets[i])
		if err != nil {
			s.netError(w, nets[i].label, err)
			return
		}
		resp.Results[i] = nr
	}
	if s.c != nil {
		s.c.RequestsOK.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// badRequest answers 400 and counts it.
func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	if s.c != nil {
		s.c.BadRequests.Inc()
	}
	writeError(w, http.StatusBadRequest, msg)
}

// admissionError maps an admission failure onto its status: queue full
// sheds with 429 + Retry-After, a deadline that expired while queued is
// 408, a vanished client is counted separately.
func (s *Server) admissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		if s.c != nil {
			s.c.Shed.Inc()
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "build queue is full; retry later")
	case errors.Is(err, context.DeadlineExceeded):
		if s.c != nil {
			s.c.Timeouts.Inc()
		}
		writeError(w, http.StatusRequestTimeout, "deadline exceeded while queued")
	default:
		if s.c != nil {
			s.c.Canceled.Inc()
		}
		writeError(w, http.StatusRequestTimeout, "request canceled while queued")
	}
}

// netError maps a per-net build failure: deadline → 408, client gone →
// counted canceled, anything else — infeasible bounds, invalid
// coordinates, budget exhaustion — is a property of the requested net,
// i.e. a client error, 400.
func (s *Server) netError(w http.ResponseWriter, label string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if s.c != nil {
			s.c.Timeouts.Inc()
		}
		writeError(w, http.StatusRequestTimeout, fmt.Sprintf("deadline exceeded building %s", label))
	case errors.Is(err, context.Canceled):
		if s.c != nil {
			s.c.Canceled.Inc()
		}
		writeError(w, http.StatusRequestTimeout, fmt.Sprintf("request canceled building %s", label))
	default:
		s.badRequest(w, fmt.Sprintf("%s: %v", label, err))
	}
}

// buildNet builds one net of the batch through the instance cache.
func (s *Server) buildNet(ctx context.Context, cn checkedNet) (NetResult, error) {
	n := cn.req
	sinks := make([]geom.Point, len(n.Sinks))
	for i, p := range n.Sinks {
		sinks[i] = geom.Point{X: p.X, Y: p.Y}
	}
	//lint:ignore ctxflow cache lookup scans an O(collisions) hash bucket, not instance-sized work
	entry, hit, err := s.cache.lookup(cn.metric, geom.Point{X: n.Source.X, Y: n.Source.Y}, sinks)
	if err != nil {
		return NetResult{}, err
	}
	if s.c != nil {
		if hit {
			s.c.CacheHits.Inc()
		} else {
			s.c.CacheMisses.Inc()
		}
	}
	var stopBuild func()
	if sc := s.scope; sc != nil {
		stopBuild = sc.Timer(BuildTimerName(n.Algo)).Start()
	}
	trees, err := s.buildTrees(ctx, cn, entry)
	if stopBuild != nil {
		stopBuild()
	}
	if err != nil {
		return NetResult{}, err
	}
	if s.c != nil {
		s.c.Builds.Add(int64(len(trees)))
	}
	return NetResult{
		Name:     n.Name,
		Algo:     n.Algo,
		Kind:     cn.ctor.Kind().String(),
		CacheHit: hit,
		Trees:    trees,
	}, nil
}

// buildTrees holds the cache entry's lock (scratch and lazy distance
// matrix are single-holder state) and runs either a single build pinned
// to the entry's scratch, or an eps_sweep through the engine sweep
// machinery — SweepParallel when multi-core sweeping is configured, the
// serial Sweep sharing the entry scratch otherwise. Both paths produce
// byte-identical trees (pinned by the engine conformance suite).
func (s *Server) buildTrees(ctx context.Context, cn checkedNet, entry *cacheEntry) ([]TreeResult, error) {
	entry.mu.Lock()
	defer entry.mu.Unlock()
	// Re-measure the entry after the build (deferred last → runs first,
	// still under entry.mu): lazy geometry caches and scratch buffers
	// grow during a build, and the byte-budget eviction needs the grown
	// size, not the insert-time size.
	defer func() {
		s.cache.reaccount(entry, entry.in.MemBytes()+entry.scratch.MemBytes())
	}()
	n := cn.req

	if len(n.EpsSweep) == 0 {
		p := n.params()
		p.Obs = s.obsd
		p.Scratch = &entry.scratch
		p.RefreshWorkers = s.refreshWorkersFor(n)
		res, err := cn.ctor.Build(ctx, entry.in, p)
		if err != nil {
			return nil, err
		}
		//lint:ignore ctxflow response encoding runs after the build completed; the result must be written whole
		return []TreeResult{encodeResult(n.Eps, entry.in, res)}, nil
	}

	base := n.params()
	base.Obs = s.obsd
	base.RefreshWorkers = s.refreshWorkersFor(n)
	ps := make([]engine.Params, len(n.EpsSweep))
	for j, eps := range n.EpsSweep {
		p := base
		p.Eps = eps
		ps[j] = p
	}
	var results []engine.Result
	var err error
	if s.sweepWorkers > 1 {
		results, err = s.reg.SweepParallel(ctx, n.Algo, entry.in, ps, engine.SweepOptions{Workers: s.sweepWorkers})
	} else {
		for j := range ps {
			ps[j].Scratch = &entry.scratch
		}
		results, err = s.reg.Sweep(ctx, n.Algo, entry.in, ps)
	}
	if err != nil {
		return nil, err
	}
	out := make([]TreeResult, len(results))
	chk := cancel.New(ctx, 1)
	for j, res := range results {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		out[j] = encodeResult(n.EpsSweep[j], entry.in, res)
	}
	return out, nil
}

// refreshWorkersFor resolves a net's construction worker count: the
// request-level "workers" field when set, else the server default.
// Either way 0 defers to the layer knobs; the value only steers how
// much hardware a build uses, never which tree it produces.
func (s *Server) refreshWorkersFor(n *NetRequest) int {
	if n.Workers > 0 {
		return n.Workers
	}
	return s.refreshWorkers
}

// handleAlgos is GET /v1/algos: the engine registry as JSON.
func (s *Server) handleAlgos(w http.ResponseWriter, _ *http.Request) {
	infos := s.reg.List()
	resp := AlgosResponse{Algos: make([]AlgoInfo, len(infos))}
	for i, info := range infos {
		resp.Algos[i] = AlgoInfo{
			Name:   info.Name,
			Kind:   info.Kind.String(),
			Params: info.Needs,
			Doc:    info.Doc,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics is GET /metrics: refresh the admission gauges and serve
// the obs snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.refreshGauges()
	w.Header().Set("Content-Type", "application/json")
	// Snapshot encoding only fails when the client disconnects
	// mid-write; there is no one left to report to.
	_ = s.obsd.Snapshot().WriteJSON(w)
}

// refreshGauges publishes the current admission and cache occupancy.
func (s *Server) refreshGauges() {
	if s.c == nil {
		return
	}
	s.c.QueueDepth.Set(float64(s.gate.waiting()))
	s.c.Inflight.Set(float64(s.gate.active()))
	s.c.CacheEntries.Set(float64(s.cache.len()))
	s.c.CacheBytes.Set(float64(s.cache.bytes()))
}
