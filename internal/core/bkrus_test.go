package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

func randomInstance(rng *rand.Rand, sinks int, extent float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, geom.Manhattan)
}

func TestBKRUSRejectsNegativeEps(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}}, geom.Manhattan)
	if _, err := BKRUS(in, -0.1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestBoundsValidate(t *testing.T) {
	if (Bounds{Lower: 0, Upper: 1}).Validate() != nil {
		t.Error("valid bounds rejected")
	}
	if (Bounds{Lower: -1, Upper: 1}).Validate() == nil {
		t.Error("negative lower accepted")
	}
	if (Bounds{Lower: 2, Upper: 1}).Validate() == nil {
		t.Error("empty window accepted")
	}
	if (Bounds{Lower: math.NaN(), Upper: 1}).Validate() == nil {
		t.Error("NaN lower accepted")
	}
}

func TestBKRUSInfiniteEpsIsMST(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3+rng.Intn(30), 100)
		tr, err := BKRUS(in, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		want := mst.Kruskal(in.DistMatrix()).Cost()
		if math.Abs(tr.Cost()-want) > 1e-9 {
			t.Errorf("trial %d: BKRUS(inf) cost %v, MST %v", trial, tr.Cost(), want)
		}
	}
}

func TestBKRUSZeroEpsRadiusEqualsR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3+rng.Intn(25), 100)
		tr, err := BKRUS(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r := tr.Radius(graph.Source); r > in.R()+1e-9 {
			t.Errorf("trial %d: radius %v > R %v", trial, r, in.R())
		}
	}
}

// The crafted rejection fixture: two sinks equally far from the source
// whose connecting edge is cheap but makes both unreachable within the
// ε = 0 bound, so BKRUS must fall back to the source star; relaxing ε
// recovers the MST.
func TestBKRUSRejectionFixture(t *testing.T) {
	in := inst.MustNew(geom.Point{},
		[]geom.Point{{X: 8, Y: 4}, {X: 4, Y: 8}}, geom.Manhattan)
	if in.R() != 12 {
		t.Fatalf("fixture R = %v", in.R())
	}
	tight, err := BKRUS(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight.Cost()-24) > 1e-9 { // star: 12 + 12
		t.Errorf("eps=0 cost = %v, want 24 (source star)", tight.Cost())
	}
	if !tight.HasEdge(0, 1) || !tight.HasEdge(0, 2) {
		t.Errorf("eps=0 edges = %v, want the source star", tight.Edges)
	}
	loose, err := BKRUS(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loose.Cost()-20) > 1e-9 { // MST: 12 + 8
		t.Errorf("eps=1 cost = %v, want 20 (MST)", loose.Cost())
	}
}

// Figure 5 phenomenon: BKRUS commits to the cheap sink-sink edge (a,b),
// which later forces the expensive direct edge (S,a); rejecting (a,b)
// would have allowed both a and b to hang off c. Cost is 19.9 where a
// better feasible tree of cost 18.9 exists.
func TestBKRUSFigure5NonOptimal(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 3.4, Y: 2.8}, // a = node 1
		{X: 5.2, Y: 2.6}, // b = node 2
		{X: 4.0, Y: 0.0}, // c = node 3
		{X: 0.0, Y: 7.7}, // d = node 4
	}, geom.Manhattan)
	b := Bounds{Upper: 8.3}
	tr, err := BKRUSBounds(in, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Cost()-19.9) > 1e-9 {
		t.Fatalf("BKRUS cost = %v, want 19.9", tr.Cost())
	}
	// construct the better tree by hand: S-c, c-a, c-b, S-d
	dm := in.DistMatrix()
	better := graph.NewTree(in.N())
	better.AddEdge(0, 3, dm.At(0, 3))
	better.AddEdge(3, 1, dm.At(3, 1))
	better.AddEdge(3, 2, dm.At(3, 2))
	better.AddEdge(0, 4, dm.At(0, 4))
	if err := better.Validate(); err != nil {
		t.Fatal(err)
	}
	if !FeasibleTree(better, b) {
		t.Fatal("hand-built tree should be feasible")
	}
	if better.Cost() >= tr.Cost() {
		t.Errorf("fixture broken: better cost %v >= BKRUS %v", better.Cost(), tr.Cost())
	}
	if math.Abs(better.Cost()-18.9) > 1e-9 {
		t.Errorf("better cost = %v, want 18.9", better.Cost())
	}
}

// Property: for random instances and random eps, BKRUS returns a valid
// spanning tree whose source-sink paths all satisfy the bound and whose
// cost is at least the MST cost.
func TestBKRUSBoundPropertyQuick(t *testing.T) {
	f := func(seed int64, szRaw, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%25) + 2
		eps := float64(epsRaw%200) / 100 // 0.00 .. 1.99
		in := randomInstance(rng, n, 100)
		tr, err := BKRUS(in, eps)
		if err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		if !FeasibleTree(tr, UpperOnly(in, eps)) {
			return false
		}
		return tr.Cost() >= mst.Kruskal(in.DistMatrix()).Cost()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the engine's P matrix invariants — after construction via the
// public API, recomputing tree path lengths independently agrees with the
// final radius bookkeeping (validated indirectly through FeasibleTree and
// the bound). Here we check that BKRUS at a given eps never exceeds the
// eps' >= eps bound either (bound nesting).
func TestBKRUSBoundNestingProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%15) + 2
		in := randomInstance(rng, n, 50)
		tight, err := BKRUS(in, 0.1)
		if err != nil {
			return false
		}
		return FeasibleTree(tight, UpperOnly(in, 0.1)) &&
			FeasibleTree(tight, UpperOnly(in, 0.5)) &&
			FeasibleTree(tight, UpperOnly(in, math.Inf(1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBKRUSSingleSink(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 5, Y: 5}}, geom.Euclidean)
	tr, err := BKRUS(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges) != 1 || tr.Cost() != in.R() {
		t.Errorf("single-sink tree wrong: %v", tr.Edges)
	}
}

func TestBKRUSEuclideanMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := make([]geom.Point, 12)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
	}
	in := inst.MustNew(geom.Point{X: 5, Y: 5}, pts, geom.Euclidean)
	tr, err := BKRUS(in, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !FeasibleTree(tr, UpperOnly(in, 0.2)) {
		t.Error("Euclidean BKRUS violates bound")
	}
}

func TestBKRUSLUZeroLowerMatchesBKRUS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 3+rng.Intn(15), 100)
		a, err := BKRUS(in, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BKRUSLU(in, 0, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Cost()-b.Cost()) > 1e-9 {
			t.Errorf("trial %d: BKRUS %v vs BKRUSLU(0,·) %v", trial, a.Cost(), b.Cost())
		}
	}
}

func TestBKRUSLUBoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	feasibleCount := 0
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 3+rng.Intn(12), 100)
		eps1 := float64(rng.Intn(8)) / 10  // 0.0 .. 0.7
		eps2 := float64(rng.Intn(15)) / 10 // 0.0 .. 1.4
		tr, err := BKRUSLU(in, eps1, eps2)
		if err != nil {
			continue // genuinely infeasible combos are expected (§6)
		}
		feasibleCount++
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b := LowerUpper(in, eps1, eps2)
		d := tr.PathLengthsFrom(graph.Source)
		for v := 1; v < tr.N; v++ {
			if d[v] < b.Lower-1e-9 || d[v] > b.Upper+1e-9 {
				t.Errorf("trial %d: path %v outside [%v,%v]", trial, d[v], b.Lower, b.Upper)
			}
		}
	}
	if feasibleCount == 0 {
		t.Error("no LUB combination was feasible across 40 trials; suspicious")
	}
}

func TestBKRUSLUNegativeEps(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}}, geom.Manhattan)
	if _, err := BKRUSLU(in, -0.5, 0.5); err == nil {
		t.Error("negative eps1 accepted")
	}
	if _, err := BKRUSLU(in, 0.5, -0.5); err == nil {
		t.Error("negative eps2 accepted")
	}
}

func TestBKRUSLUInfeasibleWindow(t *testing.T) {
	// A sink closer than Lower can never satisfy the lower bound when it
	// is the only sink: its path is exactly its direct distance.
	in := inst.MustNew(geom.Point{},
		[]geom.Point{{X: 10, Y: 0}, {X: 1, Y: 0}}, geom.Manhattan)
	// Lower = 0.9*R = 9 > dist(S, sink2's best possible path)? sink2 can
	// ride through sink1 for a long path, so choose a window that kills
	// that too: Lower = 0.95*R = 9.5, Upper = R = 10. Paths to sink 2:
	// direct 1 (violates), via sink1: 10 + 9 = 19 > Upper. Infeasible.
	if _, err := BKRUSLU(in, 0.95, 0.0); err == nil {
		t.Error("infeasible window accepted")
	}
}

func TestFeasibleTreeEdgeCases(t *testing.T) {
	tr := graph.NewTree(3)
	tr.AddEdge(0, 1, 5)
	tr.AddEdge(1, 2, 5)
	if !FeasibleTree(tr, Bounds{Lower: 0, Upper: 10}) {
		t.Error("feasible tree rejected")
	}
	if FeasibleTree(tr, Bounds{Lower: 0, Upper: 9.9}) {
		t.Error("infeasible tree accepted")
	}
	if FeasibleTree(tr, Bounds{Lower: 6, Upper: 10}) {
		t.Error("lower-violating tree accepted")
	}
	forest := graph.NewTree(3)
	forest.AddEdge(0, 1, 1)
	if FeasibleTree(forest, Bounds{Lower: 0, Upper: 100}) {
		t.Error("forest accepted as feasible")
	}
}

// Pathological p1-style family (paper Figure 13): N sinks placed on the
// Manhattan circle of radius R around the source (the diamond arc), so
// every sink sits exactly at distance R. At eps=0 any sink-sink merge
// would push some path beyond R, so every sink needs a direct source
// connection and cost(BKT)/cost(MST) approaches N.
func TestBKRUSFigure13Pathology(t *testing.T) {
	const n = 8
	sinks := make([]geom.Point, n)
	for i := range sinks {
		t0 := float64(i) * 0.01
		sinks[i] = geom.Point{X: 20 - t0, Y: t0}
	}
	in := inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
	bkt, err := BKRUS(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	mstCost := mst.Kruskal(in.DistMatrix()).Cost()
	ratio := bkt.Cost() / mstCost
	if ratio < float64(n)*0.9 {
		t.Errorf("pathology ratio = %v, want close to %d", ratio, n)
	}
	// with generous eps the ratio collapses to 1
	loose, err := BKRUS(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := loose.Cost() / mstCost; math.Abs(r-1) > 1e-9 {
		t.Errorf("loose ratio = %v, want 1", r)
	}
}

func BenchmarkBKRUS100(b *testing.B) {
	in := randomInstance(rand.New(rand.NewSource(13)), 100, 1000)
	in.DistMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUS(in, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBKRUSWithStats(t *testing.T) {
	in := inst.MustNew(geom.Point{},
		[]geom.Point{{X: 8, Y: 4}, {X: 4, Y: 8}}, geom.Manhattan)
	tr, st, err := BKRUSWithStats(in, UpperOnly(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st.Merges != len(tr.Edges) || st.Merges != 2 {
		t.Errorf("Merges = %d, edges = %d", st.Merges, len(tr.Edges))
	}
	// the (a,b) edge must have been bound-rejected in this fixture
	if st.BoundRejections == 0 {
		t.Errorf("expected a bound rejection: %v", st)
	}
	if st.EdgesExamined < st.Merges+st.BoundRejections {
		t.Errorf("inconsistent counters: %v", st)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
	// instrumentation off (plain BKRUS) must agree on the tree
	plain, err := BKRUS(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cost() != tr.Cost() {
		t.Errorf("instrumented run changed the result: %v vs %v", plain.Cost(), tr.Cost())
	}
}

func TestBKRUSWithStatsBadBounds(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}}, geom.Manhattan)
	if _, _, err := BKRUSWithStats(in, Bounds{Lower: 5, Upper: 1}); err == nil {
		t.Error("invalid bounds accepted")
	}
}

// Figure 4 style worked example: four sinks on the Manhattan circle of
// radius 8 with bound 12 = 1.5R. The chain a-b-c grows; extending it to
// d fails condition (3-b) — no node of the merged chain could still
// reach the source within the bound; later the direct edge (S,a) fails
// condition (3-a) because a's radius inside the chain is too large; the
// tree completes through (S,b) and (S,d), exactly the paper's Figure 4
// narrative of rejected and accepted edges.
func TestBKRUSFigure4Style(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 8, Y: 0}, // a = 1
		{X: 6, Y: 2}, // b = 2
		{X: 4, Y: 4}, // c = 3
		{X: 2, Y: 6}, // d = 4
	}, geom.Manhattan)
	if in.R() != 8 {
		t.Fatalf("fixture R = %v, want 8", in.R())
	}
	tr, st, err := BKRUSWithStats(in, UpperOnly(in, 0.5)) // bound 12
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.Key]bool{
		graph.EdgeKey(1, 2): true, // a-b
		graph.EdgeKey(2, 3): true, // b-c
		graph.EdgeKey(0, 2): true, // S-b
		graph.EdgeKey(0, 4): true, // S-d
	}
	for _, e := range tr.Edges {
		if !want[e.Key()] {
			t.Errorf("unexpected edge %v", e)
		}
	}
	if len(tr.Edges) != 4 {
		t.Fatalf("edge count %d", len(tr.Edges))
	}
	if math.Abs(tr.Cost()-24) > 1e-9 {
		t.Errorf("cost = %v, want 24", tr.Cost())
	}
	// (c,d) via (3-b), (S,a) via (3-a), plus further rejected candidates
	if st.BoundRejections < 2 {
		t.Errorf("expected at least the Figure 4 rejections, got %v", st)
	}
	d := tr.PathLengthsFrom(graph.Source)
	for v := 1; v < tr.N; v++ {
		if d[v] > 12+1e-9 {
			t.Errorf("path to %d = %v exceeds the bound", v, d[v])
		}
	}
}
