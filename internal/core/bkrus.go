// Package core implements the paper's primary contribution: the Bounded
// path length KRUSkal construction (BKRUS, §3.1) and its lower+upper
// bounded variant (§6).
//
// BKRUS scans the complete-graph edges in nondecreasing weight order, as
// Kruskal does, merging two partial trees t_u and t_v by edge (u,v) only
// when the merged tree can still satisfy the path-length bound
// (1+ε)·R from the source to every sink:
//
//   - (3-a) if t_u contains the source:  path(S,u) + dist(u,v) + radius(v) ≤ bound
//     (symmetrically when t_v contains the source);
//   - (3-b) if neither contains the source: some node x of the merged tree
//     must satisfy dist(S,x) + radius_M(x) ≤ bound, so a direct source
//     connection through x can always finish the tree.
//
// The engine maintains the paper's bookkeeping: P[x][y], the in-forest
// path length between every pair of nodes in the same partial tree, and
// r[x], the radius of x within its partial tree. A merge writes each
// cross-pair entry exactly once, so all merges together cost O(V²);
// feasibility scans dominate at O(EV).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
)

// ErrInfeasible is returned when no spanning tree can satisfy the
// requested bounds. With only an upper bound (ε ≥ 0) BKRUS always
// succeeds (the source star is feasible); a lower bound can make the
// instance genuinely infeasible for node-branching spanning trees, as the
// paper notes in §6.
var ErrInfeasible = errors.New("core: no bounded spanning tree exists for the requested bounds")

// Bounds is an absolute path-length window applied to every source-sink
// path. Lower = 0 disables the lower bound; Upper = +Inf disables the
// upper bound (plain Kruskal MST).
type Bounds struct {
	Lower, Upper float64
}

// UpperOnly returns the standard BMST bounds (1+eps)·R for the instance.
func UpperOnly(in *inst.Instance, eps float64) Bounds {
	return Bounds{Lower: 0, Upper: in.Bound(eps)}
}

// LowerUpper returns the §6 clock-routing bounds: every source-sink path
// in [eps1·R, (1+eps2)·R].
func LowerUpper(in *inst.Instance, eps1, eps2 float64) Bounds {
	return Bounds{Lower: eps1 * in.R(), Upper: in.Bound(eps2)}
}

// Validate checks the window is well formed.
func (b Bounds) Validate() error {
	if b.Lower < 0 || math.IsNaN(b.Lower) || math.IsNaN(b.Upper) {
		return fmt.Errorf("core: malformed bounds %+v", b)
	}
	if b.Lower > b.Upper {
		return fmt.Errorf("core: empty bound window [%g, %g]", b.Lower, b.Upper)
	}
	return nil
}

// relTol is the relative tolerance applied to bound comparisons. Bounded
// trees routinely sit exactly on the bound (at ε = 0 the farthest sink's
// direct path equals R by definition), so accumulated floating-point
// noise of a few ulps must not flip feasibility.
const relTol = 1e-9

// WithinUpper reports v ≤ Upper within relative tolerance.
func (b Bounds) WithinUpper(v float64) bool {
	return v <= b.Upper+relTol*math.Max(1, math.Abs(b.Upper))
}

// WithinLower reports v ≥ Lower within relative tolerance (always true
// when no lower bound is set).
func (b Bounds) WithinLower(v float64) bool {
	if b.Lower <= 0 {
		return true
	}
	return v >= b.Lower-relTol*math.Max(1, b.Lower)
}

// FeasibleTree reports whether every source-sink path length of t lies
// within the bounds. Node 0 is the source; only sinks are constrained.
func FeasibleTree(t *graph.Tree, b Bounds) bool {
	d := t.PathLengthsFrom(graph.Source)
	for v := 1; v < t.N; v++ {
		if math.IsInf(d[v], 1) || !b.WithinUpper(d[v]) || !b.WithinLower(d[v]) {
			return false
		}
	}
	return true
}

// BKRUS constructs a bounded path length spanning tree with every
// source-sink path at most (1+eps)·R. eps must be ≥ 0 or +Inf.
func BKRUS(in *inst.Instance, eps float64) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("core: negative eps %g", eps)
	}
	return BKRUSBounds(in, UpperOnly(in, eps))
}

// BKRUSLU constructs a spanning tree with every source-sink path in
// [eps1·R, (1+eps2)·R] (§6). Unlike the upper-bound-only case this can
// fail with ErrInfeasible.
func BKRUSLU(in *inst.Instance, eps1, eps2 float64) (*graph.Tree, error) {
	if eps1 < 0 || eps2 < 0 {
		return nil, fmt.Errorf("core: negative eps1/eps2 %g/%g", eps1, eps2)
	}
	return BKRUSBounds(in, LowerUpper(in, eps1, eps2))
}

// BKRUSBounds runs the bounded Kruskal construction for an arbitrary
// absolute bound window.
func BKRUSBounds(in *inst.Instance, b Bounds) (*graph.Tree, error) {
	return BKRUSBuild(context.Background(), in, b, Config{})
}

// Config carries the optional hooks of one BKRUS construction.
type Config struct {
	// Counters receives the construction's event counts. nil keeps the
	// historical opportunistic behaviour: count into the process default
	// registry's core scope when one is installed, otherwise count
	// nothing.
	Counters *Counters
	// Scratch, when non-nil, supplies the O(n²) working buffers and the
	// lazily sorted edge stream, reused across runs instead of
	// re-allocated. The scratch must not be shared between concurrent
	// constructions.
	Scratch *Scratch
	// EagerSort forces the historical behaviour of fully sorting the
	// complete edge list up front instead of streaming it lazily. The
	// resulting tree is byte-identical either way (the edge order is a
	// strict total order, so the sorted sequence is unique); the knob
	// exists for conformance tests and A/B benchmarks.
	EagerSort bool
	// Geometry selects the geometric substrate: dense (materialized
	// matrix + complete edge list, the historical behaviour) or sparse
	// (distance oracle + octant neighbor graph, no O(n²) state). The
	// zero value GeomAuto resolves by instance size (SparseThreshold).
	Geometry Geometry
	// RefreshWorkers bounds the workers of the per-merge P-matrix/radius
	// refresh (dense) and the per-candidate DFS pair (sparse). 0 defers
	// to the package knob (SetRefreshWorkers), which itself defaults to
	// runtime.GOMAXPROCS; 1 forces the serial path. Trees are
	// byte-identical for every setting.
	RefreshWorkers int
}

// BKRUSBuild is the full-control entry point behind every BKRUS variant:
// arbitrary bound window, explicit counters, pooled scratch, and a
// context checked periodically inside the edge scan so sweeps and
// servers can enforce deadlines. A cancelled ctx surfaces as ctx.Err()
// within a bounded number of edge examinations.
func BKRUSBuild(ctx context.Context, in *inst.Instance, b Bounds, cfg Config) (*graph.Tree, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	//lint:ignore ctxflow the lazy stream's tail sort is run-to-completion by design (deterministic merge, amortized across the sweep); run(ctx) polls every cancelStride edges around it
	e := newEngine(in, b, cfg)
	return e.run(ctx)
}

// Scratch holds the reusable working state of the BKRUS engine: the
// dense P-matrix or the sparse forest bookkeeping (whichever modes it
// has served), the radius and witness-order buffers, the disjoint set,
// and the lazily sorted edge stream (cached per instance and mode; the
// instance is immutable, so an ε-sweep over one instance shares one
// partially drained stream — the prefix one run sorts is free for the
// next). A zero Scratch is ready to use; it grows to the largest
// instance it has served and is not safe for concurrent use.
type Scratch struct {
	p       []float64
	r       []float64
	baseKey []float64
	byBase  [][]int
	ds      *graph.DisjointSet

	// Sparse-mode buffers: forest adjacency, source paths, DFS path
	// scratch and DFS stacks (the second stack pair serves the
	// concurrent side of fillPathsPair). Untouched by dense
	// constructions.
	adj        [][]graph.Adj
	distS      []float64
	pathU      []float64
	pathV      []float64
	stackNode  []int32
	stackPar   []int32
	stackNode2 []int32
	stackPar2  []int32

	stream       *graph.EdgeStream
	streamFor    *inst.Instance
	streamSparse bool
}

// edgeStream returns the cached lazy edge stream for in, rebuilding it
// only when the instance or the substrate changes and rewinding it
// otherwise. In sparse mode the stream draws from the octant neighbor
// edge set; dm is only consulted on the dense path, so a sparse run
// never enumerates the complete graph.
func (s *Scratch) edgeStream(in *inst.Instance, dm graph.Weights, sparse bool) *graph.EdgeStream {
	if s.streamFor != in || s.streamSparse != sparse {
		if sparse {
			s.stream = graph.NewSparseEdgeStream(in.Index(), graph.Source)
		} else {
			s.stream = graph.NewEdgeStream(dm)
		}
		s.streamFor = in
		s.streamSparse = sparse
	} else {
		s.stream.Reset()
	}
	return s.stream
}

// Release drops the scratch's per-instance state — the cached edge
// stream and the instance pointer keying it. Pooled scratches
// (engine.Build's sync.Pool, engine.Sweep teardown) must call this
// before parking, otherwise a long-lived pool entry pins the last
// served instance and its O(n²) edge list forever — the server-style
// reuse leak. The geometry-independent buffers (P-matrix, radii,
// disjoint set) survive, so reuse across instances of similar size
// still avoids re-allocation.
func (s *Scratch) Release() {
	s.stream = nil
	s.streamFor = nil
	s.streamSparse = false
}

// MemBytes estimates the heap bytes currently retained by the scratch:
// every mode's working buffers plus the cached edge stream. Pooled
// consumers with byte budgets (internal/serve) use this to account
// pinned scratches.
func (s *Scratch) MemBytes() int64 {
	b := int64(cap(s.p)+cap(s.r)+cap(s.baseKey)+cap(s.distS)+cap(s.pathU)+cap(s.pathV)) * 8
	b += int64(cap(s.stackNode)+cap(s.stackPar)+cap(s.stackNode2)+cap(s.stackPar2)) * 4
	b += int64(cap(s.byBase)) * 24
	for i := range s.byBase {
		b += int64(cap(s.byBase[i])) * 8
	}
	b += int64(cap(s.adj)) * 24
	for i := range s.adj {
		b += int64(cap(s.adj[i])) * 16
	}
	if s.ds != nil {
		b += s.ds.MemBytes()
	}
	if s.stream != nil {
		b += s.stream.MemBytes()
	}
	return b
}

// attach points the engine's buffers at the scratch, growing and
// resetting them for an n-node instance. Only the buffers of the
// engine's substrate are grown: a sparse engine never touches the n²
// P-matrix, which is the point of the mode.
func (s *Scratch) attach(e *engine, n int) {
	if e.sparse {
		s.attachSparse(e, n)
	} else {
		s.attachDense(e, n)
	}
	s.attachCommon(e, n)
}

func (s *Scratch) attachDense(e *engine, n int) {
	if cap(s.p) < n*n {
		s.p = make([]float64, n*n)
	} else {
		s.p = s.p[:n*n]
		for i := range s.p {
			s.p[i] = 0
		}
	}
	e.p = s.p
}

func (s *Scratch) attachSparse(e *engine, n int) {
	if cap(s.adj) < n {
		s.adj = make([][]graph.Adj, n)
	} else {
		s.adj = s.adj[:n]
	}
	for i := range s.adj {
		s.adj[i] = s.adj[i][:0]
	}
	if cap(s.distS) < n {
		s.distS = make([]float64, n)
		s.pathU = make([]float64, n)
		s.pathV = make([]float64, n)
	} else {
		s.distS = s.distS[:n]
		s.pathU = s.pathU[:n]
		s.pathV = s.pathV[:n]
	}
	for i := range s.distS {
		s.distS[i] = math.Inf(1)
	}
	s.distS[graph.Source] = 0
	e.adj, e.distS, e.pathU, e.pathV = s.adj, s.distS, s.pathU, s.pathV
	e.stackNode, e.stackPar = s.stackNode, s.stackPar
	e.stackNode2, e.stackPar2 = s.stackNode2, s.stackPar2
}

func (s *Scratch) attachCommon(e *engine, n int) {
	if cap(s.r) < n {
		s.r = make([]float64, n)
	} else {
		s.r = s.r[:n]
		for i := range s.r {
			s.r[i] = 0
		}
	}
	if cap(s.baseKey) < n {
		s.baseKey = make([]float64, n)
	} else {
		s.baseKey = s.baseKey[:n]
	}
	if cap(s.byBase) < n {
		s.byBase = make([][]int, n)
	} else {
		s.byBase = s.byBase[:n]
	}
	for x := 0; x < n; x++ {
		s.byBase[x] = append(s.byBase[x][:0], x)
	}
	if s.ds == nil || s.ds.Len() != n {
		s.ds = graph.NewDisjointSet(n)
	} else {
		s.ds.Reset()
	}
	e.r, e.baseKey, e.byBase, e.ds = s.r, s.baseKey, s.byBase, s.ds
}

// engine carries the BKRUS working state for one construction.
type engine struct {
	n       int
	sparse  bool          // substrate: oracle + neighbor graph vs matrix + complete graph
	dm      graph.Weights // matrix (dense) or on-demand oracle (sparse)
	b       Bounds
	p       []float64 // dense only — P[x][y] flattened: in-forest path lengths, 0 across trees
	r       []float64 // radius of each node within its partial tree
	baseKey []float64 // per-refresh witnessBase cache, indexed by node id
	ds      *graph.DisjointSet
	c       *Counters         // optional instrumentation (nil = off)
	scratch *Scratch          // optional pooled buffers (nil = own allocations)
	stream  *graph.EdgeStream // candidate edges in nondecreasing weight order
	// byBase[rep] lists the members of the set named rep in ascending
	// order of witnessBase = dist(S,x) + r[x] (lower-bound-ineligible
	// members, base = +Inf, sort last). Since radius_M(x) >= r[x] for any
	// tentative merge, a scan in this order can stop at the first member
	// whose base exceeds Upper: no later member can witness condition
	// (3-b) either.
	byBase [][]int
	// Sparse-substrate state (nil on the dense path): the partial
	// forest's adjacency, the immutable-once-set source paths, and the
	// DFS scratch that replaces P-matrix rows (two stack pairs so
	// fillPathsPair can run both sides' DFS concurrently). See
	// sparse.go.
	adj          [][]graph.Adj
	distS        []float64
	pathU, pathV []float64
	stackNode    []int32
	stackPar     []int32
	stackNode2   []int32
	stackPar2    []int32
	// refreshW is the resolved worker count for the construction inner
	// loops: per-build Config.RefreshWorkers, else the SetRefreshWorkers
	// knob, else runtime.GOMAXPROCS. 1 pins the serial path.
	refreshW int
}

func newEngine(in *inst.Instance, b Bounds, cfg Config) *engine {
	n := in.N()
	guardVertexIDSpace(n)
	e := &engine{
		n:       n,
		sparse:  cfg.Geometry.Sparse(n),
		b:       b,
		c:       cfg.Counters,
		scratch: cfg.Scratch,
	}
	if e.sparse {
		e.dm = in.Oracle()
	} else {
		e.dm = in.DistMatrix()
	}
	if e.scratch != nil {
		e.scratch.attach(e, n)
		e.stream = e.scratch.edgeStream(in, e.dm, e.sparse)
	} else {
		if e.sparse {
			e.adj = make([][]graph.Adj, n)
			e.distS = make([]float64, n)
			for i := range e.distS {
				e.distS[i] = math.Inf(1)
			}
			e.distS[graph.Source] = 0
			e.pathU = make([]float64, n)
			e.pathV = make([]float64, n)
			e.stream = graph.NewSparseEdgeStream(in.Index(), graph.Source)
		} else {
			e.p = make([]float64, n*n)
			e.stream = graph.NewEdgeStream(e.dm)
		}
		e.r = make([]float64, n)
		e.baseKey = make([]float64, n)
		e.ds = graph.NewDisjointSet(n)
		e.byBase = make([][]int, n)
		for x := 0; x < n; x++ {
			e.byBase[x] = []int{x}
		}
	}
	if cfg.EagerSort {
		e.stream.DrainSort()
	}
	// Opportunistic instrumentation: when no explicit counter set was
	// given and a binary has installed a process-wide registry,
	// accumulate counters into its core scope.
	if e.c == nil {
		if sc := obs.DefaultScope(ScopeName); sc != nil {
			e.c = NewCounters(sc)
		}
	}
	e.refreshW = resolveRefreshWorkers(cfg.RefreshWorkers)
	if e.c != nil {
		e.c.RefreshWorkers.Set(float64(e.refreshW))
	}
	return e
}

// witnessBase returns dist(S,x) + r[x] when x is lower-bound-eligible,
// +Inf otherwise.
func (e *engine) witnessBase(x int) float64 {
	dSx := e.dm.At(graph.Source, x)
	if !e.b.WithinLower(dSx) {
		return math.Inf(1)
	}
	return dSx + e.r[x]
}

func (e *engine) path(x, y int) float64 { return e.p[x*e.n+y] }

// cancelStride is how many candidate edges the scan examines between
// context polls; small enough that cancellation lands promptly even on
// instances where each examination triggers a long witness scan.
const cancelStride = 64

func (e *engine) run(ctx context.Context) (*graph.Tree, error) {
	chk := cancel.New(ctx, cancelStride)
	t := graph.NewTree(e.n)
	batches0, fallbacks0 := e.stream.Batches(), e.stream.Fallbacks()
	defer func() {
		if e.c != nil {
			e.c.StreamBatches.Add(int64(e.stream.Batches() - batches0))
			e.c.StreamFallbacks.Add(int64(e.stream.Fallbacks() - fallbacks0))
		}
		// DFS stacks grow by append; hand the grown backing arrays back
		// to the pooled scratch so the next run starts at steady state.
		if e.scratch != nil && e.sparse {
			e.scratch.stackNode, e.scratch.stackPar = e.stackNode, e.stackPar
			e.scratch.stackNode2, e.scratch.stackPar2 = e.stackNode2, e.stackPar2
		}
	}()
	for len(t.Edges) < e.n-1 {
		ed, ok := e.stream.Next() //lint:ignore allocloop the tail sort allocates once when the stream first reaches it, amortized over every later iteration (lazy-stream contract, pinned by BenchmarkBKRUSStream)
		if !ok {
			break
		}
		if err := chk.Tick(); err != nil {
			return nil, err
		}
		if e.c != nil {
			e.c.EdgesExamined.Inc()
		}
		if e.ds.Same(ed.U, ed.V) {
			if e.c != nil {
				e.c.CycleRejections.Inc()
			}
			continue // condition (2): cycle edge
		}
		if (ed.U == graph.Source || ed.V == graph.Source) && !e.b.WithinLower(ed.W) {
			if e.c != nil {
				e.c.LemmaRejections.Inc()
			}
			continue // Lemma 6.1: a direct source edge below the lower bound
		}
		if !e.feasible(ed) {
			if e.c != nil {
				e.c.BoundRejections.Inc()
			}
			continue // condition (3); Lemma 3.1 says never reconsider
		}
		e.merge(ed)
		e.ds.Union(ed.U, ed.V)
		e.refreshByBase(ed.U)
		t.Edges = append(t.Edges, ed)
		if e.c != nil {
			e.c.Merges.Inc()
		}
	}
	if len(t.Edges) != e.n-1 {
		return nil, ErrInfeasible
	}
	//lint:ignore ctxflow post-construction O(n) feasibility check; cancellation during the build is honored by the per-edge stride poll above
	if !FeasibleTree(t, e.b) {
		// Defensive: the feasibility tests guarantee this for upper-only
		// bounds; a lower bound can still be violated by nodes that ended
		// up closer than Lower through multi-hop paths.
		return nil, ErrInfeasible
	}
	return t, nil
}

// feasible applies condition (3-a) or (3-b) to candidate edge ed.
func (e *engine) feasible(ed graph.Edge) bool {
	srcU := e.ds.Same(graph.Source, ed.U)
	srcV := e.ds.Same(graph.Source, ed.V)
	switch {
	case srcU:
		return e.sourceMergeOK(ed.U, ed.V, ed.W)
	case srcV:
		return e.sourceMergeOK(ed.V, ed.U, ed.W)
	default:
		return e.witnessExists(ed)
	}
}

// srcPath returns the in-tree path length from the source to u, valid
// only while u is in the source tree: the dense P row or the sparse
// write-once distS entry.
func (e *engine) srcPath(u int) float64 {
	if e.sparse {
		return e.distS[u]
	}
	return e.path(graph.Source, u)
}

// sourceMergeOK checks condition (3-a): u lies in the source tree, v in a
// source-free tree. All nodes of t_v acquire fixed source paths
// path(S,u) + w + path(v,y); the farthest is bounded via radius(v), the
// nearest is v itself.
func (e *engine) sourceMergeOK(u, v int, w float64) bool {
	base := e.srcPath(u) + w
	if !e.b.WithinUpper(base + e.r[v]) {
		return false
	}
	// v itself is the nearest newly attached sink; it must clear the
	// lower bound.
	return e.b.WithinLower(base)
}

// witnessExists checks condition (3-b): neither tree holds the source, so
// the merged tree needs a feasible node x with dist(S,x)+radius_M(x) ≤
// Upper (and dist(S,x) ≥ Lower when a lower bound is active), where
// radius_M is x's radius in the would-be merged tree, computable from the
// stored P and r without performing the merge.
func (e *engine) witnessExists(ed graph.Edge) bool {
	if e.sparse {
		return e.witnessExistsSparse(ed)
	}
	u, v, w := ed.U, ed.V, ed.W
	// Scans are accumulated locally and flushed once per call: the
	// witness search is the engine's hot loop, and one atomic add per
	// call keeps instrumented runs within noise of uninstrumented ones.
	scans := int64(0)
	defer func() {
		if e.c != nil && scans > 0 {
			e.c.WitnessScans.Add(scans)
		}
	}()
	for _, x := range e.byBase[e.ds.Find(u)] {
		scans++
		if !e.b.WithinUpper(e.witnessBase(x)) {
			break // sorted by base: no later member can witness either
		}
		rM := math.Max(e.r[x], e.path(x, u)+w+e.r[v])
		if e.witnessOK(x, rM) {
			return true
		}
	}
	for _, x := range e.byBase[e.ds.Find(v)] {
		scans++
		if !e.b.WithinUpper(e.witnessBase(x)) {
			break
		}
		rM := math.Max(e.r[x], e.path(x, v)+w+e.r[u])
		if e.witnessOK(x, rM) {
			return true
		}
	}
	return false
}

func (e *engine) witnessOK(x int, radiusM float64) bool {
	dSx := e.dm.At(graph.Source, x)
	return e.b.WithinUpper(dSx+radiusM) && e.b.WithinLower(dSx)
}

// merge performs the paper's Merge routine: fill in the cross-tree P
// entries through the new edge and refresh the radii of both sides. Must
// run before the disjoint-set union so the two member lists are still
// separate.
func (e *engine) merge(ed graph.Edge) {
	if e.sparse {
		e.mergeSparse(ed)
		return
	}
	u, v, w := ed.U, ed.V, ed.W
	mu := e.ds.Members(u)
	mv := e.ds.Members(v)
	if nw := e.refreshW; nw > 1 && len(mu)*len(mv) >= parallelMergeMin {
		e.mergeParallel(u, v, w, mu, mv, nw)
		return
	}
	n := e.n
	for _, x := range mu {
		px := e.p[x*n+u] + w // path(x,u) + dist(u,v)
		rowMax := e.r[x]
		for _, y := range mv {
			pxy := px + e.p[v*n+y]
			e.p[x*n+y] = pxy
			e.p[y*n+x] = pxy
			if pxy > rowMax {
				rowMax = pxy
			}
		}
		e.r[x] = rowMax
	}
	for _, y := range mv {
		colMax := e.r[y]
		for _, x := range mu {
			if pxy := e.p[x*n+y]; pxy > colMax {
				colMax = pxy
			}
		}
		e.r[y] = colMax
	}
}

// refreshByBase re-sorts the merged set's members by witness base,
// called after Union (radii changed during the merge). The merged list
// is copied into the representative's existing byBase buffer, so a
// pooled engine stops growing once the buffers reach steady state.
// witnessBase is evaluated once per member into the baseKey cache
// before sorting — the comparator then reads two cached floats instead
// of recomputing dist+radius lookups O(k log k) times. Every pairwise
// comparison returns the same boolean as the uncached comparator would
// (the keys are the very values it recomputed), so sort.Slice produces
// the identical permutation.
func (e *engine) refreshByBase(member int) {
	rep := e.ds.Find(member)
	members := e.byBase[rep][:0]
	members = append(members, e.ds.Members(rep)...)
	for _, x := range members {
		e.baseKey[x] = e.witnessBase(x)
	}
	sort.Slice(members, func(i, j int) bool {
		return e.baseKey[members[i]] < e.baseKey[members[j]]
	})
	e.byBase[rep] = members
}
