package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/inst"
)

// The sparse-vs-dense pair measures what the implicit-geometry tentpole
// buys end to end: each iteration builds the instance, its geometry
// cache (octant index or full distance matrix), and the tree, then
// releases the caches — so B/op is the whole pipeline's footprint. The
// dense path allocates the O(n²) matrix and edge list; the sparse path
// stays O(n) per node and is the only one that can run n = 10⁵ at all.
// BENCH_PR8.json commits the recorded rows; tools/benchjson -diff gates
// bytes/op next to time so a quadratic allocation cannot sneak back in.
func benchmarkBKRUSGeometry(b *testing.B, nodes int, geo Geometry) {
	rng := rand.New(rand.NewSource(29))
	base := randomInstance(rng, nodes-1, 1000)
	pts := base.Points()
	src, sinks, m := pts[0], pts[1:], base.Metric()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := inst.MustNew(src, sinks, m)
		bounds := UpperOnly(in, 2)
		if _, err := BKRUSBuild(context.Background(), in, bounds, Config{Geometry: geo}); err != nil {
			b.Fatal(err)
		}
		in.Release()
	}
}

func BenchmarkBKRUSSparse(b *testing.B) {
	for _, nodes := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", nodes), func(b *testing.B) { benchmarkBKRUSGeometry(b, nodes, GeomSparse) })
	}
}

func BenchmarkBKRUSDense(b *testing.B) {
	// n = 10⁴ dense already allocates ~800 MB of matrix per op; only the
	// n = 10³ row is worth a committed baseline.
	b.Run("n=1000", func(b *testing.B) { benchmarkBKRUSGeometry(b, 1000, GeomDense) })
}
