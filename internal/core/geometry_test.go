package core

// Property tests for the sparse-substrate exactness invariant: the
// octant/spiral neighbor graph (plus the source star) contains every
// edge the dense constructions actually select — every mst.Kruskal
// edge and every edge dense-path BKRUS merges — so running the same
// scan over the sparse candidate set reproduces the dense result.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

// propertyCorpus enumerates the fixed-seed random instances the
// satellite tests run over: both metrics, n up to 500.
func propertyCorpus(t *testing.T, fn func(name string, in *inst.Instance)) {
	t.Helper()
	for _, m := range []geom.Metric{geom.Manhattan, geom.Euclidean} {
		for _, n := range []int{25, 100, 500} {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(n) + int64(m)))
				sinks := make([]geom.Point, n-1)
				for i := range sinks {
					sinks[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
				}
				src := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
				in := inst.MustNew(src, sinks, m)
				fn(in.Metric().String()+"/"+string(rune('0'+seed)), in)
			}
		}
	}
}

func neighborKeySet(in *inst.Instance) map[graph.Key]bool {
	edges := graph.NeighborEdges(in.Index(), graph.Source)
	set := make(map[graph.Key]bool, len(edges))
	for _, e := range edges {
		set[e.Key()] = true
	}
	return set
}

func TestNeighborGraphContainsKruskalEdges(t *testing.T) {
	propertyCorpus(t, func(name string, in *inst.Instance) {
		set := neighborKeySet(in)
		kt := mst.Kruskal(in.DistMatrix())
		for _, e := range kt.Edges {
			if !set[e.Key()] {
				t.Fatalf("%s n=%d: Kruskal edge %v missing from neighbor graph", name, in.N(), e)
			}
		}
	})
}

// propertyEps is the slack-bound regime where the exactness invariant
// holds: BKRUS selections stay inside the neighbor graph once the
// bound stops forcing non-local merges (measured crossover ≈ ε = 2 on
// uniform instances; at ε = +Inf BKRUS is exactly Kruskal, where
// containment is the Yao/Guibas–Stolfi theorem). Below this regime the
// dense path can accept arbitrarily non-local tree-tree edges — see
// TestSparseTightBoundEnvelope for the guarantee that replaces
// exactness there, and DESIGN.md §13 for the analysis.
var propertyEps = []float64{2, 4, math.Inf(1)}

func TestNeighborGraphContainsDenseBKRUSEdges(t *testing.T) {
	propertyCorpus(t, func(name string, in *inst.Instance) {
		set := neighborKeySet(in)
		for _, eps := range propertyEps {
			tr, err := BKRUS(in, eps)
			if err != nil {
				t.Fatalf("%s n=%d eps=%g: dense BKRUS failed: %v", name, in.N(), eps, err)
			}
			for _, e := range tr.Edges {
				if !set[e.Key()] {
					t.Fatalf("%s n=%d eps=%g: BKRUS edge %v missing from neighbor graph", name, in.N(), eps, e)
				}
			}
		}
	})
}

// TestSparseBKRUSMatchesDense pins the conformance satellite's second
// half: on the property-test corpus, forcing the sparse substrate
// reproduces the dense-mode tree edge for edge — hence cost for cost —
// at every ε, including the unconstrained MST case.
func TestSparseBKRUSMatchesDense(t *testing.T) {
	propertyCorpus(t, func(name string, in *inst.Instance) {
		for _, eps := range propertyEps {
			b := UpperOnly(in, eps)
			dense, err := BKRUSBuild(t.Context(), in, b, Config{Geometry: GeomDense})
			if err != nil {
				t.Fatalf("%s eps=%g: dense failed: %v", name, eps, err)
			}
			sparse, err := BKRUSBuild(t.Context(), in, b, Config{Geometry: GeomSparse})
			if err != nil {
				t.Fatalf("%s eps=%g: sparse failed: %v", name, eps, err)
			}
			if len(dense.Edges) != len(sparse.Edges) {
				t.Fatalf("%s eps=%g: edge counts differ: dense %d, sparse %d",
					name, eps, len(dense.Edges), len(sparse.Edges))
			}
			for k := range dense.Edges {
				if dense.Edges[k] != sparse.Edges[k] {
					t.Fatalf("%s n=%d eps=%g: edge %d differs: dense %v, sparse %v",
						name, in.N(), eps, k, dense.Edges[k], sparse.Edges[k])
				}
			}
		}
	})
}

// TestSparseTightBoundEnvelope covers the regime the exactness
// invariant deliberately excludes: under tight bounds the dense scan
// accepts non-local edges no fixed neighbor structure contains, so the
// sparse tree may differ — but it must always exist (the source star
// keeps upper-only instances completable), always satisfy the bound,
// and stay within a small cost envelope of the dense result (measured
// worst case 1.22× at ε = 0 on this corpus; 1.25 is the pinned
// ceiling).
func TestSparseTightBoundEnvelope(t *testing.T) {
	propertyCorpus(t, func(name string, in *inst.Instance) {
		for _, eps := range []float64{0, 0.1, 0.5, 1} {
			b := UpperOnly(in, eps)
			dense, err := BKRUSBuild(t.Context(), in, b, Config{Geometry: GeomDense})
			if err != nil {
				t.Fatalf("%s eps=%g: dense failed: %v", name, eps, err)
			}
			sparse, err := BKRUSBuild(t.Context(), in, b, Config{Geometry: GeomSparse})
			if err != nil {
				t.Fatalf("%s eps=%g: sparse failed: %v", name, eps, err)
			}
			if !FeasibleTree(sparse, b) {
				t.Fatalf("%s eps=%g: sparse tree violates bound", name, eps)
			}
			if ratio := sparse.Cost() / dense.Cost(); ratio > 1.25 {
				t.Fatalf("%s n=%d eps=%g: sparse cost %.4f× dense, exceeds 1.25 envelope",
					name, in.N(), eps, ratio)
			}
		}
	})
}

// TestSparseBKRUSFeasibleWithScratch exercises the pooled-scratch
// sparse path, including stream caching across an ε-sweep and reuse of
// the same scratch for a dense run afterwards (mode switch).
func TestSparseBKRUSFeasibleWithScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sinks := make([]geom.Point, 300)
	for i := range sinks {
		sinks[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	in := inst.MustNew(geom.Point{X: 50, Y: 50}, sinks, geom.Euclidean)
	var s Scratch
	for _, eps := range []float64{0.5, 2, math.Inf(1)} {
		b := UpperOnly(in, eps)
		tr, err := BKRUSBuild(t.Context(), in, b, Config{Geometry: GeomSparse, Scratch: &s})
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		if !FeasibleTree(tr, b) {
			t.Fatalf("eps=%g: sparse tree violates bound", eps)
		}
		// The pooled-scratch run must agree with the scratchless sparse
		// run edge for edge: stream caching and buffer reuse are pure
		// plumbing.
		want, err := BKRUSBuild(t.Context(), in, b, Config{Geometry: GeomSparse})
		if err != nil {
			t.Fatalf("eps=%g scratchless: %v", eps, err)
		}
		if len(tr.Edges) != len(want.Edges) {
			t.Fatalf("eps=%g: scratch run edge count %d, scratchless %d", eps, len(tr.Edges), len(want.Edges))
		}
		for k := range want.Edges {
			if tr.Edges[k] != want.Edges[k] {
				t.Fatalf("eps=%g edge %d: scratch %v, scratchless %v", eps, k, tr.Edges[k], want.Edges[k])
			}
		}
	}
	if s.MemBytes() <= 0 {
		t.Fatalf("scratch MemBytes = %d, want > 0", s.MemBytes())
	}
	// Mode switch on the same scratch: the cached sparse stream must not
	// leak into a dense run.
	bInf := UpperOnly(in, math.Inf(1))
	dt, err := BKRUSBuild(t.Context(), in, bInf, Config{Geometry: GeomDense, Scratch: &s})
	if err != nil {
		t.Fatalf("dense after sparse: %v", err)
	}
	if want := mst.Kruskal(in.DistMatrix()); dt.Cost() != want.Cost() {
		t.Fatalf("dense-after-sparse cost %g, Kruskal cost %g", dt.Cost(), want.Cost())
	}
}

// TestGeometryResolution pins the mode arithmetic and the auto
// threshold the conformance suite relies on.
func TestGeometryResolution(t *testing.T) {
	if GeomAuto.Sparse(SparseThreshold) || !GeomAuto.Sparse(SparseThreshold+1) {
		t.Fatal("auto mode must cross over just above SparseThreshold")
	}
	if GeomDense.Sparse(1<<20) || !GeomSparse.Sparse(2) {
		t.Fatal("forced modes must ignore instance size")
	}
	if GeomAuto.String() != "auto" || GeomDense.String() != "dense" || GeomSparse.String() != "sparse" {
		t.Fatal("Geometry.String mismatch")
	}
}
