package core

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/obs"
)

// BKRUSBuild with explicit counters must produce the same tree as
// BKRUSBounds and record exactly the counts BKRUSWithStats reports for
// the same instance.
func TestBKRUSBuildCountersMatchWithStats(t *testing.T) {
	in := bench.P3()
	b := UpperOnly(in, 0.25)

	plain, err := BKRUSBounds(in, b)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := BKRUSWithStats(in, b)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sc := reg.Scope(ScopeName)
	c := NewCounters(sc)
	observed, err := BKRUSBuild(context.Background(), in, b, Config{Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if observed.Cost() != plain.Cost() || len(observed.Edges) != len(plain.Edges) {
		t.Errorf("observed tree differs: cost %v vs %v", observed.Cost(), plain.Cost())
	}
	got := c.stats()
	if got != st {
		t.Errorf("observed counters %+v differ from WithStats %+v", got, st)
	}
	if got.Merges != in.N()-1 {
		t.Errorf("merges = %d, want %d", got.Merges, in.N()-1)
	}
	if got.EdgesExamined == 0 || got.WitnessScans == 0 {
		t.Errorf("hot-path counters empty: %+v", got)
	}
}

// A pooled Scratch must yield byte-identical trees across reuse, across
// differing instances, and across bound windows.
func TestBKRUSBuildScratchReuse(t *testing.T) {
	var s Scratch
	ctx := context.Background()
	for _, in := range []*struct {
		name string
		eps  float64
	}{{"p3", 0.1}, {"p3", 0.4}, {"p4", 0.2}, {"p3", 0.1}} {
		inst, ok := bench.ByName(in.name)
		if !ok {
			t.Fatalf("unknown fixture %q", in.name)
		}
		b := UpperOnly(inst, in.eps)
		want, err := BKRUSBounds(inst, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BKRUSBuild(ctx, inst, b, Config{Scratch: &s})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Edges) != len(want.Edges) {
			t.Fatalf("%s eps=%g: edge count %d vs %d", in.name, in.eps, len(got.Edges), len(want.Edges))
		}
		for i := range got.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("%s eps=%g: edge %d differs: %v vs %v", in.name, in.eps, i, got.Edges[i], want.Edges[i])
			}
		}
	}
}

// With a default registry installed, plain BKRUS accumulates into its
// core scope; WithStats stays per-run isolated.
func TestDefaultRegistryPickup(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	in := bench.P4()
	if _, err := BKRUS(in, 0.2); err != nil {
		t.Fatal(err)
	}
	merges := reg.Scope(ScopeName).Counter(CtrMerges).Load()
	if merges != int64(in.N()-1) {
		t.Errorf("default scope merges = %d, want %d", merges, in.N()-1)
	}

	// Two more runs accumulate.
	if _, err := BKRUS(in, 0.2); err != nil {
		t.Fatal(err)
	}
	if got := reg.Scope(ScopeName).Counter(CtrMerges).Load(); got != 2*merges {
		t.Errorf("counters did not accumulate: %d vs %d", got, 2*merges)
	}

	// WithStats isolates its run: the default scope must not move.
	before := reg.Scope(ScopeName).Counter(CtrEdgesExamined).Load()
	_, st, err := BKRUSWithStats(in, UpperOnly(in, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Merges != in.N()-1 {
		t.Errorf("WithStats merges = %d", st.Merges)
	}
	if after := reg.Scope(ScopeName).Counter(CtrEdgesExamined).Load(); after != before {
		t.Errorf("WithStats leaked into the default scope: %d -> %d", before, after)
	}
}
