package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
)

func randomInstanceMetric(rng *rand.Rand, sinks int, extent float64, m geom.Metric) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, m)
}

func sameTree(t *testing.T, label string, got, want *graph.Tree) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: nil mismatch (got %v, want %v)", label, got, want)
	}
	if got == nil {
		return
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %v, want %v", label, i, got.Edges[i], want.Edges[i])
		}
	}
}

// TestBKRUSStreamMatchesEagerSort pins the tentpole identity: the lazily
// streamed edge order is the unique sorted order, so the constructed
// tree is byte-identical to the historical eager-sort build — with and
// without pooled scratch, for both metrics and several bound windows.
func TestBKRUSStreamMatchesEagerSort(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range []geom.Metric{geom.Manhattan, geom.Euclidean} {
		for trial := 0; trial < 6; trial++ {
			in := randomInstanceMetric(rng, 5+rng.Intn(60), 100, m)
			for _, eps := range []float64{0, 0.1, 0.5, math.Inf(1)} {
				b := UpperOnly(in, eps)
				eager, err := BKRUSBuild(context.Background(), in, b, Config{EagerSort: true})
				if err != nil {
					t.Fatal(err)
				}
				lazy, err := BKRUSBuild(context.Background(), in, b, Config{})
				if err != nil {
					t.Fatal(err)
				}
				sameTree(t, "no scratch", lazy, eager)

				var s Scratch
				pooled, err := BKRUSBuild(context.Background(), in, b, Config{Scratch: &s})
				if err != nil {
					t.Fatal(err)
				}
				sameTree(t, "fresh scratch", pooled, eager)
				// Second run on the same scratch re-serves the cached
				// partially drained stream.
				again, err := BKRUSBuild(context.Background(), in, b, Config{Scratch: &s})
				if err != nil {
					t.Fatal(err)
				}
				sameTree(t, "reused scratch", again, eager)
			}
		}
	}
}

// TestScratchStreamCachePerInstance verifies the sweep-reuse contract:
// one scratch serves many builds on one instance through a single
// stream, rebuilds on an instance switch, and drops everything on
// Release.
func TestScratchStreamCachePerInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inA := randomInstance(rng, 30, 100)
	inB := randomInstance(rng, 30, 100)
	var s Scratch
	if _, err := BKRUSBuild(context.Background(), inA, UpperOnly(inA, 0.2), Config{Scratch: &s}); err != nil {
		t.Fatal(err)
	}
	if s.streamFor != inA || s.stream == nil {
		t.Fatal("scratch did not cache the stream for instance A")
	}
	streamA := s.stream
	if _, err := BKRUSBuild(context.Background(), inA, UpperOnly(inA, 0.4), Config{Scratch: &s}); err != nil {
		t.Fatal(err)
	}
	if s.stream != streamA {
		t.Fatal("second build on the same instance rebuilt the stream")
	}
	if _, err := BKRUSBuild(context.Background(), inB, UpperOnly(inB, 0.2), Config{Scratch: &s}); err != nil {
		t.Fatal(err)
	}
	if s.streamFor != inB || s.stream == streamA {
		t.Fatal("instance switch did not rebuild the stream")
	}
	s.Release()
	if s.stream != nil || s.streamFor != nil {
		t.Fatal("Release left the stream cache populated")
	}
	// A released scratch still works; it just rebuilds the stream.
	tr, err := BKRUSBuild(context.Background(), inA, UpperOnly(inA, 0.2), Config{Scratch: &s})
	if err != nil || tr == nil {
		t.Fatalf("build after Release: %v", err)
	}
}

// bookkeepingCheck recomputes every in-forest path length and radius
// from the partial tree and compares them against the engine's
// incremental P-matrix and r vector.
func bookkeepingCheck(t *testing.T, e *engine, partial *graph.Tree, merges int) {
	t.Helper()
	const tol = 1e-6
	for x := 0; x < e.n; x++ {
		d := partial.PathLengthsFrom(x)
		maxSame := 0.0
		for y := 0; y < e.n; y++ {
			if math.IsInf(d[y], 1) {
				// Different partial trees: P must hold its 0 sentinel.
				if e.path(x, y) != 0 {
					t.Fatalf("after %d merges: P[%d][%d] = %v for cross-tree pair",
						merges, x, y, e.path(x, y))
				}
				continue
			}
			if !geom.EqWithin(e.path(x, y), d[y], tol) {
				t.Fatalf("after %d merges: P[%d][%d] = %v, recomputed %v",
					merges, x, y, e.path(x, y), d[y])
			}
			if d[y] > maxSame {
				maxSame = d[y]
			}
		}
		if !geom.EqWithin(e.r[x], maxSame, tol) {
			t.Fatalf("after %d merges: r[%d] = %v, recomputed %v", merges, x, e.r[x], maxSame)
		}
	}
}

// TestMergeBookkeepingMatchesTreeRecompute is the satellite property
// test: drive the BKRUS scan on random instances and, after accepted
// merges, recompute every in-forest path length and radius from the
// partial tree itself (Tree.PathLengthsFrom). The engine's incremental
// P/r bookkeeping must agree — on both metrics, with and without a
// lower bound, up to n = 200.
func TestMergeBookkeepingMatchesTreeRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	type scenario struct {
		sinks      int
		metric     geom.Metric
		lower      bool
		checkEvery int
	}
	scenarios := []scenario{
		{sinks: 12, metric: geom.Manhattan, lower: false, checkEvery: 1},
		{sinks: 12, metric: geom.Euclidean, lower: true, checkEvery: 1},
		{sinks: 40, metric: geom.Manhattan, lower: true, checkEvery: 1},
		{sinks: 40, metric: geom.Euclidean, lower: false, checkEvery: 1},
		{sinks: 199, metric: geom.Manhattan, lower: false, checkEvery: 25},
		{sinks: 199, metric: geom.Euclidean, lower: true, checkEvery: 25},
	}
	for _, sc := range scenarios {
		in := randomInstanceMetric(rng, sc.sinks, 100, sc.metric)
		b := UpperOnly(in, 0.3)
		if sc.lower {
			b = LowerUpper(in, 0.25, 0.3)
		}
		e := newEngine(in, b, Config{})
		partial := graph.NewTree(e.n)
		merges := 0
		// Mirror of engine.run's accept/reject scan, instrumented with
		// the recompute check after accepted merges.
		for len(partial.Edges) < e.n-1 {
			ed, ok := e.stream.Next()
			if !ok {
				break
			}
			if e.ds.Same(ed.U, ed.V) {
				continue
			}
			if (ed.U == graph.Source || ed.V == graph.Source) && !e.b.WithinLower(ed.W) {
				continue
			}
			if !e.feasible(ed) {
				continue
			}
			e.merge(ed)
			e.ds.Union(ed.U, ed.V)
			e.refreshByBase(ed.U)
			partial.AddEdge(ed.U, ed.V, ed.W)
			merges++
			if merges%sc.checkEvery == 0 || len(partial.Edges) == e.n-1 {
				bookkeepingCheck(t, e, partial, merges)
			}
		}
		if merges == 0 {
			t.Fatalf("scenario %+v: no merges accepted, property vacuous", sc)
		}
		bookkeepingCheck(t, e, partial, merges)
	}
}
