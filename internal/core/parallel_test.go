package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/inst"
)

func TestSetRefreshWorkers(t *testing.T) {
	prev := SetRefreshWorkers(3)
	defer SetRefreshWorkers(prev)
	if got := SetRefreshWorkers(5); got != 3 {
		t.Fatalf("SetRefreshWorkers returned %d, want previous 3", got)
	}
	if got := SetRefreshWorkers(0); got != 5 {
		t.Fatalf("SetRefreshWorkers returned %d, want previous 5", got)
	}
	if got := SetRefreshWorkers(-2); got != 0 {
		t.Fatalf("SetRefreshWorkers returned %d, want previous 0", got)
	}
	if got := resolveRefreshWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative knob input resolved to %d, want GOMAXPROCS default", got)
	}
}

func TestResolveRefreshWorkersPrecedence(t *testing.T) {
	prev := SetRefreshWorkers(0)
	defer SetRefreshWorkers(prev)
	if got := resolveRefreshWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default resolution = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetRefreshWorkers(2)
	if got := resolveRefreshWorkers(0); got != 2 {
		t.Errorf("knob resolution = %d, want 2", got)
	}
	// Explicit per-build config beats the knob.
	if got := resolveRefreshWorkers(7); got != 7 {
		t.Errorf("config resolution = %d, want 7", got)
	}
}

func TestRefreshWorkersGauge(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(7)), 40, 1000)
	c := NewCounters(nil)
	if _, err := BKRUSBuild(context.Background(), in, UpperOnly(in, 0.2), Config{Counters: c, RefreshWorkers: 3}); err != nil {
		t.Fatal(err)
	}
	if got := c.RefreshWorkers.Load(); got != 3 {
		t.Errorf("refresh_workers gauge = %g, want 3", got)
	}
}

// buildAt runs one BKRUS construction with a pinned worker count and a
// private counter set, returning the tree and the counter totals.
func buildAt(t *testing.T, in *inst.Instance, b Bounds, geo Geometry, workers int) (tree []graph.Edge, stats BuildStats) {
	t.Helper()
	c := NewCounters(nil)
	tr, err := BKRUSBuild(context.Background(), in, b, Config{Counters: c, Geometry: geo, RefreshWorkers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return tr.Edges, c.stats()
}

// TestMergeParallelByteIdentical pins the tentpole contract on the dense
// substrate: for worker counts spanning the serial path, even/odd
// sharding, and more workers than rows, the tree bytes and every
// construction counter match the serial build exactly. n is large
// enough that late merges cross parallelMergeMin, so the parallel
// kernel really runs when workers > 1.
func TestMergeParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{1, 42} {
		in := randomInstance(rand.New(rand.NewSource(seed)), 600, 1000)
		in.DistMatrix()
		for _, eps := range []float64{0, 0.2} {
			b := UpperOnly(in, eps)
			wantTree, wantStats := buildAt(t, in, b, GeomDense, 1)
			for _, w := range []int{2, 3, 4, 8, 1024} {
				gotTree, gotStats := buildAt(t, in, b, GeomDense, w)
				label := fmt.Sprintf("seed=%d eps=%g workers=%d", seed, eps, w)
				if len(gotTree) != len(wantTree) {
					t.Fatalf("%s: %d edges, want %d", label, len(gotTree), len(wantTree))
				}
				for i := range wantTree {
					if gotTree[i] != wantTree[i] {
						t.Fatalf("%s: edge %d = %+v, want %+v", label, i, gotTree[i], wantTree[i])
					}
				}
				if gotStats != wantStats {
					t.Errorf("%s: stats %+v, want %+v", label, gotStats, wantStats)
				}
			}
		}
	}
}

// TestSparseParallelByteIdentical is the same contract on the sparse
// substrate, where the parallel kernel is the concurrent DFS pair: the
// serial build's trees and counter totals — including witness_scans,
// whose early-exit order the prefetch branch must preserve — are
// byte-identical at every worker count.
func TestSparseParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	in := randomInstance(rand.New(rand.NewSource(9)), 6000, 1e6)
	for _, eps := range []float64{0.05, 0.5} {
		b := UpperOnly(in, eps)
		wantTree, wantStats := buildAt(t, in, b, GeomSparse, 1)
		for _, w := range []int{2, 4, 8} {
			gotTree, gotStats := buildAt(t, in, b, GeomSparse, w)
			label := fmt.Sprintf("eps=%g workers=%d", eps, w)
			if len(gotTree) != len(wantTree) {
				t.Fatalf("%s: %d edges, want %d", label, len(gotTree), len(wantTree))
			}
			for i := range wantTree {
				if gotTree[i] != wantTree[i] {
					t.Fatalf("%s: edge %d = %+v, want %+v", label, i, gotTree[i], wantTree[i])
				}
			}
			if gotStats != wantStats {
				t.Errorf("%s: stats %+v, want %+v", label, gotStats, wantStats)
			}
		}
	}
}

// TestParallelScratchReuse drives the parallel paths through a pooled
// scratch across geometry switches, so the second stack pair's
// grow-and-hand-back cycle is exercised the way engine.Build pools it.
func TestParallelScratchReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := &Scratch{}
	in := randomInstance(rand.New(rand.NewSource(11)), 3000, 1e6)
	b := UpperOnly(in, 0.2)
	var want []graph.Edge
	for round := 0; round < 3; round++ {
		tr, err := BKRUSBuild(context.Background(), in, b, Config{Scratch: s, Geometry: GeomSparse, RefreshWorkers: 4})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == 0 {
			want = tr.Edges
			continue
		}
		for i := range want {
			if tr.Edges[i] != want[i] {
				t.Fatalf("round %d: edge %d = %+v, want %+v", round, i, tr.Edges[i], want[i])
			}
		}
	}
	if s.MemBytes() <= 0 {
		t.Error("pooled scratch reports no retained bytes after parallel runs")
	}
}

// benchmarkRefresh measures the full construction at a pinned worker
// count; the per-merge refresh dominates dense BKRUS at this size, so
// the workers=1 vs workers=4 rows are the BENCH_PR9 hot-path gate.
func benchmarkRefresh(b *testing.B, nodes, workers int, geo Geometry) {
	in := randomInstance(rand.New(rand.NewSource(13)), nodes-1, 1000)
	if geo == GeomDense {
		in.DistMatrix()
	}
	bounds := UpperOnly(in, 0.2)
	s := &Scratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUSBuild(context.Background(), in, bounds, Config{Scratch: s, Geometry: geo, RefreshWorkers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBKRUSRefresh(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("n=1000/workers=%d", workers), func(b *testing.B) { benchmarkRefresh(b, 1000, workers, GeomDense) })
	}
}

func BenchmarkBKRUSRefreshSparse(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("n=10000/workers=%d", workers), func(b *testing.B) { benchmarkRefresh(b, 10000, workers, GeomSparse) })
	}
}
