package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// The stream-vs-eager pair measures what the lazy tentpole buys: an
// eager build pays O(n² log n) to sort every complete-graph edge before
// the scan starts, while the streamed build only orders the prefix the
// scan actually consumes. edges/op reports that consumed prefix (the
// candidate edges examined per construction) next to the ~n²/2 total.
func benchmarkBKRUSBuild(b *testing.B, nodes int, eps float64, eager bool) {
	in := randomInstance(rand.New(rand.NewSource(13)), nodes-1, 1000)
	in.DistMatrix() // prebuild: measure construction, not geometry setup
	bounds := UpperOnly(in, eps)
	c := NewCounters(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BKRUSBuild(context.Background(), in, bounds, Config{Counters: c, EagerSort: eager}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(c.EdgesExamined.Load())/float64(b.N), "edges/op")
}

// Two ε regimes: tight bounds (0.2) reject many merges and drain deep
// into the edge order — the lazy stream's hardest case — while loose
// bounds (0.5) accept merges early and consume only a short prefix,
// where skipping the full sort pays the most.
var benchEps = []float64{0.2, 0.5}

func BenchmarkBKRUSStream(b *testing.B) {
	for _, nodes := range []int{100, 250, 500, 1000} {
		for _, eps := range benchEps {
			b.Run(fmt.Sprintf("n=%d/eps=%g", nodes, eps), func(b *testing.B) { benchmarkBKRUSBuild(b, nodes, eps, false) })
		}
	}
}

func BenchmarkBKRUSEager(b *testing.B) {
	for _, nodes := range []int{100, 250, 500, 1000} {
		for _, eps := range benchEps {
			b.Run(fmt.Sprintf("n=%d/eps=%g", nodes, eps), func(b *testing.B) { benchmarkBKRUSBuild(b, nodes, eps, true) })
		}
	}
}
