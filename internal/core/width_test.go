package core

import (
	"math"
	"testing"
)

// TestVertexIDSpaceGuard pins the invariant behind the int32 vertex-id
// conversions in fillPathsInto (see the intwidth suppressions in
// sparse.go): ids fit int32 because newEngine refuses larger vertex
// counts at the boundary.
func TestVertexIDSpaceGuard(t *testing.T) {
	guardVertexIDSpace(0)
	guardVertexIDSpace(math.MaxInt32) // the largest admissible count

	defer func() {
		if recover() == nil {
			t.Fatalf("guardVertexIDSpace(MaxInt32+1) did not panic")
		}
	}()
	guardVertexIDSpace(math.MaxInt32 + 1)
}
