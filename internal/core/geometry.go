package core

import "fmt"

// Geometry selects the geometric substrate a construction runs on:
// the materialized O(n²) distance matrix and complete edge list
// (dense), or the on-demand distance oracle and octant neighbor graph
// (sparse). Dense is the historical behaviour and stays byte-identical
// to it; sparse replaces every O(n²) structure — matrix, edge list,
// P-matrix — with O(n) counterparts so instances of 10⁵ terminals fit
// in memory. The zero value is GeomAuto.
type Geometry int

const (
	// GeomAuto picks dense for instances of at most SparseThreshold
	// terminals and sparse above — small instances keep the exact
	// historical output, large ones become tractable.
	GeomAuto Geometry = iota
	// GeomDense forces the materialized matrix and complete edge list.
	GeomDense
	// GeomSparse forces the oracle and octant neighbor graph regardless
	// of size.
	GeomSparse
)

// SparseThreshold is the auto-mode crossover: GeomAuto resolves to
// dense at or below this many terminals. 2048 keeps every conformance
// fixture and the serve daemon's default instance cap (MaxPoints =
// 2048) on the dense path, while a 2048-terminal matrix (32 MiB) is
// about the largest worth materializing per instance.
const SparseThreshold = 2048

// String returns the mode's conventional name.
func (g Geometry) String() string {
	switch g {
	case GeomAuto:
		return "auto"
	case GeomDense:
		return "dense"
	case GeomSparse:
		return "sparse"
	default:
		return fmt.Sprintf("Geometry(%d)", int(g))
	}
}

// Sparse resolves the mode for an n-terminal instance: true means the
// construction runs on the sparse substrate.
func (g Geometry) Sparse(n int) bool {
	switch g {
	case GeomSparse:
		return true
	case GeomDense:
		return false
	default:
		return n > SparseThreshold
	}
}
