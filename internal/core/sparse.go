package core

// This file holds the sparse-substrate half of the BKRUS engine. The
// dense engine stores P[x][y] — the in-forest path length between every
// same-tree pair — which is what caps instances near n ≈ 10³: the
// matrix alone is O(n²) bytes and every merge writes a cross-product of
// entries. The sparse engine keeps the forest itself instead:
//
//   - adj[x]: the partial forest's adjacency lists (tree edges accepted
//     so far), O(n) total;
//   - distS[x]: the in-tree path length from the source to x, defined
//     only once x joins the source tree — tree paths never change after
//     a merge, so one assignment per node suffices;
//   - pathU/pathV: per-candidate scratch filled by a DFS from an edge
//     endpoint, giving path(endpoint, x) for every member x of that
//     endpoint's tree.
//
// Every P-matrix read the dense engine performs is over a *current
// member* of one of the two trees touched by the candidate edge, so a
// DFS from the endpoint reproduces exactly the rows the feasibility
// test and merge need — the "touch only reachable rows" restructuring.
// A merge costs O(|t_u| + |t_v|) instead of O(|t_u|·|t_v|), and the
// whole engine carries no n² state.
//
// Floating point: sums are grouped to match the dense recurrences
// (path(x,u) + w, then + the far-side term), so the two modes agree to
// the last ulp on most instances; where a multi-merge history groups
// additions differently the bound tests' relative tolerance (relTol)
// absorbs the ulp-level divergence. The conformance and property tests
// pin exact agreement on the supported corpora.

import (
	"math"

	"repro/internal/graph"
)

// fillPaths runs an iterative DFS over the partial forest from root,
// writing the in-tree path length root→x into out[x] for every member
// x of root's tree. Entries of out outside root's tree keep stale
// values; callers only index out by current members.
func (e *engine) fillPaths(root int, out []float64) {
	fillPathsInto(e.adj, root, out, &e.stackNode, &e.stackPar)
}

// fillPathsInto is the DFS body behind fillPaths, parameterized over
// its stack scratch so two fills over disjoint output arrays can run
// concurrently (fillPathsPair): each call owns the stacks it is handed
// and grows them in place through the pointers.
func fillPathsInto(adj [][]graph.Adj, root int, out []float64, snp, spp *[]int32) {
	out[root] = 0
	sn := (*snp)[:0]
	sp := (*spp)[:0]
	//lint:ignore intwidth root is a vertex id < n, and newEngine guards n <= MaxInt32 (guardVertexIDSpace, pinned by TestVertexIDSpaceGuard)
	sn = append(sn, int32(root))
	sp = append(sp, -1)
	for len(sn) > 0 {
		// Pop both stacks through one guarded index: sn and sp grow and
		// shrink in lockstep, and `last` is provably in range under the
		// loop guard, so the prover sees both pops as in-bounds.
		last := len(sn) - 1
		x := int(sn[last])
		par := sp[last]
		sn = sn[:last]
		sp = sp[:last]
		for _, a := range adj[x] {
			//lint:ignore intwidth adjacency targets are vertex ids < n, and newEngine guards n <= MaxInt32 (guardVertexIDSpace, pinned by TestVertexIDSpaceGuard)
			if int32(a.To) == par {
				continue
			}
			out[a.To] = out[x] + a.W
			//lint:ignore intwidth adjacency targets are vertex ids < n, and newEngine guards n <= MaxInt32 (guardVertexIDSpace, pinned by TestVertexIDSpaceGuard)
			sn = append(sn, int32(a.To))
			sp = append(sp, int32(x))
		}
	}
	*snp, *spp = sn, sp
}

// witnessExistsSparse is condition (3-b) on the sparse substrate: the
// same byBase scan as the dense path, with P-matrix rows replaced by a
// DFS from each endpoint. The base-sorted member order still gives the
// early exit, and the DFS is skipped entirely when even the
// smallest-base member fails the bound.
func (e *engine) witnessExistsSparse(ed graph.Edge) bool {
	u, v, w := ed.U, ed.V, ed.W
	scans := int64(0)
	defer func() {
		if e.c != nil && scans > 0 {
			e.c.WitnessScans.Add(scans)
		}
	}()
	// Parallel prefetch: when both sides clear their first-member bound
	// precheck, both DFS fills are about to run anyway, so run them
	// concurrently and scan over the ready arrays. The scan order, its
	// early exits, and the witness-scan counts are exactly the serial
	// path's; only the DFS wall-clock overlaps. Gated so the serial
	// configuration keeps the historical lazy flow (side v's DFS never
	// runs when side u already witnessed).
	membersU := e.byBase[e.ds.Find(u)]
	membersV := e.byBase[e.ds.Find(v)]
	if nw := e.refreshW; nw > 1 && len(membersU)+len(membersV) >= parallelFillMin &&
		len(membersU) > 0 && e.b.WithinUpper(e.witnessBase(membersU[0])) &&
		len(membersV) > 0 && e.b.WithinUpper(e.witnessBase(membersV[0])) {
		e.fillPathsPair(u, v, len(membersU), len(membersV))
		if e.scanSideFilled(membersU, w, e.pathU, e.r[v], &scans) {
			return true
		}
		return e.scanSideFilled(membersV, w, e.pathV, e.r[u], &scans)
	}
	if e.scanSideSparse(u, v, w, e.pathU, &scans) {
		return true
	}
	return e.scanSideSparse(v, u, w, e.pathV, &scans)
}

// scanSideFilled is scanSideSparse for a side whose path array was
// already filled (and whose first-member precheck already passed): the
// member loop and its counting are identical, only the fill is skipped.
func (e *engine) scanSideFilled(members []int, w float64, path []float64, rOther float64, scans *int64) bool {
	for _, x := range members {
		*scans++
		if !e.b.WithinUpper(e.witnessBase(x)) {
			break
		}
		rM := math.Max(e.r[x], path[x]+w+rOther)
		if e.witnessOK(x, rM) {
			return true
		}
	}
	return false
}

// scanSideSparse scans u's tree for a witness of the tentative merge
// with v's tree across an edge of weight w, filling path with the
// in-tree distances from u on demand.
func (e *engine) scanSideSparse(u, v int, w float64, path []float64, scans *int64) bool {
	members := e.byBase[e.ds.Find(u)]
	// Sorted by base: when the smallest base already exceeds the bound
	// no member can witness, and the DFS never runs.
	if len(members) == 0 || !e.b.WithinUpper(e.witnessBase(members[0])) {
		*scans++
		return false
	}
	e.fillPaths(u, path)
	for _, x := range members {
		*scans++
		if !e.b.WithinUpper(e.witnessBase(x)) {
			break
		}
		rM := math.Max(e.r[x], path[x]+w+e.r[v])
		if e.witnessOK(x, rM) {
			return true
		}
	}
	return false
}

// mergeSparse performs the Merge bookkeeping without a P-matrix: one
// DFS per side yields every in-tree path the radius and source-path
// updates need. Grouping mirrors the dense recurrences exactly —
// (path(x,u) + w) + r[v] for the near side, (r[u] + w) + path(v,y) for
// the far side — because float addition is weakly monotone, so the
// dense cross-product maxima collapse to these closed forms term by
// term. Must run before the disjoint-set union, like merge.
func (e *engine) mergeSparse(ed graph.Edge) {
	u, v, w := ed.U, ed.V, ed.W
	mu := e.ds.Members(u)
	mv := e.ds.Members(v)
	e.fillPathsPair(u, v, len(mu), len(mv))
	ru, rv := e.r[u], e.r[v]
	for _, x := range mu {
		if nr := e.pathU[x] + w + rv; nr > e.r[x] {
			e.r[x] = nr
		}
	}
	baseU := ru + w
	for _, y := range mv {
		if nr := baseU + e.pathV[y]; nr > e.r[y] {
			e.r[y] = nr
		}
	}
	// Source paths become defined for the source-free side the moment
	// the trees join; they never change afterwards (tree paths are
	// immutable once present), so each node's distS is written once.
	if e.ds.Same(graph.Source, u) {
		base := e.distS[u] + w
		for _, y := range mv {
			e.distS[y] = base + e.pathV[y]
		}
	} else if e.ds.Same(graph.Source, v) {
		dv := e.distS[v]
		for _, x := range mu {
			e.distS[x] = e.pathU[x] + w + dv
		}
	}
	e.adj[u] = append(e.adj[u], graph.Adj{To: v, W: w})
	e.adj[v] = append(e.adj[v], graph.Adj{To: u, W: w})
}
