package core

// Parallel construction inner loops (ROADMAP item 2). The kernels
// shipped before this file wrap *around* the constructions — distance
// matrix fill, edge sort/stream, the sweep harness — while the per-merge
// work inside BKRUS stayed serial. This file parallelizes that work
// itself, under the same discipline the earlier kernels established
// (parallelgate/sharedwrite/waitpair enforce it statically):
//
//   - every spawn is dominated by a worker-count gate with a serial
//     fallback that produces byte-identical output;
//   - workers write only index-disjoint slots of shared slices;
//   - floating-point sums are grouped exactly as the serial path groups
//     them, so parallel and serial runs agree to the last bit, not just
//     within tolerance.
//
// Dense path — mergeParallel: the paper's Merge writes a cross-product
// of P entries, P[x][y] = (P[x][u] + w) + P[v][y] for x ∈ t_u, y ∈ t_v,
// and refreshes both sides' radii. Workers shard the t_u rows by
// stride: worker g owns rows mu[g], mu[g+w], ... Every write of row x —
// P[x*n+y], the mirror P[y*n+x] (a distinct column slot per x), and
// r[x] — is keyed by x, so shards never touch the same cell. Each P
// entry is one two-addition sum computed from inputs that predate the
// merge, and each row maximum folds over that row's y sequence in mv
// order exactly as the serial loop does, so every written byte is
// identical to the serial merge's. The second phase (column maxima into
// r[y]) shards over t_v the same way after a barrier, reading the
// phase-one entries and writing only r[y].
//
// Sparse path — the per-candidate DFS evaluations: witnessExistsSparse
// and mergeSparse each need the in-tree paths from both endpoints
// (pathU and pathV). The two DFS fills touch disjoint output arrays and
// disjoint stack scratch, so they run concurrently; the feasibility
// scan itself stays serial, preserving the byte-exact early-exit order
// and the witness-scan counter totals.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelMergeMin is the minimum cross-product |t_u|·|t_v| below which
// the serial merge always wins (goroutine startup dominates the
// double-addition per cell).
const parallelMergeMin = 16384

// parallelFillMin is the minimum combined member count below which the
// two sparse DFS fills run serially.
const parallelFillMin = 2048

// refreshWorkersKnob overrides the per-merge refresh worker count:
// 0 means "gate on runtime.GOMAXPROCS", 1 forces the serial path,
// n > 1 forces n workers. Atomic so tests and benchmarks can flip it
// concurrently.
var refreshWorkersKnob atomic.Int32

// SetRefreshWorkers sets the package-level worker count for the
// per-merge P-matrix/radius refresh (dense) and the per-candidate DFS
// pair (sparse), returning the previous setting. 0 restores the default
// (runtime.GOMAXPROCS); 1 forces the serial path. Per-build
// Config.RefreshWorkers takes precedence. Intended for tests,
// benchmarks, and binaries that must pin one path.
func SetRefreshWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		// The knob is stored in an atomic.Int32; an absurd worker count
		// would otherwise truncate silently (possibly to a negative).
		n = math.MaxInt32
	}
	return int(refreshWorkersKnob.Swap(int32(n)))
}

// resolveRefreshWorkers resolves the effective worker count for one
// construction: explicit per-build config, else the package knob, else
// GOMAXPROCS.
func resolveRefreshWorkers(cfg int) int {
	if cfg > 0 {
		return cfg
	}
	if k := refreshWorkersKnob.Load(); k > 0 {
		return int(k)
	}
	return runtime.GOMAXPROCS(0)
}

// mergeParallel is the dense Merge with the t_u rows sharded across w
// workers. Writes are index-disjoint by row owner x (P[x*n+y], the
// mirror column slot P[y*n+x], and r[x] are all keyed by x); phase two
// shards the t_v column maxima by owner y after the barrier. Each cell
// and each row maximum is computed with the exact operand grouping of
// the serial merge, so the result is byte-identical.
func (e *engine) mergeParallel(u, v int, w float64, mu, mv []int, workers int) {
	n := e.n
	if workers > len(mu) {
		workers = len(mu)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(mu); i += workers {
				x := mu[i]
				px := e.p[x*n+u] + w // path(x,u) + dist(u,v), as in merge
				rowMax := e.r[x]
				for _, y := range mv {
					pxy := px + e.p[v*n+y]
					e.p[x*n+y] = pxy
					e.p[y*n+x] = pxy
					if pxy > rowMax {
						rowMax = pxy
					}
				}
				e.r[x] = rowMax
			}
		}(g)
	}
	wg.Wait()
	cw := workers
	if cw > len(mv) {
		cw = len(mv)
	}
	for g := 0; g < cw; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := g; j < len(mv); j += cw {
				y := mv[j]
				colMax := e.r[y]
				for _, x := range mu {
					if pxy := e.p[x*n+y]; pxy > colMax {
						colMax = pxy
					}
				}
				e.r[y] = colMax
			}
		}(g)
	}
	wg.Wait()
}

// fillPathsPair fills pathU (DFS from u) and pathV (DFS from v). When
// the worker gate allows and the combined tree size clears
// parallelFillMin, the two fills run concurrently — they write disjoint
// arrays and use disjoint stack scratch — otherwise both run serially
// on the engine's primary stacks. Either way each array's contents are
// the byte-identical DFS products.
func (e *engine) fillPathsPair(u, v int, nu, nv int) {
	if w := e.refreshW; w > 1 && nu+nv >= parallelFillMin {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			fillPathsInto(e.adj, v, e.pathV, &e.stackNode2, &e.stackPar2)
		}()
		e.fillPaths(u, e.pathU)
		wg.Wait()
		return
	}
	e.fillPaths(u, e.pathU)
	e.fillPaths(v, e.pathV)
}
