package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/inst"
)

// BuildStats describes one BKRUS construction run: how many candidate
// edges were examined and why they were discarded. Useful for
// diagnosing why a construction came out expensive (many bound
// rejections force direct source edges) and for verifying the
// complexity analysis empirically.
type BuildStats struct {
	EdgesExamined   int // candidate edges popped from the sorted list
	CycleRejections int // condition (2): endpoints already connected
	BoundRejections int // condition (3): merge would break the bound
	LemmaRejections int // Lemma 6.1: direct source edge below the lower bound
	Merges          int // accepted edges (always N-1 on success)
	WitnessScans    int // nodes visited by (3-b) witness searches
}

// String summarizes the stats on one line.
func (s BuildStats) String() string {
	return fmt.Sprintf("examined %d: %d merges, %d cycle, %d bound, %d lemma rejections; %d witness scans",
		s.EdgesExamined, s.Merges, s.CycleRejections, s.BoundRejections, s.LemmaRejections, s.WitnessScans)
}

// BKRUSWithStats is BKRUSBounds returning construction statistics
// alongside the tree. On error the stats cover the work done before the
// failure.
func BKRUSWithStats(in *inst.Instance, b Bounds) (*graph.Tree, BuildStats, error) {
	if err := b.Validate(); err != nil {
		return nil, BuildStats{}, err
	}
	e := newEngine(in, b)
	e.stats = &BuildStats{}
	t, err := e.run()
	return t, *e.stats, err
}
