package core

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
)

// ScopeName is the obs scope the core layer records into. When a
// process-wide default registry is installed (obs.SetDefault), every
// BKRUS construction accumulates its counters there; otherwise counting
// is off and the engine pays a single nil test per event site.
const ScopeName = "core"

// Counter names of the core scope, as they appear in a -metrics JSON
// report. OBSERVABILITY.md is the catalogue.
const (
	CtrEdgesExamined   = "edges_examined"
	CtrCycleRejections = "cycle_rejections"
	CtrBoundRejections = "bound_rejections"
	CtrLemmaRejections = "lemma_rejections"
	CtrMerges          = "merges"
	CtrWitnessScans    = "witness_scans"
	CtrStreamBatches   = "stream_batches"
	CtrStreamFallbacks = "stream_fallback_sorts"
)

// Gauge names of the core scope.
const (
	// GaugeRefreshWorkers reports the resolved worker count of the most
	// recent construction's per-merge refresh (dense P-matrix rows /
	// sparse DFS pair). 1 means the serial path was pinned.
	GaugeRefreshWorkers = "refresh_workers"
)

// Counters is the BKRUS engine's obs-backed counter set. Construct with
// NewCounters; a set resolved from a shared scope accumulates across
// every construction recording into it (the aggregate view binaries
// want), while a standalone set (NewCounters(nil)) isolates one run
// (the BKRUSWithStats view).
type Counters struct {
	EdgesExamined   *obs.Counter // candidate edges popped from the sorted list
	CycleRejections *obs.Counter // condition (2): endpoints already connected
	BoundRejections *obs.Counter // condition (3): merge would break the bound
	LemmaRejections *obs.Counter // Lemma 6.1: direct source edge below the lower bound
	Merges          *obs.Counter // accepted edges (always N-1 on success)
	WitnessScans    *obs.Counter // nodes visited by (3-b) witness searches
	StreamBatches   *obs.Counter // sorted batches the lazy edge stream produced
	StreamFallbacks *obs.Counter // whole-tail fallback sorts the stream took
	RefreshWorkers  *obs.Gauge   // resolved per-merge refresh worker count (1 = serial)
}

// NewCounters resolves the core counter set inside sc. A nil scope
// yields a standalone set not attached to any registry.
func NewCounters(sc *obs.Scope) *Counters {
	return &Counters{
		EdgesExamined:   sc.Counter(CtrEdgesExamined),
		CycleRejections: sc.Counter(CtrCycleRejections),
		BoundRejections: sc.Counter(CtrBoundRejections),
		LemmaRejections: sc.Counter(CtrLemmaRejections),
		Merges:          sc.Counter(CtrMerges),
		WitnessScans:    sc.Counter(CtrWitnessScans),
		StreamBatches:   sc.Counter(CtrStreamBatches),
		StreamFallbacks: sc.Counter(CtrStreamFallbacks),
		RefreshWorkers:  sc.Gauge(GaugeRefreshWorkers),
	}
}

// stats reads the counter set back into the legacy BuildStats view.
func (c *Counters) stats() BuildStats {
	return BuildStats{
		EdgesExamined:   int(c.EdgesExamined.Load()),
		CycleRejections: int(c.CycleRejections.Load()),
		BoundRejections: int(c.BoundRejections.Load()),
		LemmaRejections: int(c.LemmaRejections.Load()),
		Merges:          int(c.Merges.Load()),
		WitnessScans:    int(c.WitnessScans.Load()),
		StreamBatches:   int(c.StreamBatches.Load()),
		StreamFallbacks: int(c.StreamFallbacks.Load()),
	}
}

// BuildStats describes one BKRUS construction run: how many candidate
// edges were examined and why they were discarded. Useful for
// diagnosing why a construction came out expensive (many bound
// rejections force direct source edges) and for verifying the
// complexity analysis empirically.
//
// BuildStats is the per-run shim over the obs-backed Counters the
// engine actually counts into; field order and meaning are unchanged
// from before the migration.
type BuildStats struct {
	EdgesExamined   int // candidate edges popped from the sorted list
	CycleRejections int // condition (2): endpoints already connected
	BoundRejections int // condition (3): merge would break the bound
	LemmaRejections int // Lemma 6.1: direct source edge below the lower bound
	Merges          int // accepted edges (always N-1 on success)
	WitnessScans    int // nodes visited by (3-b) witness searches
	StreamBatches   int // sorted batches the lazy edge stream produced
	StreamFallbacks int // whole-tail fallback sorts the stream took
}

// String summarizes the stats on one line.
func (s BuildStats) String() string {
	return fmt.Sprintf("examined %d: %d merges, %d cycle, %d bound, %d lemma rejections; %d witness scans",
		s.EdgesExamined, s.Merges, s.CycleRejections, s.BoundRejections, s.LemmaRejections, s.WitnessScans)
}

// BKRUSWithStats is BKRUSBounds returning construction statistics
// alongside the tree. On error the stats cover the work done before the
// failure. The run counts into a private counter set, so the returned
// stats describe exactly this construction even when a default registry
// is installed.
func BKRUSWithStats(in *inst.Instance, b Bounds) (*graph.Tree, BuildStats, error) {
	c := NewCounters(nil)
	t, err := BKRUSBuild(context.Background(), in, b, Config{Counters: c})
	return t, c.stats(), err
}
