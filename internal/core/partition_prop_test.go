package core

// Dynamic witness for the indexbound partition proof (the static half
// is TestPartitionKernelsProved in internal/analysis): random worker
// counts w ∈ [1,64] crossed with random instance sizes feed the actual
// strided refresh kernel, and byte-identity against the single-worker
// run asserts exactly what the analyzer proved — every worker's strided
// subscripts stay inside [0, len) and the shards cover each row exactly
// once (a skipped or doubled row would leave a cell differing from the
// reference).

import (
	"math/rand"
	"testing"
)

// randomMergeEngine builds a bare dense engine with random P/r state
// and two disjoint member sets anchored at u and v, mirroring the state
// merge sees mid-construction.
func randomMergeEngine(rng *rand.Rand, n int) (e *engine, u, v int, mu, mv []int) {
	e = &engine{n: n, p: make([]float64, n*n), r: make([]float64, n)}
	for i := range e.p {
		e.p[i] = rng.Float64() * 1000
	}
	for i := range e.r {
		e.r[i] = rng.Float64() * 1000
	}
	perm := rng.Perm(n)
	cut := 1 + rng.Intn(n-1)
	mu, mv = perm[:cut], perm[cut:]
	return e, mu[0], mv[0], mu, mv
}

// TestMergePartitionProperty: for random (n, w) the strided row shards
// of mergeParallel produce bit-identical P and r to the single-worker
// stride, which is the serial loop's order. Any out-of-range shard
// index would panic; any coverage gap or overlap would diverge from the
// reference on random float state.
func TestMergePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(119) // instance sizes 2..120
		w := 1 + rng.Intn(64)  // worker counts 1..64
		seed := rng.Int63()
		got, u, v, mu, mv := randomMergeEngine(rand.New(rand.NewSource(seed)), n)
		want, _, _, _, _ := randomMergeEngine(rand.New(rand.NewSource(seed)), n)
		weight := rng.Float64() * 10
		got.mergeParallel(u, v, weight, mu, mv, w)
		want.mergeParallel(u, v, weight, mu, mv, 1)
		for i := range want.p {
			if got.p[i] != want.p[i] {
				t.Fatalf("trial %d (n=%d w=%d): P[%d][%d] = %g, want %g",
					trial, n, w, i/n, i%n, got.p[i], want.p[i])
			}
		}
		for i := range want.r {
			if got.r[i] != want.r[i] {
				t.Fatalf("trial %d (n=%d w=%d): r[%d] = %g, want %g",
					trial, n, w, i, got.r[i], want.r[i])
			}
		}
	}
}
