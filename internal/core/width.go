package core

import "math"

// The engine sizes its dense structures with expressions like n*n
// (P-matrix cells) carried out in int. At the target scales those
// exceed int32, so the arithmetic is only safe because int is 64 bits
// on every supported platform. The blank constant fails to compile on
// a 32-bit-int platform, turning the silent assumption into a build
// error; the intwidth analyzer checks that every hot package carries
// it.
const _ uint = 1 << 62

// guardVertexIDSpace checks at the construction boundary that vertex
// ids fit the int32 the DFS stacks store them in (see fillPathsInto).
// Pinned by TestVertexIDSpaceGuard.
func guardVertexIDSpace(n int) {
	if n > math.MaxInt32 {
		panic("core: vertex count exceeds the int32 id space")
	}
}
