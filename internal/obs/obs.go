// Package obs is the repository's unified observability layer: named
// scopes of allocation-light instruments — atomic counters, gauges,
// monotonic timers, and fixed-bucket histograms — collected into a
// Registry whose Snapshot renders as human-readable text or JSON.
//
// The package is designed around three constraints of the algorithm
// layers it instruments (core, router, steiner, baseline):
//
//   - Hot loops must pay nothing when observation is off. Layers keep a
//     nil counter-set pointer when no registry is installed and skip all
//     counting behind one pointer test.
//   - Instrumented code must not need error handling or nil checks. A
//     nil *Scope hands out standalone instruments that work but are not
//     attached to any registry; a nil *Registry yields nil scopes.
//   - Collection must be safe under concurrency (RouteParallel workers
//     share one scope), so every instrument is built on sync/atomic and
//     scopes are internally locked only on the get-or-create path.
//     Instrumented code resolves its instruments once per construction
//     and then touches only atomics.
//
// Binaries install a process-wide default registry with SetDefault;
// layers pick it up opportunistically via DefaultScope, which returns
// nil — observation off — when no registry is installed. Library code
// that wants per-run isolation (e.g. core.BKRUSWithStats) passes an
// explicit scope or a standalone counter set instead.
//
// Counter, gauge, timer, and histogram names follow Prometheus-style
// snake_case with the unit suffixed (edges_examined, route_wall,
// net_build_seconds). OBSERVABILITY.md is the catalogue of every name
// the repository emits.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically stored float64 measurement: the last Set wins.
// Values must be finite; non-finite values are sanitized to 0 when
// snapshotted so the JSON rendering stays valid.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the stored value (0 before the first Set).
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates monotonic wall-clock durations: total elapsed time
// and the number of observations.
type Timer struct {
	ns atomic.Int64
	n  atomic.Int64
}

// Observe folds one duration into the timer.
func (t *Timer) Observe(d time.Duration) {
	t.ns.Add(int64(d))
	t.n.Add(1)
}

// Start begins timing and returns the stop function that records the
// elapsed duration:
//
//	defer sc.Timer("build_seconds").Start()()
func (t *Timer) Start() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.n.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Histogram counts float64 observations into fixed buckets: counts[i]
// holds observations v with v <= bounds[i] (and > bounds[i-1]);
// observations above the last bound land in the overflow bucket. Bucket
// counts are per-bucket, not cumulative.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, fixed at creation
	counts  []atomic.Int64
	sumBits atomic.Uint64
	n       atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe counts v into its bucket.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (shared slice; do not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCount returns the count of bucket i (i == len(Bounds()) is the
// overflow bucket).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// Scope is a named group of instruments, e.g. one per algorithm layer
// ("core", "router", "steiner", "baseline"). Instruments are created on
// first use and identified by name within their kind; repeated lookups
// return the same instrument, so counts accumulate across runs sharing
// a scope.
//
// All methods are safe for concurrent use. On a nil *Scope every
// getter returns a standalone working instrument that is not attached
// to any registry — instrumented code needs no nil checks, and
// observation simply goes nowhere.
type Scope struct {
	name string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
	order    map[kind][]string
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindTimer
	kindHistogram
)

func newScope(name string) *Scope {
	return &Scope{
		name:     name,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
		order:    map[kind][]string{},
	}
}

// Name returns the scope name.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Counter returns the named counter, creating it on first use.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return &Counter{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
		s.order[kindCounter] = append(s.order[kindCounter], name)
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return &Gauge{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
		s.order[kindGauge] = append(s.order[kindGauge], name)
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (s *Scope) Timer(name string) *Timer {
	if s == nil {
		return &Timer{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.timers[name]
	if !ok {
		t = &Timer{}
		s.timers[name] = t
		s.order[kindTimer] = append(s.order[kindTimer], name)
	}
	return t
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use. The bounds of an existing
// histogram are not changed by later calls.
func (s *Scope) Histogram(name string, bounds ...float64) *Histogram {
	if s == nil {
		return newHistogram(bounds)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[name]
	if !ok {
		h = newHistogram(bounds)
		s.hists[name] = h
		s.order[kindHistogram] = append(s.order[kindHistogram], name)
	}
	return h
}

// Registry is an ordered collection of scopes plus free-form string
// labels (binary name, algorithm, benchmark) stamped onto its
// snapshots. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu         sync.Mutex
	scopes     map[string]*Scope
	scopeOrder []string
	labels     map[string]string
	labelOrder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: map[string]*Scope{}, labels: map[string]string{}}
}

// Scope returns the named scope, creating it on first use. A nil
// registry returns a nil scope (observation off).
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.scopes[name]
	if !ok {
		s = newScope(name)
		r.scopes[name] = s
		r.scopeOrder = append(r.scopeOrder, name)
	}
	return s
}

// SetLabel stamps a key=value label onto the registry's snapshots.
func (r *Registry) SetLabel(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.labels[key]; !ok {
		r.labelOrder = append(r.labelOrder, key)
	}
	r.labels[key] = value
}

// defaultReg is the process-wide registry installed by binaries.
var defaultReg atomic.Pointer[Registry]

// SetDefault installs r as the process-wide default registry that the
// algorithm layers record into (nil uninstalls it). Intended for
// binaries: call once after flag parsing, before any construction.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Default returns the installed default registry, or nil.
func Default() *Registry { return defaultReg.Load() }

// DefaultScope returns the named scope of the default registry, or nil
// when no registry is installed — the "observation off" signal the
// algorithm layers test once per construction.
func DefaultScope(name string) *Scope { return defaultReg.Load().Scope(name) }
