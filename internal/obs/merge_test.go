package obs

import (
	"testing"
	"time"
)

func TestRegistryMergeFoldsEveryInstrumentKind(t *testing.T) {
	dst := NewRegistry()
	dst.Scope("core").Counter("edges").Add(10)
	dst.Scope("core").Gauge("ratio").Set(1.5)
	dst.Scope("core").Timer("wall").Observe(2 * time.Second)
	dst.Scope("core").Histogram("cost", 1, 10).Observe(0.5)
	dst.SetLabel("bin", "a")

	src := NewRegistry()
	src.Scope("core").Counter("edges").Add(5)
	src.Scope("core").Counter("merges").Add(3)
	src.Scope("core").Gauge("ratio").Set(2.5)
	src.Scope("core").Timer("wall").Observe(time.Second)
	h := src.Scope("core").Histogram("cost", 1, 10)
	h.Observe(5)
	h.Observe(100)
	src.Scope("router").Counter("nets").Add(7)
	src.SetLabel("bin", "b")
	src.SetLabel("algo", "bkrus")

	dst.Merge(src)

	sc := dst.Scope("core")
	if got := sc.Counter("edges").Load(); got != 15 {
		t.Errorf("edges = %d, want 15", got)
	}
	if got := sc.Counter("merges").Load(); got != 3 {
		t.Errorf("merges = %d, want 3", got)
	}
	if got := sc.Gauge("ratio").Load(); got != 2.5 {
		t.Errorf("ratio = %v, want src-wins 2.5", got)
	}
	if w := sc.Timer("wall"); w.Count() != 2 || w.Total() != 3*time.Second {
		t.Errorf("wall = %v over %d, want 3s over 2", w.Total(), w.Count())
	}
	ch := sc.Histogram("cost", 1, 10)
	if ch.Count() != 3 || ch.Sum() != 105.5 {
		t.Errorf("cost count/sum = %d/%v, want 3/105.5", ch.Count(), ch.Sum())
	}
	if ch.BucketCount(0) != 1 || ch.BucketCount(1) != 1 || ch.BucketCount(2) != 1 {
		t.Errorf("cost buckets = %d/%d/%d, want 1/1/1",
			ch.BucketCount(0), ch.BucketCount(1), ch.BucketCount(2))
	}
	if got := dst.Scope("router").Counter("nets").Load(); got != 7 {
		t.Errorf("router/nets = %d, want 7", got)
	}
	if dst.labels["bin"] != "b" || dst.labels["algo"] != "bkrus" {
		t.Errorf("labels = %v, want src-wins", dst.labels)
	}
}

func TestRegistryMergeNilAndSelf(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(NewRegistry()) // must not panic

	r := NewRegistry()
	r.Scope("s").Counter("c").Add(4)
	r.Merge(nil)
	r.Merge(r)
	if got := r.Scope("s").Counter("c").Load(); got != 4 {
		t.Errorf("self/nil merge changed counter: %d", got)
	}
}

// Merging several registries in input order must be deterministic:
// counters sum, and the last registry's gauge wins.
func TestRegistryMergeOrderDeterminism(t *testing.T) {
	mk := func(g float64, c int64) *Registry {
		r := NewRegistry()
		r.Scope("s").Gauge("g").Set(g)
		r.Scope("s").Counter("c").Add(c)
		return r
	}
	dst := NewRegistry()
	for _, src := range []*Registry{mk(1, 10), mk(2, 20), mk(3, 30)} {
		dst.Merge(src)
	}
	if got := dst.Scope("s").Counter("c").Load(); got != 60 {
		t.Errorf("counter = %d, want 60", got)
	}
	if got := dst.Scope("s").Gauge("g").Load(); got != 3 {
		t.Errorf("gauge = %v, want last-merged 3", got)
	}
}
