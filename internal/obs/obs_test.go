package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	if g.Load() != 0 {
		t.Errorf("zero gauge = %g", g.Load())
	}
	g.Set(0.75)
	if g.Load() != 0.75 {
		t.Errorf("gauge = %g", g.Load())
	}
	var tm Timer
	tm.Observe(2 * time.Second)
	tm.Observe(4 * time.Second)
	if tm.Count() != 2 || tm.Total() != 6*time.Second {
		t.Errorf("timer count=%d total=%v", tm.Count(), tm.Total())
	}
	stop := tm.Start()
	stop()
	if tm.Count() != 3 {
		t.Errorf("Start/stop did not observe: count=%d", tm.Count())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	// buckets: le 1 -> {0.5, 1}, le 10 -> {5}, le 100 -> {50}, overflow -> {500, 5000}
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5556.5) > 1e-9 {
		t.Errorf("sum = %g", h.Sum())
	}
}

func TestScopeGetOrCreate(t *testing.T) {
	s := newScope("x")
	if s.Counter("a") != s.Counter("a") {
		t.Error("same counter name returned different instruments")
	}
	if s.Timer("a") == nil || s.Gauge("a") == nil {
		t.Error("kinds must not collide on name")
	}
	h1 := s.Histogram("h", 1, 2, 3)
	h2 := s.Histogram("h", 9, 9, 9) // bounds of an existing histogram are kept
	if h1 != h2 {
		t.Error("same histogram name returned different instruments")
	}
	if len(h1.Bounds()) != 3 || h1.Bounds()[2] != 3 {
		t.Errorf("bounds mutated: %v", h1.Bounds())
	}
}

func TestNilScopeAndRegistryAreSafe(t *testing.T) {
	var s *Scope
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Timer("t").Observe(time.Millisecond)
	s.Histogram("h", 1, 2).Observe(1.5)
	if s.Name() != "" {
		t.Errorf("nil scope name %q", s.Name())
	}
	var r *Registry
	if r.Scope("x") != nil {
		t.Error("nil registry must yield nil scope")
	}
	r.SetLabel("k", "v") // must not panic
	snap := r.Snapshot()
	if len(snap.Scopes) != 0 {
		t.Errorf("nil registry snapshot has scopes: %+v", snap)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if DefaultScope("core") != nil {
		t.Fatal("default scope present before install")
	}
	reg := NewRegistry()
	SetDefault(reg)
	defer SetDefault(nil)
	sc := DefaultScope("core")
	if sc == nil {
		t.Fatal("default scope missing after install")
	}
	sc.Counter("edges_examined").Add(7)
	if got := reg.Scope("core").Counter("edges_examined").Load(); got != 7 {
		t.Errorf("default scope not shared with registry: %d", got)
	}
	SetDefault(nil)
	if DefaultScope("core") != nil {
		t.Error("default scope present after uninstall")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabel("binary", "test")
	reg.SetLabel("algo", "bkrus")
	core := reg.Scope("core")
	core.Counter("edges_examined").Add(123)
	core.Counter("bound_rejections").Add(4)
	router := reg.Scope("router")
	router.Gauge("worker_utilization").Set(0.9)
	router.Timer("route_wall").Observe(1500 * time.Millisecond)
	h := router.Histogram("net_build_seconds", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, buf.String())
	}
	if back.CapturedAt == "" {
		t.Error("captured_at missing")
	}
	if len(back.Labels) != 2 || back.Labels[0].Name != "binary" || back.Labels[1].Value != "bkrus" {
		t.Errorf("labels wrong: %+v", back.Labels)
	}
	if len(back.Scopes) != 2 || back.Scopes[0].Name != "core" || back.Scopes[1].Name != "router" {
		t.Fatalf("scopes wrong: %+v", back.Scopes)
	}
	cs := back.Scopes[0].Counters
	if len(cs) != 2 || cs[0].Name != "edges_examined" || cs[0].Value != 123 || cs[1].Value != 4 {
		t.Errorf("core counters wrong: %+v", cs)
	}
	rt := back.Scopes[1]
	if len(rt.Gauges) != 1 || rt.Gauges[0].Value != 0.9 {
		t.Errorf("gauges wrong: %+v", rt.Gauges)
	}
	if len(rt.Timers) != 1 || rt.Timers[0].Count != 1 || math.Abs(rt.Timers[0].TotalSeconds-1.5) > 1e-9 {
		t.Errorf("timers wrong: %+v", rt.Timers)
	}
	if len(rt.Histograms) != 1 {
		t.Fatalf("histograms wrong: %+v", rt.Histograms)
	}
	hv := rt.Histograms[0]
	if hv.Count != 3 || hv.Overflow != 1 || len(hv.Buckets) != 3 ||
		hv.Buckets[0].Count != 1 || hv.Buckets[2].Count != 1 {
		t.Errorf("histogram snapshot wrong: %+v", hv)
	}
}

func TestSnapshotSanitizesNonFiniteGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("s").Gauge("bad").Set(math.Inf(1))
	reg.Scope("s").Gauge("nan").Set(math.NaN())
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("non-finite gauge broke JSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	for _, g := range back.Scopes[0].Gauges {
		if g.Value != 0 {
			t.Errorf("gauge %s = %g, want sanitized 0", g.Name, g.Value)
		}
	}
}

func TestSnapshotText(t *testing.T) {
	reg := NewRegistry()
	reg.SetLabel("binary", "bmstree")
	sc := reg.Scope("core")
	sc.Counter("merges").Add(11)
	sc.Timer("build_seconds").Observe(time.Second)
	sc.Histogram("lat", 1).Observe(0.5)
	text := reg.Snapshot().Text()
	for _, want := range []string{"# binary = bmstree", "[core]", "merges", "11", "build_seconds", "le 1: 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestWriteFile(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("core").Counter("merges").Add(3)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteFile(path, reg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written report does not parse: %v", err)
	}
	if len(back.Scopes) != 1 || back.Scopes[0].Counters[0].Value != 3 {
		t.Errorf("round trip wrong: %+v", back)
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir.json"), reg); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("router")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sc.Counter("nets_routed")
			h := sc.Histogram("lat", 0.5, 1)
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.25)
				sc.Gauge("workers").Set(float64(workers))
				sc.Timer("wall").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := sc.Counter("nets_routed").Load(); got != workers*per {
		t.Errorf("counter lost updates: %d", got)
	}
	h := sc.Histogram("lat")
	if h.Count() != workers*per || h.BucketCount(0) != workers*per {
		t.Errorf("histogram lost updates: count=%d", h.Count())
	}
	if math.Abs(h.Sum()-0.25*workers*per) > 1e-6 {
		t.Errorf("histogram sum drifted: %g", h.Sum())
	}
}

func TestStartProfiles(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("no-op stop failed: %v", err)
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	tr := filepath.Join(dir, "trace.out")
	stop, err = StartProfiles(cpu, tr)
	if err != nil {
		t.Fatal(err)
	}
	// burn a little CPU so the profile has something to record
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += math.Sqrt(float64(i))
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, tr} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s empty or missing: %v", p, err)
		}
	}
	if _, err := StartProfiles(filepath.Join(dir, "no", "cpu.out"), ""); err == nil {
		t.Error("unwritable cpu path accepted")
	}
	if _, err := StartProfiles("", filepath.Join(dir, "no", "trace.out")); err == nil {
		t.Error("unwritable trace path accepted")
	}
}
