package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry's instruments,
// serializable to JSON (-metrics reports) and renderable as text. All
// durations are converted to seconds so the JSON needs no unit lookup.
type Snapshot struct {
	CapturedAt string          `json:"captured_at"`
	Labels     []Label         `json:"labels,omitempty"`
	Scopes     []ScopeSnapshot `json:"scopes"`
}

// Label is one registry label (binary name, algorithm, benchmark, ...).
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ScopeSnapshot holds one scope's instruments in registration order.
type ScopeSnapshot struct {
	Name       string           `json:"name"`
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Timers     []TimerValue     `json:"timers,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// CounterValue is a counter reading.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is a gauge reading (non-finite values sanitized to 0).
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// TimerValue is a timer reading in seconds.
type TimerValue struct {
	Name         string  `json:"name"`
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// HistogramValue is a histogram reading. Bucket counts are per-bucket
// (not cumulative); Overflow counts observations above the last bound.
type HistogramValue struct {
	Name     string        `json:"name"`
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketValue `json:"buckets"`
	Overflow int64         `json:"overflow"`
}

// BucketValue is one histogram bucket: observations v <= Le (and above
// the previous bound).
type BucketValue struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// finite sanitizes NaN/Inf, which encoding/json cannot represent.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Snapshot copies the registry's current instrument values. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{CapturedAt: time.Now().Format(time.RFC3339Nano)}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	labelOrder := append([]string(nil), r.labelOrder...)
	for _, k := range labelOrder {
		snap.Labels = append(snap.Labels, Label{Name: k, Value: r.labels[k]})
	}
	scopeOrder := append([]string(nil), r.scopeOrder...)
	scopes := make([]*Scope, len(scopeOrder))
	for i, name := range scopeOrder {
		scopes[i] = r.scopes[name]
	}
	r.mu.Unlock()
	for _, s := range scopes {
		snap.Scopes = append(snap.Scopes, s.snapshot())
	}
	return snap
}

func (s *Scope) snapshot() ScopeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ScopeSnapshot{Name: s.name}
	for _, name := range s.order[kindCounter] {
		out.Counters = append(out.Counters, CounterValue{Name: name, Value: s.counters[name].Load()})
	}
	for _, name := range s.order[kindGauge] {
		out.Gauges = append(out.Gauges, GaugeValue{Name: name, Value: finite(s.gauges[name].Load())})
	}
	for _, name := range s.order[kindTimer] {
		t := s.timers[name]
		tv := TimerValue{Name: name, Count: t.Count(), TotalSeconds: t.Total().Seconds()}
		if tv.Count > 0 {
			tv.MeanSeconds = tv.TotalSeconds / float64(tv.Count)
		}
		out.Timers = append(out.Timers, tv)
	}
	for _, name := range s.order[kindHistogram] {
		h := s.hists[name]
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: finite(h.Sum())}
		for i, le := range h.bounds {
			hv.Buckets = append(hv.Buckets, BucketValue{Le: le, Count: h.counts[i].Load()})
		}
		hv.Overflow = h.counts[len(h.bounds)].Load()
		out.Histograms = append(out.Histograms, hv)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text renders the snapshot as aligned human-readable lines, one block
// per scope.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, l := range s.Labels {
		fmt.Fprintf(&b, "# %s = %s\n", l.Name, l.Value)
	}
	for _, sc := range s.Scopes {
		fmt.Fprintf(&b, "[%s]\n", sc.Name)
		for _, c := range sc.Counters {
			fmt.Fprintf(&b, "  %-28s %d\n", c.Name, c.Value)
		}
		for _, g := range sc.Gauges {
			fmt.Fprintf(&b, "  %-28s %g\n", g.Name, g.Value)
		}
		for _, t := range sc.Timers {
			fmt.Fprintf(&b, "  %-28s n=%d total=%.6gs mean=%.6gs\n",
				t.Name, t.Count, t.TotalSeconds, t.MeanSeconds)
		}
		for _, h := range sc.Histograms {
			fmt.Fprintf(&b, "  %-28s n=%d sum=%.6g", h.Name, h.Count, h.Sum)
			for _, bk := range h.Buckets {
				fmt.Fprintf(&b, " | le %g: %d", bk.Le, bk.Count)
			}
			fmt.Fprintf(&b, " | over: %d\n", h.Overflow)
		}
	}
	return b.String()
}

// WriteFile snapshots r and writes the indented JSON report to path —
// the implementation behind every binary's -metrics flag.
func WriteFile(path string, r *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.Snapshot().WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
