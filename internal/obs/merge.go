package obs

import "math"

// Registry merging. Parallel drivers (engine.SweepParallel) give each
// worker a private registry so hot loops never contend on shared
// atomics, then fold the workers' registries into the caller's registry
// after the fan-in barrier. Folding in input order makes the combined
// registry deterministic: counters, timers, and histograms are
// commutative sums, and gauges are last-write-wins where "last" is the
// highest input index, not a scheduling accident.

// addRaw folds a pre-aggregated (duration, count) pair into the timer.
func (t *Timer) addRaw(ns, n int64) {
	t.ns.Add(ns)
	t.n.Add(n)
}

// addSum folds v into the histogram's CAS-maintained observation sum.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds every instrument of src into r: counters, timers, and
// histogram buckets add; gauges overwrite (src wins); labels overwrite
// (src wins). Scopes and instruments missing from r are created in
// src's order. A nil receiver, nil src, or r == src is a no-op. Merge
// locks src only while walking its maps — instrument values are read
// via their own atomics — so concurrent recording into either registry
// stays safe, though values recorded during the merge may or may not be
// included.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	src.mu.Lock()
	scopeNames := append([]string(nil), src.scopeOrder...)
	scopes := make([]*Scope, len(scopeNames))
	for i, name := range scopeNames {
		scopes[i] = src.scopes[name]
	}
	labelKeys := append([]string(nil), src.labelOrder...)
	labels := make([]string, len(labelKeys))
	for i, k := range labelKeys {
		labels[i] = src.labels[k]
	}
	src.mu.Unlock()

	for i, name := range scopeNames {
		r.Scope(name).merge(scopes[i])
	}
	for i, k := range labelKeys {
		r.SetLabel(k, labels[i])
	}
}

// merge folds src's instruments into s, creating them on first use in
// src's registration order.
func (s *Scope) merge(src *Scope) {
	if s == nil || src == nil || s == src {
		return
	}
	type namedCounter struct {
		name string
		c    *Counter
	}
	type namedGauge struct {
		name string
		g    *Gauge
	}
	type namedTimer struct {
		name string
		t    *Timer
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	src.mu.Lock()
	counters := make([]namedCounter, 0, len(src.counters))
	for _, name := range src.order[kindCounter] {
		counters = append(counters, namedCounter{name, src.counters[name]})
	}
	gauges := make([]namedGauge, 0, len(src.gauges))
	for _, name := range src.order[kindGauge] {
		gauges = append(gauges, namedGauge{name, src.gauges[name]})
	}
	timers := make([]namedTimer, 0, len(src.timers))
	for _, name := range src.order[kindTimer] {
		timers = append(timers, namedTimer{name, src.timers[name]})
	}
	hists := make([]namedHist, 0, len(src.hists))
	for _, name := range src.order[kindHistogram] {
		hists = append(hists, namedHist{name, src.hists[name]})
	}
	src.mu.Unlock()

	for _, nc := range counters {
		if v := nc.c.Load(); v != 0 {
			s.Counter(nc.name).Add(v)
		} else {
			s.Counter(nc.name) // still materialize, preserving order
		}
	}
	for _, ng := range gauges {
		s.Gauge(ng.name).Set(ng.g.Load())
	}
	for _, nt := range timers {
		dst := s.Timer(nt.name)
		dst.addRaw(int64(nt.t.Total()), nt.t.Count())
	}
	for _, nh := range hists {
		dst := s.Histogram(nh.name, nh.h.Bounds()...)
		for i := 0; i <= len(nh.h.Bounds()); i++ {
			if v := nh.h.BucketCount(i); v != 0 && i < len(dst.counts) {
				dst.counts[i].Add(v)
			}
		}
		dst.n.Add(nh.h.Count())
		dst.addSum(nh.h.Sum())
	}
}
