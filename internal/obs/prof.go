package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles starts CPU profiling and/or execution tracing into the
// given files — the implementation behind every binary's -pprof and
// -trace flags. An empty path disables that profile. The returned stop
// function flushes and closes whatever was started; it must be called
// exactly once, on the normal exit path, before any -metrics report is
// written (profiling the report writer would only add noise).
//
// Inspect the outputs with the standard tooling:
//
//	go tool pprof <binary> cpu.out
//	go tool trace trace.out
func StartProfiles(cpuPath, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			_ = cpuFile.Close() // best-effort cleanup; the profile is already stopped
		}
		if traceFile != nil {
			trace.Stop()
			_ = traceFile.Close() // best-effort cleanup; the trace is already stopped
		}
	}
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // best-effort cleanup; the start error is what matters
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			_ = traceFile.Close() // best-effort cleanup; the start error is what matters
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
