package cancel

import (
	"context"
	"errors"
	"testing"
)

func TestZeroCheckerNeverCancels(t *testing.T) {
	var c Checker
	for i := 0; i < 3*DefaultStride; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("zero Checker ticked non-nil: %v", err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("zero Checker Err non-nil: %v", err)
	}
}

func TestNilAndBackgroundContexts(t *testing.T) {
	for name, c := range map[string]Checker{
		"nil":        New(nil, 4),
		"background": New(context.Background(), 4),
	} {
		for i := 0; i < 16; i++ {
			if err := c.Tick(); err != nil {
				t.Fatalf("%s context ticked non-nil: %v", name, err)
			}
		}
	}
}

// Tick must report cancellation within one stride of the cancel, and
// never before a stride boundary.
func TestTickStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const stride = 8
	c := New(ctx, stride)
	for i := 0; i < stride-1; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("tick %d non-nil before cancellation: %v", i, err)
		}
	}
	cancel()
	// ticks stride-1..2*stride-2: exactly one hits the boundary
	var got error
	for i := 0; i < stride; i++ {
		if err := c.Tick(); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("no cancellation within one stride: %v", got)
	}
}

func TestErrPollsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 1<<20)
	if err := c.Err(); err != nil {
		t.Fatalf("Err before cancellation: %v", err)
	}
	cancel()
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after cancellation = %v, want context.Canceled", err)
	}
}

func TestDefaultStrideApplied(t *testing.T) {
	c := New(context.Background(), 0)
	if c.stride != DefaultStride {
		t.Errorf("stride = %d, want DefaultStride %d", c.stride, DefaultStride)
	}
	if c2 := New(context.Background(), -5); c2.stride != DefaultStride {
		t.Errorf("negative stride = %d, want DefaultStride", c2.stride)
	}
}
