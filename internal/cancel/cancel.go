// Package cancel provides the cheap periodic context-cancellation check
// shared by every long construction loop (the BKRUS edge scan, the
// BMST_G search tree, exchange passes, the Steiner candidate heap, the
// parallel router). A Checker polls ctx.Done() once every stride
// iterations, so the hot loops pay one integer increment per iteration
// and one channel select per stride — cheap enough to leave enabled
// unconditionally, while still bounding how much work runs after a
// deadline or cancellation.
package cancel

import "context"

// DefaultStride is the poll interval used when New is given a
// non-positive stride: one ctx.Done() select per 1024 loop iterations.
const DefaultStride = 1024

// Checker is a periodic cancellation probe. The zero value never
// cancels (equivalent to New(context.Background(), ...)); construct
// with New to bind a context. Checkers are values and must not be
// copied while in use (Tick mutates the iteration counter).
type Checker struct {
	ctx    context.Context
	done   <-chan struct{}
	stride uint32
	n      uint32
}

// New returns a Checker polling ctx every stride Ticks. A nil ctx or a
// context that can never be cancelled yields a Checker whose Tick is a
// single predictable branch. stride <= 0 means DefaultStride.
func New(ctx context.Context, stride int) Checker {
	if ctx == nil {
		ctx = context.Background()
	}
	if stride <= 0 {
		stride = DefaultStride
	}
	return Checker{ctx: ctx, done: ctx.Done(), stride: uint32(stride)}
}

// Tick counts one loop iteration and, every stride calls, polls the
// bound context, returning ctx.Err() once it is cancelled and nil
// otherwise. On an uncancellable context Tick never returns non-nil and
// costs only the nil test.
func (c *Checker) Tick() error {
	if c.done == nil {
		return nil
	}
	c.n++
	if c.n%c.stride != 0 {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// Err polls the bound context immediately, regardless of stride —
// useful at natural phase boundaries (per heap pop, per improvement
// round) where one select per iteration is already cheap.
func (c *Checker) Err() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}
