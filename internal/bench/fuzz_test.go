package bench

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadInstance checks the instance parser never panics and that
// anything it accepts round-trips through WriteInstance.
func FuzzReadInstance(f *testing.F) {
	f.Add("metric manhattan\nsource 0 0\nsink 1 2\n")
	f.Add("metric euclidean\nsource -1.5 2e3\nsink 0 0\nsink 7 7\n")
	f.Add("# comment\n\nsource 1 1\nsink 2 2\n")
	f.Add("source 0 0\nsink nan nan\n")
	f.Add("metric l1\nsource 0 0\nsink 1e308 -1e308\n")
	f.Fuzz(func(t *testing.T, input string) {
		in, err := ReadInstance(strings.NewReader(input))
		if err != nil {
			return
		}
		// accepted instances must be structurally sound and re-serializable
		if in.N() < 2 {
			t.Fatalf("accepted instance with %d terminals", in.N())
		}
		var buf bytes.Buffer
		if err := WriteInstance(&buf, in); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("round-trip failed: %v\noriginal: %q\nwritten: %q", err, input, buf.String())
		}
		if back.N() != in.N() || back.Metric() != in.Metric() {
			t.Fatalf("round-trip changed shape")
		}
	})
}
