package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mst"
)

func TestP1Characteristics(t *testing.T) {
	in := P1()
	if in.N() != 6 || in.NumEdges() != 15 {
		t.Errorf("p1: %d pts / %d edges, want 6/15", in.N(), in.NumEdges())
	}
	if math.Abs(in.R()-20.4) > 1e-9 || math.Abs(in.NearestR()-20.0) > 1e-9 {
		t.Errorf("p1: R=%v r=%v, want 20.4/20.0", in.R(), in.NearestR())
	}
}

func TestP2Characteristics(t *testing.T) {
	in := P2()
	if in.N() != 8 || in.NumEdges() != 28 {
		t.Errorf("p2: %d pts / %d edges, want 8/28", in.N(), in.NumEdges())
	}
	if math.Abs(in.R()-20.4) > 1e-9 || math.Abs(in.NearestR()-10.0) > 1e-9 {
		t.Errorf("p2: R=%v r=%v, want 20.4/10.0", in.R(), in.NearestR())
	}
}

func TestP3Characteristics(t *testing.T) {
	in := P3()
	if in.N() != 17 || in.NumEdges() != 136 {
		t.Errorf("p3: %d pts / %d edges, want 17/136", in.N(), in.NumEdges())
	}
	if math.Abs(in.R()-16.0) > 1e-9 || math.Abs(in.NearestR()-6.1) > 1e-9 {
		t.Errorf("p3: R=%v r=%v, want 16.0/6.1", in.R(), in.NearestR())
	}
}

func TestP4Characteristics(t *testing.T) {
	in := P4()
	if in.N() != 31 || in.NumEdges() != 465 {
		t.Errorf("p4: %d pts / %d edges, want 31/465", in.N(), in.NumEdges())
	}
	if math.Abs(in.R()-10.4) > 1e-6 || math.Abs(in.NearestR()-5.8) > 1e-6 {
		t.Errorf("p4: R=%v r=%v, want 10.4/5.8", in.R(), in.NearestR())
	}
}

// The p1 family must exhibit its pathology: BKT at eps=0 close to N x MST.
func TestP1Pathology(t *testing.T) {
	in := P1()
	bkt, err := core.BKRUS(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := bkt.Cost() / mst.Kruskal(in.DistMatrix()).Cost()
	if ratio < 3 {
		t.Errorf("p1 eps=0 perf ratio = %v, want >> 1 (paper: 3.88)", ratio)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, 10, 100)
	b := Random(7, 10, 100)
	if a.Source() != b.Source() {
		t.Error("same seed produced different sources")
	}
	for i := 1; i < a.N(); i++ {
		if a.Point(i) != b.Point(i) {
			t.Errorf("same seed differs at point %d", i)
		}
	}
	c := Random(8, 10, 100)
	if a.Source() == c.Source() {
		t.Error("different seeds produced identical source (suspicious)")
	}
}

func TestRandomCase(t *testing.T) {
	in := RandomCase(12, 3)
	if in.NumSinks() != 12 {
		t.Errorf("NumSinks = %d", in.NumSinks())
	}
	again := RandomCase(12, 3)
	if in.Source() != again.Source() {
		t.Error("RandomCase not deterministic")
	}
}

func TestLargeCatalog(t *testing.T) {
	wantSinks := map[string]int{
		"pr1": 269, "pr2": 603, "r1": 267, "r2": 598, "r3": 862, "r4": 1903, "r5": 3101,
	}
	for _, name := range LargeNames() {
		in, ok := Large(name)
		if !ok {
			t.Fatalf("Large(%q) not found", name)
		}
		if in.NumSinks() != wantSinks[name] {
			t.Errorf("%s: %d sinks, want %d", name, in.NumSinks(), wantSinks[name])
		}
	}
	if _, ok := Large("nope"); ok {
		t.Error("unknown name found")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"p1", "p2", "p3", "p4", "pr1", "r1"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("zzz"); ok {
		t.Error("unknown benchmark resolved")
	}
}

func TestAllCatalog(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("catalog size = %d, want 11", len(all))
	}
	if all[0].Name != "p1" || all[10].Name != "r5" {
		t.Errorf("catalog order wrong: %s .. %s", all[0].Name, all[10].Name)
	}
}

func TestInstanceIORoundtrip(t *testing.T) {
	in := Random(3, 7, 50)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || back.Metric() != in.Metric() {
		t.Fatalf("roundtrip mismatch: N %d vs %d", back.N(), in.N())
	}
	for i := 0; i < in.N(); i++ {
		if back.Point(i) != in.Point(i) {
			t.Errorf("point %d: %v vs %v", i, back.Point(i), in.Point(i))
		}
	}
}

func TestReadInstanceEuclidean(t *testing.T) {
	src := "metric euclidean\nsource 0 0\nsink 1 2\n"
	in, err := ReadInstance(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Metric() != geom.Euclidean {
		t.Errorf("metric = %v", in.Metric())
	}
}

func TestReadInstanceErrors(t *testing.T) {
	cases := []string{
		"sink 1 2\n",                         // no source
		"source 0 0\nsource 1 1\nsink 1 2\n", // duplicate source
		"metric bogus\nsource 0 0\nsink 1 2", // bad metric
		"source 0 0\nsink 1\n",               // arity
		"source 0 0\nsink a b\n",             // bad floats
		"warp 0 0\n",                         // unknown directive
		"metric manhattan\nsource 0 0\n",     // no sinks
		"metric\nsource 0 0\nsink 1 2\n",     // metric arity
		"source x y\nsink 1 2\n",             // bad source floats
	}
	for i, c := range cases {
		if _, err := ReadInstance(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestWriteInstanceComments(t *testing.T) {
	in := Random(1, 3, 10)
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#") {
		t.Error("missing header comment")
	}
	if !strings.Contains(buf.String(), "metric manhattan") {
		t.Error("missing metric line")
	}
}

func TestClustered(t *testing.T) {
	in := Clustered(3, 4, 5, 100)
	if in.NumSinks() != 20 {
		t.Errorf("sinks = %d, want 20", in.NumSinks())
	}
	again := Clustered(3, 4, 5, 100)
	if in.Point(7) != again.Point(7) {
		t.Error("Clustered not deterministic")
	}
}

func TestRingAllAtRadius(t *testing.T) {
	in := Ring(12, 10)
	if in.NumSinks() != 12 {
		t.Fatalf("sinks = %d", in.NumSinks())
	}
	for i := 1; i <= 12; i++ {
		d := geom.Manhattan.Dist(in.Source(), in.Point(i))
		if math.Abs(d-10) > 1e-9 {
			t.Errorf("sink %d at distance %v, want 10", i, d)
		}
	}
	if math.Abs(in.R()-10) > 1e-9 || math.Abs(in.NearestR()-10) > 1e-9 {
		t.Errorf("R/r = %v/%v, want 10/10", in.R(), in.NearestR())
	}
}

func TestGridPattern(t *testing.T) {
	in := GridPattern(3, 3, 10)
	// 9 cells minus the one on the source = 8 sinks
	if in.NumSinks() != 8 {
		t.Errorf("sinks = %d, want 8", in.NumSinks())
	}
	if in.Source() != (geom.Point{X: 10, Y: 10}) {
		t.Errorf("source = %v", in.Source())
	}
	// even grid: no sink coincides with the source
	in2 := GridPattern(2, 2, 10)
	if in2.NumSinks() != 4 {
		t.Errorf("even grid sinks = %d, want 4", in2.NumSinks())
	}
}

func TestRingZeroSkewFeasible(t *testing.T) {
	in := Ring(8, 20)
	tr, err := core.BKRUSLU(in, 1.0, 0.0)
	if err != nil {
		t.Fatalf("zero-skew on a ring should be feasible: %v", err)
	}
	d := tr.PathLengthsFrom(0)
	for v := 1; v < tr.N; v++ {
		if math.Abs(d[v]-20) > 1e-9 {
			t.Errorf("sink %d path %v, want exactly 20", v, d[v])
		}
	}
}
