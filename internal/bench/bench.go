// Package bench provides the benchmark instances of the paper's §7:
//
//   - p1-p4: geometric reconstructions of the four special configurations
//     (the exact coordinates were never published; these reproduce the
//     described shapes and the R/r characteristics of Table 1);
//   - the random benchmark sets (4): net sizes {5,8,10,12,15} with 50
//     seeded cases each;
//   - synthetic stand-ins for the MCNC Primary1/2 sink placements (pr1,
//     pr2) and the Tsay zero-skew benchmarks (r1-r5), with matching sink
//     counts and coordinate scales (the original placements are not
//     redistributable; uniform placements preserve the cost-ratio trends
//     the paper reports);
//   - a text instance format for the command line tools.
//
// All generators are deterministic: the same name or seed always yields
// the same instance.
package bench

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/inst"
)

// Named couples an instance with its benchmark name.
type Named struct {
	Name string
	Desc string
	In   *inst.Instance
}

// P1 reconstructs benchmark p1 (paper Figure 13): five sinks strung
// along the Manhattan circle arc at radius 20.0-20.4 from the source,
// spaced 1.9 apart along the arc — far wider than the 0.4 of radial
// slack, so that at small ε every sink needs its own direct source
// connection and cost(BKT)/cost(MST) degenerates toward N. R = 20.4,
// r = 20.0 as in Table 1.
func P1() *inst.Instance {
	sinks := make([]geom.Point, 5)
	for i := range sinks {
		radius := 20.0 + 0.1*float64(i)
		y := float64(i)
		sinks[i] = geom.Point{X: radius - y, Y: y}
	}
	return inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
}

// P2 is p1 with a larger far group plus one sink halfway between the
// source and the group (8 points total, R = 20.4, r = 10.0).
func P2() *inst.Instance {
	var sinks []geom.Point
	for i := 0; i < 6; i++ {
		radius := 20.0 + 0.08*float64(i)
		y := float64(i)
		sinks = append(sinks, geom.Point{X: radius - y, Y: y})
	}
	sinks = append(sinks, geom.Point{X: 10, Y: 0})
	return inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
}

// P3 reconstructs the Figure 1 configuration: a chain of sixteen sinks
// sweeping outward from radius 6.1 to radius 16.0 while swinging along
// the arc, where bounded-Prim strands the far sinks on direct source
// connections while BKRUS chains them (R = 16.0, r = 6.1).
func P3() *inst.Instance {
	sinks := make([]geom.Point, 16)
	for i := range sinks {
		radius := 6.1 + 9.9*float64(i)/15
		y := 0.8 * float64(i)
		sinks[i] = geom.Point{X: radius - y, Y: y}
	}
	return inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
}

// P4 reconstructs benchmark p4: thirty sinks scattered around a circle
// about the source, Manhattan radii spread over [5.8, 10.4] (Table 1's
// R = 10.4, r = 5.8).
func P4() *inst.Instance {
	rng := rand.New(rand.NewSource(4))
	sinks := make([]geom.Point, 30)
	for i := range sinks {
		radius := 5.8 + 4.6*float64(i)/29
		theta := 2 * math.Pi * float64(i) / 30 * (1 + 0.02*rng.Float64())
		// point on the Manhattan circle of this radius in direction theta
		c, s := math.Cos(theta), math.Sin(theta)
		norm := math.Abs(c) + math.Abs(s)
		sinks[i] = geom.Point{X: radius * c / norm, Y: radius * s / norm}
	}
	return inst.MustNew(geom.Point{}, sinks, geom.Manhattan)
}

// Random returns a seeded uniform instance with the given number of
// sinks in a square of the given extent, source placed uniformly too —
// the paper's benchmark set (4).
func Random(seed int64, sinks int, extent float64) *inst.Instance {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, geom.Manhattan)
}

// RandomSetSizes are the net sizes of the paper's random benchmark set.
var RandomSetSizes = []int{5, 8, 10, 12, 15}

// RandomCases is the number of random cases per net size in Table 4.
const RandomCases = 50

// RandomCase returns case k (0-based) of the size-`sinks` random set,
// deterministic per (sinks, k).
func RandomCase(sinks, k int) *inst.Instance {
	return Random(int64(sinks)*1000+int64(k), sinks, 100)
}

// largeSpec describes a synthetic stand-in for an unpublished benchmark.
type largeSpec struct {
	name   string
	desc   string
	sinks  int
	extent float64
	seed   int64
}

// Extents are chosen so the stand-in's R (max Manhattan distance from
// the central source ≈ extent) matches the paper's Table 1.
var largeSpecs = []largeSpec{
	{"pr1", "MCNC Primary1 stand-in (269 sinks)", 269, 550, 101},
	{"pr2", "MCNC Primary2 stand-in (603 sinks)", 603, 1000, 102},
	{"r1", "Tsay r1 stand-in (267 sinks)", 267, 59000, 201},
	{"r2", "Tsay r2 stand-in (598 sinks)", 598, 87000, 202},
	{"r3", "Tsay r3 stand-in (862 sinks)", 862, 86000, 203},
	{"r4", "Tsay r4 stand-in (1903 sinks)", 1903, 125000, 204},
	{"r5", "Tsay r5 stand-in (3101 sinks)", 3101, 139000, 205},
}

// Large returns the synthetic stand-in for one of the paper's large
// benchmarks: pr1, pr2, r1, r2, r3, r4, r5. It reports false for an
// unknown name.
func Large(name string) (*inst.Instance, bool) {
	for _, s := range largeSpecs {
		if s.name == name {
			return genLarge(s), true
		}
	}
	return nil, false
}

func genLarge(s largeSpec) *inst.Instance {
	rng := rand.New(rand.NewSource(s.seed))
	pts := make([]geom.Point, s.sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * s.extent, Y: rng.Float64() * s.extent}
	}
	// source near the center, as the authors added one to the originals
	src := geom.Point{X: s.extent / 2, Y: s.extent / 2}
	return inst.MustNew(src, pts, geom.Manhattan)
}

// LargeNames lists the large benchmark names in the paper's order.
func LargeNames() []string {
	names := make([]string, len(largeSpecs))
	for i, s := range largeSpecs {
		names[i] = s.name
	}
	return names
}

// ByName returns any named benchmark: p1-p4 and the large stand-ins.
func ByName(name string) (*inst.Instance, bool) {
	switch name {
	case "p1":
		return P1(), true
	case "p2":
		return P2(), true
	case "p3":
		return P3(), true
	case "p4":
		return P4(), true
	}
	return Large(name)
}

// All returns the full Table 1 benchmark catalog (p1-p4 and the large
// stand-ins) in the paper's order.
func All() []Named {
	out := []Named{
		{"p1", "far sink cluster (Fig. 13)", P1()},
		{"p2", "far cluster + mid sink", P2()},
		{"p3", "outward chain (Fig. 1)", P3()},
		{"p4", "circle scatter", P4()},
	}
	for _, s := range largeSpecs {
		out = append(out, Named{s.name, s.desc, genLarge(s)})
	}
	return out
}

// Clustered returns a seeded instance with sinks grouped into clusters —
// the placement pattern of hierarchical designs, which stresses the
// witness test far more than uniform scatter (whole clusters must stay
// connectable to the source).
func Clustered(seed int64, clusters, perCluster int, extent float64) *inst.Instance {
	rng := rand.New(rand.NewSource(seed))
	var sinks []geom.Point
	for c := 0; c < clusters; c++ {
		cx, cy := rng.Float64()*extent, rng.Float64()*extent
		spread := extent / 20
		for k := 0; k < perCluster; k++ {
			sinks = append(sinks, geom.Point{
				X: cx + (rng.Float64()-0.5)*spread,
				Y: cy + (rng.Float64()-0.5)*spread,
			})
		}
	}
	return inst.MustNew(geom.Point{X: extent / 2, Y: extent / 2}, sinks, geom.Manhattan)
}

// Ring returns sinks evenly spread along the Manhattan circle (diamond)
// of the given radius about the source — the zero-skew-friendly clock
// region pattern where every sink sits at exactly distance radius.
func Ring(sinks int, radius float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		// walk the diamond perimeter: four edges of length radius each
		t := 4 * radius * float64(i) / float64(sinks)
		var p geom.Point
		switch {
		case t < radius: // NE edge: (radius,0) -> (0,radius)
			p = geom.Point{X: radius - t, Y: t}
		case t < 2*radius: // NW edge
			u := t - radius
			p = geom.Point{X: -u, Y: radius - u}
		case t < 3*radius: // SW edge
			u := t - 2*radius
			p = geom.Point{X: -(radius - u), Y: -u}
		default: // SE edge
			u := t - 3*radius
			p = geom.Point{X: u, Y: -(radius - u)}
		}
		pts[i] = p
	}
	return inst.MustNew(geom.Point{}, pts, geom.Manhattan)
}

// GridPattern returns sinks on a regular cols x rows grid with the given
// pitch, source at the grid center — the standard-cell row placement the
// paper mentions when arguing Hanan grids stay small in practice.
func GridPattern(cols, rows int, pitch float64) *inst.Instance {
	var sinks []geom.Point
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sinks = append(sinks, geom.Point{X: float64(c) * pitch, Y: float64(r) * pitch})
		}
	}
	src := geom.Point{X: float64(cols-1) * pitch / 2, Y: float64(rows-1) * pitch / 2}
	// drop a sink that coincides with the source, if any
	out := sinks[:0]
	for _, p := range sinks {
		if p != src {
			out = append(out, p)
		}
	}
	return inst.MustNew(src, out, geom.Manhattan)
}
