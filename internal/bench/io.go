package bench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/inst"
)

// WriteInstance serializes an instance in the repository's text format:
//
//	# comment lines start with '#'
//	metric manhattan|euclidean
//	source <x> <y>
//	sink <x> <y>      (one line per sink)
func WriteInstance(w io.Writer, in *inst.Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# bounded path length routing instance: %d sinks\n", in.NumSinks())
	fmt.Fprintf(bw, "metric %s\n", strings.ToLower(in.Metric().String()))
	s := in.Source()
	fmt.Fprintf(bw, "source %g %g\n", s.X, s.Y)
	for _, p := range in.Sinks() {
		fmt.Fprintf(bw, "sink %g %g\n", p.X, p.Y)
	}
	return bw.Flush()
}

// ReadInstance parses the text format written by WriteInstance.
func ReadInstance(r io.Reader) (*inst.Instance, error) {
	var (
		metric    = geom.Manhattan
		source    geom.Point
		hasSource bool
		sinks     []geom.Point
	)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "metric":
			if len(fields) != 2 {
				return nil, fmt.Errorf("bench: line %d: metric needs one argument", lineNo)
			}
			switch fields[1] {
			case "manhattan", "l1":
				metric = geom.Manhattan
			case "euclidean", "l2":
				metric = geom.Euclidean
			default:
				return nil, fmt.Errorf("bench: line %d: unknown metric %q", lineNo, fields[1])
			}
		case "source", "sink":
			if len(fields) != 3 {
				return nil, fmt.Errorf("bench: line %d: %s needs x y", lineNo, fields[0])
			}
			x, errX := strconv.ParseFloat(fields[1], 64)
			y, errY := strconv.ParseFloat(fields[2], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("bench: line %d: bad coordinates", lineNo)
			}
			if fields[0] == "source" {
				if hasSource {
					return nil, fmt.Errorf("bench: line %d: duplicate source", lineNo)
				}
				source = geom.Point{X: x, Y: y}
				hasSource = true
			} else {
				sinks = append(sinks, geom.Point{X: x, Y: y})
			}
		default:
			return nil, fmt.Errorf("bench: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !hasSource {
		return nil, fmt.Errorf("bench: no source line")
	}
	return inst.New(source, sinks, metric)
}
