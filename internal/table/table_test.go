package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("Demo", "name", "ratio", "n")
	tb.AddRow("p1", 1.23456, 6)
	tb.AddRow("p2", 2.0)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "name", "ratio", "p1", "1.235", "p2", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow(1)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "=") {
		t.Error("untitled table should not render a title rule")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("x", "a", "b")
	tb.AddRow(1.5, "hi")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1.5,hi\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestExtraCellsDropped(t *testing.T) {
	tb := New("", "only")
	tb.AddRow("a", "b", "c")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "b") {
		t.Error("extra cells should be dropped")
	}
}
