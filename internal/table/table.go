// Package table renders the experiment harness's result tables as
// aligned text or CSV, so every table and figure of the paper can be
// regenerated as a plain report.
package table

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells beyond the column count are dropped;
// missing cells render empty. Values are formatted with %v; float64
// values are formatted with 4 significant decimals, which is the
// precision the paper's tables use.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.Columns))
	for i := 0; i < len(row) && i < len(cells); i++ {
		row[i] = formatCell(cells[i])
	}
	t.rows = append(t.rows, row)
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		sep[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// RenderCSV writes the table as CSV (no quoting; cells must not contain
// commas, which holds for all harness output).
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
