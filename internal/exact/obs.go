package exact

import "repro/internal/obs"

// ScopeName is the obs scope the exact layer records into. When a
// process-wide default registry is installed (obs.SetDefault), every
// BMSTG search accumulates its counters there; otherwise counting is
// off and the search pays a single nil test per event site.
const ScopeName = "exact"

// Counter names of the exact scope, as they appear in a -metrics JSON
// report. OBSERVABILITY.md is the catalogue.
const (
	// CtrBranchesParallel counts partition branches solved on the worker
	// pool (branches solved by the serial fallback are not counted).
	// Worker telemetry, not construction semantics: totals legitimately
	// differ across worker counts even though the trees are identical.
	CtrBranchesParallel = "branches_parallel"
)

// Counters is the exact search's obs-backed counter set. Construct with
// NewCounters; a nil scope yields a standalone set not attached to any
// registry.
type Counters struct {
	BranchesParallel *obs.Counter // partition branches solved on the worker pool
}

// NewCounters resolves the exact counter set inside sc. A nil scope
// yields a standalone set not attached to any registry.
func NewCounters(sc *obs.Scope) *Counters {
	return &Counters{
		BranchesParallel: sc.Counter(CtrBranchesParallel),
	}
}
