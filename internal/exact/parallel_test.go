package exact

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
)

func TestSetBranchWorkers(t *testing.T) {
	prev := SetBranchWorkers(3)
	defer SetBranchWorkers(prev)
	if got := SetBranchWorkers(5); got != 3 {
		t.Fatalf("SetBranchWorkers returned %d, want previous 3", got)
	}
	if got := SetBranchWorkers(-1); got != 5 {
		t.Fatalf("SetBranchWorkers returned %d, want previous 5", got)
	}
	if got := resolveBranchWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative knob input resolved to %d, want GOMAXPROCS default", got)
	}
	SetBranchWorkers(2)
	if got := resolveBranchWorkers(0); got != 2 {
		t.Errorf("knob resolution = %d, want 2", got)
	}
	if got := resolveBranchWorkers(7); got != 7 {
		t.Errorf("option resolution = %d, want 7", got)
	}
}

// TestBranchWorkersDeterministic pins the tentpole contract: the exact
// search returns byte-identical trees and identical search statistics
// (trees popped, peak heap — i.e. the same enumeration order) at every
// branch worker count, on instances tight enough that many partition
// steps run before the feasible optimum surfaces.
func TestBranchWorkersDeterministic(t *testing.T) {
	for _, seed := range []int64{2, 5, 11} {
		in := randomInstance(rand.New(rand.NewSource(seed)), 9, 100)
		for _, eps := range []float64{0.05, 0.3} {
			b := core.UpperOnly(in, eps)
			want, wantStats, err := BMSTGWithStats(context.Background(), in, b, Options{BranchWorkers: 1})
			if err != nil {
				t.Fatalf("seed=%d eps=%g serial: %v", seed, eps, err)
			}
			for _, w := range []int{2, 4, 8} {
				got, gotStats, err := BMSTGWithStats(context.Background(), in, b, Options{BranchWorkers: w})
				label := fmt.Sprintf("seed=%d eps=%g workers=%d", seed, eps, w)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(got.Edges) != len(want.Edges) {
					t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
				}
				for i := range want.Edges {
					if got.Edges[i] != want.Edges[i] {
						t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got.Edges[i], want.Edges[i])
					}
				}
				if gotStats != wantStats {
					t.Errorf("%s: stats %+v, want %+v", label, gotStats, wantStats)
				}
			}
		}
	}
}

// TestBranchesParallelCounter checks the pool telemetry: the serial pin
// records nothing, a multi-worker search on a branch-rich instance
// records every pooled branch.
func TestBranchesParallelCounter(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(6)), 10, 100)
	b := core.UpperOnly(in, 0.02)
	serial := NewCounters(nil)
	if _, _, err := BMSTGWithStats(context.Background(), in, b, Options{BranchWorkers: 1, Counters: serial}); err != nil {
		t.Fatal(err)
	}
	if got := serial.BranchesParallel.Load(); got != 0 {
		t.Errorf("serial search recorded %d pooled branches, want 0", got)
	}
	pooled := NewCounters(nil)
	if _, _, err := BMSTGWithStats(context.Background(), in, b, Options{BranchWorkers: 4, Counters: pooled}); err != nil {
		t.Fatal(err)
	}
	if got := pooled.BranchesParallel.Load(); got == 0 {
		t.Error("pooled search recorded no pooled branches; expected partition steps with >= parallelBranchMin branches")
	}
}

// TestKBestDeterministicAcrossWorkers pins the bound-free enumeration
// the same way: the cost-ordered tree sequence is identical at every
// knob setting.
func TestKBestDeterministicAcrossWorkers(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(8)), 8, 100)
	prev := SetBranchWorkers(1)
	defer SetBranchWorkers(prev)
	want := KBest(in, 25)
	for _, w := range []int{2, 8} {
		SetBranchWorkers(w)
		got := KBest(in, 25)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d trees, want %d", w, len(got), len(want))
		}
		for i := range want {
			if len(got[i].Edges) != len(want[i].Edges) {
				t.Fatalf("workers=%d tree %d: edge count mismatch", w, i)
			}
			for j := range want[i].Edges {
				if got[i].Edges[j] != want[i].Edges[j] {
					t.Fatalf("workers=%d tree %d edge %d = %+v, want %+v", w, i, j, got[i].Edges[j], want[i].Edges[j])
				}
			}
		}
	}
}
