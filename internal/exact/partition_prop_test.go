package exact

// Dynamic witness for the indexbound branch-pool proof (static half:
// TestPartitionKernelsProved in internal/analysis): random worker
// counts w ∈ [1,64] crossed with random instance sizes drive the real
// pooled partition search, and the enumeration must match the serial
// pin byte for byte — the pool's strided kids[i] subscripts staying in
// range and covering every branch exactly once is precisely what the
// analyzer proved statically.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestBranchPoolPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		n := 6 + rng.Intn(5) // instance sizes 6..10: branch-rich, still fast
		w := 1 + rng.Intn(64)
		seed := rng.Int63()
		in := randomInstance(rand.New(rand.NewSource(seed)), n, 100)
		b := core.UpperOnly(in, 0.1)
		want, wantStats, err := BMSTGWithStats(context.Background(), in, b, Options{BranchWorkers: 1})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		got, gotStats, err := BMSTGWithStats(context.Background(), in, b, Options{BranchWorkers: w})
		label := fmt.Sprintf("trial %d (n=%d workers=%d)", trial, n, w)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(got.Edges) != len(want.Edges) {
			t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
		}
		for i := range want.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got.Edges[i], want.Edges[i])
			}
		}
		if gotStats != wantStats {
			t.Errorf("%s: stats %+v, want %+v", label, gotStats, wantStats)
		}
	}
}
