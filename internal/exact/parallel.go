package exact

// Concurrent Gabow partition branches. A partition step pops one
// spanning tree and solves one constrained MST per free edge of that
// tree; the child problems share only read-only state (the sorted
// candidate list and their immutable constraint sets), so they are
// independent by construction. The worker pool solves them concurrently
// while the enumeration order stays byte-identical to the serial
// search: partition builds all constraint sets first, each worker
// writes only the subproblems it owns (strided by branch index), and
// the heap pushes happen serially in branch-index order after the pool
// drains — exactly the mutations the serial loop performs, in exactly
// its order.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelBranchMin is the minimum branch count below which the serial
// loop always wins (a partition step of a small tree solves faster than
// goroutine startup).
const parallelBranchMin = 4

// branchWorkersKnob overrides the branch worker count: 0 means "gate on
// runtime.GOMAXPROCS", 1 forces the serial path, n > 1 forces n
// workers.
var branchWorkersKnob atomic.Int32

// SetBranchWorkers sets the package-level worker count for partition
// branch solves, returning the previous setting. 0 restores the default
// (runtime.GOMAXPROCS); 1 forces the serial path. Per-search
// Options.BranchWorkers takes precedence.
func SetBranchWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		// The knob is stored in an atomic.Int32; an absurd worker count
		// would otherwise truncate silently (possibly to a negative).
		n = math.MaxInt32
	}
	return int(branchWorkersKnob.Swap(int32(n)))
}

// resolveBranchWorkers resolves the effective worker count for one
// search: explicit per-search option, else the package knob, else
// GOMAXPROCS.
func resolveBranchWorkers(opt int) int {
	if opt > 0 {
		return opt
	}
	if k := branchWorkersKnob.Load(); k > 0 {
		return int(k)
	}
	return runtime.GOMAXPROCS(0)
}

// solveBranches fills in the cheapest representative of every child
// region, on the worker pool when the gate allows and serially
// otherwise. Either way kids[i] ends up with the identical tree:
// solveBranch is a pure function of the (immutable) constraint sets.
func (e *enumerator) solveBranches(kids []*subproblem) {
	if nw := e.workers; nw > 1 && len(kids) >= parallelBranchMin {
		e.solveBranchesParallel(kids, nw)
		return
	}
	for _, kid := range kids {
		e.solveBranch(kid)
	}
}

// solveBranchesParallel is the pooled path: worker g owns branches
// g, g+w, g+2w, ... and writes nothing else, so the writes are
// index-disjoint over kids.
func (e *enumerator) solveBranchesParallel(kids []*subproblem, workers int) {
	if workers > len(kids) {
		workers = len(kids)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(kids); i += workers {
				e.solveBranch(kids[i])
			}
		}(g)
	}
	wg.Wait()
	if e.c != nil {
		e.c.BranchesParallel.Add(int64(len(kids)))
	}
}
