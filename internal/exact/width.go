package exact

// The branch-and-bound state sizes its tables with products of the
// instance size (subset counts, partition cross-products) carried out
// in int, which is only safe because int is 64 bits on every supported
// platform. The blank constant fails to compile on a 32-bit-int
// platform, turning the silent assumption into a build error; the
// intwidth analyzer checks that every hot package carries it.
const _ uint = 1 << 62
