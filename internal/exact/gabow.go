// Package exact implements the paper's §4: an optimal BMST algorithm in
// the style of Gabow's spanning-tree enumeration. Spanning trees are
// generated in nondecreasing cost order by a branch-and-partition scheme
// over (included, excluded) edge constraints; the first tree that
// satisfies the path-length bounds is an optimal bounded path length MST.
//
// The space complexity is exponential in the worst case (the heap can
// hold a subproblem per generated tree), which is exactly the drawback
// the paper works around with BKEX; a tree budget keeps runs bounded and
// a budget overrun is reported as an explicit error. Lemmas 4.1-4.3
// shrink the candidate edge set before enumeration:
//
//   - 4.1: drop sink-sink edge (a,b) if it outweighs both direct source
//     edges (S,a) and (S,b) — no optimal tree uses it;
//   - 4.2: drop (a,b) if both w(S,a)+w(a,b) and w(S,b)+w(a,b) exceed the
//     bound — including it strands one endpoint;
//   - 4.3: force edge (S,a) if every two-hop connection to a already
//     violates the bound — a must connect directly.
package exact

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/obs"
)

// ErrBudget is returned when the enumeration exceeds its tree budget
// before finding a feasible spanning tree.
var ErrBudget = errors.New("exact: tree enumeration budget exhausted")

// DefaultMaxTrees bounds enumeration when Options.MaxTrees is zero.
const DefaultMaxTrees = 200000

// Options tunes the exact search.
type Options struct {
	// MaxTrees caps how many spanning trees may be generated; 0 means
	// DefaultMaxTrees.
	MaxTrees int
	// DisableLemmas turns off the Lemma 4.1-4.3 edge filtering, which is
	// useful for measuring how much the preprocessing saves.
	DisableLemmas bool
	// BranchWorkers bounds the workers that solve a partition step's
	// independent child branches. 0 defers to the package knob
	// (SetBranchWorkers), which itself defaults to runtime.GOMAXPROCS;
	// 1 forces the serial path. The enumeration order — and therefore
	// the returned tree — is identical for every setting: branches are
	// solved in parallel but pushed in branch-index order, and ties are
	// broken exactly as the serial loop breaks them.
	BranchWorkers int
	// Counters receives the search's event counts. nil falls back to the
	// process default registry's exact scope when one is installed.
	Counters *Counters
}

// BMSTG returns an optimal bounded path length minimal spanning tree for
// bound (1+eps)·R, or ErrBudget if the enumeration budget runs out, or
// core.ErrInfeasible if no spanning tree satisfies the bound. The search
// tree can grow exponentially, so the context is polled on every
// subproblem pop: cancelling ctx aborts the enumeration with ctx.Err()
// after at most one constrained-MST partition step.
func BMSTG(ctx context.Context, in *inst.Instance, eps float64, opt Options) (*graph.Tree, error) {
	if eps < 0 {
		return nil, fmt.Errorf("exact: negative eps %g", eps)
	}
	return BMSTGBounds(ctx, in, core.UpperOnly(in, eps), opt)
}

// BMSTGBounds is BMSTG for an arbitrary absolute bound window, supporting
// the §6 lower+upper bounded problem (Lemma 6.1 is applied when a lower
// bound is active).
func BMSTGBounds(ctx context.Context, in *inst.Instance, b core.Bounds, opt Options) (*graph.Tree, error) {
	t, _, err := BMSTGWithStats(ctx, in, b, opt)
	return t, err
}

// SearchStats describes one exact search run.
type SearchStats struct {
	CandidateEdges int // edges surviving the lemma filters
	ForcedEdges    int // edges forced by Lemma 4.3
	TreesPopped    int // spanning trees examined in cost order
	PeakHeap       int // largest subproblem heap size
}

// BMSTGWithStats is BMSTGBounds returning search statistics: how far
// into the cost-ordered tree sequence the optimum sat, and how much the
// lemma preprocessing shrank the search.
func BMSTGWithStats(ctx context.Context, in *inst.Instance, b core.Bounds, opt Options) (*graph.Tree, SearchStats, error) {
	var st SearchStats
	if err := b.Validate(); err != nil {
		return nil, st, err
	}
	budget := opt.MaxTrees
	if budget <= 0 {
		budget = DefaultMaxTrees
	}
	cand, forced := candidateEdges(in, b, !opt.DisableLemmas)
	st.CandidateEdges = len(cand)
	st.ForcedEdges = len(forced)
	e := &enumerator{n: in.N(), sorted: cand, workers: resolveBranchWorkers(opt.BranchWorkers), c: opt.Counters}
	if e.c == nil {
		if sc := obs.DefaultScope(ScopeName); sc != nil {
			e.c = NewCounters(sc)
		}
	}

	//lint:ignore ctxflow one-shot root relaxation before the polled enumeration loop; latency is bounded by a single Kruskal pass
	root, ok := mst.ConstrainedKruskal(e.n, e.sorted, forced, nil)
	if !ok {
		return nil, st, core.ErrInfeasible
	}
	chk := cancel.New(ctx, 1)
	h := &subHeap{{tree: root, cost: root.Cost(), include: forced}}
	for h.Len() > 0 {
		if h.Len() > st.PeakHeap {
			st.PeakHeap = h.Len()
		}
		if err := chk.Err(); err != nil {
			return nil, st, err
		}
		if budget == 0 {
			return nil, st, ErrBudget
		}
		budget--
		sub := heap.Pop(h).(*subproblem)
		st.TreesPopped++
		if core.FeasibleTree(sub.tree, b) {
			return sub.tree, st, nil
		}
		e.partition(sub, h)
	}
	return nil, st, core.ErrInfeasible
}

// KBest returns up to k spanning trees in nondecreasing cost order,
// ignoring bounds. Exposed for validation against brute force in tests
// and for ablation studies of the enumeration itself.
func KBest(in *inst.Instance, k int) []*graph.Tree {
	cand := graph.CompleteEdges(in.DistMatrix())
	graph.SortEdges(cand)
	e := &enumerator{n: in.N(), sorted: cand, workers: resolveBranchWorkers(0)}
	root, ok := mst.ConstrainedKruskal(e.n, e.sorted, nil, nil)
	if !ok {
		return nil
	}
	h := &subHeap{{tree: root, cost: root.Cost()}}
	var out []*graph.Tree
	for h.Len() > 0 && len(out) < k {
		sub := heap.Pop(h).(*subproblem)
		out = append(out, sub.tree)
		e.partition(sub, h)
	}
	return out
}

// candidateEdges builds the (possibly lemma-filtered) candidate edge list
// in sorted order, plus the forced inclusions from Lemma 4.3.
func candidateEdges(in *inst.Instance, b core.Bounds, lemmas bool) (sorted, forced []graph.Edge) {
	dm := in.DistMatrix()
	n := in.N()
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := dm.At(i, j)
			if i == graph.Source && !b.WithinLower(w) {
				continue // Lemma 6.1
			}
			if lemmas && i != graph.Source {
				// Lemma 4.1
				if w > dm.At(graph.Source, i) && w > dm.At(graph.Source, j) {
					continue
				}
				// Lemma 4.2 (same tolerance as FeasibleTree so borderline
				// edges stay in the candidate set)
				if !b.WithinUpper(dm.At(graph.Source, i)+w) && !b.WithinUpper(dm.At(graph.Source, j)+w) {
					continue
				}
			}
			edges = append(edges, graph.Edge{U: i, V: j, W: w})
		}
	}
	graph.SortEdges(edges)
	if lemmas && !math.IsInf(b.Upper, 1) {
		for a := 1; a < n; a++ {
			mustDirect := true
			for x := 1; x < n; x++ {
				if x == a {
					continue
				}
				if b.WithinUpper(dm.At(graph.Source, x) + dm.At(x, a)) {
					mustDirect = false
					break
				}
			}
			if mustDirect {
				forced = append(forced, graph.Edge{U: graph.Source, V: a, W: dm.At(graph.Source, a)})
			}
		}
	}
	return edges, forced
}

// subproblem is a region of the spanning-tree space: all spanning trees
// containing every include edge and no exclude edge; tree is the cheapest
// one in the region.
type subproblem struct {
	tree    *graph.Tree
	cost    float64
	include []graph.Edge
	exclude map[graph.Key]bool
}

type subHeap []*subproblem

func (h subHeap) Len() int            { return len(h) }
func (h subHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h subHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *subHeap) Push(x interface{}) { *h = append(*h, x.(*subproblem)) }
func (h *subHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type enumerator struct {
	n       int
	sorted  []graph.Edge
	workers int       // resolved branch worker count (1 = serial)
	c       *Counters // optional instrumentation (nil = off)
}

// partition splits sub's region (minus its own tree) into disjoint child
// regions: with free edges e1..em of the popped tree, child i requires
// e1..e(i-1) and forbids ei. Each child's constrained MST is its cheapest
// representative; every spanning tree is generated exactly once.
//
// The per-child constraint sets are built serially (child i's include
// list is a prefix of child i+1's), then the independent constrained-MST
// solves run on the branch worker pool, then the surviving children are
// pushed in branch-index order — byte-for-byte the serial loop's heap
// mutations, regardless of which worker finished first.
func (e *enumerator) partition(sub *subproblem, h *subHeap) {
	inc := make(map[graph.Key]bool, len(sub.include))
	for _, edge := range sub.include {
		inc[edge.Key()] = true
	}
	var free []graph.Edge
	for _, edge := range sub.tree.Edges {
		if !inc[edge.Key()] {
			free = append(free, edge)
		}
	}
	kids := make([]*subproblem, len(free))
	childInclude := append([]graph.Edge(nil), sub.include...)
	for i, ei := range free {
		childExclude := make(map[graph.Key]bool, len(sub.exclude)+1)
		for k := range sub.exclude {
			childExclude[k] = true
		}
		childExclude[ei.Key()] = true
		kids[i] = &subproblem{
			include: append([]graph.Edge(nil), childInclude...),
			exclude: childExclude,
		}
		childInclude = append(childInclude, ei)
	}
	e.solveBranches(kids)
	for _, kid := range kids {
		if kid.tree != nil {
			heap.Push(h, kid)
		}
	}
}

// solveBranch fills in kid's cheapest representative, leaving kid.tree
// nil when the region is empty. Each call touches only its own kid, so
// distinct kids solve concurrently.
func (e *enumerator) solveBranch(kid *subproblem) {
	if t, ok := mst.ConstrainedKruskal(e.n, e.sorted, kid.include, kid.exclude); ok {
		kid.tree = t
		kid.cost = t.Cost()
	}
}
