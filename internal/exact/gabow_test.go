package exact

import (
	"context"

	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
)

func randomInstance(rng *rand.Rand, sinks int, extent float64) *inst.Instance {
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, geom.Manhattan)
}

// allSpanningTrees brute-forces every spanning tree of the complete graph
// over in (feasible only for tiny instances).
func allSpanningTrees(in *inst.Instance) []*graph.Tree {
	edges := graph.CompleteEdges(in.DistMatrix())
	n := in.N()
	var out []*graph.Tree
	var pick func(start, chosen int, cur []graph.Edge)
	pick = func(start, chosen int, cur []graph.Edge) {
		if chosen == n-1 {
			t := &graph.Tree{N: n, Edges: append([]graph.Edge(nil), cur...)}
			if t.Validate() == nil {
				out = append(out, t)
			}
			return
		}
		for i := start; i <= len(edges)-(n-1-chosen); i++ {
			pick(i+1, chosen+1, append(cur, edges[i]))
		}
	}
	pick(0, 0, nil)
	return out
}

// bruteBMST returns the cheapest spanning tree satisfying the bounds, or
// nil if none exists.
func bruteBMST(in *inst.Instance, b core.Bounds) *graph.Tree {
	var best *graph.Tree
	for _, t := range allSpanningTrees(in) {
		if core.FeasibleTree(t, b) && (best == nil || t.Cost() < best.Cost()) {
			best = t
		}
	}
	return best
}

func TestBMSTGNegativeEps(t *testing.T) {
	in := inst.MustNew(geom.Point{}, []geom.Point{{X: 1, Y: 0}}, geom.Manhattan)
	if _, err := BMSTG(context.Background(), in, -1, Options{}); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestBMSTGInfiniteEpsIsMST(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		in := randomInstance(rng, 3+rng.Intn(8), 100)
		tr, err := BMSTG(context.Background(), in, math.Inf(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := mst.Kruskal(in.DistMatrix()).Cost()
		if math.Abs(tr.Cost()-want) > 1e-9 {
			t.Errorf("trial %d: BMSTG(inf) = %v, MST = %v", trial, tr.Cost(), want)
		}
	}
}

func TestBMSTGMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 12; trial++ {
		in := randomInstance(rng, 3+rng.Intn(3), 100) // 3-5 sinks
		eps := float64(rng.Intn(5)) / 10
		b := core.UpperOnly(in, eps)
		want := bruteBMST(in, b)
		got, err := BMSTG(context.Background(), in, eps, Options{})
		if want == nil {
			if err == nil {
				t.Errorf("trial %d: expected infeasible, got cost %v", trial, got.Cost())
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got.Cost()-want.Cost()) > 1e-9 {
			t.Errorf("trial %d: BMSTG = %v, brute = %v", trial, got.Cost(), want.Cost())
		}
		if !core.FeasibleTree(got, b) {
			t.Errorf("trial %d: BMSTG result infeasible", trial)
		}
	}
}

func TestBMSTGLemmaAblationAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		in := randomInstance(rng, 4+rng.Intn(4), 100)
		eps := float64(rng.Intn(8)) / 10
		a, errA := BMSTG(context.Background(), in, eps, Options{})
		b, errB := BMSTG(context.Background(), in, eps, Options{DisableLemmas: true})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: lemma/no-lemma disagree on feasibility: %v vs %v", trial, errA, errB)
		}
		if errA == nil && math.Abs(a.Cost()-b.Cost()) > 1e-9 {
			t.Errorf("trial %d: lemma %v vs no-lemma %v", trial, a.Cost(), b.Cost())
		}
	}
}

func TestKBestOrderMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		in := randomInstance(rng, 4, 100) // 5 nodes -> 125 spanning trees
		all := allSpanningTrees(in)
		costs := make([]float64, len(all))
		for i, tr := range all {
			costs[i] = tr.Cost()
		}
		sort.Float64s(costs)
		k := 20
		got := KBest(in, k)
		if len(got) != k {
			t.Fatalf("trial %d: KBest returned %d trees", trial, len(got))
		}
		prev := math.Inf(-1)
		for i, tr := range got {
			if tr.Cost() < prev-1e-9 {
				t.Errorf("trial %d: KBest not nondecreasing at %d", trial, i)
			}
			prev = tr.Cost()
			if math.Abs(tr.Cost()-costs[i]) > 1e-9 {
				t.Errorf("trial %d: KBest[%d] = %v, brute = %v", trial, i, tr.Cost(), costs[i])
			}
		}
	}
}

func TestKBestEnumeratesDistinctTrees(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(5)), 4, 100)
	trees := KBest(in, 125) // all of them for n=5
	if len(trees) != 125 {
		t.Fatalf("KBest(125) returned %d trees, want 125 (Cayley 5^3)", len(trees))
	}
	seen := map[string]bool{}
	for _, tr := range trees {
		keys := make([]graph.Key, len(tr.Edges))
		for i, e := range tr.Edges {
			keys[i] = e.Key()
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].U != keys[j].U {
				return keys[i].U < keys[j].U
			}
			return keys[i].V < keys[j].V
		})
		sig := ""
		for _, k := range keys {
			sig += string(rune(k.U)) + string(rune(k.V))
		}
		if seen[sig] {
			t.Fatalf("duplicate tree enumerated: %v", tr.Edges)
		}
		seen[sig] = true
	}
}

func TestBMSTGBudget(t *testing.T) {
	// A tight-but-satisfiable instance with the budget forced to 1 should
	// hit ErrBudget unless the MST itself is feasible.
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 3.4, Y: 2.8}, {X: 5.2, Y: 2.6}, {X: 4, Y: 0}, {X: 0, Y: 7.7},
	}, geom.Manhattan)
	b := core.Bounds{Upper: 8.3}
	m := mst.Kruskal(in.DistMatrix())
	if core.FeasibleTree(m, b) {
		t.Skip("fixture MST unexpectedly feasible")
	}
	if _, err := BMSTGBounds(context.Background(), in, b, Options{MaxTrees: 1}); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestBMSTGFigure5Optimal(t *testing.T) {
	// On the Figure 5 fixture BKRUS yields 19.9 but the optimum is 18.9.
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 3.4, Y: 2.8}, {X: 5.2, Y: 2.6}, {X: 4, Y: 0}, {X: 0, Y: 7.7},
	}, geom.Manhattan)
	got, err := BMSTGBounds(context.Background(), in, core.Bounds{Upper: 8.3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Cost()-18.9) > 1e-9 {
		t.Errorf("optimal cost = %v, want 18.9", got.Cost())
	}
}

func TestBMSTGLowerUpperBounds(t *testing.T) {
	// Force a minimum path length: the near sink must detour.
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 10, Y: 0}, {X: 9, Y: 2},
	}, geom.Manhattan)
	// R = 11; window [0.95R, 1.1R] = [10.45, 12.1]. Direct paths: sink1 =
	// 10 (violates lower), sink2 = 11 OK. sink1 via sink2: 11 + 3 = 14 >
	// upper. sink2 via sink1: 10 + 3 = 13 > upper. So the only hope is
	// infeasible.
	if _, err := BMSTGBounds(context.Background(), in, core.LowerUpper(in, 0.95, 0.1), Options{}); err == nil {
		t.Error("expected infeasible LUB window")
	}
	// Widen the upper bound: sink1 via sink2 (11 + 3 = 14 <= 1.3*11) works.
	tr, err := BMSTGBounds(context.Background(), in, core.LowerUpper(in, 0.95, 0.3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := tr.PathLengthsFrom(graph.Source)
	lo := 0.95 * in.R()
	for v := 1; v < tr.N; v++ {
		if d[v] < lo-1e-9 {
			t.Errorf("path to %d = %v below lower bound %v", v, d[v], lo)
		}
	}
}

// Property: BMSTG cost is never above BKRUS cost and never below MST cost.
func TestBMSTGSandwichProperty(t *testing.T) {
	f := func(seed int64, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 3+rng.Intn(5), 100)
		eps := float64(epsRaw%120) / 100
		opt, err := BMSTG(context.Background(), in, eps, Options{})
		if err != nil {
			return false
		}
		bk, err := core.BKRUS(in, eps)
		if err != nil {
			return false
		}
		mstCost := mst.Kruskal(in.DistMatrix()).Cost()
		return opt.Cost() <= bk.Cost()+1e-9 && opt.Cost() >= mstCost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCandidateEdgesLemma43Forces(t *testing.T) {
	// One sink so remote that every two-hop route breaks the bound: its
	// direct source edge must be forced.
	in := inst.MustNew(geom.Point{}, []geom.Point{
		{X: 1, Y: 0}, {X: 0, Y: 40},
	}, geom.Manhattan)
	b := core.UpperOnly(in, 0) // bound = 40
	_, forced := candidateEdges(in, b, true)
	foundFar := false
	for _, e := range forced {
		if e.Key() == graph.EdgeKey(0, 2) {
			foundFar = true
		}
	}
	if !foundFar {
		t.Errorf("edge (S, far sink) not forced: %v", forced)
	}
}

func TestBMSTGWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	in := randomInstance(rng, 8, 100)
	b := core.UpperOnly(in, 0.1)
	tr, withLemmas, err := BMSTGWithStats(context.Background(), in, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr2, without, err := BMSTGWithStats(context.Background(), in, b, Options{DisableLemmas: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Cost()-tr2.Cost()) > 1e-9 {
		t.Fatalf("lemma ablation changed the optimum: %v vs %v", tr.Cost(), tr2.Cost())
	}
	if withLemmas.CandidateEdges > without.CandidateEdges {
		t.Errorf("lemmas grew the edge set: %d vs %d",
			withLemmas.CandidateEdges, without.CandidateEdges)
	}
	if withLemmas.TreesPopped > without.TreesPopped {
		t.Errorf("lemmas grew the enumeration: %d vs %d trees",
			withLemmas.TreesPopped, without.TreesPopped)
	}
	if withLemmas.TreesPopped < 1 || withLemmas.PeakHeap < 1 {
		t.Errorf("implausible stats: %+v", withLemmas)
	}
}
