package graph

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel full-sort kernel for edge lists — the fallback the lazy
// EdgeStream uses when a consumer drains deep, and a drop-in for any
// eager full sort of a large edge set.
//
// Determinism: the recursion splits at fixed midpoints and the merge is
// stable (ties take from the left run), so the output permutation is a
// pure function of the input regardless of goroutine scheduling — and
// since edgeLess is a strict total order over complete-graph edges, the
// result is additionally the unique sorted sequence, byte-identical to
// SortEdges. The conformance suite asserts this under -race.

// parallelSortMin is the edge count below which a serial sort always
// wins: goroutine+merge overhead needs thousands of elements to
// amortize. 4096 edges ≈ a 91-terminal complete graph.
const parallelSortMin = 4096

// sortWorkersKnob overrides the sort kernel's worker count: 0 means
// "gate on runtime.GOMAXPROCS", 1 forces the serial path, n > 1 forces
// n-way parallelism. Atomic so tests and benchmarks can flip it while
// other goroutines sort.
var sortWorkersKnob atomic.Int32

// SetSortWorkers sets the package-level worker count for
// ParallelSortEdges and returns the previous setting. 0 restores the
// default (runtime.GOMAXPROCS); 1 forces the serial path. Intended for
// tests and benchmarks that must pin one path.
func SetSortWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		// The knob is stored in an atomic.Int32; an absurd worker count
		// would otherwise truncate silently (possibly to a negative).
		n = math.MaxInt32
	}
	return int(sortWorkersKnob.Swap(int32(n)))
}

func sortWorkers() int {
	if k := sortWorkersKnob.Load(); k > 0 {
		return int(k)
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelSortEdges sorts edges in the canonical SortEdges order using
// a parallel stable merge sort when the slice is large and more than
// one worker is available; otherwise it falls through to the serial
// sort. Output is byte-identical to SortEdges either way.
func ParallelSortEdges(edges []Edge) {
	w := sortWorkers()
	if w <= 1 || len(edges) < parallelSortMin {
		SortEdges(edges)
		return
	}
	depth := 0
	for 1<<depth < w {
		depth++
	}
	buf := make([]Edge, len(edges))
	parallelMergeSort(edges, buf, depth)
}

// parallelMergeSort sorts a in place, using buf (same length) as merge
// scratch and spawning goroutines down to the given depth.
func parallelMergeSort(a, buf []Edge, depth int) {
	if depth <= 0 || len(a) < parallelSortMin {
		SortEdges(a)
		return
	}
	mid := len(a) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		parallelMergeSort(a[:mid], buf[:mid], depth-1)
	}()
	parallelMergeSort(a[mid:], buf[mid:], depth-1)
	wg.Wait()
	mergeEdges(buf, a[:mid], a[mid:])
	copy(a, buf)
}

// mergeEdges merges the sorted runs x and y into dst
// (len(dst) == len(x)+len(y)), taking from x on ties so the merge is
// stable.
func mergeEdges(dst, x, y []Edge) {
	k := 0
	for len(x) > 0 && len(y) > 0 {
		if edgeLess(y[0], x[0]) {
			dst[k] = y[0]
			y = y[1:]
		} else {
			dst[k] = x[0]
			x = x[1:]
		}
		k++
	}
	copy(dst[k:], x)
	copy(dst[k+len(x):], y)
}
