package graph

// This file generalizes the edge supply from "materialize the complete
// graph" to "generate a sparse candidate set from a geometric index".
// The octant neighbor graph (geom.Index) provably contains the MST, and
// augmenting it with the source star keeps every direct source
// connection available, which is what the BKRUS completion argument
// (upper-bound-only instances always finish via the source star)
// requires. Feeding the generated set through the same lazy EdgeStream
// preserves the strict edgeLess total order, so a consumer sees the
// unique sorted sequence of the sparse set — byte-identical to sorting
// it eagerly, and identical to the dense scan wherever the two edge
// sets coincide.

import (
	"sort"

	"repro/internal/geom"
)

// EdgeSeq is the consumer-side view of an ordered edge source: Next
// yields edges in nondecreasing weight order (edgeLess order) until
// exhaustion. EdgeStream is the canonical implementation; Kruskal-style
// scans (mst.KruskalFrom, the BKRUS engine) consume this interface so
// dense and sparse supplies are interchangeable.
type EdgeSeq interface {
	// Next yields the next edge in nondecreasing weight order,
	// reporting false when the sequence is exhausted.
	Next() (Edge, bool)
}

var _ EdgeSeq = (*EdgeStream)(nil)

// NeighborEdges generates the sparse candidate edge set of an indexed
// point set: the octant nearest-neighbor graph (which contains the MST
// for both metrics — see geom.Index) united with the star of direct
// edges from root (by repository convention the source, so bounded
// constructions can always complete). Edges are canonical (U < V),
// deduplicated, and at most (Octants+1)·n of them; weights come from
// the index's metric, bit-identical to the dense matrix entries. The
// result is sorted by (U,V), not by weight — order it with SortEdges or
// stream it through NewEdgeStreamFrom.
func NeighborEdges(ix *geom.Index, root int) []Edge {
	n := ix.Len()
	if n == 0 {
		return nil
	}
	edges := make([]Edge, 0, (geom.Octants+1)*n)
	for i := 0; i < n; i++ {
		for o := 0; o < geom.Octants; o++ {
			j, d, ok := ix.Neighbor(i, o)
			if !ok {
				continue
			}
			edges = append(edges, Edge{U: i, V: j, W: d}.Canon())
		}
	}
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		edges = append(edges, Edge{U: root, V: v, W: ix.Dist(root, v)}.Canon())
	}
	// Deduplicate without map iteration (deterministic by construction):
	// sort by the canonical endpoint pair and compact runs in place.
	// Duplicates carry bit-identical weights — every occurrence of a
	// pair computes the same metric distance — so keeping the first of a
	// run loses nothing.
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 && out[len(out)-1].U == e.U && out[len(out)-1].V == e.V {
			continue
		}
		out = append(out, e)
	}
	return out
}

// NewSparseEdgeStream builds a lazy sorted stream over the sparse
// neighbor edge set of ix — the drop-in sub-quadratic replacement for
// NewEdgeStream over a complete graph.
func NewSparseEdgeStream(ix *geom.Index, root int) *EdgeStream {
	return NewEdgeStreamFrom(NeighborEdges(ix, root))
}

// MemBytes estimates the heap bytes retained by the stream's edge and
// partition-frontier buffers.
func (s *EdgeStream) MemBytes() int64 {
	return int64(cap(s.edges))*24 + int64(cap(s.stack))*8
}

// MemBytes estimates the heap bytes retained by the disjoint set's
// representative array and member lists.
func (ds *DisjointSet) MemBytes() int64 {
	b := int64(cap(ds.rep))*8 + int64(cap(ds.members))*24
	for i := range ds.members {
		b += int64(cap(ds.members[i])) * 8
	}
	return b
}
