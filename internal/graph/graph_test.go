package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestEdgeCanonAndKey(t *testing.T) {
	e := Edge{U: 5, V: 2, W: 1.5}
	c := e.Canon()
	if c.U != 2 || c.V != 5 || c.W != 1.5 {
		t.Errorf("Canon = %v", c)
	}
	if e.Key() != (Key{2, 5}) {
		t.Errorf("Key = %v", e.Key())
	}
	if EdgeKey(2, 5) != EdgeKey(5, 2) {
		t.Error("EdgeKey must be order-insensitive")
	}
	if e.String() != "(5-2:1.5)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestCompleteEdges(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 2}}
	dm := geom.NewDistMatrix(pts, geom.Manhattan)
	edges := CompleteEdges(dm)
	if len(edges) != 3 {
		t.Fatalf("len = %d, want 3", len(edges))
	}
	want := map[Key]float64{{0, 1}: 1, {0, 2}: 2, {1, 2}: 3}
	for _, e := range edges {
		if w, ok := want[e.Key()]; !ok || w != e.W {
			t.Errorf("unexpected edge %v", e)
		}
	}
}

func TestSortEdgesDeterministic(t *testing.T) {
	edges := []Edge{{2, 3, 5}, {0, 1, 5}, {1, 2, 1}, {0, 3, 5}}
	SortEdges(edges)
	if edges[0].W != 1 {
		t.Errorf("first edge = %v", edges[0])
	}
	// ties broken by (U,V)
	if edges[1] != (Edge{0, 1, 5}) || edges[2] != (Edge{0, 3, 5}) || edges[3] != (Edge{2, 3, 5}) {
		t.Errorf("tie-break order wrong: %v", edges)
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i].W < edges[j].W }) {
		t.Error("not sorted by weight")
	}
}

func TestDisjointSetBasics(t *testing.T) {
	ds := NewDisjointSet(5)
	if ds.Len() != 5 || ds.Sets() != 5 {
		t.Fatalf("Len/Sets = %d/%d", ds.Len(), ds.Sets())
	}
	for i := 0; i < 5; i++ {
		if ds.Find(i) != i || ds.Size(i) != 1 {
			t.Errorf("singleton %d broken", i)
		}
	}
	if !ds.Union(0, 1) {
		t.Error("Union(0,1) should merge")
	}
	if ds.Union(0, 1) {
		t.Error("second Union(0,1) should be a no-op")
	}
	if !ds.Same(0, 1) || ds.Same(0, 2) {
		t.Error("Same misreports")
	}
	if ds.Sets() != 4 {
		t.Errorf("Sets = %d, want 4", ds.Sets())
	}
	ds.Union(2, 3)
	ds.Union(0, 2)
	if ds.Size(3) != 4 {
		t.Errorf("Size = %d, want 4", ds.Size(3))
	}
	m := ds.Members(1)
	if len(m) != 4 {
		t.Fatalf("Members len = %d, want 4", len(m))
	}
	got := map[int]bool{}
	for _, v := range m {
		got[v] = true
	}
	for _, v := range []int{0, 1, 2, 3} {
		if !got[v] {
			t.Errorf("member %d missing", v)
		}
	}
	if got[4] {
		t.Error("node 4 should not be a member")
	}
}

// Property: after an arbitrary union sequence, Same(x,y) agrees with
// reachability in the implied union graph, member lists partition the
// nodes, and Sets() counts the partition classes.
func TestDisjointSetPartitionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, ops []uint16) bool {
		n := int(nRaw%20) + 2
		ds := NewDisjointSet(n)
		// reference: naive connectivity matrix
		conn := make([][]bool, n)
		for i := range conn {
			conn[i] = make([]bool, n)
			conn[i][i] = true
		}
		link := func(a, b int) {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if conn[i][a] && conn[b][j] {
						conn[i][j] = true
						conn[j][i] = true
					}
				}
			}
		}
		for _, op := range ops {
			a := int(op) % n
			b := int(op>>8) % n
			ds.Union(a, b)
			link(a, b)
		}
		classes := map[int]bool{}
		seen := make([]int, n)
		for i := 0; i < n; i++ {
			classes[ds.Find(i)] = true
			for _, m := range ds.Members(i) {
				if ds.Find(m) != ds.Find(i) {
					return false
				}
			}
			seen[ds.Find(i)]++
			for j := 0; j < n; j++ {
				if ds.Same(i, j) != conn[i][j] {
					return false
				}
			}
		}
		if len(classes) != ds.Sets() {
			return false
		}
		// member lists partition the universe
		total := 0
		for c := range classes {
			total += len(ds.Members(c))
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mkPathTree() *Tree {
	// 0 -1- 1 -2- 2 -3- 3, plus branch 1 -5- 4
	tr := NewTree(5)
	tr.AddEdge(0, 1, 1)
	tr.AddEdge(1, 2, 2)
	tr.AddEdge(2, 3, 3)
	tr.AddEdge(1, 4, 5)
	return tr
}

func TestTreeCostAndEdges(t *testing.T) {
	tr := mkPathTree()
	if tr.Cost() != 11 {
		t.Errorf("Cost = %v, want 11", tr.Cost())
	}
	if !tr.HasEdge(2, 1) || tr.HasEdge(0, 3) {
		t.Error("HasEdge misreports")
	}
	if !tr.RemoveEdge(3, 2) {
		t.Error("RemoveEdge failed")
	}
	if tr.RemoveEdge(3, 2) {
		t.Error("double remove succeeded")
	}
	if tr.Cost() != 8 {
		t.Errorf("Cost after removal = %v", tr.Cost())
	}
}

func TestTreePathLengths(t *testing.T) {
	tr := mkPathTree()
	d := tr.PathLengthsFrom(0)
	want := []float64{0, 1, 3, 6, 6}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if tr.Radius(0) != 6 {
		t.Errorf("Radius = %v", tr.Radius(0))
	}
	if tr.Radius(3) != 10 {
		t.Errorf("Radius(3) = %v", tr.Radius(3))
	}
}

func TestTreeFatherArray(t *testing.T) {
	tr := mkPathTree()
	fa, depth := tr.FatherArray(0)
	if fa[0] != -1 || depth[0] != 0 {
		t.Errorf("root fa/depth = %d/%d", fa[0], depth[0])
	}
	if fa[1] != 0 || fa[2] != 1 || fa[3] != 2 || fa[4] != 1 {
		t.Errorf("fa = %v", fa)
	}
	if depth[3] != 3 || depth[4] != 2 {
		t.Errorf("depth = %v", depth)
	}
}

func TestTreeValidate(t *testing.T) {
	tr := mkPathTree()
	if err := tr.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	bad := tr.Clone()
	bad.RemoveEdge(0, 1)
	bad.AddEdge(2, 3, 1) // duplicate, disconnects 0
	if err := bad.Validate(); err == nil {
		t.Error("duplicate-edge tree accepted")
	}
	forest := NewTree(3)
	forest.AddEdge(0, 1, 1)
	if err := forest.Validate(); err == nil {
		t.Error("forest accepted as spanning tree")
	}
	loop := NewTree(2)
	loop.AddEdge(1, 1, 1)
	if err := loop.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	outOfRange := NewTree(2)
	outOfRange.AddEdge(0, 5, 1)
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	empty := NewTree(0)
	if err := empty.Validate(); err != nil {
		t.Errorf("empty tree rejected: %v", err)
	}
}

func TestTreePathNodes(t *testing.T) {
	tr := mkPathTree()
	p := tr.PathNodes(4, 3)
	want := []int{4, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("PathNodes = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PathNodes = %v, want %v", p, want)
		}
	}
	if got := tr.PathNodes(2, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("trivial path = %v", got)
	}
	forest := NewTree(3)
	forest.AddEdge(0, 1, 1)
	if forest.PathNodes(0, 2) != nil {
		t.Error("unreachable path should be nil")
	}
}

func TestTreeDegree(t *testing.T) {
	tr := mkPathTree()
	if tr.Degree(1) != 3 || tr.Degree(0) != 1 || tr.Degree(3) != 1 {
		t.Errorf("degrees: %d %d %d", tr.Degree(1), tr.Degree(0), tr.Degree(3))
	}
}

func TestAllPairsPathLengthsSymmetric(t *testing.T) {
	tr := mkPathTree()
	p := tr.AllPairsPathLengths()
	for i := 0; i < tr.N; i++ {
		if p[i][i] != 0 {
			t.Errorf("diagonal p[%d][%d] = %v", i, i, p[i][i])
		}
		for j := 0; j < tr.N; j++ {
			if p[i][j] != p[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
	if p[0][3] != 6 || p[4][3] != 10 {
		t.Errorf("path lengths wrong: %v", p)
	}
}

// Property: on a random spanning tree, path length from the root obeys the
// father-array recurrence d[v] = d[fa[v]] + w(v, fa[v]).
func TestPathLengthFatherConsistencyProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%30) + 2
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree(n)
		for v := 1; v < n; v++ {
			u := rng.Intn(v)
			tr.AddEdge(u, v, 1+rng.Float64()*9)
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		d := tr.PathLengthsFrom(0)
		fa, _ := tr.FatherArray(0)
		for v := 1; v < n; v++ {
			var w float64
			found := false
			for _, e := range tr.Edges {
				if e.Key() == EdgeKey(v, fa[v]) {
					w = e.W
					found = true
					break
				}
			}
			if !found {
				return false
			}
			if diff := d[v] - (d[fa[v]] + w); diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the edge weights along PathNodes(u,v) sum to the tree path
// length reported by PathLengthsFrom.
func TestPathNodesLengthConsistencyProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		tr := NewTree(n)
		for v := 1; v < n; v++ {
			tr.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
		}
		weight := map[Key]float64{}
		for _, e := range tr.Edges {
			weight[e.Key()] = e.W
		}
		u := rng.Intn(n)
		d := tr.PathLengthsFrom(u)
		for v := 0; v < n; v++ {
			path := tr.PathNodes(u, v)
			var sum float64
			for i := 1; i < len(path); i++ {
				sum += weight[EdgeKey(path[i-1], path[i])]
			}
			if diff := sum - d[v]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
