package graph

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randSparsePoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

func TestNeighborEdgesWellFormed(t *testing.T) {
	for _, m := range []geom.Metric{geom.Manhattan, geom.Euclidean} {
		for _, n := range []int{1, 2, 5, 40, 150} {
			rng := rand.New(rand.NewSource(int64(n)*17 + int64(m)))
			pts := randSparsePoints(rng, n)
			ix := geom.NewIndex(pts, m)
			edges := NeighborEdges(ix, Source)
			if max := (geom.Octants + 1) * n; len(edges) > max {
				t.Fatalf("%v n=%d: %d edges exceeds sparse cap %d", m, n, len(edges), max)
			}
			seen := make(map[Key]bool, len(edges))
			starSeen := 0
			for _, e := range edges {
				if e.U >= e.V {
					t.Fatalf("%v n=%d: non-canonical edge %v", m, n, e)
				}
				if seen[e.Key()] {
					t.Fatalf("%v n=%d: duplicate edge %v", m, n, e)
				}
				seen[e.Key()] = true
				if want := m.Dist(pts[e.U], pts[e.V]); e.W != want {
					t.Fatalf("%v n=%d: edge %v weight mismatch, want %g", m, n, e, want)
				}
				if e.U == Source {
					starSeen++
				}
			}
			if starSeen != n-1 {
				t.Fatalf("%v n=%d: source star incomplete: %d of %d edges", m, n, starSeen, n-1)
			}
		}
	}
}

// TestSparseStreamMatchesEagerSort pins the order contract: streaming
// the sparse set lazily yields exactly the SortEdges order of that set.
func TestSparseStreamMatchesEagerSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randSparsePoints(rng, 120)
	ix := geom.NewIndex(pts, geom.Euclidean)

	want := NeighborEdges(ix, Source)
	SortEdges(want)

	s := NewSparseEdgeStream(ix, Source)
	if s.Len() != len(want) {
		t.Fatalf("stream length %d, want %d", s.Len(), len(want))
	}
	for k := 0; ; k++ {
		e, ok := s.Next()
		if !ok {
			if k != len(want) {
				t.Fatalf("stream ended at %d of %d edges", k, len(want))
			}
			break
		}
		if e != want[k] {
			t.Fatalf("edge %d: stream %v, eager %v", k, e, want[k])
		}
	}
}

func TestSparseMemBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randSparsePoints(rng, 30)
	ix := geom.NewIndex(pts, geom.Manhattan)
	s := NewSparseEdgeStream(ix, Source)
	if s.MemBytes() <= 0 {
		t.Fatalf("stream MemBytes = %d, want > 0", s.MemBytes())
	}
	ds := NewDisjointSet(30)
	if ds.MemBytes() <= 0 {
		t.Fatalf("disjoint set MemBytes = %d, want > 0", ds.MemBytes())
	}
}
