package graph

import (
	"errors"
	"fmt"
	"math"
)

// Tree is an undirected tree (or forest, transiently) over nodes 0..N-1,
// represented as an edge list. Routing algorithms build and exchange edges
// on it; query methods derive adjacency on demand.
type Tree struct {
	N     int
	Edges []Edge
}

// NewTree returns an empty tree skeleton over n nodes.
func NewTree(n int) *Tree {
	return &Tree{N: n, Edges: make([]Edge, 0, maxInt(0, n-1))}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	return &Tree{N: t.N, Edges: append([]Edge(nil), t.Edges...)}
}

// Cost returns the sum of edge weights — the routing cost of the tree.
func (t *Tree) Cost() float64 {
	var c float64
	for _, e := range t.Edges {
		c += e.W
	}
	return c
}

// AddEdge appends edge (u,v) with weight w.
func (t *Tree) AddEdge(u, v int, w float64) {
	t.Edges = append(t.Edges, Edge{U: u, V: v, W: w})
}

// HasEdge reports whether the undirected edge (u,v) is present.
func (t *Tree) HasEdge(u, v int) bool {
	k := EdgeKey(u, v)
	for _, e := range t.Edges {
		if e.Key() == k {
			return true
		}
	}
	return false
}

// RemoveEdge deletes the undirected edge (u,v), reporting whether it was
// present.
func (t *Tree) RemoveEdge(u, v int) bool {
	k := EdgeKey(u, v)
	for i, e := range t.Edges {
		if e.Key() == k {
			t.Edges = append(t.Edges[:i], t.Edges[i+1:]...)
			return true
		}
	}
	return false
}

// Adj is one directed half of an undirected tree edge.
type Adj struct {
	To int
	W  float64
}

// Adjacency builds the adjacency lists of the tree.
func (t *Tree) Adjacency() [][]Adj {
	adj := make([][]Adj, t.N)
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], Adj{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], Adj{To: e.U, W: e.W})
	}
	return adj
}

// PathLengthsFrom returns, for every node, the total edge length of the
// unique tree path from root. Unreachable nodes (when t is a forest) get
// +Inf.
func (t *Tree) PathLengthsFrom(root int) []float64 {
	adj := t.Adjacency()
	dist := make([]float64, t.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range adj[u] {
			if math.IsInf(dist[a.To], 1) {
				dist[a.To] = dist[u] + a.W
				stack = append(stack, a.To)
			}
		}
	}
	return dist
}

// Radius returns the maximum path length from root to any node (the tree
// radius of root, in the paper's terminology). Returns +Inf on a forest.
func (t *Tree) Radius(root int) float64 {
	var r float64
	for _, d := range t.PathLengthsFrom(root) {
		if d > r {
			r = d
		}
	}
	return r
}

// FatherArray roots the tree at root and returns for every node its father
// (parent) and its depth (number of ancestors). The root's father is -1.
// Unreachable nodes get father -1 and depth -1.
func (t *Tree) FatherArray(root int) (fa, depth []int) {
	adj := t.Adjacency()
	fa = make([]int, t.N)
	depth = make([]int, t.N)
	for i := range fa {
		fa[i] = -1
		depth[i] = -1
	}
	depth[root] = 0
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range adj[u] {
			if depth[a.To] == -1 && a.To != root {
				fa[a.To] = u
				depth[a.To] = depth[u] + 1
				stack = append(stack, a.To)
			}
		}
	}
	return fa, depth
}

// Connected reports whether every node is reachable from node 0.
func (t *Tree) Connected() bool {
	if t.N == 0 {
		return true
	}
	for _, d := range t.PathLengthsFrom(0) {
		if math.IsInf(d, 1) {
			return false
		}
	}
	return true
}

// Validate checks that t is a spanning tree: exactly N-1 edges, all
// endpoints in range, no self-loops or duplicate edges, and connected.
func (t *Tree) Validate() error {
	if t.N == 0 {
		if len(t.Edges) != 0 {
			return errors.New("graph: empty tree with edges")
		}
		return nil
	}
	if len(t.Edges) != t.N-1 {
		return fmt.Errorf("graph: tree over %d nodes has %d edges, want %d", t.N, len(t.Edges), t.N-1)
	}
	seen := make(map[Key]bool, len(t.Edges))
	for _, e := range t.Edges {
		if e.U < 0 || e.U >= t.N || e.V < 0 || e.V >= t.N {
			return fmt.Errorf("graph: edge %v out of range [0,%d)", e, t.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: self-loop %v", e)
		}
		k := e.Key()
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge %v", e)
		}
		seen[k] = true
	}
	if !t.Connected() {
		return errors.New("graph: tree is not connected")
	}
	return nil
}

// AllPairsPathLengths returns the full matrix of tree path lengths using a
// depth-first pass per root, O(N^2) total.
func (t *Tree) AllPairsPathLengths() [][]float64 {
	out := make([][]float64, t.N)
	for r := 0; r < t.N; r++ {
		out[r] = t.PathLengthsFrom(r)
	}
	return out
}

// PathNodes returns the node sequence of the unique tree path from u to v,
// inclusive of both endpoints. Returns nil if v is unreachable from u.
func (t *Tree) PathNodes(u, v int) []int {
	fa, depth := t.FatherArray(u)
	if depth[v] == -1 && u != v {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = fa[x] {
		rev = append(rev, x)
		if x == u {
			break
		}
	}
	// reverse so the path runs u -> v
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Degree returns the degree of node v.
func (t *Tree) Degree(v int) int {
	d := 0
	for _, e := range t.Edges {
		if e.U == v || e.V == v {
			d++
		}
	}
	return d
}
