package graph

// This file implements lazy sorted-edge streaming. A Kruskal-style scan
// over the complete geometric graph usually merges its V-1 edges after
// examining only a short prefix of the weight order, yet an eager
// CompleteEdges+SortEdges build pays O(n² log n) for the whole ~n²/2
// edge list every time. EdgeStream yields edges in exactly the
// SortEdges order but sorts incrementally: it maintains a quicksort
// partition frontier and only fully orders the next small batch when
// the consumer actually reaches it (incremental quicksort), so a build
// that stops early never pays for the tail.
//
// Order equivalence: edgeLess is a strict total order (weight, then the
// unique (U,V) pair), so the sorted permutation of any edge set is
// unique — whatever method produces a sorted sequence produces *the*
// sorted sequence. The stream therefore emits bit-identical order to
// SortEdges by construction; TestEdgeStreamMatchesSortEdges pins it.

const (
	// streamBatch is the target size of one sorted batch: segments at
	// most this long are sorted outright instead of partitioned further.
	streamBatch = 256
	// streamFallbackDen: once a consumer has drained more than
	// 1/streamFallbackDen of the edges, the stream stops partitioning
	// and sorts the whole remaining tail in one (parallel) shot — a
	// deep drain is going to pay for the full order anyway, and the
	// batched refinement would just add partition overhead on top.
	streamFallbackDen = 2
)

// EdgeStream yields the edges of a complete graph in nondecreasing
// weight order (the exact SortEdges order, including tie-breaks),
// sorting lazily so consumers that stop after a prefix never pay for
// ordering the tail. The zero value is not usable; construct with
// NewEdgeStream or NewEdgeStreamFrom. A stream is not safe for
// concurrent use.
type EdgeStream struct {
	edges []Edge
	pos   int // next index to emit; edges[:pos] already emitted this pass
	ready int // high-water mark: edges[:ready] are in final sorted order
	// stack holds quicksort partition boundaries above ready, bottom
	// entry len(edges). Invariant: for the top boundary t, every edge
	// in [ready, t) precedes (edgeLess) every edge in [t, len(edges)).
	stack     []int
	batches   int // sorted batches produced, including fallback sorts
	fallbacks int // whole-tail fallback sorts taken (at most one)
}

// NewEdgeStream builds a lazy sorted stream over the complete graph of
// w's nodes. Construction enumerates the edges (O(n²)) but sorts
// nothing yet.
func NewEdgeStream(w Weights) *EdgeStream {
	return NewEdgeStreamFrom(CompleteEdges(w))
}

// NewEdgeStreamFrom builds a lazy sorted stream over an explicit edge
// set. The stream takes ownership of the slice and permutes it in
// place.
func NewEdgeStreamFrom(edges []Edge) *EdgeStream {
	return &EdgeStream{edges: edges, stack: []int{len(edges)}}
}

// Len returns the total number of edges the stream will yield.
func (s *EdgeStream) Len() int { return len(s.edges) }

// Drained returns how many edges the current pass has emitted.
func (s *EdgeStream) Drained() int { return s.pos }

// SortedPrefix returns the high-water mark of edges already in final
// sorted order — the prefix a Reset pass re-serves without sorting.
func (s *EdgeStream) SortedPrefix() int { return s.ready }

// Batches returns how many sorted batches the stream has produced so
// far (monotone across Resets; includes fallback tail sorts).
func (s *EdgeStream) Batches() int { return s.batches }

// Fallbacks returns how many whole-tail fallback sorts the stream has
// taken (0 or 1 over its lifetime).
func (s *EdgeStream) Fallbacks() int { return s.fallbacks }

// Next yields the next edge in nondecreasing weight order, reporting
// false when the stream is exhausted.
func (s *EdgeStream) Next() (Edge, bool) {
	if s.pos == len(s.edges) {
		return Edge{}, false
	}
	if s.pos == s.ready {
		s.fill()
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset restarts emission from the smallest edge without discarding
// sorting work: the already-sorted prefix is re-served as-is and the
// lazy refinement resumes where the deepest previous pass stopped.
// This is what lets one stream serve a whole ε-sweep over an
// immutable instance.
func (s *EdgeStream) Reset() { s.pos = 0 }

// DrainSort forces the remainder of the stream into final sorted order
// (using the parallel sort kernel when it pays) and returns the
// complete sorted edge slice. Emission position is unchanged: this is
// the eager-sort escape hatch, not a consumer.
func (s *EdgeStream) DrainSort() []Edge {
	s.sortTail()
	return s.edges
}

// fill extends the sorted prefix past pos: it refines the partition
// frontier until the next batch (at least one edge) is in final order.
// Called only with pos == ready < len(edges).
func (s *EdgeStream) fill() {
	n := len(s.edges)
	if s.ready*streamFallbackDen >= n {
		// The consumer has drained deep into the edge order; sorting
		// the whole tail now is cheaper than batch-refining it.
		s.sortTail()
		return
	}
	for {
		hi := s.stack[len(s.stack)-1]
		if hi == s.ready {
			// Exhausted segment; the boundary below takes over. The
			// bottom entry is n > ready, so the stack never empties.
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		if hi-s.ready <= streamBatch {
			SortEdges(s.edges[s.ready:hi])
			s.ready = hi
			s.stack = s.stack[:len(s.stack)-1]
			s.batches++
			return
		}
		p := s.partition(s.ready, hi)
		if p-s.ready <= streamBatch {
			// Small left side: sort it together with the pivot (which
			// is already in final position at p) and emit as one batch.
			// The untouched right side stays bounded by the old top.
			SortEdges(s.edges[s.ready : p+1])
			s.ready = p + 1
			s.batches++
			return
		}
		s.stack = append(s.stack, p)
	}
}

// sortTail puts every remaining edge into final order in one shot.
func (s *EdgeStream) sortTail() {
	if s.ready == len(s.edges) {
		return
	}
	ParallelSortEdges(s.edges[s.ready:])
	s.ready = len(s.edges)
	s.stack = s.stack[:1] // keep only the bottom boundary len(edges)
	s.batches++
	s.fallbacks++
}

// partition performs a Lomuto partition of edges[lo:hi] around a
// median-of-three pivot and returns the pivot's final index. All edges
// left of it precede it; all edges right of it follow it (strictly —
// edgeLess is total). The pivot choice is a pure function of the data,
// so partitioning is deterministic.
func (s *EdgeStream) partition(lo, hi int) int {
	e := s.edges
	mid := lo + (hi-lo)/2
	// Order the (lo, mid, hi-1) trio so the median lands at hi-1.
	if edgeLess(e[mid], e[lo]) {
		e[mid], e[lo] = e[lo], e[mid]
	}
	if edgeLess(e[hi-1], e[lo]) {
		e[hi-1], e[lo] = e[lo], e[hi-1]
	}
	if edgeLess(e[mid], e[hi-1]) {
		e[mid], e[hi-1] = e[hi-1], e[mid]
	}
	pivot := e[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if edgeLess(e[j], pivot) {
			e[i], e[j] = e[j], e[i]
			i++
		}
	}
	e[i], e[hi-1] = e[hi-1], e[i]
	return i
}
