// Package graph provides the graph substrate shared by all tree
// constructions: weighted edges over integer node ids, the complete
// geometric graph, a disjoint-set structure with enumerable members (the
// set representation the paper's BKRUS requires), and rooted-tree queries
// (path lengths, radius, father arrays).
//
// Node ids are dense integers 0..n-1. By convention throughout this
// repository node 0 is the source.
package graph

import (
	"fmt"
	"sort"
)

// Source is the conventional node id of the driver/source terminal.
const Source = 0

// Edge is an undirected weighted edge between nodes U and V.
type Edge struct {
	U, V int
	W    float64
}

// Canon returns the edge with endpoints ordered U <= V, so that edges can
// be compared and used as map keys regardless of construction order.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Key is a comparable identifier for an undirected edge.
type Key struct{ U, V int }

// EdgeKey returns the canonical key of the undirected pair (u,v).
func EdgeKey(u, v int) Key {
	if u > v {
		u, v = v, u
	}
	return Key{u, v}
}

// Key returns the canonical key of e.
func (e Edge) Key() Key { return EdgeKey(e.U, e.V) }

// String renders the edge as "(u-v:w)".
func (e Edge) String() string { return fmt.Sprintf("(%d-%d:%g)", e.U, e.V, e.W) }

// Weights abstracts a pairwise weight oracle, typically a geom.DistMatrix.
type Weights interface {
	// At returns the weight between nodes i and j.
	At(i, j int) float64
	// Len returns the number of nodes.
	Len() int
}

// CompleteEdges enumerates all edges of the complete graph over w's nodes.
func CompleteEdges(w Weights) []Edge {
	n := w.Len()
	edges := make([]Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j, W: w.At(i, j)})
		}
	}
	return edges
}

// edgeLess is the canonical edge order shared by SortEdges, the lazy
// EdgeStream, and the parallel merge sort: nondecreasing weight with a
// deterministic (U,V) tie-break. Because no two edges of a simple graph
// share the same (U,V) pair, this is a strict *total* order — the sorted
// sequence of any edge set is unique, which is what lets the lazy and
// parallel kernels promise byte-identical output.
func edgeLess(a, b Edge) bool {
	//lint:ignore floatcmp a comparator must stay an exact strict weak order; epsilon ties would break sort transitivity
	if a.W != b.W {
		return a.W < b.W
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// SortEdges sorts edges in nondecreasing weight order with a deterministic
// (U,V) tie-break, so runs are reproducible across platforms.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(a, b int) bool {
		return edgeLess(edges[a], edges[b])
	})
}

// DisjointSet is a union-find structure that, unlike the classical
// path-compressed forest, keeps an explicit member list per set. BKRUS
// needs to enumerate the members of a partial tree during feasibility
// tests and merges, so Find is O(1) via a representative array and Union
// is O(min set size) by relabelling the smaller set (the same structure
// the paper describes).
type DisjointSet struct {
	rep     []int   // rep[x] = representative (set name) of x
	members [][]int // members[r] = nodes of the set named r (valid only when rep[r]==r)
	sets    int
}

// NewDisjointSet creates n singleton sets named 0..n-1.
func NewDisjointSet(n int) *DisjointSet {
	ds := &DisjointSet{
		rep:     make([]int, n),
		members: make([][]int, n),
		sets:    n,
	}
	for i := 0; i < n; i++ {
		ds.rep[i] = i
		ds.members[i] = []int{i}
	}
	return ds
}

// Reset returns the structure to n singleton sets without releasing the
// member-list backing arrays, so pooled callers (sweep runners reusing
// one scratch across constructions) avoid re-allocating n slices per run.
func (ds *DisjointSet) Reset() {
	for i := range ds.rep {
		ds.rep[i] = i
		ds.members[i] = append(ds.members[i][:0], i)
	}
	ds.sets = len(ds.rep)
}

// Len returns the number of elements.
func (ds *DisjointSet) Len() int { return len(ds.rep) }

// Sets returns the current number of disjoint sets.
func (ds *DisjointSet) Sets() int { return ds.sets }

// Find returns the representative of x's set in O(1).
func (ds *DisjointSet) Find(x int) int { return ds.rep[x] }

// Same reports whether x and y are in the same set.
func (ds *DisjointSet) Same(x, y int) bool { return ds.rep[x] == ds.rep[y] }

// Members returns the nodes in x's set. The returned slice is owned by the
// structure and must not be modified; it is valid until the next Union.
func (ds *DisjointSet) Members(x int) []int { return ds.members[ds.rep[x]] }

// Size returns the size of x's set.
func (ds *DisjointSet) Size(x int) int { return len(ds.members[ds.rep[x]]) }

// Union merges the sets of x and y, relabelling the smaller set. It
// reports whether a merge happened (false if already in the same set).
func (ds *DisjointSet) Union(x, y int) bool {
	rx, ry := ds.rep[x], ds.rep[y]
	if rx == ry {
		return false
	}
	if len(ds.members[rx]) < len(ds.members[ry]) {
		rx, ry = ry, rx
	}
	for _, v := range ds.members[ry] {
		ds.rep[v] = rx
	}
	ds.members[rx] = append(ds.members[rx], ds.members[ry]...)
	ds.members[ry] = nil
	ds.sets--
	return true
}
