package graph

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// BenchmarkEdgeStreamPrefix measures draining only the first n-1 edges
// (a Kruskal-style consumer's best case) against the full sort the
// eager path always pays. edges/op reports the consumed prefix.
func BenchmarkEdgeStreamPrefix(b *testing.B) {
	for _, n := range []int{100, 250, 500, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			base := randomEdges(rng, n)
			work := make([]Edge, len(base))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, base)
				s := NewEdgeStreamFrom(work)
				for k := 0; k < n-1; k++ {
					if _, ok := s.Next(); !ok {
						b.Fatal("stream ended early")
					}
				}
			}
			b.ReportMetric(float64(n-1), "edges/op")
		})
	}
}

// BenchmarkParallelSortEdges measures the full-sort fallback kernel at
// pinned worker counts (1 = the serial sort.Slice path).
func BenchmarkParallelSortEdges(b *testing.B) {
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, n := range []int{250, 500, 1000} {
		rng := rand.New(rand.NewSource(19))
		base := randomEdges(rng, n)
		for _, w := range workerSet {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				prev := SetSortWorkers(w)
				defer SetSortWorkers(prev)
				work := make([]Edge, len(base))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(work, base)
					ParallelSortEdges(work)
				}
			})
		}
	}
}
