package graph

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomEdges builds a shuffled edge set with deliberately heavy weight
// ties (weights drawn from a small integer range) so tie-break order is
// actually exercised.
func randomEdges(rng *rand.Rand, n int) []Edge {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: u, V: v, W: float64(rng.Intn(7))})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		// Integer grid coordinates force plenty of exact distance ties.
		pts[i] = geom.Point{X: float64(rng.Intn(50)), Y: float64(rng.Intn(50))}
	}
	return pts
}

func TestEdgeStreamMatchesSortEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 10, 40, 90} {
		edges := randomEdges(rng, n)
		want := append([]Edge(nil), edges...)
		SortEdges(want)

		s := NewEdgeStreamFrom(edges)
		if s.Len() != len(want) {
			t.Fatalf("n=%d: Len = %d, want %d", n, s.Len(), len(want))
		}
		for i, w := range want {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("n=%d: stream ended at %d/%d", n, i, len(want))
			}
			if got != w {
				t.Fatalf("n=%d: edge %d = %v, want %v", n, i, got, w)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("n=%d: stream yielded past the end", n)
		}
	}
}

func TestEdgeStreamFromWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []geom.Metric{geom.Manhattan, geom.Euclidean} {
		dm := geom.NewDistMatrix(randomPoints(rng, 35), m)
		want := CompleteEdges(dm)
		SortEdges(want)
		s := NewEdgeStream(dm)
		for i, w := range want {
			got, ok := s.Next()
			if !ok || got != w {
				t.Fatalf("%v: edge %d = %v ok=%v, want %v", m, i, got, ok, w)
			}
		}
	}
}

func TestEdgeStreamPartialDrainAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := randomEdges(rng, 40)
	want := append([]Edge(nil), edges...)
	SortEdges(want)

	s := NewEdgeStreamFrom(edges)
	k := len(want) / 4
	for i := 0; i < k; i++ {
		got, ok := s.Next()
		if !ok || got != want[i] {
			t.Fatalf("first pass edge %d = %v ok=%v, want %v", i, got, ok, want[i])
		}
	}
	if s.Drained() != k {
		t.Fatalf("Drained = %d, want %d", s.Drained(), k)
	}
	if sp := s.SortedPrefix(); sp < k || sp > len(want) {
		t.Fatalf("SortedPrefix = %d out of range [%d,%d]", sp, k, len(want))
	}
	batchesAfterFirst := s.Batches()

	// A reset pass re-serves the sorted prefix without new batches, then
	// extends deeper.
	s.Reset()
	if s.Drained() != 0 {
		t.Fatalf("Drained after Reset = %d", s.Drained())
	}
	for i := 0; i < s.SortedPrefix(); i++ {
		got, ok := s.Next()
		if !ok || got != want[i] {
			t.Fatalf("reset pass edge %d = %v ok=%v, want %v", i, got, ok, want[i])
		}
	}
	if s.Batches() != batchesAfterFirst {
		t.Fatalf("re-serving the sorted prefix sorted new batches: %d -> %d", batchesAfterFirst, s.Batches())
	}
	for i := s.Drained(); i < len(want); i++ {
		got, ok := s.Next()
		if !ok || got != want[i] {
			t.Fatalf("deep pass edge %d = %v ok=%v, want %v", i, got, ok, want[i])
		}
	}
}

func TestEdgeStreamFallbackSortsWholeTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := randomEdges(rng, 80) // 3160 edges, many batches without fallback
	want := append([]Edge(nil), edges...)
	SortEdges(want)

	s := NewEdgeStreamFrom(edges)
	for i := range want {
		got, ok := s.Next()
		if !ok || got != want[i] {
			t.Fatalf("edge %d = %v ok=%v, want %v", i, got, ok, want[i])
		}
	}
	if s.Fallbacks() != 1 {
		t.Fatalf("Fallbacks = %d, want exactly 1 for a full drain", s.Fallbacks())
	}
	if s.SortedPrefix() != s.Len() {
		t.Fatalf("SortedPrefix = %d, want %d after full drain", s.SortedPrefix(), s.Len())
	}
}

func TestEdgeStreamDrainSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	edges := randomEdges(rng, 30)
	want := append([]Edge(nil), edges...)
	SortEdges(want)

	s := NewEdgeStreamFrom(edges)
	// Consume a few first so DrainSort must handle a nonzero prefix.
	for i := 0; i < 5; i++ {
		s.Next()
	}
	got := s.DrainSort()
	if len(got) != len(want) {
		t.Fatalf("DrainSort len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DrainSort edge %d = %v, want %v", i, got[i], want[i])
		}
	}
	if s.Drained() != 5 {
		t.Fatalf("DrainSort moved the emission position: Drained = %d", s.Drained())
	}
	// DrainSort on an already sorted stream is a no-op.
	b := s.Batches()
	s.DrainSort()
	if s.Batches() != b {
		t.Fatal("second DrainSort re-sorted")
	}
}

func TestParallelSortEdgesMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// 120 nodes -> 7140 edges, above parallelSortMin.
	edges := randomEdges(rng, 120)
	want := append([]Edge(nil), edges...)
	SortEdges(want)

	for _, workers := range []int{1, 2, 4, 7} {
		got := append([]Edge(nil), edges...)
		prev := SetSortWorkers(workers)
		ParallelSortEdges(got)
		SetSortWorkers(prev)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: edge %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSetSortWorkersKnob(t *testing.T) {
	prev := SetSortWorkers(3)
	defer SetSortWorkers(prev)
	if got := sortWorkers(); got != 3 {
		t.Fatalf("sortWorkers = %d, want 3", got)
	}
	if old := SetSortWorkers(0); old != 3 {
		t.Fatalf("SetSortWorkers returned %d, want 3", old)
	}
	if got := sortWorkers(); got < 1 {
		t.Fatalf("default sortWorkers = %d", got)
	}
	if old := SetSortWorkers(-5); old != 0 {
		t.Fatalf("SetSortWorkers(-5) returned %d, want 0", old)
	}
	if got := sortWorkers(); got < 1 {
		t.Fatalf("negative knob broke sortWorkers: %d", got)
	}
}
