package graph

// The edge streams size their backing slices with n*(n-1)/2 pair
// counts carried out in int, which is only safe because int is 64 bits
// on every supported platform. The blank constant fails to compile on
// a 32-bit-int platform, turning the silent assumption into a build
// error; the intwidth analyzer checks that every hot package carries
// it.
const _ uint = 1 << 62
