// Package mst implements the classical tree constructions the paper uses
// as baselines and endpoints: Kruskal and Prim minimal spanning trees, the
// Dijkstra shortest path tree (SPT), the maximal spanning tree (the
// high-cost endpoint of the paper's Figure 11 cost chart), and the
// constrained Kruskal construction needed by the Gabow-style exact
// spanning-tree enumeration.
package mst

import (
	"container/heap"
	"math"

	"repro/internal/graph"
)

// Kruskal returns a minimal spanning tree of the complete graph over w.
func Kruskal(w graph.Weights) *graph.Tree {
	edges := graph.CompleteEdges(w)
	graph.SortEdges(edges)
	t, _ := KruskalEdges(w.Len(), edges)
	return t
}

// KruskalEdges runs Kruskal on a pre-sorted edge list over n nodes. It
// reports false if the edges do not connect all n nodes. The edge list
// must already be in nondecreasing weight order.
func KruskalEdges(n int, sorted []graph.Edge) (*graph.Tree, bool) {
	t := graph.NewTree(n)
	if n <= 1 {
		return t, true
	}
	ds := graph.NewDisjointSet(n)
	for _, e := range sorted {
		if ds.Union(e.U, e.V) {
			t.Edges = append(t.Edges, e)
			if len(t.Edges) == n-1 {
				return t, true
			}
		}
	}
	return t, false
}

// KruskalFrom runs Kruskal over an ordered edge sequence (graph.EdgeSeq
// yields nondecreasing weight order) instead of a materialized sorted
// slice. It reports false if the sequence does not connect all n nodes.
// Fed a lazy stream over the sparse octant neighbor edge set
// (graph.NewSparseEdgeStream), this reproduces Kruskal(w) exactly — the
// neighbor graph contains every dense-selected MST edge, and a greedy
// scan over a superset of its own selection makes identical accept
// decisions — without ever enumerating the complete graph.
func KruskalFrom(n int, seq graph.EdgeSeq) (*graph.Tree, bool) {
	t := graph.NewTree(n)
	if n <= 1 {
		return t, true
	}
	ds := graph.NewDisjointSet(n)
	for {
		e, ok := seq.Next()
		if !ok {
			break
		}
		if ds.Union(e.U, e.V) {
			t.Edges = append(t.Edges, e)
			if len(t.Edges) == n-1 {
				return t, true
			}
		}
	}
	return t, false
}

// Prim returns a minimal spanning tree grown from root over the complete
// graph of w, using the O(V^2) dense-graph variant.
func Prim(w graph.Weights, root int) *graph.Tree {
	n := w.Len()
	t := graph.NewTree(n)
	if n <= 1 {
		return t
	}
	inTree := make([]bool, n)
	best := make([]float64, n) // cheapest connection weight to the tree
	bestFrom := make([]int, n) // tree endpoint achieving best
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[root] = true
	for j := 0; j < n; j++ {
		if j != root {
			best[j] = w.At(root, j)
			bestFrom[j] = root
		}
	}
	for k := 1; k < n; k++ {
		v := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (v == -1 || best[j] < best[v]) {
				v = j
			}
		}
		inTree[v] = true
		t.AddEdge(bestFrom[v], v, best[v])
		for j := 0; j < n; j++ {
			if !inTree[j] && w.At(v, j) < best[j] {
				best[j] = w.At(v, j)
				bestFrom[j] = v
			}
		}
	}
	return t
}

// Maximal returns a maximum-weight spanning tree of the complete graph
// over w. The paper's Figure 11 uses it as the most expensive spanning
// topology for calibration.
func Maximal(w graph.Weights) *graph.Tree {
	edges := graph.CompleteEdges(w)
	// sort by descending weight with the same deterministic tie-break
	for i := range edges {
		edges[i].W = -edges[i].W
	}
	graph.SortEdges(edges)
	for i := range edges {
		edges[i].W = -edges[i].W
	}
	t, _ := KruskalEdges(w.Len(), edges)
	return t
}

// sptItem is a priority-queue entry for Dijkstra.
type sptItem struct {
	node int
	dist float64
}

type sptHeap []sptItem

func (h sptHeap) Len() int            { return len(h) }
func (h sptHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h sptHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sptHeap) Push(x interface{}) { *h = append(*h, x.(sptItem)) }
func (h *sptHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SPT returns the shortest path tree from root over the complete graph of
// w (Dijkstra). On a metric point set the result is the star of direct
// source-sink connections, the minimum-radius / maximum-cost end of the
// paper's trade-off.
func SPT(w graph.Weights, root int) *graph.Tree {
	n := w.Len()
	t := graph.NewTree(n)
	if n <= 1 {
		return t
	}
	dist := make([]float64, n)
	from := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		from[i] = -1
	}
	dist[root] = 0
	h := &sptHeap{{node: root, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(sptItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if from[u] != -1 {
			t.AddEdge(from[u], u, w.At(from[u], u))
		}
		for v := 0; v < n; v++ {
			if !done[v] && v != u {
				if d := dist[u] + w.At(u, v); d < dist[v] {
					dist[v] = d
					from[v] = u
					heap.Push(h, sptItem{node: v, dist: d})
				}
			}
		}
	}
	return t
}

// SPTEdges returns the shortest path tree from root over an explicit edge
// list (not necessarily complete). Used by the BRBC baseline, which runs
// Dijkstra over the MST augmented with shortcut edges. Nodes unreachable
// from root are left unconnected.
func SPTEdges(n int, edges []graph.Edge, root int) *graph.Tree {
	adj := make([][]graph.Adj, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], graph.Adj{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], graph.Adj{To: e.U, W: e.W})
	}
	t := graph.NewTree(n)
	dist := make([]float64, n)
	from := make([]int, n)
	fromW := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		from[i] = -1
	}
	dist[root] = 0
	h := &sptHeap{{node: root, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(sptItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if from[u] != -1 {
			t.AddEdge(from[u], u, fromW[u])
		}
		for _, a := range adj[u] {
			if !done[a.To] {
				if d := dist[u] + a.W; d < dist[a.To] {
					dist[a.To] = d
					from[a.To] = u
					fromW[a.To] = a.W
					heap.Push(h, sptItem{node: a.To, dist: d})
				}
			}
		}
	}
	return t
}

// ConstrainedKruskal computes a minimal spanning tree over n nodes that
// includes every edge in include and avoids every edge whose key is in
// exclude. sorted must be the full candidate edge list in nondecreasing
// weight order. It reports false when no such spanning tree exists (the
// inclusions form a cycle, or the remaining edges cannot connect the
// graph).
func ConstrainedKruskal(n int, sorted []graph.Edge, include []graph.Edge, exclude map[graph.Key]bool) (*graph.Tree, bool) {
	t := graph.NewTree(n)
	if n <= 1 {
		return t, len(include) == 0
	}
	ds := graph.NewDisjointSet(n)
	for _, e := range include {
		if !ds.Union(e.U, e.V) {
			return nil, false // inclusion set contains a cycle
		}
		t.Edges = append(t.Edges, e)
	}
	if len(t.Edges) > n-1 {
		return nil, false
	}
	included := make(map[graph.Key]bool, len(include))
	for _, e := range include {
		included[e.Key()] = true
	}
	for _, e := range sorted {
		if len(t.Edges) == n-1 {
			break
		}
		k := e.Key()
		if exclude[k] || included[k] {
			continue
		}
		if ds.Union(e.U, e.V) {
			t.Edges = append(t.Edges, e)
		}
	}
	if len(t.Edges) != n-1 {
		return nil, false
	}
	return t, true
}
