package mst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
)

func randomPoints(rng *rand.Rand, n int, extent float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	return pts
}

func matrixFor(pts []geom.Point) *geom.DistMatrix {
	return geom.NewDistMatrix(pts, geom.Manhattan)
}

func TestKruskalSmallKnown(t *testing.T) {
	// collinear points 0,1,2 at x = 0, 1, 3: MST is the chain, cost 3.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 3, Y: 0}}
	tr := Kruskal(matrixFor(pts))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Cost() != 3 {
		t.Errorf("MST cost = %v, want 3", tr.Cost())
	}
	if !tr.HasEdge(0, 1) || !tr.HasEdge(1, 2) {
		t.Errorf("unexpected MST edges: %v", tr.Edges)
	}
}

func TestKruskalTrivialSizes(t *testing.T) {
	for n := 0; n <= 2; n++ {
		tr := Kruskal(matrixFor(randomPoints(rand.New(rand.NewSource(1)), n, 10)))
		if err := tr.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestKruskalEdgesDisconnected(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}}
	_, ok := KruskalEdges(3, edges)
	if ok {
		t.Error("disconnected edge set should report false")
	}
}

func TestKruskalFromMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range []geom.Metric{geom.Manhattan, geom.Euclidean} {
		for _, n := range []int{1, 2, 3, 40, 200} {
			pts := randomPoints(rng, n, 100)
			dm := geom.NewDistMatrix(pts, m)
			want := Kruskal(dm)

			// Fed the complete graph's lazy stream, KruskalFrom is Kruskal.
			got, ok := KruskalFrom(n, graph.NewEdgeStream(dm))
			if !ok {
				t.Fatalf("%v n=%d: complete stream reported disconnected", m, n)
			}
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("%v n=%d: %d edges, want %d", m, n, len(got.Edges), len(want.Edges))
			}
			for k := range want.Edges {
				if got.Edges[k] != want.Edges[k] {
					t.Fatalf("%v n=%d edge %d: got %v, want %v", m, n, k, got.Edges[k], want.Edges[k])
				}
			}

			// Fed the sparse octant neighbor stream, it still is: the
			// neighbor graph contains every MST edge (Yao / Guibas–Stolfi)
			// and a greedy scan over a superset of its own selection makes
			// identical decisions.
			ix := geom.NewIndex(pts, m)
			sp, ok := KruskalFrom(n, graph.NewSparseEdgeStream(ix, 0))
			if !ok {
				t.Fatalf("%v n=%d: sparse stream reported disconnected", m, n)
			}
			for k := range want.Edges {
				if sp.Edges[k] != want.Edges[k] {
					t.Fatalf("%v n=%d sparse edge %d: got %v, want %v", m, n, k, sp.Edges[k], want.Edges[k])
				}
			}
		}
	}
}

func TestKruskalFromDisconnected(t *testing.T) {
	seq := graph.NewEdgeStreamFrom([]graph.Edge{{U: 0, V: 1, W: 1}})
	if _, ok := KruskalFrom(3, seq); ok {
		t.Error("disconnected stream should report false")
	}
}

func TestPrimMatchesKruskalCost(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		dm := matrixFor(randomPoints(rng, n, 100))
		k := Kruskal(dm)
		p := Prim(dm, 0)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: Prim invalid: %v", trial, err)
		}
		if math.Abs(k.Cost()-p.Cost()) > 1e-9 {
			t.Errorf("trial %d: Kruskal %v vs Prim %v", trial, k.Cost(), p.Cost())
		}
	}
}

func TestSPTIsStarOnMetricPoints(t *testing.T) {
	// On a metric complete graph, triangle inequality makes every direct
	// edge a shortest path, so the SPT radius equals max direct distance.
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 30, 50)
	dm := matrixFor(pts)
	tr := SPT(dm, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	d := tr.PathLengthsFrom(0)
	for v := 1; v < dm.Len(); v++ {
		if math.Abs(d[v]-dm.At(0, v)) > 1e-9 {
			t.Errorf("SPT path to %d = %v, direct = %v", v, d[v], dm.At(0, v))
		}
	}
}

func TestSPTEdgesRestrictedGraph(t *testing.T) {
	// path graph 0-1-2 with a long shortcut 0-2: SPT must use the shortcut
	// only if shorter.
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 5}}
	tr := SPTEdges(3, edges, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	d := tr.PathLengthsFrom(0)
	if d[2] != 2 {
		t.Errorf("d[2] = %v, want 2", d[2])
	}
	// now make the shortcut attractive
	edges[2].W = 1.5
	tr = SPTEdges(3, edges, 0)
	d = tr.PathLengthsFrom(0)
	if d[2] != 1.5 {
		t.Errorf("d[2] = %v, want 1.5", d[2])
	}
}

func TestSPTEdgesUnreachable(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}}
	tr := SPTEdges(3, edges, 0)
	if tr.Connected() {
		t.Error("unreachable node should leave tree disconnected")
	}
}

func TestMaximalAtLeastMST(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		dm := matrixFor(randomPoints(rng, n, 100))
		mx := Maximal(dm)
		if err := mx.Validate(); err != nil {
			t.Fatal(err)
		}
		if mx.Cost() < Kruskal(dm).Cost()-1e-9 {
			t.Errorf("maximal ST cheaper than MST")
		}
	}
}

// Property: MST cost is minimal among a sample of random spanning trees,
// and the MST is a valid spanning tree.
func TestMSTMinimalityProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%12) + 3
		rng := rand.New(rand.NewSource(seed))
		dm := matrixFor(randomPoints(rng, n, 100))
		mstTree := Kruskal(dm)
		if mstTree.Validate() != nil {
			return false
		}
		c := mstTree.Cost()
		// random spanning trees via random attachment
		for trial := 0; trial < 30; trial++ {
			tr := graph.NewTree(n)
			for v := 1; v < n; v++ {
				u := rng.Intn(v)
				tr.AddEdge(u, v, dm.At(u, v))
			}
			if tr.Cost() < c-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: cut optimality — for every MST edge (u,v), removing it splits
// the tree in two components and (u,v) is a minimum-weight edge across
// that cut.
func TestMSTCutPropertyQuick(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%15) + 3
		rng := rand.New(rand.NewSource(seed))
		dm := matrixFor(randomPoints(rng, n, 100))
		tr := Kruskal(dm)
		for _, e := range tr.Edges {
			cut := tr.Clone()
			cut.RemoveEdge(e.U, e.V)
			side := cut.PathLengthsFrom(e.U)
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					aIn := !math.IsInf(side[a], 1)
					bIn := !math.IsInf(side[b], 1)
					if aIn && !bIn && dm.At(a, b) < e.W-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConstrainedKruskal(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	dm := matrixFor(pts)
	edges := graph.CompleteEdges(dm)
	graph.SortEdges(edges)

	// no constraints: same as MST
	tr, ok := ConstrainedKruskal(4, edges, nil, nil)
	if !ok || math.Abs(tr.Cost()-3) > 1e-9 {
		t.Fatalf("unconstrained cost = %v ok=%v", tr.Cost(), ok)
	}

	// force inclusion of the expensive edge (0,3)
	inc := []graph.Edge{{U: 0, V: 3, W: dm.At(0, 3)}}
	tr, ok = ConstrainedKruskal(4, edges, inc, nil)
	if !ok {
		t.Fatal("inclusion should be satisfiable")
	}
	if !tr.HasEdge(0, 3) {
		t.Error("included edge missing")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// exclude all edges incident to node 3 except (2,3): tree must use it
	ex := map[graph.Key]bool{graph.EdgeKey(0, 3): true, graph.EdgeKey(1, 3): true}
	tr, ok = ConstrainedKruskal(4, edges, nil, ex)
	if !ok || !tr.HasEdge(2, 3) {
		t.Fatalf("exclusion result wrong: ok=%v edges=%v", ok, tr.Edges)
	}

	// cyclic inclusion is infeasible
	incCycle := []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 2},
	}
	if _, ok := ConstrainedKruskal(4, edges, incCycle, nil); ok {
		t.Error("cyclic inclusion accepted")
	}

	// excluding every edge of node 3 is infeasible
	exAll := map[graph.Key]bool{
		graph.EdgeKey(0, 3): true, graph.EdgeKey(1, 3): true, graph.EdgeKey(2, 3): true,
	}
	if _, ok := ConstrainedKruskal(4, edges, nil, exAll); ok {
		t.Error("fully excluded node accepted")
	}
}

func TestConstrainedKruskalTrivial(t *testing.T) {
	if tr, ok := ConstrainedKruskal(1, nil, nil, nil); !ok || len(tr.Edges) != 0 {
		t.Error("single node should be trivially feasible")
	}
	if _, ok := ConstrainedKruskal(1, nil, []graph.Edge{{U: 0, V: 0, W: 0}}, nil); ok {
		t.Error("inclusion on single node should fail")
	}
}

func BenchmarkKruskal200(b *testing.B) {
	dm := matrixFor(randomPoints(rand.New(rand.NewSource(3)), 200, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kruskal(dm)
	}
}

func BenchmarkPrim200(b *testing.B) {
	dm := matrixFor(randomPoints(rand.New(rand.NewSource(3)), 200, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Prim(dm, 0)
	}
}
