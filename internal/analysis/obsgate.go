package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// obsPath is the import path of the observability layer.
const obsPath = "repro/internal/obs"

// recordingMethods are the obs instrument methods that record an
// observation (as opposed to lookups like Scope.Counter or reads like
// Counter.Load, which are free of the off-by-default contract).
var recordingMethods = map[string]map[string]bool{
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true},
	"Timer":     {"Observe": true, "Start": true},
	"Histogram": {"Observe": true},
}

// ObsGate verifies the "observation off by default" contract of the
// internal/obs layer: inside the algorithm packages, every call that
// records an observation — an instrument recording method, or a method
// of a counter-set struct that itself records — must be reachable only
// behind a nil gate, so that a construction with no registry installed
// pays one pointer test and nothing else. A call site is considered
// gated when it sits
//
//   - inside `if x != nil { ... }` (possibly conjoined with other
//     conditions) where x is an obs scope, instrument, or counter-set
//     pointer, or
//   - after an `if x == nil { return/continue/break }` early exit on
//     such an x in an enclosing block, or
//   - inside a method of a counter-set type recording through its own
//     receiver — there the gate is the caller's obligation, enforced
//     at the counter-set call site.
//
// Counter-set types are structs whose fields are all obs instrument
// pointers (core.Counters, steiner.Counters, baseline.Counters).
var ObsGate = &Analyzer{
	Name: "obsgate",
	Doc:  "verifies obs recording call sites are reachable only behind a nil-scope gate",
	AppliesTo: func(importPath string) bool {
		return strings.HasPrefix(importPath, "repro/internal/") &&
			importPath != obsPath && importPath != "repro/internal/analysis"
	},
	Run: runObsGate,
}

func runObsGate(p *Pass) {
	rec := newRecorderIndex(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			what, recvExpr := rec.recordingCall(p, call, sel)
			if what == "" {
				return true
			}
			if gated(p, f, call, recvExpr) {
				return true
			}
			p.Reportf(call.Pos(),
				"%s outside a nil gate: wrap in `if x != nil` on the scope/counter set so observation off stays one pointer test",
				what)
			return true
		})
	}
}

// recorderIndex knows which counter-set methods of the analyzed
// package record observations.
type recorderIndex struct {
	methods map[types.Object]bool // method object -> records through receiver
}

func newRecorderIndex(p *Pass) *recorderIndex {
	idx := &recorderIndex{methods: map[types.Object]bool{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvType := p.TypeOf(fd.Recv.List[0].Type)
			if !isCounterSet(recvType) {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			records := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if records {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection := p.Info.Selections[sel]
				if selection == nil || selection.Kind() != types.MethodVal {
					return true
				}
				if name, ok := instrumentType(selection.Recv()); ok && recordingMethods[name][sel.Sel.Name] {
					records = true
				}
				return true
			})
			idx.methods[obj] = records
		}
	}
	return idx
}

// recordingCall reports whether call records an observation. It
// returns a description for the diagnostic and the receiver expression
// (empty string means not a recording call).
func (idx *recorderIndex) recordingCall(p *Pass, call *ast.CallExpr, sel *ast.SelectorExpr) (string, ast.Expr) {
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", nil
	}
	recv := selection.Recv()
	if name, ok := instrumentType(recv); ok {
		if recordingMethods[name][sel.Sel.Name] {
			return "obs " + name + "." + sel.Sel.Name + " recording call", sel.X
		}
		return "", nil
	}
	if isCounterSet(recv) {
		obj := selection.Obj()
		records, known := idx.methods[obj]
		if known && !records {
			return "", nil // e.g. a read-only stats() accessor
		}
		// Unknown bodies (imported counter sets) are conservatively
		// treated as recording.
		return "counter-set method " + sel.Sel.Name + " (records observations)", sel.X
	}
	return "", nil
}

// instrumentType reports whether t is a pointer to one of the obs
// instrument types, returning the instrument name.
func instrumentType(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPath {
		return "", false
	}
	name := named.Obj().Name()
	if _, ok := recordingMethods[name]; !ok {
		return "", false
	}
	return name, true
}

// isObsScope reports whether t is *obs.Scope or *obs.Registry.
func isObsScope(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPath {
		return false
	}
	return named.Obj().Name() == "Scope" || named.Obj().Name() == "Registry"
}

// isCounterSet reports whether t is a pointer to a struct whose fields
// are all obs instrument pointers (at least one field).
func isCounterSet(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	st, ok := ptr.Elem().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := instrumentType(st.Field(i).Type()); !ok {
			return false
		}
	}
	return true
}

// gateType reports whether t can serve as a nil gate: an obs scope or
// registry, an instrument pointer, or a counter-set pointer.
func gateType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isObsScope(t) {
		return true
	}
	if _, ok := instrumentType(t); ok {
		return true
	}
	return isCounterSet(t)
}

// gated reports whether the recording call at callPos is behind a nil
// gate (see the ObsGate doc comment for the accepted shapes).
func gated(p *Pass, f *ast.File, call *ast.CallExpr, recvExpr ast.Expr) bool {
	path := enclosingPath(f, call.Pos())
	for i := len(path) - 1; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.IfStmt:
			inBody := n.Body.Pos() <= call.Pos() && call.Pos() < n.Body.End()
			if inBody && condNilChecks(p, n.Cond) {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range n.List {
				if st.End() >= call.Pos() {
					break
				}
				if ifSt, ok := st.(*ast.IfStmt); ok && earlyExitNilGuard(p, ifSt) {
					return true
				}
			}
		case *ast.FuncDecl:
			if counterSetMethodOnReceiver(p, n, recvExpr) {
				return true
			}
		}
	}
	return false
}

// condNilChecks reports whether cond (possibly an && chain) contains a
// conjunct `x != nil` with x of a gate type.
func condNilChecks(p *Pass, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return condNilChecks(p, e.X) || condNilChecks(p, e.Y)
		}
		if e.Op == token.NEQ {
			if isNilIdent(p, e.Y) && gateType(p.TypeOf(e.X)) {
				return true
			}
			if isNilIdent(p, e.X) && gateType(p.TypeOf(e.Y)) {
				return true
			}
		}
	}
	return false
}

// earlyExitNilGuard reports whether ifSt is `if x == nil { return ...
// }` (or continue/break) with x of a gate type.
func earlyExitNilGuard(p *Pass, ifSt *ast.IfStmt) bool {
	cond, ok := ast.Unparen(ifSt.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	var gate ast.Expr
	switch {
	case isNilIdent(p, cond.Y):
		gate = cond.X
	case isNilIdent(p, cond.X):
		gate = cond.Y
	default:
		return false
	}
	if !gateType(p.TypeOf(gate)) {
		return false
	}
	for _, st := range ifSt.Body.List {
		switch st.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
	}
	return false
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.ObjectOf(id).(*types.Nil)
	return isNil
}

// counterSetMethodOnReceiver reports whether fd is a method on a
// counter-set type and recvExpr is rooted at its receiver.
func counterSetMethodOnReceiver(p *Pass, fd *ast.FuncDecl, recvExpr ast.Expr) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	if !isCounterSet(p.TypeOf(fd.Recv.List[0].Type)) {
		return false
	}
	recvObj := p.Info.Defs[fd.Recv.List[0].Names[0]]
	if recvObj == nil || recvExpr == nil {
		return false
	}
	return rootObject(p, recvExpr) == recvObj
}

// enclosingPath returns the chain of nodes from f down to the
// innermost node containing pos.
func enclosingPath(f *ast.File, pos token.Pos) []ast.Node {
	var path []ast.Node
	n := ast.Node(f)
	for n != nil {
		path = append(path, n)
		var child ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n || child != nil {
				return c == n
			}
			if c.Pos() <= pos && pos < c.End() {
				child = c
			}
			return false
		})
		n = child
	}
	return path
}
