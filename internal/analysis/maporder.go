package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map whose body leaks the (randomized)
// iteration order into something order-sensitive:
//
//   - appending to a slice declared outside the loop, unless that
//     slice is sorted later in the same function — the append/sort
//     pair is the approved deterministic idiom;
//   - writing output (fmt print functions, Write/WriteString methods)
//     directly from the loop body;
//   - accumulating into a float variable declared outside the loop
//     (float addition is not associative, so even a "sum" depends on
//     iteration order).
//
// Constructions must be byte-for-byte deterministic for a fixed input:
// edge lists, tree outputs and table rows that pass through a map
// range without an intervening sort reproduce differently from run to
// run, which breaks the determinism tests and the cross-run float
// wirelength/radius comparisons the experiment harness relies on.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order reaches a slice, output, or float accumulator unsorted",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		// Collect function bodies so each range statement can be
		// checked against "later in the same function".
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRange(p, rs, enclosingFunc(funcs, rs.Pos()))
			return true
		})
	}
}

// enclosingFunc returns the innermost function node containing pos.
func enclosingFunc(funcs []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, fn := range funcs {
		if fn.Pos() <= pos && pos < fn.End() {
			if best == nil || fn.Pos() > best.Pos() {
				best = fn
			}
		}
	}
	return best
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func checkMapRange(p *Pass, rs *ast.RangeStmt, fn ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(p, rs, fn, n)
		case *ast.CallExpr:
			if name, ok := outputCall(p, n); ok {
				p.Reportf(n.Pos(),
					"map iteration order reaches output via %s: iterate sorted keys instead", name)
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, rs *ast.RangeStmt, fn ast.Node, as *ast.AssignStmt) {
	// s op= v accumulation into an outer float.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN ||
		as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		lhs := as.Lhs[0]
		if isFloat(p.TypeOf(lhs)) && declaredOutside(p, lhs, rs) {
			p.Reportf(as.TokPos,
				"float accumulation over map iteration is order-dependent: iterate sorted keys instead")
		}
		return
	}
	// s = append(s, ...) into an outer slice.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) {
			continue
		}
		if !declaredOutside(p, lhs, rs) {
			continue
		}
		if obj := rootObject(p, lhs); obj != nil && sortedAfter(p, fn, rs, obj) {
			continue
		}
		p.Reportf(as.Pos(),
			"append inside map iteration leaks map order into %s: sort it afterwards or iterate sorted keys",
			types.ExprString(lhs))
	}
}

// declaredOutside reports whether the variable behind e is declared
// outside the range statement (package vars and struct fields count).
func declaredOutside(p *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	obj := rootObject(p, e)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// rootObject resolves e to the object of its leftmost identifier:
// x -> x, x.f -> x, x[i] -> x.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.Info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// outputCall reports whether call writes to an output stream: fmt
// Print/Fprint/Sprint-family functions or a Write/WriteString/
// WriteByte/WriteRune method.
func outputCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return "", false
	}
	name := obj.Name()
	if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln",
			"Sprint", "Sprintf", "Sprintln", "Appendf", "Append", "Appendln":
			// Sprint into a discarded string is still order-dependent
			// when concatenated; flag the lot for simplicity.
			return "fmt." + name, true
		}
		return "", false
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return name, true
		}
	}
	return "", false
}

// sortedAfter reports whether obj appears as (part of) an argument to
// a sort/slices call after the range statement in the same function.
func sortedAfter(p *Pass, fn ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	body := funcBody(fn)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fnObj := p.Info.Uses[sel.Sel]
		if fnObj == nil || fnObj.Pkg() == nil {
			return true
		}
		if pkg := fnObj.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
