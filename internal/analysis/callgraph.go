package analysis

// callgraph.go builds the package-local call graph the function-level
// analyzers share. Nodes are the package's own function and method
// declarations keyed by their go/types objects; edges are direct calls
// resolved through the type checker (so shadowing and method sets are
// handled), restricted to callees declared in the same package. The
// graph is intraprocedural beyond one package on purpose: callees in
// other packages are opaque, and analyzers encode their assumptions
// about them explicitly (ctxpoll, for instance, assumes an imported
// callee that receives a context.Context polls it).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cgNode is one declared function or method of the package.
type cgNode struct {
	decl *ast.FuncDecl
	out  []types.Object // package-local callees, in call-site order
}

// callGraph maps each declared function object to its node and records
// every package-local call site for caller-side queries.
type callGraph struct {
	funcs map[types.Object]*cgNode
	// sites[callee] lists each call of callee from inside the package,
	// with the innermost enclosing function node (decl or literal).
	sites map[types.Object][]callSite
}

type callSite struct {
	call      *ast.CallExpr
	inFunc    ast.Node // *ast.FuncDecl or *ast.FuncLit
	inFuncObj types.Object
}

// pkgCallGraph returns the package's call graph, building and caching
// it on first use.
func pkgCallGraph(p *Pass) *callGraph {
	if p.pkg != nil && p.pkg.cg != nil {
		return p.pkg.cg
	}
	cg := &callGraph{
		funcs: map[types.Object]*cgNode{},
		sites: map[types.Object][]callSite{},
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			node := &cgNode{decl: fd}
			declObj := obj
			// Track the innermost enclosing function node while
			// walking, so call sites inside goroutine literals are
			// attributed to the literal, not the declaration.
			var walk func(n ast.Node, inFunc ast.Node)
			walk = func(n ast.Node, inFunc ast.Node) {
				ast.Inspect(n, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok && m != n {
						walk(lit.Body, lit)
						return false
					}
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeObject(p, call)
					if callee == nil || callee.Pkg() != p.Pkg {
						return true
					}
					node.out = append(node.out, callee)
					cg.sites[callee] = append(cg.sites[callee], callSite{
						call: call, inFunc: inFunc, inFuncObj: declObj,
					})
					return true
				})
			}
			walk(fd.Body, fd)
			cg.funcs[obj] = node
		}
	}
	if p.pkg != nil {
		p.pkg.cg = cg
	}
	return cg
}

// calleeObject resolves a call expression to the *types.Func it
// invokes, or nil for builtins, conversions and indirect calls.
func calleeObject(p *Pass, call *ast.CallExpr) types.Object {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fn]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fn.Sel]
	}
	if _, ok := obj.(*types.Func); !ok {
		return nil
	}
	return obj
}

// bodyReaches reports whether the AST subtree body contains — directly,
// or transitively through calls to functions declared in this package —
// a call for which pred returns true. This is the shared "does this
// loop reach a call to X" helper; recursion through the call graph is
// cut off by treating in-progress functions as not reaching.
func (cg *callGraph) bodyReaches(p *Pass, body ast.Node, pred func(*Pass, *ast.CallExpr) bool) bool {
	memo := map[types.Object]int{} // 1 = reaches, 2 = does not / visiting
	var funcReaches func(obj types.Object) bool
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pred(p, call) {
				found = true
				return false
			}
			if callee := calleeObject(p, call); callee != nil {
				if _, local := cg.funcs[callee]; local && funcReaches(callee) {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	funcReaches = func(obj types.Object) bool {
		if v, ok := memo[obj]; ok {
			return v == 1
		}
		memo[obj] = 2
		if scan(cg.funcs[obj].decl.Body) {
			memo[obj] = 1
			return true
		}
		return false
	}
	return scan(body)
}

// enclosingFuncNode returns the innermost function declaration or
// literal in file f that contains pos, or nil.
func enclosingFuncNode(f *ast.File, pos token.Pos) ast.Node {
	var best ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				best = n // innermost wins: Inspect visits outer first
			}
		}
		return true
	})
	return best
}
