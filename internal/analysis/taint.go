package analysis

// taint.go is the determinism-taint engine behind the detflow analyzer
// and the per-function taint summaries. A value is tainted when its
// bytes (or the order of its elements) can differ between two runs on
// the same input:
//
//   - a slice appended to, or a float/string accumulated into, under
//     `range` over a map — the iteration order is randomized;
//   - the winner of a select with two or more communication cases;
//   - wall-clock reads (time.Now/Since/Until) and random values
//     (math/rand, crypto/rand);
//   - formatted pointers/maps/channels/funcs (fmt.Sprintf("%v", ptr)
//     prints an address that changes across runs).
//
// Taint propagates flow-sensitively through the def-use chains of
// dataflow.go: assignments, append, arithmetic, composite literals,
// field/index reads of tainted values, and calls — module-internal
// calls through their fixed-point summaries, external calls by the
// conservative "any tainted argument taints the result" rule. A
// sort.* / slices.* call over a value is a clean redefinition: sorting
// is exactly the operation that turns a map-ordered sequence back into
// a deterministic one.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// taintInfo is the lattice element: clean (tainted=false) or tainted
// with a human-readable origin.
type taintInfo struct {
	tainted bool
	why     string
}

func (t taintInfo) or(u taintInfo) taintInfo {
	if t.tainted {
		return t
	}
	return u
}

var cleanInfo = taintInfo{}

// taintSummary is the module-level fact about one function.
type taintSummary struct {
	// introduces: the function can return a tainted value even when all
	// of its parameters are clean.
	introduces bool
	why        string
	// propagates: tainted parameters can reach the return values.
	propagates bool
}

// taintCtx evaluates taint inside one function body.
type taintCtx struct {
	p             *Pass
	m             *Module
	du            *defUse
	body          *ast.BlockStmt
	paramsTainted bool
	facts         map[*dfDef]taintInfo
	mapRanges     []*ast.RangeStmt
	multiSelects  []*ast.SelectStmt
}

// newTaintCtx builds the evaluation context and runs the per-def fixed
// point (def facts only grow clean→tainted, so iteration terminates).
func newTaintCtx(p *Pass, m *Module, du *defUse, body *ast.BlockStmt, paramsTainted bool) *taintCtx {
	tc := &taintCtx{
		p: p, m: m, du: du, body: body,
		paramsTainted: paramsTainted,
		facts:         map[*dfDef]taintInfo{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				u := t.Underlying()
				if ptr, ok := u.(*types.Pointer); ok {
					u = ptr.Elem().Underlying()
				}
				if _, ok := u.(*types.Map); ok {
					tc.mapRanges = append(tc.mapRanges, n)
				}
			}
		case *ast.SelectStmt:
			comms := 0
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				tc.multiSelects = append(tc.multiSelects, n)
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, d := range tc.du.defs {
			cur := tc.facts[d]
			if cur.tainted {
				continue
			}
			if nv := tc.defTaint(d); nv.tainted {
				tc.facts[d] = nv
				changed = true
			}
		}
	}
	return tc
}

func (tc *taintCtx) posString(pos token.Pos) string {
	p := tc.p.Fset.Position(pos)
	return p.Filename + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// defTaint derives the taint of one definition from its kind and
// defining expression.
func (tc *taintCtx) defTaint(d *dfDef) taintInfo {
	switch d.kind {
	case dfParam:
		if tc.paramsTainted {
			return taintInfo{true, "tainted parameter"}
		}
		return cleanInfo
	case dfSanitize:
		return cleanInfo
	case dfRangeKey, dfRangeVal:
		// Ranging over a tainted sequence yields tainted elements; map
		// keys/values themselves are deterministic values (only their
		// order is not, which the accumulation rule below captures).
		rs := d.node.(*ast.RangeStmt)
		return tc.taintExpr(rs.X, rs.X.Pos())
	}
	// dfAssign / dfWeak: the map-range accumulation rule first, then
	// plain RHS evaluation.
	if as, ok := d.node.(*ast.AssignStmt); ok {
		if rs := tc.enclosingMapRange(as.Pos()); rs != nil {
			if info, bad := tc.mapOrderAccumulation(as, rs); bad {
				return info
			}
		}
	}
	if d.rhs != nil {
		return tc.taintExpr(d.rhs, d.pos)
	}
	return cleanInfo
}

// enclosingMapRange returns the innermost map-range statement whose
// body contains pos, or nil.
func (tc *taintCtx) enclosingMapRange(pos token.Pos) *ast.RangeStmt {
	var best *ast.RangeStmt
	for _, rs := range tc.mapRanges {
		if rs.Body.Pos() <= pos && pos < rs.Body.End() {
			if best == nil || rs.Pos() > best.Pos() {
				best = rs
			}
		}
	}
	return best
}

// mapOrderAccumulation reports whether the assignment leaks map
// iteration order into an outer accumulator: s = append(s, ...) on a
// slice declared outside the range, or s op= v on a float/string.
func (tc *taintCtx) mapOrderAccumulation(as *ast.AssignStmt, rs *ast.RangeStmt) (taintInfo, bool) {
	why := "map iteration order at " + tc.posString(rs.Pos())
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		t := tc.p.TypeOf(lhs)
		if (isFloat(t) || isString(t)) && declaredOutside(tc.p, lhs, rs) {
			return taintInfo{true, why}, true
		}
		return cleanInfo, false
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(tc.p, call) {
			continue
		}
		if sameRoot(tc.p, lhs, call) && declaredOutside(tc.p, lhs, rs) {
			return taintInfo{true, why}, true
		}
	}
	return cleanInfo, false
}

// sameRoot reports whether the append call grows the value it is
// assigned back to (s = append(s, ...)).
func sameRoot(p *Pass, lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lo := rootObject(p, lhs)
	ro := rootObject(p, call.Args[0])
	return lo != nil && lo == ro
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// taintExpr evaluates the taint of an expression at a program point.
func (tc *taintCtx) taintExpr(e ast.Expr, at token.Pos) taintInfo {
	switch e := e.(type) {
	case nil:
		return cleanInfo
	case *ast.Ident:
		obj := tc.p.Info.ObjectOf(e)
		if obj == nil {
			return cleanInfo
		}
		var out taintInfo
		for _, d := range tc.du.reachingAt(obj, at) {
			out = out.or(tc.facts[d])
		}
		return out
	case *ast.ParenExpr:
		return tc.taintExpr(e.X, at)
	case *ast.SelectorExpr:
		return tc.taintExpr(e.X, at)
	case *ast.IndexExpr:
		return tc.taintExpr(e.X, at).or(tc.taintExpr(e.Index, at))
	case *ast.SliceExpr:
		return tc.taintExpr(e.X, at)
	case *ast.StarExpr:
		return tc.taintExpr(e.X, at)
	case *ast.TypeAssertExpr:
		return tc.taintExpr(e.X, at)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if sel := tc.enclosingMultiSelect(e.Pos()); sel != nil {
				return taintInfo{true, "select winner order at " + tc.posString(sel.Pos())}
			}
		}
		return tc.taintExpr(e.X, at)
	case *ast.BinaryExpr:
		return tc.taintExpr(e.X, at).or(tc.taintExpr(e.Y, at))
	case *ast.KeyValueExpr:
		return tc.taintExpr(e.Value, at)
	case *ast.CompositeLit:
		var out taintInfo
		for _, el := range e.Elts {
			out = out.or(tc.taintExpr(el, at))
		}
		return out
	case *ast.CallExpr:
		return tc.taintCall(e, at)
	}
	return cleanInfo
}

// enclosingMultiSelect returns the multi-case select whose comm clauses
// contain pos, or nil. Only the Comm statements count: a receive inside
// a case *body* is an ordinary receive.
func (tc *taintCtx) enclosingMultiSelect(pos token.Pos) *ast.SelectStmt {
	for _, sel := range tc.multiSelects {
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if cc.Comm.Pos() <= pos && pos < cc.Comm.End() {
				return sel
			}
		}
	}
	return nil
}

// taintCall evaluates a call expression: sources, sanitizers, module
// summaries, then the conservative external default.
func (tc *taintCtx) taintCall(call *ast.CallExpr, at token.Pos) taintInfo {
	p := tc.p
	// Builtins: append propagates its arguments; everything else
	// (len, cap, make, new, copy, delete, min, max) is clean.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				var out taintInfo
				for _, arg := range call.Args {
					out = out.or(tc.taintExpr(arg, at))
				}
				return out
			}
			return cleanInfo
		}
	}
	// Conversions: T(x) keeps x's taint.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return tc.taintExpr(call.Args[0], at)
		}
		return cleanInfo
	}

	if pkgPath, name := calleePkgFunc(p, call); pkgPath != "" {
		switch {
		case pkgPath == "sort" || pkgPath == "slices":
			return cleanInfo // ordering sink: result (and receiver) deterministic
		case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
			// The obs package IS the timing layer: its snapshots carry
			// wall-clock metadata (CapturedAt, durations) on purpose,
			// mirroring the wallclock analyzer's exemption. Clock reads
			// become taint only where they could leak into construction
			// outputs.
			if tc.p.Pkg != nil && tc.p.Pkg.Path() == "repro/internal/obs" {
				return cleanInfo
			}
			return taintInfo{true, "wall-clock read (time." + name + ") at " + tc.posString(call.Pos())}
		case pkgPath == "math/rand" || pkgPath == "math/rand/v2" || pkgPath == "crypto/rand":
			return taintInfo{true, "random value (" + pkgPath + "." + name + ") at " + tc.posString(call.Pos())}
		case pkgPath == "fmt" && strings.HasPrefix(name, "Sprint"),
			pkgPath == "fmt" && strings.HasPrefix(name, "Append"):
			for _, arg := range call.Args {
				if addressish(p.TypeOf(arg)) {
					return taintInfo{true, "formatted pointer value at " + tc.posString(call.Pos())}
				}
			}
		}
	}

	if fn := tc.m.resolve(p.pkg, call); fn != nil {
		sum := tc.m.taint[fn]
		var out taintInfo
		if sum != nil && sum.introduces {
			out = taintInfo{true, sum.why}
		}
		if sum == nil || sum.propagates {
			out = out.or(tc.argTaint(call, at))
		}
		return out
	}
	// External or indirect callee: any tainted input taints the result.
	return tc.argTaint(call, at)
}

// argTaint unions the taint of the call's arguments and method
// receiver.
func (tc *taintCtx) argTaint(call *ast.CallExpr, at token.Pos) taintInfo {
	var out taintInfo
	for _, arg := range call.Args {
		out = out.or(tc.taintExpr(arg, at))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		out = out.or(tc.taintExpr(sel.X, at))
	}
	return out
}

// calleePkgFunc resolves a call to (package path, name) for package-
// level functions, or ("", "") otherwise.
func calleePkgFunc(p *Pass, call *ast.CallExpr) (string, string) {
	obj := calleeAny(p, call)
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// addressish reports whether formatting a value of type t prints a
// run-varying address: pointers, maps, channels, funcs, unsafe
// pointers. Structs/slices of such are left alone — %v descends into
// elements, but the common offender is the direct pointer argument.
func addressish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// returnTaints evaluates every return statement of the function and
// reports the first tainted result with its position and origin.
func (tc *taintCtx) returnTaints(fn *modFunc) []taintedReturn {
	var out []taintedReturn
	resultObjs := namedResultObjects(tc.p, fn.decl)
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			// Bare return: named results carry the values.
			for _, obj := range resultObjs {
				var info taintInfo
				for _, d := range tc.du.reachingAt(obj, ret.Pos()) {
					info = info.or(tc.facts[d])
				}
				if info.tainted {
					out = append(out, taintedReturn{ret: ret, expr: nil, info: info})
					break
				}
			}
			return true
		}
		for _, res := range ret.Results {
			if info := tc.taintExpr(res, ret.Pos()); info.tainted {
				out = append(out, taintedReturn{ret: ret, expr: res, info: info})
				break
			}
		}
		return true
	})
	return out
}

type taintedReturn struct {
	ret  *ast.ReturnStmt
	expr ast.Expr // nil for bare returns
	info taintInfo
}

// namedResultObjects returns the objects of the function's named
// results, if any.
func namedResultObjects(p *Pass, fd *ast.FuncDecl) []types.Object {
	if fd.Type.Results == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fd.Type.Results.List {
		for _, name := range f.Names {
			if obj := p.Info.ObjectOf(name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// taintSummaries computes the module's per-function taint summaries by
// monotone fixed point (see the package comment in summary.go).
func (m *Module) taintSummaries() map[*modFunc]*taintSummary {
	if m.taint != nil {
		return m.taint
	}
	m.taint = map[*modFunc]*taintSummary{}
	for _, fn := range m.order {
		m.taint[fn] = &taintSummary{}
	}
	for round := 0; round < 32; round++ {
		changed := false
		for _, fn := range m.order {
			s := m.taint[fn]
			if !s.introduces {
				tc := newTaintCtx(fn.pass(), m, fn.defUse(), fn.decl.Body, false)
				if rets := tc.returnTaints(fn); len(rets) > 0 {
					s.introduces, s.why = true, rets[0].info.why
					changed = true
				}
			}
			if !s.propagates {
				tc := newTaintCtx(fn.pass(), m, fn.defUse(), fn.decl.Body, true)
				if rets := tc.returnTaints(fn); len(rets) > 0 {
					s.propagates = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return m.taint
}
