package analysis

// dataflow.go computes def-use chains (SSA-lite) for one function body
// on top of the cfg.go control-flow graph: a classic iterative
// reaching-definitions analysis over basic blocks, with per-variable
// gen/kill sets and union at joins. The result answers "which
// definitions of x can reach this use", which is what the taint engine
// (taint.go) needs to propagate nondeterminism flow-sensitively — in
// particular, a sort.* call over a slice acts as a *clean redefinition*
// that kills upstream order taint exactly on the paths that pass
// through it.
//
// Scope and known imprecision, by design:
//
//   - only function-scope variables (parameters, named results, locals,
//     range/select bindings) are tracked; package globals and fields of
//     non-local values are out of scope — the taint layer treats reads
//     of untracked objects as clean and writes to them as sinks to
//     check, not state to track;
//   - a write through a selector or index (x.f = v, x[i] = v) is a
//     *weak* definition of the root variable x: it generates a def but
//     kills nothing, since the rest of x survives;
//   - function literals are opaque, matching cfg.go: a FuncLit body
//     neither defines nor kills outer variables here.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// dfKind classifies one definition site.
type dfKind uint8

const (
	dfParam    dfKind = iota // parameter or named result (entry def)
	dfAssign                 // x = e, x := e, x op= e, x++/x--
	dfWeak                   // x.f = e, x[i] = e: weak update of x
	dfRangeKey               // k in `for k, v := range X`
	dfRangeVal               // v in `for k, v := range X`
	dfRecv                   // v := <-ch inside a select comm clause
	dfSanitize               // x passed to sort.*/slices.Sort*: clean redefinition
)

// dfDef is one definition of one variable.
type dfDef struct {
	index int
	obj   types.Object
	kind  dfKind
	node  ast.Node // defining node: AssignStmt, ValueSpec, RangeStmt, CallExpr (sanitize), Field (param)
	rhs   ast.Expr // defining expression when there is exactly one, else nil
	pos   token.Pos
	block *cfgBlock // block the def executes in; nil for entry defs
}

// defUse is the reaching-definitions result for one function body.
type defUse struct {
	cfg   *funcCFG
	defs  []*dfDef
	byObj map[types.Object][]*dfDef
	// in[b] holds the def bitset reaching block b's entry.
	in []bitset
	// rangeOf maps a RangeStmt to its head block, for order-taint scoping.
	body *ast.BlockStmt
}

// bitset is a dense def-index set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		if v := b[i] | src[i]; v != b[i] {
			b[i] = v
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

// buildDefUse runs reaching definitions over one function body. sig
// carries the parameter and named-result objects (entry definitions);
// it may be nil for function literals whose parameters the caller
// collects separately.
func buildDefUse(p *Pass, body *ast.BlockStmt, paramObjs []types.Object) *defUse {
	g := buildCFG(body)
	du := &defUse{cfg: g, byObj: map[types.Object][]*dfDef{}, body: body}

	addDef := func(obj types.Object, kind dfKind, node ast.Node, rhs ast.Expr, pos token.Pos, blk *cfgBlock) *dfDef {
		if obj == nil || !isFuncLocal(obj, body, paramObjs) {
			return nil
		}
		d := &dfDef{index: len(du.defs), obj: obj, kind: kind, node: node, rhs: rhs, pos: pos, block: blk}
		du.defs = append(du.defs, d)
		du.byObj[obj] = append(du.byObj[obj], d)
		return d
	}

	for _, obj := range paramObjs {
		addDef(obj, dfParam, nil, nil, token.NoPos, nil)
	}

	// Collect block-resident definitions in source order. Each block's
	// nodes were appended in execution order by the CFG builder, and
	// within one statement subtree Inspect visits in source order.
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			collectDefs(p, n, blk, addDef)
		}
	}
	// Range bindings live conceptually in the range head block (they are
	// (re)assigned once per iteration). The head holds the ranged
	// expression as its node; find the RangeStmt by walking the body.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		blk := g.blockOf(rs.X.Pos())
		if blk == nil {
			return true
		}
		if rs.Tok == token.DEFINE || rs.Tok == token.ASSIGN {
			if id, ok := rs.Key.(*ast.Ident); ok {
				addDef(p.Info.ObjectOf(id), dfRangeKey, rs, nil, rs.X.Pos(), blk)
			}
			if id, ok := rs.Value.(*ast.Ident); ok {
				addDef(p.Info.ObjectOf(id), dfRangeVal, rs, nil, rs.X.Pos(), blk)
			}
		}
		return true
	})

	du.solve()
	return du
}

// collectDefs finds the definitions inside one CFG node subtree,
// skipping nested function literals.
func collectDefs(p *Pass, n ast.Node, blk *cfgBlock, addDef func(types.Object, dfKind, ast.Node, ast.Expr, token.Pos, *cfgBlock) *dfDef) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				var rhs ast.Expr
				if len(m.Rhs) == len(m.Lhs) {
					rhs = m.Rhs[i]
				} else if len(m.Rhs) == 1 {
					rhs = m.Rhs[0] // multi-value call/comma-ok: shared RHS
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					addDef(p.Info.ObjectOf(l), dfAssign, m, rhs, m.Pos(), blk)
				default:
					if obj := rootObject(p, lhs); obj != nil {
						addDef(obj, dfWeak, m, rhs, m.Pos(), blk)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
				addDef(p.Info.ObjectOf(id), dfAssign, m, m.X, m.Pos(), blk)
			}
		case *ast.ValueSpec:
			for i, name := range m.Names {
				var rhs ast.Expr
				if i < len(m.Values) {
					rhs = m.Values[i]
				}
				addDef(p.Info.ObjectOf(name), dfAssign, m, rhs, m.Pos(), blk)
			}
		case *ast.CallExpr:
			// sort.X(s) / slices.SortX(s): clean redefinition of s.
			if isSortCall(p, m) {
				for _, arg := range m.Args {
					if obj := rootObject(p, arg); obj != nil {
						addDef(obj, dfSanitize, m, nil, m.Pos(), blk)
					}
				}
			}
		}
		return true
	})
}

// isSortCall reports whether call invokes the sort or slices package
// (the approved ordering sinks that make map-derived sequences
// deterministic again).
func isSortCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	pkg := obj.Pkg().Path()
	return pkg == "sort" || pkg == "slices"
}

// isFuncLocal reports whether obj is a variable scoped to this function
// body (or one of its parameters/results).
func isFuncLocal(obj types.Object, body *ast.BlockStmt, paramObjs []types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	if body.Pos() <= obj.Pos() && obj.Pos() < body.End() {
		return true
	}
	for _, po := range paramObjs {
		if po == obj {
			return true
		}
	}
	return false
}

// solve runs the iterative reaching-definitions fixed point.
func (du *defUse) solve() {
	nd := len(du.defs)
	nb := len(du.cfg.blocks)
	du.in = make([]bitset, nb)
	out := make([]bitset, nb)
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	for i := 0; i < nb; i++ {
		du.in[i] = newBitset(nd)
		out[i] = newBitset(nd)
		gen[i] = newBitset(nd)
		kill[i] = newBitset(nd)
	}

	// kill per block: a strong def (anything but a weak field/index
	// update) kills every other def of the same object. A sanitize def
	// kills too — it replaces the value with a sorted permutation, which
	// is the point of modeling it as a definition.
	for _, d := range du.defs {
		if d.block == nil {
			continue
		}
		if d.kind != dfWeak {
			for _, other := range du.byObj[d.obj] {
				if other != d {
					kill[d.block.index].set(other.index)
				}
			}
		}
	}
	// gen per block: the defs still live at block exit — the last strong
	// def of each object plus any weak defs after it.
	byBlock := make([][]*dfDef, nb)
	for _, d := range du.defs {
		if d.block != nil {
			byBlock[d.block.index] = append(byBlock[d.block.index], d)
		}
	}
	for bi, ds := range byBlock {
		// ds is in collection order == execution order within the block.
		live := map[types.Object][]*dfDef{}
		for _, d := range ds {
			if d.kind != dfWeak {
				live[d.obj] = live[d.obj][:0]
			}
			live[d.obj] = append(live[d.obj], d)
		}
		for _, ds := range live {
			for _, d := range ds {
				gen[bi].set(d.index)
			}
		}
	}

	// Entry defs (parameters) reach the entry block.
	entry := du.cfg.entry.index
	for _, d := range du.defs {
		if d.block == nil {
			du.in[entry].set(d.index)
		}
	}

	for changed := true; changed; {
		changed = false
		for bi := 0; bi < nb; bi++ {
			blk := du.cfg.blocks[bi]
			for _, p := range blk.preds {
				if du.in[bi].orInto(out[p.index]) {
					changed = true
				}
			}
			// out = gen ∪ (in − kill)
			for w := range out[bi] {
				nv := gen[bi][w] | (du.in[bi][w] &^ kill[bi][w])
				if nv != out[bi][w] {
					out[bi][w] = nv
					changed = true
				}
			}
		}
	}
}

// reachingAt returns the definitions of obj that can reach the program
// point at pos. Defs in the same block count when they precede pos;
// defs flowing in from predecessors count unless a strong same-block
// def before pos kills them.
func (du *defUse) reachingAt(obj types.Object, pos token.Pos) []*dfDef {
	defs := du.byObj[obj]
	if len(defs) == 0 {
		return nil
	}
	blk := du.cfg.blockOf(pos)
	if blk == nil {
		// Position outside any block (e.g. inside an opaque nested
		// literal): be conservative, all defs reach.
		return defs
	}
	reach := du.in[blk.index].clone()
	for _, d := range du.defs {
		if d.block != blk || d.pos >= pos {
			continue
		}
		if d.kind != dfWeak {
			for _, other := range du.byObj[d.obj] {
				if other != d {
					reach[other.index/64] &^= 1 << (other.index % 64)
				}
			}
		}
		reach.set(d.index)
	}
	var out []*dfDef
	for _, d := range defs {
		if reach.has(d.index) {
			out = append(out, d)
		}
	}
	return out
}

// paramObjects extracts the parameter, receiver and named-result
// objects of a function declaration or literal.
func paramObjects(p *Pass, fn ast.Node) []types.Object {
	var fields []*ast.Field
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		if fn.Recv != nil {
			fields = append(fields, fn.Recv.List...)
		}
		fields = append(fields, fn.Type.Params.List...)
		if fn.Type.Results != nil {
			fields = append(fields, fn.Type.Results.List...)
		}
	case *ast.FuncLit:
		fields = append(fields, fn.Type.Params.List...)
		if fn.Type.Results != nil {
			fields = append(fields, fn.Type.Results.List...)
		}
	}
	var out []types.Object
	for _, f := range fields {
		for _, name := range f.Names {
			if obj := p.Info.ObjectOf(name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}
