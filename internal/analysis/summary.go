package analysis

// summary.go grows the package-local view of callgraph.go into a
// module-wide call graph with per-function summaries. Each declared
// function in every loaded package becomes a modFunc node keyed by a
// stable string id (import path + receiver + name), so a call site in
// package A resolves to the source-checked declaration in package B
// even though go/types gives A an export-data view of B's objects.
//
// On top of the graph, the interprocedural analyzers compute summaries
// by monotone fixed point: every summary bit starts at its optimistic
// bottom value (no taint, no hungry loop, no allocation, no locks) and
// is re-derived from callee summaries until a full round changes
// nothing. Bits only ever move bottom→top, so the iteration reaches
// the least fixed point and terminates; recursion is handled by the
// same argument, no special casing. Calls that do not resolve inside
// the module (stdlib, interface dispatch, func values) get explicit
// conservative defaults documented per analyzer.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Module is a set of packages loaded together, with the interprocedural
// caches the module-wide analyzers share.
type Module struct {
	Pkgs []*Package

	funcs  map[string]*modFunc // by funcID
	byObj  map[types.Object]*modFunc
	order  []*modFunc // deterministic iteration order (package, file, position)
	taint  map[*modFunc]*taintSummary
	hungry map[*modFunc]*hungrySummary
	alloc  map[*modFunc]*allocSummary
	locks  *lockGraph

	// Value-flow layer caches (interval.go / intervalmod.go).
	ivals   map[*modFunc]*ivalSummary
	ivalAbs map[*modFunc]*funcAbs
	chanops map[*modFunc]*chanOpSummary
}

// modFunc is one declared function or method in the module.
type modFunc struct {
	id   string
	pkg  *Package
	decl *ast.FuncDecl
	obj  types.Object
	du   *defUse // lazily built def-use chains for the body
}

// pass returns a Pass-shaped view of the function's home package for
// the shared helpers (they only touch Fset/Info/Pkg).
func (fn *modFunc) pass() *Pass {
	return &Pass{Fset: fn.pkg.Fset, Files: fn.pkg.Files, Pkg: fn.pkg.Types, Info: fn.pkg.Info, pkg: fn.pkg}
}

func (fn *modFunc) defUse() *defUse {
	if fn.du == nil {
		p := fn.pass()
		fn.du = buildDefUse(p, fn.decl.Body, paramObjects(p, fn.decl))
	}
	return fn.du
}

// funcID builds the stable cross-package key for a function object:
// "path.Name" for functions, "path.(Recv).Name" for methods. The
// receiver is the named type's name with pointerness stripped, which
// matches between export data and source checking.
func funcID(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	path := obj.Pkg().Path()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "" // interface or weird receiver: not a module decl
		}
		return fmt.Sprintf("%s.(%s).%s", path, named.Obj().Name(), obj.Name())
	}
	return path + "." + obj.Name()
}

// newModule indexes the loaded packages into a module. Load callers get
// this through LoadModule; fixture tests build one implicitly via
// Pass.module().
func newModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:  pkgs,
		funcs: map[string]*modFunc{},
		byObj: map[types.Object]*modFunc{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				fn := &modFunc{id: funcID(obj), pkg: pkg, decl: fd, obj: obj}
				if fn.id == "" {
					continue
				}
				m.funcs[fn.id] = fn
				m.byObj[obj] = fn
				m.order = append(m.order, fn)
			}
		}
		pkg.mod = m
	}
	return m
}

// module returns the Module the pass's package belongs to, building a
// single-package module on the fly when the package was loaded outside
// LoadModule (fixture tests, direct Load callers).
func (p *Pass) module() *Module {
	if p.pkg == nil {
		return newModule(nil)
	}
	if p.pkg.mod == nil {
		newModule([]*Package{p.pkg})
	}
	return p.pkg.mod
}

// resolve maps a call expression in pkg to the module function it
// invokes, or nil when the callee is outside the module (stdlib,
// interface method, func value, builtin).
func (m *Module) resolve(pkg *Package, call *ast.CallExpr) *modFunc {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	if obj == nil {
		return nil
	}
	if fn := m.byObj[obj]; fn != nil {
		return fn // same-package call: direct object identity
	}
	id := funcID(obj)
	if id == "" {
		return nil
	}
	return m.funcs[id]
}

// callPassesCancel reports whether the call forwards a context.Context
// or *cancel.Checker to its callee (arguments or method receiver).
func callPassesCancel(p *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := p.TypeOf(arg); t != nil && (isContextType(t) || isCancelChecker(t)) {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := p.TypeOf(sel.X); t != nil && (isContextType(t) || isCancelChecker(t)) {
			return true
		}
	}
	return false
}

// forEachCall visits every call expression in the function body outside
// nested function literals, in source order.
func forEachCall(fn *modFunc, visit func(*ast.CallExpr)) {
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// exportedFromPkg reports whether the function is callable from outside
// its package (exported name, or method on an exported type... the
// conservative side is fine: treat any exported-name decl as an API
// surface).
func exportedFromPkg(fn *modFunc) bool {
	return ast.IsExported(fn.decl.Name.Name)
}

// chainString renders a call chain like "a -> b -> c" for diagnostics,
// trimming the import-path prefixes down to package basenames.
func chainString(ids []string) string {
	short := make([]string, len(ids))
	for i, id := range ids {
		if j := strings.LastIndex(id, "/"); j >= 0 {
			id = id[j+1:]
		}
		short[i] = id
	}
	return strings.Join(short, " -> ")
}
