package analysis

// chanleak is the static complement to waitpair/lockorder for the
// worker-pool idiom: a spawned goroutine whose only way to finish is a
// channel operation must have that operation provably paired in the
// spawner — a close or receive for its sends, a send or close for its
// receives — on every ordinary path from the spawn to the spawner's
// exit. Otherwise an early return between the spawn and the pairing op
// parks the goroutine forever (the sweep pool's `close(next)` after the
// feed loop is the canonical pairing).
//
// Definitions:
//
//   - A literal is *obligated* on channel ch when every ordinary
//     entry→exit path through its body passes a blocking op on ch
//     (send, receive, or range; close does not block). A select with a
//     default or a cancellation case is therefore never obligated — the
//     goroutine has a channel-free exit.
//   - Ordinary paths exclude the CFG's pessimistic panic edges: a
//     panicking worker kills the process, so unreached pairings on
//     panic paths are not leaks.
//   - Only channels created in the spawning function are checked; a
//     channel that escapes (param, field, aliased, passed to a call
//     outside the module) has invisible users and is exempt. Calls
//     that resolve inside the module count as pairing sites when the
//     callee's summary performs a pairing op on that parameter,
//     module-wide.
//   - Buffered channels stay obligated: a send blocks once the buffer
//     fills, and a receive blocks on an empty buffer regardless.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var chanLeakPackages = []string{
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
	"repro/internal/serve",
	"repro/internal/router",
}

// ChanLeak reports spawned goroutines that can only exit through a
// channel op with no pairing close/receive/send on every spawner path.
var ChanLeak = &Analyzer{
	Name: "chanleak",
	Doc:  "a goroutine that can only exit via channel ops needs a pairing close/receive reachable on every spawner path",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, chanLeakPackages...)
	},
	Run: runChanLeak,
}

// chanOpSummary records, per declared parameter position, whether a
// call to the function performs each channel-op kind on that parameter
// (directly, inside its literals, or transitively through module
// callees).
type chanOpSummary struct {
	sends, recvs, closes []bool
}

func runChanLeak(p *Pass) {
	m := p.module()
	sums := m.chanOpSummaries()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkChanBody(p, m, sums, fd.Body)
		}
	}
}

// checkChanBody checks every `go func(...){...}(...)` spawned directly
// in body, then recurses into nested literals (each is the spawner of
// its own go statements).
func checkChanBody(p *Pass, m *Module, sums map[*modFunc]*chanOpSummary, body *ast.BlockStmt) {
	var spawns []*ast.GoStmt
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if _, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				spawns = append(spawns, n)
			}
			return true
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		}
		return true
	})
	if len(spawns) > 0 {
		cfg := buildCFG(body)
		for _, g := range spawns {
			checkSpawn(p, m, sums, body, cfg, g)
		}
	}
	for _, lit := range lits {
		checkChanBody(p, m, sums, lit.Body)
	}
}

// chanOpKind is one channel operation occurrence.
type chanOpKind uint8

const (
	opSend chanOpKind = iota
	opRecv            // receive or range
	opClose
)

type chanOp struct {
	obj  types.Object
	kind chanOpKind
	node ast.Node
}

// chanOpsIn collects channel ops in the region, optionally descending
// into nested function literals.
func chanOpsIn(p *Pass, n ast.Node, intoLits bool) []chanOp {
	var out []chanOp
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return intoLits
		case *ast.SendStmt:
			if obj := identObj(p, m.Chan); obj != nil {
				out = append(out, chanOp{obj, opSend, m})
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				if obj := identObj(p, m.X); obj != nil {
					out = append(out, chanOp{obj, opRecv, m})
				}
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := identObj(p, m.X); obj != nil {
						out = append(out, chanOp{obj, opRecv, m.X})
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "close" && len(m.Args) == 1 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					if obj := identObj(p, m.Args[0]); obj != nil {
						out = append(out, chanOp{obj, opClose, m})
					}
				}
			}
		}
		return true
	})
	return out
}

// checkSpawn checks one go statement whose callee is a literal.
func checkSpawn(p *Pass, m *Module, sums map[*modFunc]*chanOpSummary, spawnerBody *ast.BlockStmt, spawnerCFG *funcCFG, g *ast.GoStmt) {
	lit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	// Blocking ops the goroutine itself performs (its nested literals
	// are their own goroutines/closures, not this one's exits).
	var byObj map[types.Object][]chanOp
	for _, op := range chanOpsIn(p, lit.Body, false) {
		if op.kind == opClose {
			continue // close never blocks: not an exit dependency
		}
		if byObj == nil {
			byObj = map[types.Object][]chanOp{}
		}
		byObj[op.obj] = append(byObj[op.obj], op)
	}
	if len(byObj) == 0 {
		return
	}
	litCFG := buildCFG(lit.Body)
	for obj, ops := range byObj {
		if !localChan(p, obj, spawnerBody) || chanEscapes(p, m, obj, spawnerBody) {
			continue
		}
		// Obligation: no ordinary entry→exit path avoids every op.
		opBlocks := map[*cfgBlock]bool{}
		for _, op := range ops {
			if blk := litCFG.blockOf(op.node.Pos()); blk != nil {
				opBlocks[blk] = true
			}
		}
		if len(opBlocks) == 0 {
			continue
		}
		if reachOrdinary(litCFG, litCFG.entry, litCFG.exit, func(b *cfgBlock) bool { return opBlocks[b] }) {
			continue // channel-free exit exists: not obligated
		}
		wantSend := false
		for _, op := range ops {
			if op.kind == opSend {
				wantSend = true
			}
		}
		// Pairing: every ordinary spawn→exit path in the spawner passes
		// an op that releases the goroutine.
		pairBlocks := pairingBlocks(p, m, sums, spawnerBody, spawnerCFG, obj, wantSend, lit)
		spawnBlk := spawnerCFG.blockOf(g.Pos())
		if spawnBlk == nil {
			continue
		}
		if reachOrdinary(spawnerCFG, spawnBlk, spawnerCFG.exit, func(b *cfgBlock) bool { return pairBlocks[b] }) {
			need := "receive or close"
			if !wantSend {
				need = "send or close"
			}
			p.Reportf(g.Pos(), "goroutine can only exit via ops on %s, but no pairing %s is reachable on every spawner path",
				obj.Name(), need)
		}
	}
}

// pairingBlocks collects the spawner blocks whose ops release the
// goroutine's blocking ops on obj: receives/ranges (and close, which
// ends a range) for its sends, sends/closes for its receives. Ops
// inside other literals do not count — another goroutine's op carries
// no ordering guarantee — except the checked literal itself, which is
// skipped entirely. Module-resolved calls passing obj count when the
// callee's summary pairs it.
func pairingBlocks(p *Pass, m *Module, sums map[*modFunc]*chanOpSummary, body *ast.BlockStmt, cfg *funcCFG, obj types.Object, wantSend bool, skip *ast.FuncLit) map[*cfgBlock]bool {
	out := map[*cfgBlock]bool{}
	mark := func(n ast.Node) {
		if blk := cfg.blockOf(n.Pos()); blk != nil {
			out[blk] = true
		}
	}
	pairs := func(kind chanOpKind) bool {
		if wantSend {
			return kind == opRecv || kind == opClose
		}
		return kind == opSend || kind == opClose
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == skip {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if identObj(p, n.Chan) == obj && pairs(opSend) {
				mark(n)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && identObj(p, n.X) == obj && pairs(opRecv) {
				mark(n)
			}
		case *ast.RangeStmt:
			if identObj(p, n.X) == obj && pairs(opRecv) {
				mark(n.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					if identObj(p, n.Args[0]) == obj && pairs(opClose) {
						mark(n)
					}
					return true
				}
			}
			// Module callee given the channel: consult its summary.
			if callee := m.resolve(p.pkg, n); callee != nil {
				if sum := sums[callee]; sum != nil {
					for i, arg := range n.Args {
						if identObj(p, arg) != obj || i >= len(sum.sends) {
							continue
						}
						if (pairs(opRecv) && sum.recvs[i]) ||
							(pairs(opSend) && sum.sends[i]) ||
							(pairs(opClose) && sum.closes[i]) {
							mark(n)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// localChan reports whether obj is a channel-typed variable declared in
// the spawning function (not a parameter, field, or global).
func localChan(p *Pass, obj types.Object, body *ast.BlockStmt) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return false
	}
	return v.Pos() >= body.Pos() && v.Pos() < body.End()
}

// chanEscapes reports whether the channel has users the analysis cannot
// see: aliased to another variable, stored into a structure, returned,
// sent somewhere, or passed to a call that does not resolve in the
// module.
func chanEscapes(p *Pass, m *Module, obj types.Object, body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if identObj(p, rhs) != obj {
					continue
				}
				// The defining `ch := make(...)` has the object on the
				// left, never the right; any rhs use aliases it.
				_ = i
				escapes = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if identObj(p, e) == obj {
					escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if identObj(p, r) == obj {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if identObj(p, n.Value) == obj {
				escapes = true
			}
		case *ast.CallExpr:
			id, isIdent := ast.Unparen(n.Fun).(*ast.Ident)
			if isIdent {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true // close/len/cap are fine
				}
			}
			for _, arg := range n.Args {
				if identObj(p, arg) == obj && m.resolve(p.pkg, n) == nil {
					escapes = true
				}
			}
		}
		return true
	})
	return escapes
}

// reachOrdinary is canReach restricted to ordinary control flow: the
// pessimistic panic edges into the defer chain (any non-return,
// non-defer block → a defer block) are skipped, because a panicking
// goroutine terminates the process and cannot leak.
func reachOrdinary(g *funcCFG, from, to *cfgBlock, avoid func(*cfgBlock) bool) bool {
	if avoid(from) {
		return false
	}
	seen := make([]bool, len(g.blocks))
	stack := []*cfgBlock{from}
	seen[from.index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == to {
			return true
		}
		for _, s := range blk.succs {
			if s.kind == "defer" && blk.kind != "return" && blk.kind != "defer" {
				continue // panic edge
			}
			if seen[s.index] || avoid(s) {
				continue
			}
			seen[s.index] = true
			stack = append(stack, s)
		}
	}
	return false
}

// chanOpSummaries computes the module-wide channel-op summaries by
// monotone fixed point: bits only move false→true, so iteration to a
// full quiet round reaches the least fixed point.
func (m *Module) chanOpSummaries() map[*modFunc]*chanOpSummary {
	if m.chanops != nil {
		return m.chanops
	}
	m.chanops = make(map[*modFunc]*chanOpSummary, len(m.order))
	for _, fn := range m.order {
		np := len(declParams(fn))
		m.chanops[fn] = &chanOpSummary{
			sends:  make([]bool, np),
			recvs:  make([]bool, np),
			closes: make([]bool, np),
		}
	}
	// Direct ops on parameters, literals included: ops a call sets in
	// motion count for pairing even when a nested literal performs them.
	for _, fn := range m.order {
		sum := m.chanops[fn]
		params := declParams(fn)
		idx := map[types.Object]int{}
		for i, obj := range params {
			if obj != nil {
				idx[obj] = i
			}
		}
		for _, op := range chanOpsIn(fn.pass(), fn.decl.Body, true) {
			i, ok := idx[op.obj]
			if !ok {
				continue
			}
			switch op.kind {
			case opSend:
				sum.sends[i] = true
			case opRecv:
				sum.recvs[i] = true
			case opClose:
				sum.closes[i] = true
			}
		}
	}
	// Transitive: params forwarded to module callees.
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			sum := m.chanops[fn]
			params := declParams(fn)
			idx := map[types.Object]int{}
			for i, obj := range params {
				if obj != nil {
					idx[obj] = i
				}
			}
			p := fn.pass()
			forEachCall(fn, func(call *ast.CallExpr) {
				callee := m.resolve(fn.pkg, call)
				if callee == nil {
					return
				}
				csum := m.chanops[callee]
				for ai, arg := range call.Args {
					pi, ok := idx[identObjOf(p, arg)]
					if !ok || ai >= len(csum.sends) {
						continue
					}
					if csum.sends[ai] && !sum.sends[pi] {
						sum.sends[pi], changed = true, true
					}
					if csum.recvs[ai] && !sum.recvs[pi] {
						sum.recvs[pi], changed = true, true
					}
					if csum.closes[ai] && !sum.closes[pi] {
						sum.closes[pi], changed = true, true
					}
				}
			})
		}
	}
	return m.chanops
}

func identObjOf(p *Pass, e ast.Expr) types.Object { return identObj(p, e) }
