package analysis

// intwidth makes the 64-bit assumption behind the size computations
// explicit and checked. The hot packages size buffers with expressions
// like n*n and n*(n-1)/2; at the n ≥ 10⁵ scale those exceed int32, so
// they are only safe because `int` is 64 bits wide on every supported
// platform. The analyzer enforces three things:
//
//  1. Every allowlisted package carries the compile-time width pin
//
//     // int must be 64-bit: ... (any doc comment)
//     const _ uint = 1 << 62
//
//     which fails to compile on a 32-bit-int platform, turning the
//     silent assumption into a build error. A package without the pin
//     is a finding.
//
//  2. Arithmetic carried out in an explicit sub-64-bit integer type
//     (int32 and narrower) must have a result provably within that
//     type — products and shifts of unbounded 32-bit values are
//     findings even though the same expression in `int` is fine.
//
//  3. A narrowing conversion (int → int32 etc.) must have an operand
//     interval provably within the target's range; unbounded knob
//     values need a clamp before the conversion.
//
// go/types checks this module with the host's 64-bit sizes, so the
// interval engine's constant arithmetic is 64-bit too; the pin is what
// makes that assumption true everywhere else.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

var intWidthPackages = []string{
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
}

// IntWidth reports size computations that are not provably done in 64
// bits: missing width pins, sub-64-bit arithmetic that can overflow,
// and unguarded narrowing conversions.
var IntWidth = &Analyzer{
	Name: "intwidth",
	Doc:  "size computations must be provably 64-bit: width pin present, no overflowing 32-bit arithmetic or unguarded narrowing",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, intWidthPackages...)
	},
	Run: runIntWidth,
}

func runIntWidth(p *Pass) {
	if len(p.Files) == 0 {
		return
	}
	if !hasWidthPin(p) {
		p.Reportf(p.Files[0].Package,
			"package lacks the 64-bit width pin `const _ uint = 1 << 62`; size computations like n*n assume it")
	}
	forEachFuncAbs(p, func(fa *funcAbs, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BinaryExpr:
				checkNarrowArith(p, fa, n)
			case *ast.CallExpr:
				checkNarrowConv(p, fa, n)
			}
			return true
		})
	})
}

// hasWidthPin reports whether any file of the package declares the
// blank uint constant 1<<62.
func hasWidthPin(p *Pass) bool {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "_" {
					continue
				}
				if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "uint" {
					continue
				}
				if len(vs.Values) != 1 {
					continue
				}
				tv, ok := p.Info.Types[vs.Values[0]]
				if !ok || tv.Value == nil {
					continue
				}
				if v, exact := constant.Uint64Val(constant.ToInt(tv.Value)); exact && v == 1<<62 {
					return true
				}
			}
		}
	}
	return false
}

// narrowRange returns the value range of a sub-64-bit integer type, or
// ok=false for 64-bit and non-integer types.
func narrowRange(t types.Type) (lo, hi int64, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return 0, 0, false
	}
	switch b.Kind() {
	case types.Int8:
		return math.MinInt8, math.MaxInt8, true
	case types.Int16:
		return math.MinInt16, math.MaxInt16, true
	case types.Int32:
		return math.MinInt32, math.MaxInt32, true
	case types.Uint8:
		return 0, math.MaxUint8, true
	case types.Uint16:
		return 0, math.MaxUint16, true
	case types.Uint32:
		return 0, math.MaxUint32, true
	}
	return 0, 0, false
}

// fitsRange reports whether the interval is provably within [lo, hi].
func fitsRange(env *absEnv, v ival, lo, hi int64) bool {
	return leqBound(env, constBound(lo), v.lo, 2) && leqBound(env, v.hi, constBound(hi), 2)
}

// checkNarrowArith reports *, <<, + carried out in a sub-64-bit type
// whose mathematical result is not provably representable there.
func checkNarrowArith(p *Pass, fa *funcAbs, e *ast.BinaryExpr) {
	switch e.Op {
	case token.MUL, token.SHL, token.ADD:
	default:
		return
	}
	t := p.TypeOf(e)
	lo, hi, ok := narrowRange(t)
	if !ok {
		return
	}
	if tv, isConst := p.Info.Types[e]; isConst && tv.Value != nil {
		return // constant expressions are checked by the compiler
	}
	env := fa.envAt(e.Pos())
	vx, _ := fa.evalIval(env, e.X)
	vy, _ := fa.evalIval(env, e.Y)
	var r ival
	switch e.Op {
	case token.MUL:
		r = mulIval(vx, vy)
	case token.ADD:
		r = addIval(vx, vy)
	case token.SHL:
		if c, cok := constOf(vy); cok && c >= 0 && c < 62 {
			r = mulIval(vx, constIval(int64(1)<<uint(c)))
		} else {
			r = topIval
		}
	}
	if fitsRange(env, r, lo, hi) {
		return
	}
	p.Reportf(e.Pos(), "%s-typed %s is not provably within the type's range; do the arithmetic in int (64-bit, see the width pin) and convert after a clamp",
		t.String(), opName(e.Op))
}

func opName(op token.Token) string {
	switch op {
	case token.MUL:
		return "product"
	case token.ADD:
		return "sum"
	case token.SHL:
		return "shift"
	}
	return op.String()
}

// checkNarrowConv reports T(x) where T is sub-64-bit and x's interval
// is not provably within T's range.
func checkNarrowConv(p *Pass, fa *funcAbs, call *ast.CallExpr) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	lo, hi, ok := narrowRange(tv.Type)
	if !ok {
		return
	}
	arg := call.Args[0]
	at := p.TypeOf(arg)
	if at == nil || !isIntType(at) {
		return
	}
	if alo, ahi, narrow := narrowRange(at); narrow && alo >= lo && ahi <= hi {
		return // widening or same-width: always fits
	}
	if atv, isConst := p.Info.Types[arg]; isConst && atv.Value != nil {
		return // constant conversions are compiler-checked
	}
	env := fa.envAt(call.Pos())
	v, _ := fa.evalIval(env, arg)
	if fitsRange(env, v, lo, hi) {
		return
	}
	p.Reportf(call.Pos(), "narrowing conversion %s(%s): operand is not provably within [%d, %d]; clamp before converting",
		tv.Type.String(), types.ExprString(arg), lo, hi)
}
