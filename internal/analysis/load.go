package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	cg  *callGraph // lazily built package-local call graph
	mod *Module    // module this package was loaded into, when LoadModule was used
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Error      *struct{ Err string }
}

// LoadError is a package that could not be listed, parsed, or
// type-checked. Drivers use it to name the failing package and exit
// distinctly from "findings present".
type LoadError struct {
	ImportPath string // import path, or the pattern when listing failed
	Err        error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("loading %s: %v", e.ImportPath, e.Err)
}

func (e *LoadError) Unwrap() error { return e.Err }

// goList runs `go list` in dir with the given arguments and decodes
// the JSON package stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup builds an export-data lookup covering the patterns and
// all of their dependencies, for use with the gc importer. A dependency
// that fails to build or comes back without export data is a hard,
// typed error naming the package: silently dropping it would shrink the
// interprocedural call graph — calls into the missing package would
// stop resolving and the module-wide analyzers (ctxflow, allocloop,
// lockorder, detflow summaries) would go quietly blind there.
func exportLookup(dir string, patterns []string) (func(path string) (io.ReadCloser, error), error) {
	args := append([]string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Export,Error"}, patterns...)
	entries, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.ImportPath == "unsafe" {
			continue // compiler intrinsic: never has export data
		}
		if e.Error != nil {
			return nil, &LoadError{ImportPath: e.ImportPath, Err: fmt.Errorf("%s", e.Error.Err)}
		}
		if e.Export == "" {
			return nil, &LoadError{
				ImportPath: e.ImportPath,
				Err:        fmt.Errorf("missing export data (partial module load would silently shrink the interprocedural call graph)"),
			}
		}
		exports[e.ImportPath] = e.Export
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}, nil
}

// Load lists the packages matching the patterns (relative to dir; an
// empty dir means the current directory), parses their non-test Go
// files and type-checks them against the toolchain's export data.
// Test files are deliberately excluded: determinism tests compare
// exact floats and time test execution on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -e keeps go list from dying with an unstructured message on a
	// broken package: the entry comes back with Error set instead, so
	// the failure can be attributed to its import path.
	targets, err := goList(dir, append([]string{"list", "-e",
		"-json=ImportPath,Dir,GoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	lookup, err := exportLookup(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			name := t.ImportPath
			if name == "" {
				name = t.Dir
			}
			return nil, &LoadError{ImportPath: name, Err: fmt.Errorf("%s", t.Error.Err)}
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		names := append([]string(nil), t.GoFiles...)
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, relToCwd(path), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, &LoadError{ImportPath: t.ImportPath, Err: fmt.Errorf("parsing: %v", err)}
			}
			files = append(files, f)
		}
		pkg, info, err := typeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, &LoadError{ImportPath: t.ImportPath, Err: fmt.Errorf("type-checking: %v", err)}
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// LoadModule loads the packages matching the patterns as one module:
// the packages share a file set and are indexed into a module-wide call
// graph, so the interprocedural analyzers resolve calls across package
// boundaries to source-checked declarations instead of stopping at
// export data. Partial loads are refused with a typed *LoadError naming
// the broken package.
func LoadModule(dir string, patterns ...string) (*Module, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return newModule(pkgs), nil
}

// typeCheck runs go/types over one package's parsed files.
func typeCheck(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// relToCwd shortens path relative to the working directory when
// possible, so diagnostics print repo-relative positions.
func relToCwd(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
