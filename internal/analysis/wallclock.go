package analysis

import (
	"go/ast"
)

// wallClockPackages are the deterministic construction packages: for a
// fixed input they must produce identical trees and identical metric
// numbers on every run, so nothing in them may depend on when or how
// fast they execute.
var wallClockPackages = []string{
	"repro/internal/core",
	"repro/internal/mst",
	"repro/internal/steiner",
	"repro/internal/baseline",
	"repro/internal/exchange",
	"repro/internal/exact",
	"repro/internal/delay",
	"repro/internal/engine",
	"repro/internal/cancel",
}

// WallClock forbids direct wall-clock reads (time.Now, time.Since,
// time.Until) inside the deterministic construction packages. Timing
// those layers is the job of internal/obs timers, which the binaries
// install from outside the hot path; a clock read inside a
// construction is either dead weight on the hot path or — worse — a
// value that can leak into an output and break run-to-run
// reproducibility.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Until in deterministic construction packages (use internal/obs timers)",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, wallClockPackages...)
	},
	Run: runWallClock,
}

func runWallClock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Now", "Since", "Until"} {
				if isPkgFunc(p, call.Fun, "time", name) {
					p.Reportf(call.Pos(),
						"time.%s in a deterministic construction package: route timing through an internal/obs Timer",
						name)
				}
			}
			return true
		})
	}
}
