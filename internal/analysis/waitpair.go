package analysis

// waitpair enforces the WaitGroup discipline of the parallel kernels:
// every goroutine launch pairs a wg.Add before the spawn with a
// deferred wg.Done that runs on every exit path of the goroutine body,
// panics included. Missing either half deadlocks the fan-in barrier —
// the failure mode is a hang under -race in CI, or worse, a sweep that
// never returns in production.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// waitPairPackages host goroutine fan-out coordinated by WaitGroups.
var waitPairPackages = []string{
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
	"repro/internal/router",
	"repro/internal/serve",
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
}

// WaitPair checks each `go` launch of a function literal:
//
//   - the body must call Done on a sync.WaitGroup (goroutines
//     coordinated some other way need a //lint:ignore with the reason);
//   - at least one Done must be deferred from a block that dominates
//     the body's exit, so a panic mid-body still releases the barrier
//     (a trailing non-deferred Done is reported);
//   - an Add on the same WaitGroup must dominate the go statement in
//     the spawning function — Add after spawn races the Wait.
//
// One diagnostic per go statement, at the spawn site. Goroutines that
// call a named function instead of a literal are not checked (the
// pairing lives in another function's body).
var WaitPair = &Analyzer{
	Name: "waitpair",
	Doc:  "go launches must pair a dominating wg.Add with a deferred wg.Done on every goroutine exit path",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, waitPairPackages...)
	},
	Run: runWaitPair,
}

func runWaitPair(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoStmt(p, f, gs, lit)
			return true
		})
	}
}

func checkGoStmt(p *Pass, f *ast.File, gs *ast.GoStmt, lit *ast.FuncLit) {
	dones := waitGroupCalls(p, lit.Body, "Done")
	if len(dones) == 0 {
		p.Reportf(gs.Pos(),
			"goroutine body never calls wg.Done: the spawner's Wait will hang (channel-coordinated goroutines need a //lint:ignore waitpair with a reason)")
		return
	}

	// Panic safety: some Done on the (first) WaitGroup must be
	// registered by a defer whose block dominates the body's exit.
	wgObj := dones[0].obj
	g := buildCFG(lit.Body)
	idom := g.dominators()
	safe := false
	for _, d := range dones {
		if d.obj != wgObj || !d.deferred {
			continue
		}
		if blk := g.blockOf(d.pos); blk != nil && idom[blk.index] != nil &&
			dominates(idom, blk, g.exit) {
			safe = true
			break
		}
	}
	if !safe {
		p.Reportf(gs.Pos(),
			"wg.Done is not unconditionally deferred in the goroutine body: a panic (or an early return path) leaks the WaitGroup and hangs Wait")
		return
	}

	// Pairing: an Add on the same WaitGroup must dominate the spawn in
	// the enclosing function.
	fn := enclosingFuncNode(f, gs.Pos())
	body := funcBody(fn)
	if body == nil {
		return
	}
	outer := buildCFG(body)
	outerIdom := outer.dominators()
	goBlk := outer.blockOf(gs.Pos())
	if goBlk == nil || outerIdom[goBlk.index] == nil {
		return
	}
	for _, a := range waitGroupCalls(p, body, "Add") {
		if a.obj != wgObj {
			continue
		}
		blk := outer.blockOf(a.pos)
		if blk == nil {
			continue
		}
		if blk == goBlk && a.pos < gs.Pos() {
			return // same block, Add textually first
		}
		if blk != goBlk && dominates(outerIdom, blk, goBlk) {
			return
		}
	}
	p.Reportf(gs.Pos(),
		"no wg.Add dominating this go statement: Add must happen-before the spawn or Wait can return early")
}

// wgCall is one WaitGroup method call site.
type wgCall struct {
	obj      types.Object // the WaitGroup variable's object
	pos      token.Pos
	deferred bool
}

// waitGroupCalls finds calls of the named method (Done or Add) on
// sync.WaitGroup values inside body, ignoring nested function literals
// other than body's own statements.
func waitGroupCalls(p *Pass, body *ast.BlockStmt, method string) []wgCall {
	var out []wgCall
	// A deferred call is anchored at the DeferStmt keyword, not the
	// call: the CFG's defer-chain blocks reuse the call node, so the
	// call position would resolve to the chain (which sits on every
	// exit path by construction) instead of the registering block.
	record := func(call *ast.CallExpr, pos token.Pos, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return
		}
		if !isWaitGroup(p.TypeOf(sel.X)) {
			return
		}
		if obj := rootObject(p, sel.X); obj != nil {
			out = append(out, wgCall{obj: obj, pos: pos, deferred: deferred})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.DeferStmt:
			record(n.Call, n.Pos(), true)
			return false
		case *ast.CallExpr:
			record(n, n.Pos(), false)
		}
		return true
	})
	return out
}

// isWaitGroup reports whether t is sync.WaitGroup or a pointer to it.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
