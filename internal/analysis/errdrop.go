package analysis

// errdrop flags call statements that silently discard an error result.
// The construction pipeline communicates failure (invalid instance,
// cancelled context, infeasible bound) exclusively through error
// returns; a dropped error turns those into silent wrong answers.

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop reports expression statements whose call returns an error
// (alone or as the last element of a tuple) that the caller ignores.
// Assigning to the blank identifier is allowed — `_ = f()` states the
// intent. Exempt by design:
//
//   - fmt's Print/Fprint family (their errors are terminal-I/O noise);
//   - methods on strings.Builder and bytes.Buffer (documented to never
//     return a non-nil error);
//   - deferred calls and `go` statements: deferred cleanup is
//     best-effort by convention, and a goroutine's error must travel
//     through a channel anyway, which this analyzer cannot see.
//
// Test files are never loaded by the framework, so the check applies
// to production code only.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "call results carrying an error must be handled or explicitly discarded with _ =",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || errDropExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(),
				"result of %s carries an error that is dropped: handle it or discard explicitly with _ =", callName(call))
			return true
		})
	}
}

// returnsError reports whether the call's result type is error, or a
// tuple whose last element is error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return types.Identical(t, errorType)
}

var errorType = types.Universe.Lookup("error").Type()

// errDropExempt covers the calls whose error is dropped by universal
// convention.
func errDropExempt(p *Pass, call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[fn]
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
			printishName(obj.Name())
	case *ast.SelectorExpr:
		obj := p.Info.Uses[fn.Sel]
		if obj == nil {
			return false
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && printishName(obj.Name()) {
			return true
		}
		return neverFailsReceiver(p.TypeOf(fn.X))
	}
	return false
}

// printishName matches fmt's Print-family function names.
func printishName(name string) bool {
	return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
}

// neverFailsReceiver reports whether t is a type whose methods are
// documented to always return a nil error.
func neverFailsReceiver(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// callName renders the called function for the diagnostic message.
func callName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "call"
}
