package analysis

// interval.go is the SSA-lite value-flow layer: a symbolic interval
// abstract domain interpreted flow-sensitively over the cfg.go graphs,
// with the reaching-defs machinery of dataflow.go supplying variable
// versioning. It is the third rung of the framework (function-local
// syntax -> module summaries -> value flow) and the proof engine behind
// indexbound, nilflow and intwidth.
//
// The domain. Each integer-typed local variable carries an interval
// whose bounds are symbolic:
//
//	bound ::= c | len(K) + c | var(v) + c
//
// where K is a canonical slice path (a local variable, or a short
// selector chain rooted at one, e.g. "e.p") and v is another local.
// len-relative bounds are the load-bearing form: the partition idiom
// `for i := g; i < len(mu); i += w { mu[i] }` proves because the loop
// head's dominating guard refines i's upper bound to len(mu)-1 on the
// body edge. var-relative bounds never prove an obligation by
// themselves; they record that a guard exists, which indexbound uses to
// separate "guarded by a data invariant" from "not guarded at all".
//
// Alongside variable intervals the state tracks:
//
//   - length facts: an interval on len(K) itself, seeded by make(_, n)
//     (len is exactly n's interval), slice expressions (hi-lo), literals
//     and appends, and refined by guards like `if len(s) > 0`;
//   - nil facts: a three-point nil lattice per pointer/map/chan/func
//     local, refined by `x == nil` / `x != nil` branches (nilflow's
//     input);
//   - provenance: whether a variable's value derives purely from
//     control arithmetic (constants, lengths, parameters, loop
//     counters) or from data loads (slice elements, struct fields, map
//     reads, channel receives). Only control-derived indexes carry a
//     static proof obligation; data-derived subscripts are the province
//     of the conformance and property suites (DESIGN.md §15).
//
// Termination: the per-function fixed point widens a block's changing
// bounds to unbounded after widenAfter visits, and the interprocedural
// summary fixed point widens param/return intervals after two rounds.
// Soundness erosions are deliberate and documented: function literals
// other than immediately-invoked/go/defer ones are analyzed with top
// seeds, captured variables assigned inside any literal (or
// address-taken) are never tracked, and selector-rooted length keys die
// at every call.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// boundKind discriminates the symbolic forms of one bound.
type boundKind uint8

const (
	bkConst boundKind = iota // c
	bkLen                    // len(key) + c
	bkVar                    // var(obj) + c
)

// symKey names a slice-valued path: a root local/param object plus an
// optional selector suffix (".p" for e.p). Comparable, so it can key
// fact maps.
type symKey struct {
	root types.Object
	path string
}

func (k symKey) String() string {
	if k.root == nil {
		return "?"
	}
	return k.root.Name() + k.path
}

// sbound is one symbolic bound. The zero value is "unbounded".
type sbound struct {
	set  bool
	kind boundKind
	key  symKey       // bkLen
	obj  types.Object // bkVar
	c    int64
}

func constBound(c int64) sbound      { return sbound{set: true, kind: bkConst, c: c} }
func lenBound(k symKey) sbound       { return sbound{set: true, kind: bkLen, key: k} }
func varBound(o types.Object) sbound { return sbound{set: true, kind: bkVar, obj: o} }

// sameBase reports whether two bounds share a symbolic base, making
// their constant parts directly comparable.
func (b sbound) sameBase(o sbound) bool {
	if b.kind != o.kind {
		return false
	}
	switch b.kind {
	case bkConst:
		return true
	case bkLen:
		return b.key == o.key
	default:
		return b.obj == o.obj
	}
}

// satOverflow is the magnitude past which bound arithmetic gives up:
// anything this large came from runaway widening arithmetic, not a
// provable program fact.
const satOverflow = int64(1) << 60

// addConst returns b shifted by d, or unbounded on saturation.
func (b sbound) addConst(d int64) sbound {
	if !b.set {
		return sbound{}
	}
	c := b.c + d
	if c > satOverflow || c < -satOverflow {
		return sbound{}
	}
	b.c = c
	return b
}

func (b sbound) String() string {
	if !b.set {
		return "_"
	}
	switch b.kind {
	case bkLen:
		return fmt.Sprintf("len(%s)%+d", b.key, b.c)
	case bkVar:
		return fmt.Sprintf("%s%+d", b.obj.Name(), b.c)
	default:
		return fmt.Sprintf("%d", b.c)
	}
}

// ival is one interval; unset bounds are infinities.
type ival struct{ lo, hi sbound }

var topIval = ival{}

func constIval(c int64) ival { return ival{lo: constBound(c), hi: constBound(c)} }

func (v ival) String() string { return "[" + v.lo.String() + "," + v.hi.String() + "]" }

// joinLo is the lower bound of the union. Non-comparable bases fall
// back to the constant floor when one side has it: len(K)+c is at least
// c because lengths are non-negative.
func joinLo(a, b sbound) sbound {
	if !a.set || !b.set {
		return sbound{}
	}
	if a.sameBase(b) {
		if b.c < a.c {
			return b
		}
		return a
	}
	ac, aok := a.constFloor()
	bc, bok := b.constFloor()
	if aok && bok {
		if bc < ac {
			ac = bc
		}
		return constBound(ac)
	}
	return sbound{}
}

// constFloor returns a constant lower estimate of the bound: c itself,
// or len(K)+c >= c.
func (b sbound) constFloor() (int64, bool) {
	if !b.set || b.kind == bkVar {
		return 0, b.set && b.kind != bkVar
	}
	return b.c, true
}

// joinHi is the upper bound of the union; there is no constant ceiling
// trick (lengths and vars are unbounded above).
func joinHi(a, b sbound) sbound {
	if !a.set || !b.set || !a.sameBase(b) {
		return sbound{}
	}
	if b.c > a.c {
		return b
	}
	return a
}

func joinIval(a, b ival) ival { return ival{lo: joinLo(a.lo, b.lo), hi: joinHi(a.hi, b.hi)} }

// widenIval drops the bounds that moved since the previous round; the
// stable ones survive, which is what keeps `i := 0` floors through loop
// back-edges.
func widenIval(prev, next ival) ival {
	if prev.lo != next.lo {
		next.lo = sbound{}
	}
	if prev.hi != next.hi {
		next.hi = sbound{}
	}
	return next
}

// meetLo/meetHi tighten an interval with new refinement information.
func meetLo(cur, nb sbound) sbound {
	if !nb.set {
		return cur
	}
	if !cur.set {
		return nb
	}
	if cur.sameBase(nb) {
		if nb.c > cur.c {
			return nb
		}
		return cur
	}
	// Keep the refinement: guard information beats stale arithmetic for
	// the proof obligations this layer answers.
	return nb
}

func meetHi(cur, nb sbound) sbound {
	if !nb.set {
		return cur
	}
	if !cur.set {
		return nb
	}
	if cur.sameBase(nb) {
		if nb.c < cur.c {
			return nb
		}
		return cur
	}
	if cur.kind == bkLen && nb.kind != bkLen {
		return cur // a len-relative ceiling is worth more than a var one
	}
	return nb
}

// nilState is the three-point nil lattice plus a witness position for
// diagnostics.
type nilState struct {
	mayNil    bool
	mayNonNil bool
	witness   token.Pos // a position where nil can originate
}

func nilBottom() nilState         { return nilState{} }
func nilYes(w token.Pos) nilState { return nilState{mayNil: true, witness: w} }
func nilNo() nilState             { return nilState{mayNonNil: true} }
func nilMaybe(w token.Pos) nilState {
	return nilState{mayNil: true, mayNonNil: true, witness: w}
}

func joinNil(a, b nilState) nilState {
	out := nilState{mayNil: a.mayNil || b.mayNil, mayNonNil: a.mayNonNil || b.mayNonNil}
	if a.mayNil && a.witness != token.NoPos {
		out.witness = a.witness
	} else if b.mayNil {
		out.witness = b.witness
	}
	return out
}

// prov is value provenance: control arithmetic vs data loads.
type prov uint8

const (
	provControl prov = iota
	provData
)

func joinProv(a, b prov) prov {
	if a == provData || b == provData {
		return provData
	}
	return provControl
}

// absEnv is the abstract state at one program point.
type absEnv struct {
	iv   map[types.Object]ival
	pv   map[types.Object]prov
	nl   map[types.Object]nilState
	lens map[symKey]ival // facts about len(K) itself
}

func newEnv() *absEnv {
	return &absEnv{
		iv:   map[types.Object]ival{},
		pv:   map[types.Object]prov{},
		nl:   map[types.Object]nilState{},
		lens: map[symKey]ival{},
	}
}

func (e *absEnv) clone() *absEnv {
	out := newEnv()
	for k, v := range e.iv {
		out.iv[k] = v
	}
	for k, v := range e.pv {
		out.pv[k] = v
	}
	for k, v := range e.nl {
		out.nl[k] = v
	}
	for k, v := range e.lens {
		out.lens[k] = v
	}
	return out
}

// joinInto merges src into e (union of behaviors), reporting change.
// Variables absent from one side are top/bottom per map semantics:
// absent iv = top interval, absent nil = bottom (no evidence).
func (e *absEnv) joinInto(src *absEnv) bool {
	changed := false
	for k, v := range e.iv {
		sv, ok := src.iv[k]
		if !ok {
			sv = topIval
		}
		nv := joinIval(v, sv)
		if nv != v {
			e.iv[k] = nv
			changed = true
		}
	}
	for k, sv := range src.iv {
		if _, ok := e.iv[k]; !ok {
			// First flow into this join for k: adopt, do not widen to
			// top (e's absence means "unreached", not "unknown").
			e.iv[k] = sv
			changed = true
		}
	}
	for k, sv := range src.pv {
		nv := joinProv(e.pv[k], sv)
		if nv != e.pv[k] {
			e.pv[k] = nv
			changed = true
		}
	}
	for k, sv := range src.nl {
		nv := joinNil(e.nl[k], sv)
		if nv != e.nl[k] {
			e.nl[k] = nv
			changed = true
		}
	}
	for k, v := range e.lens {
		sv, ok := src.lens[k]
		if !ok {
			sv = topIval
		}
		nv := joinIval(v, sv)
		if nv != v {
			e.lens[k] = nv
			changed = true
		}
	}
	for k, sv := range src.lens {
		if _, ok := e.lens[k]; !ok {
			e.lens[k] = sv
			changed = true
		}
	}
	return changed
}

// widenFrom widens e against its previous-round value.
func (e *absEnv) widenFrom(prev *absEnv) {
	for k, v := range e.iv {
		if pv, ok := prev.iv[k]; ok {
			e.iv[k] = widenIval(pv, v)
		}
	}
	for k, v := range e.lens {
		if pv, ok := prev.lens[k]; ok {
			e.lens[k] = widenIval(pv, v)
		}
	}
}

// killObj invalidates everything k's new value could change: its own
// interval/nil/prov entries, every bound mentioning it as a var base,
// every length key rooted at it, and every length fact whose bounds
// mention it.
func (e *absEnv) killObj(k types.Object) {
	delete(e.iv, k)
	delete(e.nl, k)
	delete(e.pv, k)
	mentions := func(b sbound) bool {
		return b.set && ((b.kind == bkVar && b.obj == k) || (b.kind == bkLen && b.key.root == k))
	}
	for o, v := range e.iv {
		if mentions(v.lo) {
			v.lo = sbound{}
		}
		if mentions(v.hi) {
			v.hi = sbound{}
		}
		e.iv[o] = v
	}
	for key, v := range e.lens {
		if key.root == k {
			delete(e.lens, key)
			continue
		}
		if mentions(v.lo) {
			v.lo = sbound{}
		}
		if mentions(v.hi) {
			v.hi = sbound{}
		}
		e.lens[key] = v
	}
}

// killSelectorLens drops every selector-rooted length key (depth >= 1):
// a call can mutate any field reachable through a pointer, so facts
// like len(e.p) do not survive it. Plain local keys do: a callee cannot
// rebind a caller's local.
func (e *absEnv) killSelectorLens() {
	for key, v := range e.lens {
		if key.path != "" {
			delete(e.lens, key)
			continue
		}
		drop := func(b sbound) sbound {
			if b.set && b.kind == bkLen && b.key.path != "" {
				return sbound{}
			}
			return b
		}
		v.lo, v.hi = drop(v.lo), drop(v.hi)
		e.lens[key] = v
	}
	for o, v := range e.iv {
		drop := func(b sbound) sbound {
			if b.set && b.kind == bkLen && b.key.path != "" {
				return sbound{}
			}
			return b
		}
		v.lo, v.hi = drop(v.lo), drop(v.hi)
		e.iv[o] = v
	}
}

// funcAbs is the finished value-flow result for one function body.
type funcAbs struct {
	p      *Pass
	cfg    *funcCFG
	body   *ast.BlockStmt
	params []types.Object
	in     []*absEnv // block-entry states, post fixed point
	// volatile objects are never tracked: assigned inside a nested
	// function literal or address-taken.
	volatile map[types.Object]bool
	// rangeAt maps a range head block index to its RangeStmt.
	rangeAt map[int]*ast.RangeStmt
	// litEnv snapshots the state at each function literal occurrence,
	// for call-site seeding of immediately-invoked/go/defer literals.
	litEnv map[*ast.FuncLit]*absEnv
	// rets joins the interval of each result position over every
	// return statement (nil when the function has no int results).
	rets []ival
	// nilRets joins the nil-state of each result position over every
	// return statement, for the interprocedural half of nilflow.
	nilRets []nilState
	// seed holds caller-provided parameter intervals (module summaries
	// or literal call sites).
	seed map[types.Object]ival
	// lenSeed holds caller-provided length facts for slice parameters.
	lenSeed map[types.Object]ival
	// entryExtra, when set, augments the entry state after parameter
	// seeding — litAbs uses it to install captured-variable snapshots.
	entryExtra func(*absEnv)
	mod        *Module
}

// widenAfter is the visit count past which a loop-head join widens.
const widenAfter = 2

// analyzeFunc runs the abstract interpretation over one function body.
// seed/lenSeed may be nil (top parameters).
func analyzeFunc(p *Pass, body *ast.BlockStmt, params []types.Object, mod *Module, seed, lenSeed map[types.Object]ival) *funcAbs {
	fa := &funcAbs{
		p: p, body: body, params: params,
		cfg:      buildCFG(body),
		volatile: map[types.Object]bool{},
		rangeAt:  map[int]*ast.RangeStmt{},
		litEnv:   map[*ast.FuncLit]*absEnv{},
		seed:     seed,
		lenSeed:  lenSeed,
		mod:      mod,
	}
	fa.findVolatile()
	fa.findRanges()
	fa.solve()
	return fa
}

// findVolatile marks objects the tracker must never trust: assigned
// (strongly) inside a nested function literal, or address-taken.
func (fa *funcAbs) findVolatile() {
	info := fa.p.Info
	var inLit func(n ast.Node)
	inLit = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							fa.volatile[obj] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						fa.volatile[obj] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(fa.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inLit(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := rootObject(fa.p, n.X); obj != nil {
					fa.volatile[obj] = true
				}
			}
		}
		return true
	})
}

// findRanges maps range head blocks to their statements.
func (fa *funcAbs) findRanges() {
	ast.Inspect(fa.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if blk := fa.cfg.blockOf(rs.X.Pos()); blk != nil {
			fa.rangeAt[blk.index] = rs
		}
		return true
	})
}

// entryEnv builds the function-entry state from parameters and seeds.
func (fa *funcAbs) entryEnv() *absEnv {
	env := newEnv()
	for _, obj := range fa.params {
		t := obj.Type()
		if isIntType(t) {
			v := topIval
			if fa.seed != nil {
				if sv, ok := fa.seed[obj]; ok {
					v = sv
				}
			}
			env.iv[obj] = v
			env.pv[obj] = provControl
		}
		if isSliceLike(t) && fa.lenSeed != nil {
			if sv, ok := fa.lenSeed[obj]; ok {
				env.lens[symKey{root: obj}] = sv
			}
		}
	}
	if fa.entryExtra != nil {
		fa.entryExtra(env)
	}
	return env
}

// solve runs the worklist fixed point with widening at loop heads.
func (fa *funcAbs) solve() {
	nb := len(fa.cfg.blocks)
	fa.in = make([]*absEnv, nb)
	visits := make([]int, nb)
	entry := fa.cfg.entry.index
	fa.in[entry] = fa.entryEnv()

	work := []int{entry}
	inWork := make([]bool, nb)
	inWork[entry] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		blk := fa.cfg.blocks[bi]
		out := fa.transferBlock(blk, fa.in[bi].clone())
		for si, succ := range blk.succs {
			edge := fa.refineEdge(blk, si, out)
			cur := fa.in[succ.index]
			var changed bool
			if cur == nil {
				fa.in[succ.index] = edge.clone()
				changed = true
			} else {
				// Past the widening threshold, snapshot the pre-join
				// state: any bound the join moves is dropped to
				// unbounded, so loop-carried arithmetic (i += nw pushing
				// hi up every pass) cannot iterate forever. Bounds the
				// join leaves alone — the guard-refined ceilings, the
				// constant floors — survive.
				var snap *absEnv
				if visits[succ.index] >= widenAfter {
					snap = cur.clone()
				}
				changed = cur.joinInto(edge)
				if changed {
					visits[succ.index]++
					if snap != nil {
						cur.widenFrom(snap)
					}
				}
			}
			if changed && !inWork[succ.index] {
				work = append(work, succ.index)
				inWork[succ.index] = true
			}
		}
	}
	// Unreached blocks (e.g. "unreachable" successors of returns) get
	// empty states so envAt never nil-derefs.
	for i := range fa.in {
		if fa.in[i] == nil {
			fa.in[i] = newEnv()
		}
	}
}

// transferBlock applies every node of the block to env, in order.
func (fa *funcAbs) transferBlock(blk *cfgBlock, env *absEnv) *absEnv {
	if rs, ok := fa.rangeAt[blk.index]; ok {
		fa.transferRangeHead(rs, env)
	}
	for _, n := range blk.nodes {
		fa.transferNode(n, env)
	}
	return env
}

// envAt replays the block containing pos up to (excluding) the node
// that spans pos and returns the state there. The result is a fresh
// clone the caller may mutate.
//
// A position inside a deferred call resolves to the registration
// point, not the defer chain: Go evaluates the deferred function value
// and its arguments when the defer statement executes, so the
// registration-point state is the one that governs those expressions.
// (The defer-chain copy of the call only models the exit-time effects
// of running the call body during the fixed point.)
func (fa *funcAbs) envAt(pos token.Pos) *absEnv {
	blk := fa.cfg.blockOf(pos)
	if blk != nil && blk.kind == "defer" {
		if reg := fa.blockOfSkippingDefers(pos); reg != nil {
			blk = reg
		}
	}
	if blk == nil {
		return newEnv()
	}
	env := fa.in[blk.index].clone()
	if rs, ok := fa.rangeAt[blk.index]; ok {
		fa.transferRangeHead(rs, env)
	}
	for _, n := range blk.nodes {
		if n.Pos() <= pos && pos < n.End() {
			break
		}
		if n.End() <= pos {
			fa.transferNode(n, env)
		}
	}
	return env
}

// blockOfSkippingDefers is blockOf restricted to non-defer-chain
// blocks: for a pos inside `defer f(x)`, the innermost covering node is
// the call copied into the defer chain, but the DeferStmt itself sits
// in the ordinary block where it registers.
func (fa *funcAbs) blockOfSkippingDefers(pos token.Pos) *cfgBlock {
	var best *cfgBlock
	var bestSpan token.Pos = -1
	for _, blk := range fa.cfg.blocks {
		if blk.kind == "defer" {
			continue
		}
		for _, n := range blk.nodes {
			if n.Pos() <= pos && pos < n.End() {
				span := n.End() - n.Pos()
				if bestSpan < 0 || span < bestSpan {
					best, bestSpan = blk, span
				}
			}
		}
	}
	return best
}

// transferRangeHead binds the range key: over a slice/array/string the
// key is confined to [0, len(X)-1] and is control-derived; the value is
// a data load.
func (fa *funcAbs) transferRangeHead(rs *ast.RangeStmt, env *absEnv) {
	p := fa.p
	t := p.TypeOf(rs.X)
	if t == nil {
		return
	}
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		if obj := p.Info.ObjectOf(id); obj != nil && !fa.volatile[obj] && isIntType(obj.Type()) {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
				v := ival{lo: constBound(0)}
				if key, ok := fa.canonicalKey(rs.X); ok {
					v.hi = lenBound(key).addConst(-1)
				} else if n, ok := arrayLen(t); ok {
					v.hi = constBound(n - 1)
				}
				env.iv[obj] = v
				env.pv[obj] = provControl
			default: // map, chan: no order, no interval
				env.iv[obj] = topIval
				env.pv[obj] = provData
			}
		}
	}
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := p.Info.ObjectOf(id); obj != nil {
			env.killObj(obj)
			if isIntType(obj.Type()) {
				env.iv[obj] = topIval
				env.pv[obj] = provData
			}
			if isNilable(obj.Type()) {
				env.nl[obj] = nilState{} // element loads carry no nil evidence
			}
		}
	}
}

// transferNode applies one CFG node (statement or condition expression).
func (fa *funcAbs) transferNode(n ast.Node, env *absEnv) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fa.transferAssign(n, env)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			obj := fa.p.Info.ObjectOf(id)
			if obj != nil && !fa.volatile[obj] && isIntType(obj.Type()) {
				v, pv := fa.evalIval(env, n.X)
				d := int64(1)
				if n.Tok == token.DEC {
					d = -1
				}
				env.killObj(obj)
				env.iv[obj] = ival{lo: v.lo.addConst(d), hi: v.hi.addConst(d)}
				env.pv[obj] = pv
			} else if obj != nil {
				env.killObj(obj)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fa.transferValueSpec(vs, env)
				}
			}
		}
	case *ast.ExprStmt:
		fa.noteCalls(n.X, env)
	case *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
		fa.noteCalls(n, env)
	case *ast.ReturnStmt:
		fa.noteCalls(n, env)
		fa.recordReturn(n, env)
	case ast.Expr:
		// Condition expressions carried by if.cond / for.head blocks:
		// calls inside them still invalidate selector facts, and any
		// literal inside gets its snapshot.
		fa.noteCalls(n, env)
	default:
		fa.noteCalls(n, env)
	}
}

// transferValueSpec handles `var x = e` / `var x T`.
func (fa *funcAbs) transferValueSpec(vs *ast.ValueSpec, env *absEnv) {
	for i, name := range vs.Names {
		obj := fa.p.Info.ObjectOf(name)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if i < len(vs.Values) {
			rhs = vs.Values[i]
		}
		if rhs != nil {
			fa.noteCalls(rhs, env)
		}
		// No initializer list at all means the declared zero value
		// (rhs == nil, haveRhs == true); a missing position in a
		// multi-value unpack means the value is unknown.
		fa.assignObj(obj, rhs, vs.Values == nil || rhs != nil, env)
	}
}

// transferAssign handles assignments and short declarations.
func (fa *funcAbs) transferAssign(as *ast.AssignStmt, env *absEnv) {
	for _, r := range as.Rhs {
		fa.noteCalls(r, env)
	}
	// Compound ops: x += e etc. rewrite to x = x op e.
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			obj := fa.p.Info.ObjectOf(id)
			if obj != nil && !fa.volatile[obj] && isIntType(obj.Type()) {
				op := assignOp(as.Tok)
				v := fa.evalBinary(env, op, as.Lhs[0], as.Rhs[0])
				pv := joinProv(fa.provOf(env, as.Lhs[0]), fa.provOf(env, as.Rhs[0]))
				env.killObj(obj)
				env.iv[obj] = v
				env.pv[obj] = pv
				return
			}
		}
		if obj := rootObject(fa.p, as.Lhs[0]); obj != nil {
			if _, isIdent := ast.Unparen(as.Lhs[0]).(*ast.Ident); isIdent {
				env.killObj(obj)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		haveRhs := false
		if len(as.Rhs) == len(as.Lhs) {
			rhs, haveRhs = as.Rhs[i], true
		} else if len(as.Rhs) == 1 {
			// Multi-value call / comma-ok: per-position values unknown.
			rhs, haveRhs = nil, false
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := fa.p.Info.ObjectOf(l)
			if obj == nil {
				continue
			}
			fa.assignObj(obj, rhs, haveRhs, env)
		default:
			// x[i] = v, x.f = v: the binding of x is unchanged; len and
			// interval facts survive an element/field write, except that
			// a field write invalidates selector keys rooted at x.
			if obj := rootObject(fa.p, lhs); obj != nil {
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
					for key := range env.lens {
						if key.root == obj && key.path != "" {
							delete(env.lens, key)
						}
					}
				}
			}
		}
	}
}

// assignObj rebinds obj to the abstraction of rhs (or to the
// zero-value/top when rhs is absent). The right-hand side is abstracted
// in the PRE-assignment state — `i = i + 1` reads the old i — and any
// resulting bound that mentions obj itself is stripped before the store:
// after `sn = append(sn, v)` a fact "len(sn) = len(sn)+1" would refer to
// the post-state on both sides, which is circular nonsense.
func (fa *funcAbs) assignObj(obj types.Object, rhs ast.Expr, haveRhs bool, env *absEnv) {
	if fa.volatile[obj] {
		env.killObj(obj)
		return
	}
	t := obj.Type()
	switch {
	case isIntType(t):
		if !haveRhs {
			env.killObj(obj)
			env.iv[obj] = topIval
			env.pv[obj] = provData
			return
		}
		if rhs == nil { // var x int: zero value
			env.killObj(obj)
			env.iv[obj] = constIval(0)
			env.pv[obj] = provControl
			return
		}
		v, pv := fa.evalIval(env, rhs)
		env.killObj(obj)
		env.iv[obj] = stripSelfBounds(v, obj)
		env.pv[obj] = pv
	case isSliceLike(t):
		var lv ival
		haveLen := false
		if rhs != nil {
			lv, haveLen = fa.evalLen(env, rhs)
		} else if haveRhs {
			lv, haveLen = constIval(0), true // zero value nil slice
		}
		nl := fa.evalNil(env, rhs, haveRhs)
		env.killObj(obj)
		if haveLen {
			env.lens[symKey{root: obj}] = stripSelfBounds(lv, obj)
		}
		if isNilable(t) {
			env.nl[obj] = nl
		}
	case isNilable(t):
		nl := fa.evalNil(env, rhs, haveRhs)
		env.killObj(obj)
		env.nl[obj] = nl
	default:
		env.killObj(obj)
	}
}

// stripSelfBounds drops bounds that reference obj itself: a bound on
// obj's new value expressed in terms of obj's new value says nothing.
func stripSelfBounds(v ival, obj types.Object) ival {
	selfish := func(b sbound) bool {
		return b.set && ((b.kind == bkVar && b.obj == obj) || (b.kind == bkLen && b.key.root == obj))
	}
	if selfish(v.lo) {
		if c, ok := v.lo.constFloor(); ok {
			v.lo = constBound(c) // len(self)+c ≥ c survives as a floor
		} else {
			v.lo = sbound{}
		}
	}
	if selfish(v.hi) {
		v.hi = sbound{}
	}
	return v
}

// recordReturn joins result intervals for the summary layer.
func (fa *funcAbs) recordReturn(rs *ast.ReturnStmt, env *absEnv) {
	if len(rs.Results) == 0 {
		return
	}
	if fa.rets == nil {
		fa.rets = make([]ival, len(rs.Results))
		fa.nilRets = make([]nilState, len(rs.Results))
		for i := range fa.rets {
			fa.rets[i] = ival{lo: sbound{}, hi: sbound{}}
		}
		for i, r := range rs.Results {
			fa.rets[i] = fa.retIval(env, r)
			fa.nilRets[i] = fa.retNil(env, r)
		}
		return
	}
	if len(rs.Results) != len(fa.rets) {
		return
	}
	for i, r := range rs.Results {
		fa.rets[i] = joinIval(fa.rets[i], fa.retIval(env, r))
		fa.nilRets[i] = joinNil(fa.nilRets[i], fa.retNil(env, r))
	}
}

// retNil abstracts the nil-state of one returned expression. Nil-able
// results carry evidence; everything else stays bottom.
func (fa *funcAbs) retNil(env *absEnv, r ast.Expr) nilState {
	t := fa.p.TypeOf(r)
	if t == nil {
		return nilState{}
	}
	// `return nil` has untyped-nil type, which isNilable rejects; it is
	// the canonical nil witness, not an untracked value.
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return nilYes(r.Pos())
	}
	if !isNilable(t) {
		return nilState{}
	}
	return fa.evalNil(env, r, true)
}

// retIval abstracts one returned expression, stripped of bound forms
// that are meaningless outside the function (len keys, var bounds).
func (fa *funcAbs) retIval(env *absEnv, r ast.Expr) ival {
	if t := fa.p.TypeOf(r); t == nil || !isIntType(t) {
		return topIval
	}
	v, _ := fa.evalIval(env, r)
	if v.lo.set && v.lo.kind != bkConst {
		if c, ok := v.lo.constFloor(); ok {
			v.lo = constBound(c)
		} else {
			v.lo = sbound{}
		}
	}
	if v.hi.set && v.hi.kind != bkConst {
		v.hi = sbound{}
	}
	return v
}

// noteCalls records literal-site snapshots and applies call-clobber
// effects for every call/literal in the subtree (outside nested lits).
func (fa *funcAbs) noteCalls(n ast.Node, env *absEnv) {
	var clobber bool
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			if _, ok := fa.litEnv[m]; !ok {
				fa.litEnv[m] = env.clone()
			}
			return false
		case *ast.CallExpr:
			if !isPureBuiltin(fa.p, m) {
				clobber = true
			}
		}
		return true
	})
	if clobber {
		env.killSelectorLens()
	}
}

// isPureBuiltin reports whether the call is a builtin that cannot
// mutate reachable state (len, cap, min, max, abs-style conversions).
func isPureBuiltin(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
		switch id.Name {
		case "len", "cap", "min", "max", "append", "make", "new":
			return true
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	return false
}

// ---- expression evaluation ----

// evalIval abstracts an integer-valued expression in env.
func (fa *funcAbs) evalIval(env *absEnv, e ast.Expr) (ival, prov) {
	v, pv := fa.evalIvalRaw(env, e)
	// The static type bounds the value: a load of an int32, however
	// opaque its source, is within the int32 range. Only fill bounds
	// the analysis left open (or loosen const ones): a symbolic bound
	// like len(x)-1 is worth more than the type's const ceiling for
	// the subscript proofs downstream.
	if t := fa.p.TypeOf(e); t != nil {
		if lo, hi, ok := narrowRange(t); ok {
			if !v.lo.set || v.lo.kind == bkConst && v.lo.c < lo {
				v.lo = constBound(lo)
			}
			if !v.hi.set || v.hi.kind == bkConst && v.hi.c > hi {
				v.hi = constBound(hi)
			}
		}
	}
	return v, pv
}

func (fa *funcAbs) evalIvalRaw(env *absEnv, e ast.Expr) (ival, prov) {
	p := fa.p
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		if c, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return constIval(c), provControl
		}
		return topIval, provControl
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.ObjectOf(e)
		if obj == nil || fa.volatile[obj] {
			return topIval, provData
		}
		if v, ok := env.iv[obj]; ok {
			return v, env.pv[obj]
		}
		// Untracked (captured from an enclosing function, package
		// global): no interval, and globals are data.
		return topIval, provData
	case *ast.BinaryExpr:
		v := fa.evalBinary(env, e.Op, e.X, e.Y)
		return v, joinProv(fa.provOf(env, e.X), fa.provOf(env, e.Y))
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			v, pv := fa.evalIval(env, e.X)
			return ival{lo: negBound(v.hi), hi: negBound(v.lo)}, pv
		}
		return topIval, provData
	case *ast.CallExpr:
		return fa.evalCall(env, e)
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.TypeAssertExpr, *ast.SliceExpr:
		return topIval, provData
	}
	return topIval, provData
}

// provOf is evalIval's provenance projection.
func (fa *funcAbs) provOf(env *absEnv, e ast.Expr) prov {
	_, pv := fa.evalIval(env, e)
	return pv
}

func negBound(b sbound) sbound {
	if !b.set || b.kind != bkConst {
		return sbound{}
	}
	return constBound(-b.c)
}

// evalBinary abstracts x op y.
func (fa *funcAbs) evalBinary(env *absEnv, op token.Token, x, y ast.Expr) ival {
	vx, _ := fa.evalIval(env, x)
	vy, _ := fa.evalIval(env, y)
	switch op {
	case token.ADD:
		return addIval(vx, vy)
	case token.SUB:
		return addIval(vx, ival{lo: negBound(vy.hi), hi: negBound(vy.lo)})
	case token.MUL:
		return mulIval(vx, vy)
	case token.QUO:
		return divIval(vx, vy)
	case token.REM:
		return remIval(vx, vy)
	case token.SHL:
		if c, ok := constOf(vy); ok && c >= 0 && c < 62 {
			return mulIval(vx, constIval(int64(1)<<uint(c)))
		}
	}
	return topIval
}

func constOf(v ival) (int64, bool) {
	if v.lo.set && v.lo.kind == bkConst && v.lo == v.hi {
		return v.lo.c, true
	}
	return 0, false
}

// addIval adds two intervals; a symbolic bound plus a constant keeps
// the symbol, symbol+symbol is unbounded.
func addIval(a, b ival) ival {
	add := func(p, q sbound) sbound {
		if !p.set || !q.set {
			return sbound{}
		}
		switch {
		case q.kind == bkConst:
			return p.addConst(q.c)
		case p.kind == bkConst:
			return q.addConst(p.c)
		}
		return sbound{}
	}
	return ival{lo: add(a.lo, b.lo), hi: add(a.hi, b.hi)}
}

func mulIval(a, b ival) ival {
	ca, aok := constOf(a)
	cb, bok := constOf(b)
	switch {
	case aok && bok:
		m := ca * cb
		if ca != 0 && m/ca != cb || m > satOverflow || m < -satOverflow {
			return topIval
		}
		return constIval(m)
	case aok:
		return scaleIval(b, ca)
	case bok:
		return scaleIval(a, cb)
	}
	// Non-constant product: sign information only.
	out := topIval
	if geZero(a) && geZero(b) {
		out.lo = constBound(0)
	}
	return out
}

func geZero(v ival) bool {
	c, ok := v.lo.constFloor()
	return v.lo.set && ok && c >= 0
}

// scaleIval multiplies by a constant; only constant bounds scale (a
// scaled len would need len*c bounds the domain does not carry), except
// c == 1 which is the identity.
func scaleIval(v ival, c int64) ival {
	if c == 1 {
		return v
	}
	if c == 0 {
		return constIval(0)
	}
	sc := func(b sbound) sbound {
		if !b.set || b.kind != bkConst {
			return sbound{}
		}
		m := b.c * c
		if b.c != 0 && m/b.c != c || m > satOverflow || m < -satOverflow {
			return sbound{}
		}
		return constBound(m)
	}
	lo, hi := sc(v.lo), sc(v.hi)
	if c < 0 {
		lo, hi = hi, lo
	}
	out := ival{lo: lo, hi: hi}
	if c > 0 && !out.lo.set && geZero(v) {
		out.lo = constBound(0)
	}
	return out
}

func divIval(a, b ival) ival {
	cb, ok := constOf(b)
	if !ok || cb <= 0 {
		return topIval
	}
	dv := func(bd sbound) sbound {
		if !bd.set || bd.kind != bkConst {
			return sbound{}
		}
		return constBound(bd.c / cb)
	}
	out := ival{lo: dv(a.lo), hi: dv(a.hi)}
	if !out.lo.set && geZero(a) {
		out.lo = constBound(0)
	}
	return out
}

func remIval(a, b ival) ival {
	if !geZero(a) {
		return topIval
	}
	if cb, ok := constOf(b); ok && cb > 0 {
		return ival{lo: constBound(0), hi: constBound(cb - 1)}
	}
	// x % y with y's interval bounded: [0, hi(y)-1] when y >= 1.
	if c, ok := b.lo.constFloor(); ok && b.lo.set && c >= 1 && b.hi.set {
		return ival{lo: constBound(0), hi: b.hi.addConst(-1)}
	}
	return ival{lo: constBound(0)}
}

// evalCall abstracts a call expression: len/cap/min/max builtins, and
// module callees through the interprocedural return summaries.
func (fa *funcAbs) evalCall(env *absEnv, call *ast.CallExpr) (ival, prov) {
	p := fa.p
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) >= 1 {
			switch id.Name {
			case "len":
				if v, ok := fa.evalLen(env, call.Args[0]); ok {
					return v, provControl
				}
				return ival{lo: constBound(0)}, provControl
			case "cap":
				// cap >= len; only the floor survives.
				return ival{lo: constBound(0)}, provControl
			case "min":
				v, pv := fa.evalIval(env, call.Args[0])
				for _, a := range call.Args[1:] {
					av, apv := fa.evalIval(env, a)
					v = ival{lo: joinLo(v.lo, av.lo), hi: minHi(v.hi, av.hi)}
					pv = joinProv(pv, apv)
				}
				return v, pv
			case "max":
				v, pv := fa.evalIval(env, call.Args[0])
				for _, a := range call.Args[1:] {
					av, apv := fa.evalIval(env, a)
					v = ival{lo: maxLo(v.lo, av.lo), hi: joinHi(v.hi, av.hi)}
					pv = joinProv(pv, apv)
				}
				return v, pv
			}
		}
	}
	// Conversion T(x) between integer types: pass the interval through.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isIntType(tv.Type) {
			return fa.evalIval(env, call.Args[0])
		}
		return topIval, provData
	}
	// Module callee with a return summary.
	if fa.mod != nil {
		if callee := fa.mod.resolve(fa.p.pkg, call); callee != nil {
			if sum := fa.mod.intervalSummaries()[callee]; sum != nil && len(sum.results) == 1 {
				return sum.results[0], provControl
			}
		}
	}
	return topIval, provData
}

// minHi: the upper bound of min(xs) is the smallest comparable hi; any
// single set hi is already an upper bound for the minimum.
func minHi(a, b sbound) sbound {
	if !a.set {
		return b
	}
	if !b.set {
		return a
	}
	if a.sameBase(b) {
		if b.c < a.c {
			return b
		}
		return a
	}
	if a.kind == bkLen {
		return a // prefer the provable form
	}
	return b
}

// maxLo mirrors minHi for max().
func maxLo(a, b sbound) sbound {
	if !a.set {
		return b
	}
	if !b.set {
		return a
	}
	if a.sameBase(b) {
		if b.c > a.c {
			return b
		}
		return a
	}
	if a.kind == bkConst {
		return a
	}
	return b
}

// evalLen abstracts the length of a slice/array/string-valued
// expression: exact for array types, make sizes, composite literals,
// slice expressions and appends; symbolic len(K) for canonical paths.
func (fa *funcAbs) evalLen(env *absEnv, e ast.Expr) (ival, bool) {
	p := fa.p
	e = ast.Unparen(e)
	t := p.TypeOf(e)
	if t != nil {
		if n, ok := arrayLen(t); ok {
			return constIval(n), true
		}
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constIval(int64(len(constant.StringVal(tv.Value)))), true
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		if t != nil {
			if _, ok := t.Underlying().(*types.Slice); ok {
				return constIval(compositeLen(e)), true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					if len(e.Args) >= 2 {
						v, _ := fa.evalIval(env, e.Args[1])
						if !v.lo.set {
							v.lo = constBound(0)
						}
						return v, true
					}
				case "append":
					if len(e.Args) >= 1 {
						base, ok := fa.evalLen(env, e.Args[0])
						if !ok {
							base = ival{lo: constBound(0)}
						}
						if e.Ellipsis != token.NoPos {
							return ival{lo: base.lo}, true
						}
						return ival{lo: base.lo.addConst(int64(len(e.Args) - 1)), hi: base.hi.addConst(int64(len(e.Args) - 1))}, true
					}
				}
			}
		}
	case *ast.SliceExpr:
		// len(s[lo:hi]) == hi - lo (hi defaults to len(s), lo to 0).
		var loV, hiV ival
		if e.Low != nil {
			loV, _ = fa.evalIval(env, e.Low)
		} else {
			loV = constIval(0)
		}
		if e.High != nil {
			hiV, _ = fa.evalIval(env, e.High)
		} else if key, ok := fa.canonicalKey(e.X); ok {
			hiV = ival{lo: lenBound(key), hi: lenBound(key)}
		} else if inner, ok := fa.evalLen(env, e.X); ok {
			hiV = inner
		} else {
			hiV = topIval
		}
		v := addIval(hiV, ival{lo: negBound(loV.hi), hi: negBound(loV.lo)})
		if !v.lo.set {
			v.lo = constBound(0) // a slice expr that executed has non-negative length
		}
		return v, true
	case *ast.Ident:
		if tv, ok := p.Info.Types[e]; ok && tv.IsNil() {
			return constIval(0), true
		}
	}
	if key, ok := fa.canonicalKey(e); ok {
		if fact, ok := env.lens[key]; ok {
			// The value of len(X) is exactly the symbol len(X); the
			// stored fact only tightens it. A positive const floor is
			// strictly stronger than the symbol (it survives
			// subtraction), but the generic floor 0 is weaker: it
			// turns len(X)-1 into a const -1 lower bound, which reads
			// as positive evidence of negativity when the exact value
			// is merely unguarded.
			out := fact
			if !out.lo.set || out.lo.kind != bkConst || out.lo.c <= 0 {
				out.lo = lenBound(key)
			}
			if !out.hi.set {
				out.hi = lenBound(key)
			}
			return out, true
		}
		v := ival{lo: lenBound(key), hi: lenBound(key)}
		return v, true
	}
	return topIval, false
}

func compositeLen(cl *ast.CompositeLit) int64 {
	n := int64(0)
	maxIdx := int64(-1)
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if bl, ok := kv.Key.(*ast.BasicLit); ok && bl.Kind == token.INT {
				if idx, err := strconv.ParseInt(bl.Value, 0, 64); err == nil && idx > maxIdx {
					maxIdx = idx
				}
				continue
			}
		}
		n++
		if n-1 > maxIdx {
			maxIdx = n - 1
		}
	}
	return maxIdx + 1
}

// canonicalKey canonicalizes a slice-valued expression into a symbolic
// length key: a local/param ident, or a selector chain rooted at one.
func (fa *funcAbs) canonicalKey(e ast.Expr) (symKey, bool) {
	e = ast.Unparen(e)
	var path []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := fa.p.Info.ObjectOf(x)
			if obj == nil || fa.volatile[obj] {
				return symKey{}, false
			}
			if _, ok := obj.(*types.Var); !ok {
				return symKey{}, false
			}
			if obj.Parent() == obj.Pkg().Scope() {
				return symKey{}, false // package global: mutable from anywhere
			}
			sb := strings.Builder{}
			for i := len(path) - 1; i >= 0; i-- {
				sb.WriteByte('.')
				sb.WriteString(path[i])
			}
			return symKey{root: obj, path: sb.String()}, true
		case *ast.SelectorExpr:
			path = append(path, x.Sel.Name)
			e = ast.Unparen(x.X)
		default:
			return symKey{}, false
		}
	}
}

// evalNil abstracts the nil-ness of an expression.
func (fa *funcAbs) evalNil(env *absEnv, rhs ast.Expr, haveRhs bool) nilState {
	p := fa.p
	if !haveRhs {
		return nilState{} // multi-value positions: no evidence either way
	}
	if rhs == nil {
		return nilYes(token.NoPos) // var x *T zero value
	}
	rhs = ast.Unparen(rhs)
	if tv, ok := p.Info.Types[rhs]; ok && tv.IsNil() {
		return nilYes(rhs.Pos())
	}
	switch rhs := rhs.(type) {
	case *ast.UnaryExpr:
		if rhs.Op == token.AND {
			return nilNo()
		}
	case *ast.CompositeLit:
		return nilNo()
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make", "new", "append", "min", "max":
					return nilNo()
				}
			}
		}
		// Module callee with a nil-state return summary.
		if fa.mod != nil {
			if callee := fa.mod.resolve(p.pkg, rhs); callee != nil {
				if sum := fa.mod.intervalSummaries()[callee]; sum != nil && len(sum.nilResults) == 1 {
					return sum.nilResults[0]
				}
			}
		}
		return nilState{} // unknown result: no evidence
	case *ast.Ident:
		obj := p.Info.ObjectOf(rhs)
		if obj != nil && !fa.volatile[obj] {
			if st, ok := env.nl[obj]; ok {
				return st
			}
		}
		return nilState{}
	}
	return nilState{}
}

// ---- branch refinement ----

// refineEdge returns the state on the edge from blk to its si-th
// successor, applying the branch condition when blk is a condition
// block. out must not be mutated; a clone is refined.
func (fa *funcAbs) refineEdge(blk *cfgBlock, si int, out *absEnv) *absEnv {
	var cond ast.Expr
	switch blk.kind {
	case "if.cond", "for.head":
		// The condition, when present, is the last expression node.
		for i := len(blk.nodes) - 1; i >= 0; i-- {
			if e, ok := blk.nodes[i].(ast.Expr); ok {
				cond = e
				break
			}
		}
	}
	if cond == nil || len(blk.succs) < 2 {
		return out
	}
	env := out.clone()
	fa.refineCond(env, cond, si == 0)
	return env
}

// refineCond narrows env under `cond == truth`.
func (fa *funcAbs) refineCond(env *absEnv, cond ast.Expr, truth bool) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			fa.refineCond(env, c.X, !truth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				fa.refineCond(env, c.X, true)
				fa.refineCond(env, c.Y, true)
			}
		case token.LOR:
			if !truth {
				fa.refineCond(env, c.X, false)
				fa.refineCond(env, c.Y, false)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			fa.refineCompare(env, c, truth)
		}
	}
}

// refineCompare narrows env under a comparison known to be truth.
func (fa *funcAbs) refineCompare(env *absEnv, c *ast.BinaryExpr, truth bool) {
	op := c.Op
	if !truth {
		op = negateOp(op)
	}
	// Nil comparisons refine the nil lattice.
	if isNilExpr(fa.p, c.X) || isNilExpr(fa.p, c.Y) {
		v := c.X
		if isNilExpr(fa.p, v) {
			v = c.Y
		}
		if obj := identObj(fa.p, v); obj != nil && !fa.volatile[obj] {
			switch op {
			case token.EQL:
				st := env.nl[obj]
				st.mayNonNil = false
				if !st.mayNil {
					st.mayNil, st.witness = true, c.Pos()
				}
				env.nl[obj] = st
			case token.NEQ:
				env.nl[obj] = nilNo()
			}
		}
		return
	}
	fa.refineIntCompare(env, c.X, op, c.Y)
	fa.refineIntCompare(env, c.Y, flipOp(op), c.X)
	// len(s) on either side refines the length fact itself.
	fa.refineLenFact(env, c.X, op, c.Y)
	fa.refineLenFact(env, c.Y, flipOp(op), c.X)
}

// refineIntCompare narrows x's interval under `x op e`.
func (fa *funcAbs) refineIntCompare(env *absEnv, x ast.Expr, op token.Token, e ast.Expr) {
	obj := identObj(fa.p, x)
	if obj == nil || fa.volatile[obj] || !isIntType(obj.Type()) {
		return
	}
	ve, _ := fa.evalIval(env, e)
	// A top comparison bound still records guardedness as a var bound.
	hiB, loB := ve.hi, ve.lo
	if !hiB.set {
		if eo := identObj(fa.p, e); eo != nil && isIntType(eo.Type()) && !fa.volatile[eo] {
			hiB = varBound(eo)
		}
	}
	if !loB.set {
		if eo := identObj(fa.p, e); eo != nil && isIntType(eo.Type()) && !fa.volatile[eo] {
			loB = varBound(eo)
		}
	}
	cur, ok := env.iv[obj]
	if !ok {
		cur = topIval
	}
	// When x's abstract value is exactly len(K)+c (e.g. n := len(pts)),
	// the comparison is a comparison on len(K) itself: forward it to the
	// fact table, where a const ceiling can coexist with the symbolic
	// bounds meetHi would otherwise prefer to keep.
	if cur.lo.set && cur.lo == cur.hi && cur.lo.kind == bkLen {
		key, c := cur.lo.key, cur.lo.c
		fact, ok := env.lens[key]
		if !ok {
			fact = ival{lo: constBound(0)}
		}
		switch op {
		case token.LSS:
			fact.hi = meetHi(fact.hi, hiB.addConst(-1-c))
		case token.LEQ:
			fact.hi = meetHi(fact.hi, hiB.addConst(-c))
		case token.GTR:
			fact.lo = meetLo(fact.lo, loB.addConst(1-c))
		case token.GEQ:
			fact.lo = meetLo(fact.lo, loB.addConst(-c))
		case token.EQL:
			fact.lo = meetLo(fact.lo, loB.addConst(-c))
			fact.hi = meetHi(fact.hi, hiB.addConst(-c))
		}
		env.lens[key] = fact
	}
	switch op {
	case token.LSS: // x < e  =>  x <= hi(e)-1
		cur.hi = meetHi(cur.hi, hiB.addConst(-1))
	case token.LEQ:
		cur.hi = meetHi(cur.hi, hiB)
	case token.GTR: // x > e  =>  x >= lo(e)+1
		cur.lo = meetLo(cur.lo, loB.addConst(1))
	case token.GEQ:
		cur.lo = meetLo(cur.lo, loB)
	case token.EQL:
		cur.lo = meetLo(cur.lo, loB)
		cur.hi = meetHi(cur.hi, hiB)
	case token.NEQ:
		// x != e: when e's value equals x's tight floor, bump it.
		if ce, ok := constOf(ve); ok {
			if cur.lo.set && cur.lo.kind == bkConst && cur.lo.c == ce {
				cur.lo = cur.lo.addConst(1)
			}
			if cur.hi.set && cur.hi.kind == bkConst && cur.hi.c == ce {
				cur.hi = cur.hi.addConst(-1)
			}
		}
	}
	env.iv[obj] = cur
}

// refineLenFact narrows len(K) facts under `len(K) op e`.
func (fa *funcAbs) refineLenFact(env *absEnv, x ast.Expr, op token.Token, e ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return
	}
	if _, isBuiltin := fa.p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	key, ok := fa.canonicalKey(call.Args[0])
	if !ok {
		return
	}
	ve, _ := fa.evalIval(env, e)
	cur, ok := env.lens[key]
	if !ok {
		cur = ival{lo: constBound(0)}
	}
	switch op {
	case token.LSS:
		cur.hi = meetHi(cur.hi, ve.hi.addConst(-1))
	case token.LEQ:
		cur.hi = meetHi(cur.hi, ve.hi)
	case token.GTR:
		cur.lo = meetLo(cur.lo, ve.lo.addConst(1))
	case token.GEQ:
		cur.lo = meetLo(cur.lo, ve.lo)
	case token.EQL:
		cur.lo, cur.hi = meetLo(cur.lo, ve.lo), meetHi(cur.hi, ve.hi)
	case token.NEQ:
		if ce, ok := constOf(ve); ok && cur.lo.set && cur.lo.kind == bkConst && cur.lo.c == ce {
			cur.lo = cur.lo.addConst(1)
		}
	}
	env.lens[key] = cur
}

func negateOp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func flipOp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// ---- proof obligations ----

// leqBound reports whether a <= b is provable in env, chasing length
// facts one level.
func leqBound(env *absEnv, a, b sbound, depth int) bool {
	if !a.set || !b.set {
		return false
	}
	if a.sameBase(b) {
		return a.c <= b.c
	}
	if depth <= 0 {
		return false
	}
	switch {
	case a.kind == bkConst && b.kind == bkLen:
		// c <= len(K)+d  <=>  len(K) >= c-d; len >= 0 always.
		need := a.c - b.c
		if need <= 0 {
			return true
		}
		if fact, ok := env.lens[b.key]; ok && fact.lo.set {
			return leqBound(env, constBound(need), fact.lo, depth-1)
		}
	case a.kind == bkLen && b.kind == bkConst:
		if fact, ok := env.lens[a.key]; ok && fact.hi.set {
			return leqBound(env, fact.hi.addConst(a.c), b, depth-1)
		}
	case a.kind == bkLen && b.kind == bkLen:
		// Chase b's floor or a's ceiling through the fact table.
		if fact, ok := env.lens[b.key]; ok && fact.lo.set {
			if leqBound(env, a, fact.lo.addConst(b.c), depth-1) {
				return true
			}
		}
		if fact, ok := env.lens[a.key]; ok && fact.hi.set {
			if leqBound(env, fact.hi.addConst(a.c), b, depth-1) {
				return true
			}
		}
	case a.kind == bkVar:
		if v, ok := env.iv[a.obj]; ok && v.hi.set {
			return leqBound(env, v.hi.addConst(a.c), b, depth-1)
		}
	case b.kind == bkVar:
		if v, ok := env.iv[b.obj]; ok && v.lo.set {
			return leqBound(env, a, v.lo.addConst(b.c), depth-1)
		}
	}
	return false
}

// geZeroBound reports whether bound >= 0 is provable.
func geZeroBound(env *absEnv, b sbound) bool {
	return leqBound(env, constBound(0), b, 2)
}

// ---- type helpers ----

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isSliceLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

func isNilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// arrayLen returns the length of an array (or pointer-to-array) type.
func arrayLen(t types.Type) (int64, bool) {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	if a, ok := u.(*types.Array); ok {
		return a.Len(), true
	}
	return 0, false
}

func isNilExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func identObj(p *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.Info.ObjectOf(id)
}

func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.SHL_ASSIGN:
		return token.SHL
	}
	return token.ILLEGAL
}
