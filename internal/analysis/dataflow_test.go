package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseTestPkg type-checks inline sources as one package under a fake
// import path, resolving the given stdlib deps through export data.
func parseTestPkg(t *testing.T, importPath string, deps []string, srcs ...string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, fmt.Sprintf("src%d.go", i), src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	var imp types.Importer
	if len(deps) > 0 {
		lookup, err := exportLookup("", deps)
		if err != nil {
			t.Fatal(err)
		}
		imp = importer.ForCompiler(fset, "gc", lookup)
	}
	pkg, info, err := typeCheck(fset, importPath, files, imp)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Types: pkg, Info: info}
}

// findFunc returns the declaration of the named function.
func findFunc(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no function %q in test package", name)
	return nil
}

// TestFuncIDStability pins the cross-package function key format:
// plain functions, value-receiver methods, and pointer-receiver
// methods must produce the same id whether the object came from source
// checking or export data (the receiver's pointerness is stripped).
func TestFuncIDStability(t *testing.T) {
	pkg := parseTestPkg(t, "repro/internal/fixture", nil, `package fixture

type T struct{}

func F()       {}
func (T) M()   {}
func (t *T) P() {}
`)
	want := map[string]string{
		"F": "repro/internal/fixture.F",
		"M": "repro/internal/fixture.(T).M",
		"P": "repro/internal/fixture.(T).P",
	}
	for name, id := range want {
		fd := findFunc(t, pkg, name)
		obj := pkg.Info.Defs[fd.Name]
		if got := funcID(obj); got != id {
			t.Errorf("funcID(%s) = %q, want %q", name, got, id)
		}
	}
}

// TestDefUseSanitizeKills proves the flow-sensitive core of detflow:
// a sort over a value is a strong, clean redefinition, so the tainted
// append defs must not reach past it.
func TestDefUseSanitizeKills(t *testing.T) {
	pkg := parseTestPkg(t, "repro/internal/fixture", []string{"sort"}, `package fixture

import "sort"

func keys(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	fd := findFunc(t, pkg, "keys")
	p := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, pkg: pkg}
	du := buildDefUse(p, fd.Body, paramObjects(p, fd))

	var outObj types.Object
	var retPos token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "out" && outObj == nil {
			outObj = pkg.Info.Defs[id]
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			retPos = ret.Results[0].Pos()
		}
		return true
	})
	if outObj == nil || retPos == token.NoPos {
		t.Fatal("fixture shape changed: no out object or return position")
	}

	defs := du.reachingAt(outObj, retPos)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs at return, want exactly the sanitize def", len(defs))
	}
	if defs[0].kind != dfSanitize {
		t.Errorf("reaching def kind = %v, want dfSanitize", defs[0].kind)
	}
}

// TestAllocSummaryChain proves the fixed-point propagation in the
// module summaries: an allocation two calls down surfaces in the
// caller's summary with the callee chain spelled out.
func TestAllocSummaryChain(t *testing.T) {
	pkg := parseTestPkg(t, "repro/internal/fixture", nil,
		`package fixture

func a() []int { return b() }
`,
		`package fixture

func b() []int { return c() }

func c() []int { return make([]int, 4) }
`)
	m := newModule([]*Package{pkg})
	sums := m.allocSummaries()

	byName := func(name string) *modFunc {
		fn := m.funcs["repro/internal/fixture."+name]
		if fn == nil {
			t.Fatalf("module did not index %q", name)
		}
		return fn
	}
	if s := sums[byName("c")]; len(s.sites) != 1 || s.sites[0].what != "make" {
		t.Errorf("c summary = %+v, want one direct make site", s)
	}
	if s := sums[byName("b")]; len(s.sites) != 1 || s.sites[0].what != "c -> make" {
		t.Errorf("b summary = %+v, want the c -> make chain", s)
	}
	if s := sums[byName("a")]; len(s.sites) != 1 || s.sites[0].what != "b -> c -> make" {
		t.Errorf("a summary = %+v, want the b -> c -> make chain", s)
	}
}

// TestModuleResolveAcrossFiles pins call resolution inside a module:
// same-package calls resolve by object identity even across files, and
// unresolvable callees (builtins, stdlib) come back nil.
func TestModuleResolveAcrossFiles(t *testing.T) {
	pkg := parseTestPkg(t, "repro/internal/fixture", nil,
		`package fixture

func caller() []int { return helper() }
`,
		`package fixture

func helper() []int { return make([]int, 1) }
`)
	m := newModule([]*Package{pkg})
	fd := findFunc(t, pkg, "caller")
	var resolved *modFunc
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && resolved == nil {
			resolved = m.resolve(pkg, call)
		}
		return true
	})
	if resolved == nil || resolved.decl.Name.Name != "helper" {
		t.Fatalf("resolve(helper()) = %v, want the helper declaration", resolved)
	}
	fd = findFunc(t, pkg, "helper")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := m.resolve(pkg, call); fn != nil {
				t.Errorf("resolve(make(...)) = %v, want nil for a builtin", fn)
			}
		}
		return true
	})
}
