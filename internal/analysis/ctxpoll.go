package analysis

// ctxpoll enforces the cancellation contract PR 3 introduced: every
// construction entry point threads a context.Context, and its long
// loops poll an internal/cancel stride Checker so a deadline or
// cancellation lands promptly even mid-scan.

import (
	"go/ast"
	"go/types"
	"strings"
)

// cancelPath is the import path of the stride-poller package.
const cancelPath = "repro/internal/cancel"

// ctxPollPackages are the packages whose constructions promise prompt
// cancellation: the deterministic construction layers plus the engine
// that dispatches them.
var ctxPollPackages = []string{
	"repro/internal/core",
	"repro/internal/mst",
	"repro/internal/steiner",
	"repro/internal/baseline",
	"repro/internal/exchange",
	"repro/internal/exact",
	"repro/internal/delay",
	"repro/internal/engine",
	"repro/internal/serve",
}

// CtxPoll flags instance-sized loops in cancellable functions that
// never reach a cancellation poll. A function is cancellable when it
// handles a context.Context or a cancel.Checker (parameter, local, or
// receiver field); inside one, a loop whose trip count scales with the
// instance must poll — otherwise a cancelled construction keeps burning
// CPU until the scan finishes, which on the O(n²) edge order is the
// whole point of cancellation.
//
// A loop "reaches a poll" when its body (or an enclosing loop's body in
// the same function) contains, directly or transitively through
// package-local calls, one of:
//
//   - a cancel.Checker Tick or Err call (the stride poller),
//   - a ctx.Done() / ctx.Err() read, e.g. inside a select, or
//   - a call that passes a context.Context on — the callee inherits
//     the polling obligation (checked when that callee is in an
//     allowlisted package, assumed honored for imported ones).
//
// "Instance-sized" is a syntactic approximation: ranges over slices,
// maps and channels, `for` statements without a condition, and `for`
// conditions that read a length, field or element. Loops bounded by a
// plain local variable (worker counts, retry budgets) are exempt —
// known imprecision, documented in DESIGN.md §10. To keep the signal
// useful, only loops that do real work per iteration are held to the
// contract: a body with a nested loop or a call into this module.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "instance-sized loops in cancellable construction code must reach a cancel.Checker/ctx poll",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, ctxPollPackages...)
	},
	Run: runCtxPoll,
}

func runCtxPoll(p *Pass) {
	cg := pkgCallGraph(p)
	for _, f := range p.Files {
		// Visit every function scope (declaration or literal)
		// separately: a goroutine body polls for itself.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncLoops(p, cg, fn.Body)
				}
			case *ast.FuncLit:
				checkFuncLoops(p, cg, fn.Body)
			}
			return true
		})
	}
}

// checkFuncLoops walks one function scope's own statements (not nested
// function literals) and reports unpolled instance-sized loops.
func checkFuncLoops(p *Pass, cg *callGraph, body *ast.BlockStmt) {
	if !handlesCancellation(p, body) {
		return
	}
	// polled caches per-loop "body reaches a poll" so ancestors are
	// only scanned once.
	polled := map[ast.Node]bool{}
	reaches := func(loop ast.Node) bool {
		if v, ok := polled[loop]; ok {
			return v
		}
		v := cg.bodyReaches(p, loopBody(loop), isPollCall)
		polled[loop] = v
		return v
	}
	var visit func(n ast.Node, enclosing []ast.Node)
	visit = func(n ast.Node, enclosing []ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m.(type) {
			case *ast.FuncLit:
				return false // separate scope, visited by the caller
			case *ast.ForStmt, *ast.RangeStmt:
				if instanceSized(p, m) && loopDoesWork(p, m) {
					ok := reaches(m)
					for _, anc := range enclosing {
						ok = ok || reaches(anc)
					}
					if !ok {
						p.Reportf(m.Pos(),
							"instance-sized loop without a cancellation poll: add a cancel.Checker Tick/Err (or poll ctx) so cancellation lands mid-scan")
					}
				}
				visit(loopBody(m), append(enclosing, m))
				return false
			}
			return true
		})
	}
	visit(body, nil)
}

// handlesCancellation reports whether the function scope touches a
// context.Context or cancel.Checker value anywhere (parameters count
// through their uses, receiver fields through selector expressions).
func handlesCancellation(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := p.TypeOf(e); t != nil && (isContextType(t) || isCancelChecker(t)) {
			found = true
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isCancelChecker(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == cancelPath && named.Obj().Name() == "Checker"
}

// isPollCall reports whether call is a cancellation poll: a
// cancel.Checker Tick/Err, a context Done/Err read, or a call that
// forwards a context.Context to its callee.
func isPollCall(p *Pass, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == cancelPath &&
				(obj.Name() == "Tick" || obj.Name() == "Err"):
				return true
			case obj.Pkg().Path() == "context" &&
				(obj.Name() == "Done" || obj.Name() == "Err"):
				return true
			}
		}
	}
	for _, arg := range call.Args {
		if t := p.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// loopBody returns the body block of a for or range statement.
func loopBody(loop ast.Node) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// instanceSized approximates "trip count scales with the instance":
// ranging over a slice, map, channel or non-constant integer, a `for`
// without a condition, or a `for` condition that reads a length, field
// or element (e.g. `len(t.Edges) < e.n-1`).
func instanceSized(p *Pass, loop ast.Node) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		t := p.TypeOf(l.X)
		if t == nil {
			return false
		}
		switch u := t.Underlying().(type) {
		case *types.Slice, *types.Map, *types.Chan:
			return true
		case *types.Basic:
			if u.Info()&types.IsInteger != 0 {
				tv, ok := p.Info.Types[l.X]
				return !ok || tv.Value == nil // non-constant bound
			}
		}
		return false
	case *ast.ForStmt:
		if l.Cond == nil {
			return true
		}
		sized := false
		ast.Inspect(l.Cond, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.CallExpr, *ast.SelectorExpr, *ast.IndexExpr:
				sized = true
			}
			return !sized
		})
		return sized
	}
	return false
}

// loopDoesWork reports whether the loop body performs per-iteration
// work worth polling around: a nested loop, or a call into this module
// (same package or any repro/... import). Loops that only shuffle
// locals or call the stdlib finish in microseconds and may stay
// unpolled.
func loopDoesWork(p *Pass, loop ast.Node) bool {
	works := false
	ast.Inspect(loopBody(loop), func(n ast.Node) bool {
		if works {
			return false
		}
		switch m := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if n != loop {
				works = true
				return false
			}
		case *ast.CallExpr:
			if obj := calleeAny(p, m); obj != nil {
				if obj.Pkg() == p.Pkg ||
					(obj.Pkg() != nil && strings.HasPrefix(obj.Pkg().Path(), "repro/")) {
					works = true
					return false
				}
			}
		}
		return true
	})
	return works
}

// calleeAny resolves a call to its function object like calleeObject,
// but without restricting to *types.Func declarations (func-typed
// variables count as work too).
func calleeAny(p *Pass, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fn]
	case *ast.SelectorExpr:
		return p.Info.Uses[fn.Sel]
	}
	return nil
}
