package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one testdata fixture directory as
// a single package under the given (fake) import path. The fake path
// lets each analyzer's AppliesTo see the fixture as a package it
// covers.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	lookup, err := exportLookup("", []string{
		"fmt", "sort", "time", "math", "context", "sync", "runtime",
		"strings", "repro/internal/obs", "repro/internal/cancel",
	})
	if err != nil {
		t.Fatalf("building export lookup: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	pkg, info, err := typeCheck(fset, importPath, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}
}

// wantRe matches a trailing "// want:<analyzer>" expectation marker.
var wantRe = regexp.MustCompile(`// want:(\w+)$`)

// fixtureWants scans the fixture sources for expectation markers and
// returns the exact file:line -> analyzer expectations.
func fixtureWants(t *testing.T, dir string) map[string]string {
	t.Helper()
	wants := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(strings.TrimRight(sc.Text(), " \t")); m != nil {
				wants[fmt.Sprintf("%s:%d", path, line)] = m[1]
			}
		}
		f.Close()
	}
	return wants
}

// checkFixture runs one analyzer over its fixture directory and
// asserts the diagnostics match the want markers exactly, position by
// position.
func checkFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, importPath)
	wants := fixtureWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want markers", dir)
	}
	got := map[string][]string{}
	for _, d := range Run(pkg, []*Analyzer{a}) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Analyzer+": "+d.Message)
	}
	for key, analyzer := range wants {
		ds := got[key]
		switch {
		case len(ds) == 0:
			t.Errorf("%s: want a %s diagnostic, got none", key, analyzer)
		case len(ds) != 1:
			t.Errorf("%s: want exactly one diagnostic, got %d: %v", key, len(ds), ds)
		case !strings.HasPrefix(ds[0], analyzer+": "):
			t.Errorf("%s: want a %s diagnostic, got %q", key, analyzer, ds[0])
		}
	}
	var extra []string
	for key, ds := range got {
		if _, ok := wants[key]; !ok {
			extra = append(extra, fmt.Sprintf("%s: %v", key, ds))
		}
	}
	sort.Strings(extra)
	for _, e := range extra {
		t.Errorf("unexpected diagnostic: %s", e)
	}
}

func TestFloatCmpFixture(t *testing.T) {
	checkFixture(t, FloatCmp, filepath.Join("testdata", "floatcmp"), "repro/internal/fixture")
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, MapOrder, filepath.Join("testdata", "maporder"), "repro/internal/fixture")
}

func TestWallClockFixture(t *testing.T) {
	// The fake import path makes the fixture count as a deterministic
	// construction package.
	checkFixture(t, WallClock, filepath.Join("testdata", "wallclock"), "repro/internal/core")
}

func TestObsGateFixture(t *testing.T) {
	checkFixture(t, ObsGate, filepath.Join("testdata", "obsgate"), "repro/internal/fixture")
}

func TestCtxPollFixture(t *testing.T) {
	// The fake import path makes the fixture count as a cancellable
	// construction package.
	checkFixture(t, CtxPoll, filepath.Join("testdata", "ctxpoll"), "repro/internal/core")
}

func TestParallelGateFixture(t *testing.T) {
	checkFixture(t, ParallelGate, filepath.Join("testdata", "parallelgate"), "repro/internal/graph")
}

func TestWaitPairFixture(t *testing.T) {
	checkFixture(t, WaitPair, filepath.Join("testdata", "waitpair"), "repro/internal/graph")
}

func TestSharedWriteFixture(t *testing.T) {
	checkFixture(t, SharedWrite, filepath.Join("testdata", "sharedwrite"), "repro/internal/graph")
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, ErrDrop, filepath.Join("testdata", "errdrop"), "repro/internal/fixture")
}

func TestDetFlowFixture(t *testing.T) {
	// The fake import path makes the fixture count as a deterministic
	// construction package.
	checkFixture(t, DetFlow, filepath.Join("testdata", "detflow"), "repro/internal/core")
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, CtxFlow, filepath.Join("testdata", "ctxflow"), "repro/internal/core")
}

func TestAllocLoopFixture(t *testing.T) {
	// The fake import path makes the fixture count as a hot package
	// with a zero per-iteration allocation budget.
	checkFixture(t, AllocLoop, filepath.Join("testdata", "allocloop"), "repro/internal/core")
}

func TestLockOrderFixture(t *testing.T) {
	// The fake import path makes the fixture count as the serving
	// layer, whose two mutex classes motivated the analyzer.
	checkFixture(t, LockOrder, filepath.Join("testdata", "lockorder"), "repro/internal/serve")
}

func TestIndexBoundFixture(t *testing.T) {
	// The fake import path makes the fixture count as a hot package
	// whose subscripts carry proof obligations.
	checkFixture(t, IndexBound, filepath.Join("testdata", "indexbound"), "repro/internal/core")
}

func TestNilFlowFixture(t *testing.T) {
	checkFixture(t, NilFlow, filepath.Join("testdata", "nilflow"), "repro/internal/core")
}

func TestIntWidthFixture(t *testing.T) {
	checkFixture(t, IntWidth, filepath.Join("testdata", "intwidth"), "repro/internal/core")
}

func TestChanLeakFixture(t *testing.T) {
	checkFixture(t, ChanLeak, filepath.Join("testdata", "chanleak"), "repro/internal/core")
}

// TestAppliesTo pins the per-analyzer package allowlists.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{FloatCmp, "repro/internal/geom", false}, // hosts the approved helpers
		{FloatCmp, "repro/internal/core", true},
		{FloatCmp, "repro", true},
		{WallClock, "repro/internal/core", true},
		{WallClock, "repro/internal/steiner", true},
		{WallClock, "repro/internal/engine", true}, // dispatch must stay deterministic
		{WallClock, "repro/internal/cancel", true},
		{WallClock, "repro/internal/router", false}, // times its own parallel runs
		{WallClock, "repro/internal/experiments", false},
		{ObsGate, "repro/internal/router", true},
		{ObsGate, "repro/internal/obs", false}, // the instruments themselves
		{ObsGate, "repro/cmd/bmstree", false},  // binaries run off the hot path
		{CtxPoll, "repro/internal/core", true},
		{CtxPoll, "repro/internal/engine", true},
		{CtxPoll, "repro/internal/geom", false}, // matrix fill takes no ctx by design
		{ParallelGate, "repro/internal/geom", true},
		{ParallelGate, "repro/internal/graph", true},
		{ParallelGate, "repro/internal/engine", true},
		{ParallelGate, "repro/internal/router", false}, // bounded pool, no serial twin
		{WaitPair, "repro/internal/router", true},
		{WaitPair, "repro/internal/obs", false},
		{SharedWrite, "repro/internal/engine", true},
		// The construction layers grew parallel kernels (P-matrix
		// refresh, Gabow branches, BKST pair seeding) under the full
		// worker-gate discipline.
		{ParallelGate, "repro/internal/core", true},
		{ParallelGate, "repro/internal/exact", true},
		{ParallelGate, "repro/internal/steiner", true},
		{SharedWrite, "repro/internal/core", true},
		{SharedWrite, "repro/internal/exact", true},
		{SharedWrite, "repro/internal/steiner", true},
		{WaitPair, "repro/internal/core", true},
		{WaitPair, "repro/internal/exact", true},
		{WaitPair, "repro/internal/steiner", true},
		// The serving layer promises the same concurrency discipline as
		// the engine it fronts (but keeps wall-clock freedom: request
		// timing is its job).
		{CtxPoll, "repro/internal/serve", true},
		{ParallelGate, "repro/internal/serve", true},
		{WaitPair, "repro/internal/serve", true},
		{SharedWrite, "repro/internal/serve", true},
		{WallClock, "repro/internal/serve", false},
		// Interprocedural analyzers. detflow covers every package with
		// a byte-determinism contract on its outputs, including the
		// serving layer and the seeded load generator.
		{DetFlow, "repro/internal/core", true},
		{DetFlow, "repro/internal/serve", true},
		{DetFlow, "repro/internal/obs", true}, // snapshot ordering, not clocks
		{DetFlow, "repro/tools/loadgen", true},
		{DetFlow, "repro/internal/experiments", false}, // times and prints freely
		{CtxFlow, "repro/internal/core", true},
		{CtxFlow, "repro/internal/serve", true},
		// Value-flow analyzers. The kernel provers cover the six hot
		// construction packages; nilflow adds the gated-observation and
		// serving layers (nil receivers are their core idiom); chanleak
		// adds every package that spawns goroutines against channels.
		{IndexBound, "repro/internal/core", true},
		{IndexBound, "repro/internal/serve", false}, // no kernel index math
		{NilFlow, "repro/internal/obs", true},
		{NilFlow, "repro/cmd/bmstree", false}, // binaries fail loudly anyway
		{IntWidth, "repro/internal/graph", true},
		{IntWidth, "repro/internal/obs", false}, // counters are int64 end to end
		{ChanLeak, "repro/internal/serve", true},
		{ChanLeak, "repro/internal/obs", false}, // records in-line, never spawns
		{CtxFlow, "repro/internal/geom", false}, // matrix fill takes no ctx by design
		{AllocLoop, "repro/internal/core", true},
		{AllocLoop, "repro/internal/steiner", true},
		{AllocLoop, "repro/internal/engine", true},
		{AllocLoop, "repro/internal/serve", false}, // request path allocates per request by design
		{LockOrder, "repro/internal/serve", true},
		{LockOrder, "repro/internal/obs", true},
		{LockOrder, "repro/internal/mst", false}, // lock-free by construction
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if MapOrder.AppliesTo != nil {
		t.Error("maporder must apply to every package")
	}
	if ErrDrop.AppliesTo != nil {
		t.Error("errdrop must apply to every package")
	}
}

// TestSuppressionDiagnostics covers the directive edge cases: a
// malformed directive (no reason) never suppresses and is reported,
// and an unused directive for an analyzer that ran is reported.
func TestSuppressionDiagnostics(t *testing.T) {
	src := `package fixture

func cmp(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}

//lint:ignore floatcmp stale suppression with nothing underneath
func clean(a, b int) bool {
	return a == b
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "suppress.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := typeCheck(fset, "repro/internal/fixture", []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &Package{ImportPath: "repro/internal/fixture", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
	var lines []string
	for _, d := range Run(p, []*Analyzer{FloatCmp}) {
		lines = append(lines, fmt.Sprintf("%d %s", d.Pos.Line, d.Analyzer))
	}
	want := []string{
		"4 lint",     // malformed: no reason
		"5 floatcmp", // not suppressed by the malformed directive
		"8 lint",     // unused directive
	}
	if strings.Join(lines, ", ") != strings.Join(want, ", ") {
		t.Errorf("diagnostics = %v, want %v", lines, want)
	}
}

// TestLoadRepo smoke-tests the go list + export data loader on this
// very package.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load("", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "repro/internal/analysis" {
		t.Fatalf("Load(.) = %v, want the analysis package itself", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Fatal("loaded package has no syntax or types")
	}
}
