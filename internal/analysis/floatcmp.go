package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags exact equality on floating-point values: `==`, `!=`
// and switch cases whose operands have a float underlying type.
//
// Geometric weights in this repository are float64 Manhattan or
// Euclidean distances; two independently computed distances that are
// mathematically equal routinely differ in the last ulp (Euclidean
// mode especially, via math.Hypot), so exact comparison silently
// corrupts the Table 1–5 reproductions. Comparisons belong in the
// approved epsilon helpers of internal/geom (Eq, EqWithin, Collinear,
// OnSegment, UniqueCoords), which is the one package this analyzer
// does not visit.
//
// Two exact idioms remain allowed, because they compare against values
// that are assigned, never computed: comparison with the constant zero
// (the "unset" sentinel) and comparison with math.Inf(...) or
// math.MaxFloat64 (the "infinite/unbounded" sentinel). Anything else
// needs either a geom helper or a //lint:ignore floatcmp with a
// reason — sort comparators that must stay a strict total order are
// the usual legitimate case.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!=/switch-case comparison of float operands outside internal/geom",
	AppliesTo: func(importPath string) bool {
		return importPath != "repro/internal/geom"
	},
	Run: runFloatCmp,
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(p.TypeOf(n.X)) && !isFloat(p.TypeOf(n.Y)) {
					return true
				}
				if floatSentinel(p, n.X) || floatSentinel(p, n.Y) {
					return true
				}
				p.Reportf(n.OpPos,
					"exact float comparison (%s): use a geom epsilon helper, or //lint:ignore floatcmp with a reason",
					n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil || !isFloat(p.TypeOf(n.Tag)) {
					return true
				}
				p.Reportf(n.Switch,
					"switch on a float value compares cases exactly: use if/else with a geom epsilon helper")
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (covers named types and untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// floatSentinel reports whether e is one of the allowed exact
// comparands: the constant zero, math.Inf(...), or math.MaxFloat64.
func floatSentinel(p *Pass, e ast.Expr) bool {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Float || tv.Value.Kind() == constant.Int {
			if constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0)) {
				return true
			}
			if constant.Compare(tv.Value, token.EQL, constant.MakeFloat64(maxFloat64)) ||
				constant.Compare(tv.Value, token.EQL, constant.MakeFloat64(-maxFloat64)) {
				return true
			}
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if isPkgFunc(p, call.Fun, "math", "Inf") {
			return true
		}
	}
	return false
}

const maxFloat64 = 0x1p1023 * (1 + (1 - 0x1p-52)) // math.MaxFloat64

// isPkgFunc reports whether fun resolves to the function pkg.name.
func isPkgFunc(p *Pass, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}
