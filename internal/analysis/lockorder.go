package analysis

// lockorder builds a module-wide lock-acquisition-order graph and
// reports cycles. The serving layer holds two mutex classes — the
// instance cache's LRU mutex and the per-entry build mutexes — and the
// deadlock shape worth guarding against is exactly the classic one: one
// path locks cache.mu then entry.mu, another locks entry.mu then calls
// back into a cache method that takes cache.mu. Neither function is
// wrong in isolation; only the global order graph shows the cycle.
//
// Lock classes are syntactic-by-type, not per-instance: every
// cacheEntry.mu is one class, because any two entries are interleavable
// at runtime. A self-edge (acquiring a class while holding it) is
// reported too — with per-instance locks of one class there is no
// program-visible order, so nested acquisition is only safe with a
// global tie-break the analyzer cannot see.
//
// Within a function, the may-held set is propagated over the CFG
// (union at joins); Lock/RLock adds the class and records an edge from
// every held class, Unlock/RUnlock removes it, a deferred Unlock keeps
// the class held until the exit chain (where the CFG places the call).
// Calls into the module add edges from the held set to everything the
// callee may transitively acquire. Mutexes held across unresolvable
// calls (interface dispatch, func values) add no edges — the analyzer
// under-approximates there rather than flooding findings.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder reports lock-acquisition-order cycles across the module.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order over named mutex classes must be acyclic module-wide",
	AppliesTo: func(importPath string) bool {
		return importPath == "repro" || pathIn(importPath,
			"repro/internal/serve", "repro/internal/engine", "repro/internal/obs",
			"repro/internal/core", "repro/tools/loadgen")
	},
	Run: runLockOrder,
}

// lockSite is one place an ordering edge was observed.
type lockSite struct {
	fn  *modFunc
	pos token.Pos
}

// lockGraph is the module's acquisition-order graph: edges[a][b] holds
// the sites where class b was acquired (directly or via a callee) while
// a was held.
type lockGraph struct {
	edges map[string]map[string][]lockSite
	acq   map[*modFunc]map[string]bool // transitive may-acquire sets
}

func runLockOrder(p *Pass) {
	m := p.module()
	g := m.lockGraph()
	for _, from := range sortedKeys(g.edges) {
		tos := g.edges[from]
		for _, to := range sortedKeys(tos) {
			if !g.reaches(to, from) {
				continue
			}
			cycle := append([]string{from}, g.path(to, from)...)
			for _, site := range tos[to] {
				if site.fn.pkg != p.pkg {
					continue
				}
				p.Reportf(site.pos,
					"lock order cycle: %s acquired while holding %s (cycle: %s)",
					to, from, joinArrow(cycle))
			}
		}
	}
}

// lockGraph computes (once per module) the acquisition-order graph.
func (m *Module) lockGraph() *lockGraph {
	if m.locks != nil {
		return m.locks
	}
	g := &lockGraph{
		edges: map[string]map[string][]lockSite{},
		acq:   map[*modFunc]map[string]bool{},
	}
	m.locks = g

	// Transitive may-acquire sets, by fixed point.
	for _, fn := range m.order {
		g.acq[fn] = directAcquires(fn)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			set := g.acq[fn]
			forEachCall(fn, func(call *ast.CallExpr) {
				callee := m.resolve(fn.pkg, call)
				if callee == nil {
					return
				}
				for c := range g.acq[callee] {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			})
		}
	}

	// Per-function held-set dataflow recording ordering edges.
	for _, fn := range m.order {
		g.heldEdges(m, fn)
	}
	return g
}

// directAcquires collects the lock classes fn locks anywhere in its
// body (nested function literals excluded — a funclit is a different
// goroutine's worth of behavior more often than not).
func directAcquires(fn *modFunc) map[string]bool {
	p := fn.pass()
	set := map[string]bool{}
	forEachCall(fn, func(call *ast.CallExpr) {
		if class, op := lockClassOp(p, call); class != "" && (op == "Lock" || op == "RLock") {
			set[class] = true
		}
	})
	return set
}

// heldEdges runs the may-held dataflow over fn's CFG and records
// ordering edges into g.
func (g *lockGraph) heldEdges(m *Module, fn *modFunc) {
	p := fn.pass()
	cfg := buildCFG(fn.decl.Body)
	in := make([]map[string]bool, len(cfg.blocks))
	out := make([]map[string]bool, len(cfg.blocks))
	for i := range in {
		in[i] = map[string]bool{}
		out[i] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.blocks {
			ib := in[blk.index]
			for _, pred := range blk.preds {
				for c := range out[pred.index] {
					if !ib[c] {
						ib[c] = true
						changed = true
					}
				}
			}
			ob := g.applyBlock(m, p, fn, blk, ib)
			if !sameSet(ob, out[blk.index]) {
				out[blk.index] = ob
				changed = true
			}
		}
	}
}

// applyBlock transfers the held set through one block, recording edges
// for every acquisition made while something is held.
func (g *lockGraph) applyBlock(m *Module, p *Pass, fn *modFunc, blk *cfgBlock, held map[string]bool) map[string]bool {
	h := map[string]bool{}
	for c := range held {
		h[c] = true
	}
	for _, n := range blk.nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// The deferred call runs on the exit chain; the CFG's
				// defer blocks carry it there.
				return false
			case *ast.CallExpr:
				g.applyCall(m, p, fn, x, h)
			}
			return true
		})
	}
	return h
}

func (g *lockGraph) applyCall(m *Module, p *Pass, fn *modFunc, call *ast.CallExpr, held map[string]bool) {
	if class, op := lockClassOp(p, call); class != "" {
		switch op {
		case "Lock", "RLock":
			for _, hc := range sortedSet(held) {
				g.addEdge(hc, class, fn, call.Pos())
			}
			held[class] = true
		case "Unlock", "RUnlock":
			delete(held, class)
		}
		return
	}
	callee := m.resolve(fn.pkg, call)
	if callee == nil || len(held) == 0 {
		return
	}
	for _, hc := range sortedSet(held) {
		for _, ac := range sortedSet(g.acq[callee]) {
			g.addEdge(hc, ac, fn, call.Pos())
		}
	}
}

func (g *lockGraph) addEdge(from, to string, fn *modFunc, pos token.Pos) {
	tos := g.edges[from]
	if tos == nil {
		tos = map[string][]lockSite{}
		g.edges[from] = tos
	}
	for _, s := range tos[to] {
		if s.pos == pos {
			return
		}
	}
	tos[to] = append(tos[to], lockSite{fn: fn, pos: pos})
}

// reaches reports whether from reaches target through graph edges
// (trivially true when from == target).
func (g *lockGraph) reaches(from, target string) bool {
	if from == target {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range sortedKeys(g.edges[c]) {
			if next == target {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// path returns a shortest class path from -> ... -> target (inclusive
// of both ends; just [from] when from == target).
func (g *lockGraph) path(from, target string) []string {
	if from == target {
		return []string{from}
	}
	prev := map[string]string{}
	queue := []string{from}
	seen := map[string]bool{from: true}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, next := range sortedKeys(g.edges[c]) {
			if seen[next] {
				continue
			}
			seen[next] = true
			prev[next] = c
			if next == target {
				var rev []string
				for at := target; ; at = prev[at] {
					rev = append(rev, at)
					if at == from {
						break
					}
				}
				path := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return []string{from, target} // unreachable in practice: reaches() gated us
}

// lockClassOp classifies a call as a sync.Mutex/RWMutex operation on a
// nameable lock class. Returns ("", "") for anything else, including
// operations on function-local mutexes (no cross-goroutine order to
// get wrong that this analyzer can name).
func lockClassOp(p *Pass, call *ast.CallExpr) (class, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	return lockClass(p, sel.X), obj.Name()
}

// lockClass names the mutex: "path.Type.field" for a struct-field
// mutex, "path.var" for a package-level var, "path.Type.(embedded)"
// for an embedded mutex reached through its enclosing struct, "" for
// locals.
func lockClass(p *Pass, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		fieldObj := p.Info.Uses[x.Sel]
		if fieldObj == nil {
			return ""
		}
		if owner := namedOf(p, x.X); owner != "" {
			return owner + "." + fieldObj.Name()
		}
		// Selector on a package: sel.X is the package ident, the field
		// object is a package-level var.
		if fieldObj.Pkg() != nil && fieldObj.Parent() == fieldObj.Pkg().Scope() {
			return fieldObj.Pkg().Path() + "." + fieldObj.Name()
		}
		return ""
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		// Embedded mutex promoted through a local value: name the
		// enclosing type when there is one.
		if owner := namedOf(p, x); owner != "" {
			return owner + ".(embedded)"
		}
		return ""
	}
	// Method value on a struct with an embedded mutex: c.Lock().
	if owner := namedOf(p, x); owner != "" {
		return owner + ".(embedded)"
	}
	return ""
}

// namedOf returns "path.TypeName" for an expression whose type (after
// pointer stripping) is a named struct type, excluding the sync types
// themselves (a bare sync.Mutex value is only nameable through its
// owner).
func namedOf(p *Pass, x ast.Expr) string {
	t := p.TypeOf(x)
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() == "sync" {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedSet(s map[string]bool) []string {
	return sortedKeys(s)
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func joinArrow(classes []string) string {
	out := ""
	for i, c := range classes {
		if i > 0 {
			out += " -> "
		}
		out += shortClass(c)
	}
	return out
}

// shortClass trims the import path down to its basename for readable
// messages ("serve.instCache.mu" instead of the full path).
func shortClass(c string) string {
	for i := len(c) - 1; i >= 0; i-- {
		if c[i] == '/' {
			return c[i+1:]
		}
	}
	return c
}
