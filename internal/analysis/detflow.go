package analysis

// detflow enforces the determinism contract interprocedurally: a value
// whose bytes or element order can differ between two runs on the same
// input (map iteration order, select winners, wall-clock reads, random
// values, formatted pointers) must not reach a construction return
// value, a response/output writer, or an obs snapshot without passing
// through an ordering sink (sort.*, slices.*) first. The function-local
// maporder analyzer catches the direct append-under-map-range shape;
// detflow follows the value through def-use chains and across call
// boundaries via the module taint summaries, so a map-ordered slice
// built three helpers down still lights up at the exported return that
// leaks it.

import (
	"go/ast"
	"go/types"
	"strings"
)

// detFlowPackages are the packages with a byte-determinism contract on
// their outputs: the construction layers, the dispatch engine, the
// serving layer, the obs snapshot producer, and the deterministic load
// generator.
var detFlowPackages = []string{
	"repro",
	"repro/internal/core",
	"repro/internal/mst",
	"repro/internal/steiner",
	"repro/internal/baseline",
	"repro/internal/exchange",
	"repro/internal/exact",
	"repro/internal/delay",
	"repro/internal/engine",
	"repro/internal/graph",
	"repro/internal/serve",
	"repro/internal/obs",
	"repro/tools/loadgen",
}

// DetFlow reports nondeterminism-tainted values reaching an
// order-sensitive sink. Sinks are:
//
//   - any return value of an exported function or method (the
//     package's determinism contract applies to its API surface);
//   - output writes: fmt print family, Write/WriteString/WriteByte/
//     WriteRune methods, and (*json.Encoder).Encode / json.Marshal;
//   - http.ResponseWriter writes in the serving layer (covered by the
//     Write rule — the writer's static type does not matter).
//
// A sort.* or slices.* call over the value re-establishes determinism
// (the def-use engine models it as a clean redefinition), so the
// approved append-then-sort idiom passes, including when the append
// and the sort live in different branches.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "nondeterministic values (map order, select winners, clocks, pointers) must not reach returns or output unsorted",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, detFlowPackages...)
	},
	Run: runDetFlow,
}

func runDetFlow(p *Pass) {
	m := p.module()
	m.taintSummaries() // ensure summaries exist before local evaluation
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := m.byObj[p.Info.Defs[fd.Name]]
			if fn == nil {
				continue
			}
			tc := newTaintCtx(p, m, fn.defUse(), fd.Body, false)
			if ast.IsExported(fd.Name.Name) {
				for _, tr := range tc.returnTaints(fn) {
					pos := tr.ret.Pos()
					if tr.expr != nil {
						pos = tr.expr.Pos()
					}
					p.Reportf(pos,
						"nondeterministic value reaches exported return: %s; order it with sort.* before returning",
						tr.info.why)
				}
			}
			reportSinkCalls(p, tc, fd)
		}
	}
}

// reportSinkCalls flags output-writing calls whose payload is tainted.
func reportSinkCalls(p *Pass, tc *taintCtx, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink, payload := outputSink(p, call)
		if sink == "" {
			return true
		}
		for _, arg := range payload {
			if info := tc.taintExpr(arg, call.Pos()); info.tainted {
				p.Reportf(call.Pos(),
					"nondeterministic value reaches output via %s: %s; sort it first", sink, info.why)
				break
			}
		}
		return true
	})
}

// outputSink classifies a call as an output sink and returns the
// payload arguments to check. fmt.Fprint* skips the writer argument.
func outputSink(p *Pass, call *ast.CallExpr) (string, []ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return "", nil
	}
	name := obj.Name()
	if obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt":
			switch {
			case strings.HasPrefix(name, "Fprint"):
				if len(call.Args) > 0 {
					return "fmt." + name, call.Args[1:]
				}
			case strings.HasPrefix(name, "Print"):
				return "fmt." + name, call.Args
			}
			return "", nil
		case "encoding/json":
			if name == "Marshal" || name == "MarshalIndent" {
				return "json." + name, call.Args
			}
			return "", nil
		}
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return name, call.Args
		case "Encode":
			if recvPkgPath(sig) == "encoding/json" {
				return "json.Encoder.Encode", call.Args
			}
		}
	}
	return "", nil
}

// recvPkgPath returns the package path of a method's receiver type.
func recvPkgPath(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}
