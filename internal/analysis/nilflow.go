package analysis

// nilflow reports dereferences of pointers and writes through maps that
// the value-flow layer shows *may be nil on some path*: a nil literal
// or zero-value binding reaches the site, or a dominating `x == nil`
// branch admits it. Absence of evidence is not a finding — parameters
// and opaque call results are assumed non-nil, so the analyzer's
// positives are flows the code itself introduced.
//
// The nil-gated obs idiom is the intended proof, not a finding:
//
//	sc := reg.Scope(name)   // may return nil: no evidence either way
//	if sc != nil {
//	    sc.Counter(n).Inc() // refined non-nil on this edge: clean
//	}
//
// and the converse — a deref on the nil edge of the programmer's own
// check — is the canonical true positive:
//
//	if p == nil { log.Print(p.f) } // finding
//
// Map reads are exempt (reading a nil map is defined); map writes and
// deletes panic and are checked.

import (
	"go/ast"
	"go/types"
)

var nilFlowPackages = []string{
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
	"repro/internal/serve",
	"repro/internal/obs",
	"repro/internal/router",
}

// NilFlow reports derefs of possibly-nil pointers and writes through
// possibly-nil maps, as proved by the value-flow nil lattice.
var NilFlow = &Analyzer{
	Name: "nilflow",
	Doc:  "pointer derefs and map writes must not be reachable by a value that is nil on some path",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, nilFlowPackages...)
	},
	Run: runNilFlow,
}

func runNilFlow(p *Pass) {
	forEachFuncAbs(p, func(fa *funcAbs, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.StarExpr:
				checkNilDeref(p, fa, n.X, "dereference")
			case *ast.SelectorExpr:
				// Field access / method call through a pointer-typed
				// identifier auto-derefs. Selections on package names,
				// struct values and interfaces are not derefs.
				if t := p.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Pointer); ok {
						checkNilDeref(p, fa, n.X, "selector")
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkNilMapWrite(p, fa, lhs)
				}
			case *ast.IndexExpr:
				// Reads of nil maps and nil slices are defined (zero
				// value / len 0, the latter indexbound's concern), and
				// so is delete on a nil map; only the write side,
				// handled via AssignStmt above, panics.
				return true
			}
			return true
		})
	})
}

// checkNilDeref reports when the identifier being dereferenced carries
// positive nil evidence at this point.
func checkNilDeref(p *Pass, fa *funcAbs, x ast.Expr, what string) {
	obj := identObj(p, x)
	if obj == nil || fa.volatile[obj] {
		return
	}
	if _, ok := obj.(*types.Var); !ok {
		return
	}
	env := fa.envAt(x.Pos())
	st, ok := env.nl[obj]
	if !ok || !st.mayNil {
		return
	}
	if st.mayNonNil {
		p.Reportf(x.Pos(), "%s of %s, which is nil on some path to this point", what, obj.Name())
	} else {
		p.Reportf(x.Pos(), "%s of %s, which is provably nil here", what, obj.Name())
	}
}

// checkNilMapWrite reports `m[k] = v` where m may be nil.
func checkNilMapWrite(p *Pass, fa *funcAbs, lhs ast.Expr) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := p.TypeOf(ix.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			checkNilDerefMap(p, fa, ix.X)
		}
	}
}

func checkNilDerefMap(p *Pass, fa *funcAbs, x ast.Expr) {
	obj := identObj(p, x)
	if obj == nil || fa.volatile[obj] {
		return
	}
	env := fa.envAt(x.Pos())
	if st, ok := env.nl[obj]; ok && st.mayNil {
		p.Reportf(x.Pos(), "write through map %s, which is nil on some path to this point", obj.Name())
	}
}
