package analysis

// cfg.go builds intraprocedural control-flow graphs over go/ast
// function bodies. The graphs are deliberately modest — basic blocks
// with successor/predecessor edges, loop back-edges, a defer chain on
// the exit paths, and pessimistic panic edges into that chain — which
// is exactly enough for the dominance and reachability questions the
// concurrency analyzers ask ("is this go statement dominated by a
// worker gate", "does every exit path of this goroutine body run
// wg.Done"). Known imprecision, by design:
//
//   - function literals are opaque: a FuncLit appearing in a statement
//     is part of that statement's node, and its body gets its own CFG
//     when an analyzer asks for one — the outer graph never descends
//     into it;
//   - defers are assumed unconditional: a defer registered inside a
//     branch still contributes its call to the exit chain of every
//     path;
//   - goto is treated as a terminator without an edge to its label
//     (the repository does not use goto).

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfgBlock is one basic block: a run of statements (and branch
// condition expressions) with no internal control flow.
type cfgBlock struct {
	index int
	kind  string // entry, if.cond, for.head, range.head, defer, exit, ...
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks    []*cfgBlock
	entry     *cfgBlock
	exit      *cfgBlock
	deferHead *cfgBlock // first block of the defer chain; nil without defers
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock("entry")
	b.ret = b.newBlock("return")
	b.cur = g.entry
	b.stmtList(body.List)
	b.edge(b.cur, b.ret)

	// Exit paths run the registered defers in reverse order. Panic
	// edges below make the chain reachable from any block that can
	// unwind.
	prev := b.ret
	for i := len(b.defers) - 1; i >= 0; i-- {
		d := b.newBlock("defer")
		d.nodes = append(d.nodes, b.defers[i].Call)
		b.edge(prev, d)
		prev = d
	}
	g.exit = b.newBlock("exit")
	b.edge(prev, g.exit)
	if len(b.defers) > 0 {
		g.deferHead = b.ret.succs[0]
		for _, blk := range g.blocks {
			if blk == b.ret || blk == g.exit || blk.kind == "defer" {
				continue
			}
			if blockMayPanic(blk) {
				b.edge(blk, g.deferHead)
			}
		}
	}
	return g
}

// cfgTarget is one enclosing break/continue destination.
type cfgTarget struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select (break only)
}

type cfgBuilder struct {
	g       *funcCFG
	cur     *cfgBlock
	ret     *cfgBlock // pre-exit block all returns feed
	targets []cfgTarget
	defers  []*ast.DeferStmt
	label   string // pending label for the next loop/switch/select
}

func (b *cfgBuilder) newBlock(kind string) *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks), kind: kind}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.nodes = append(b.cur.nodes, n) }

func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(s, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(s, b.takeLabel())
	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.ret)
		b.cur = b.newBlock("unreachable")
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.defers = append(b.defers, s)
	default:
		// Assignments, declarations, expression statements, go
		// statements, sends, inc/dec: straight-line nodes.
		b.add(s)
		if isPanicStmt(s) {
			// A panic statement unwinds through the defer chain and
			// never falls through, exactly like a return: ending the
			// block here lets branch guards of the form
			// `if bad { panic(...) }` keep their refinement on the
			// surviving path instead of joining the bad state back in.
			b.edge(b.cur, b.ret)
			b.cur = b.newBlock("unreachable")
		}
	}
}

// isPanicStmt reports whether s is a call to the predeclared panic.
// The builder has no type info, so a shadowing local named "panic"
// would be misread; the repository has none, and the failure mode is
// only an over-eager block split.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	cond := b.newBlock("if.cond")
	b.edge(b.cur, cond)
	b.cur = cond
	b.add(s.Cond)
	then := b.newBlock("if.then")
	b.edge(cond, then)
	join := b.newBlock("if.done")
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, join)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	join := b.newBlock("for.done")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, join)
	}
	contTo := head
	if s.Post != nil {
		post := b.newBlock("for.post")
		post.nodes = append(post.nodes, s.Post)
		b.edge(post, head) // loop back-edge
		contTo = post
	}
	b.targets = append(b.targets, cfgTarget{label, join, contTo})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, contTo) // back-edge when there is no post statement
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	head.nodes = append(head.nodes, s.X)
	body := b.newBlock("range.body")
	join := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, join)
	b.targets = append(b.targets, cfgTarget{label, join, head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head) // loop back-edge
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	head := b.newBlock("switch.head")
	b.edge(b.cur, head)
	if tag != nil {
		head.nodes = append(head.nodes, tag)
	}
	join := b.newBlock("switch.done")
	b.targets = append(b.targets, cfgTarget{label, join, nil})
	caseBlocks := make([]*cfgBlock, len(body.List))
	for i := range body.List {
		caseBlocks[i] = b.newBlock("switch.case")
	}
	hasDefault := false
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, caseBlocks[i])
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(caseBlocks) {
					b.edge(b.cur, caseBlocks[i+1])
				}
				b.cur = b.newBlock("unreachable")
				continue
			}
			b.stmt(st)
		}
		b.edge(b.cur, join)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.newBlock("select.head")
	b.edge(b.cur, head)
	join := b.newBlock("select.done")
	b.targets = append(b.targets, cfgTarget{label, join, nil})
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		cb := b.newBlock("select.case")
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(s.Label, false); t != nil {
			b.edge(b.cur, t.breakTo)
		}
	case token.CONTINUE:
		if t := b.findTarget(s.Label, true); t != nil {
			b.edge(b.cur, t.continueTo)
		}
	}
	// goto: terminator without a modeled edge; fallthrough is handled
	// by switchStmt before reaching here.
	b.cur = b.newBlock("unreachable")
}

// findTarget resolves a break/continue to its enclosing target,
// innermost first; labeled branches match the target's label.
func (b *cfgBuilder) findTarget(label *ast.Ident, isContinue bool) *cfgTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if isContinue && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// blockMayPanic reports whether the block contains a function call (the
// conservative stand-in for "can unwind"), ignoring calls inside nested
// function literals.
func blockMayPanic(blk *cfgBlock) bool {
	for _, n := range blk.nodes {
		may := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				may = true
				return false
			}
			return !may
		})
		if may {
			return true
		}
	}
	return false
}

// blockOf returns the block holding the innermost node that spans pos,
// or nil when no block node covers it.
func (g *funcCFG) blockOf(pos token.Pos) *cfgBlock {
	var best *cfgBlock
	var bestSpan token.Pos = -1
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if n.Pos() <= pos && pos < n.End() {
				span := n.End() - n.Pos()
				if bestSpan < 0 || span < bestSpan {
					best, bestSpan = blk, span
				}
			}
		}
	}
	return best
}

// dominators computes immediate dominators for the blocks reachable
// from entry (Cooper–Harvey–Kennedy iteration over reverse postorder).
// The returned slice is indexed by block index; unreachable blocks get
// nil, the entry dominates itself.
func (g *funcCFG) dominators() []*cfgBlock {
	var post []*cfgBlock
	seen := make([]bool, len(g.blocks))
	var dfs func(*cfgBlock)
	dfs = func(blk *cfgBlock) {
		seen[blk.index] = true
		for _, s := range blk.succs {
			if !seen[s.index] {
				dfs(s)
			}
		}
		post = append(post, blk)
	}
	dfs(g.entry)

	rpoNum := make([]int, len(g.blocks))
	rpo := make([]*cfgBlock, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpoNum[post[i].index] = len(rpo)
		rpo = append(rpo, post[i])
	}

	idom := make([]*cfgBlock, len(g.blocks))
	idom[g.entry.index] = g.entry
	intersect := func(a, c *cfgBlock) *cfgBlock {
		for a != c {
			for rpoNum[a.index] > rpoNum[c.index] {
				a = idom[a.index]
			}
			for rpoNum[c.index] > rpoNum[a.index] {
				c = idom[c.index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo[1:] {
			var ni *cfgBlock
			for _, p := range blk.preds {
				if idom[p.index] == nil {
					continue
				}
				if ni == nil {
					ni = p
				} else {
					ni = intersect(ni, p)
				}
			}
			if ni != nil && idom[blk.index] != ni {
				idom[blk.index] = ni
				changed = true
			}
		}
	}
	return idom
}

// dominates reports whether a dominates blk under the given idom
// relation (a block dominates itself).
func dominates(idom []*cfgBlock, a, blk *cfgBlock) bool {
	for blk != nil {
		if blk == a {
			return true
		}
		next := idom[blk.index]
		if next == blk {
			return false // reached entry
		}
		blk = next
	}
	return false
}

// canReach reports whether to is reachable from from without entering a
// block for which avoid returns true.
func (g *funcCFG) canReach(from, to *cfgBlock, avoid func(*cfgBlock) bool) bool {
	if avoid != nil && avoid(from) {
		return false
	}
	seen := make([]bool, len(g.blocks))
	stack := []*cfgBlock{from}
	seen[from.index] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == to {
			return true
		}
		for _, s := range blk.succs {
			if seen[s.index] || (avoid != nil && avoid(s)) {
				continue
			}
			seen[s.index] = true
			stack = append(stack, s)
		}
	}
	return false
}

// debugString renders the graph structure ("b0 entry -> b1 b2" per
// line) for the table-driven CFG tests.
func (g *funcCFG) debugString() string {
	var sb strings.Builder
	for _, blk := range g.blocks {
		fmt.Fprintf(&sb, "b%d %s ->", blk.index, blk.kind)
		for _, s := range blk.succs {
			fmt.Fprintf(&sb, " b%d", s.index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
