package analysis

// sharedwrite polices the data-sharing discipline of the parallel
// kernels: worker goroutines may write only to index-disjoint slots of
// a shared slice (each worker owns the indices derived from its worker
// id or job index), or must funnel results through a channel or hold a
// mutex. Anything else is a data race that -race only catches when the
// schedule cooperates.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sharedWritePackages host the goroutine fan-out kernels.
var sharedWritePackages = []string{
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
	"repro/internal/router",
	"repro/internal/serve",
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
}

// SharedWrite flags writes from a goroutine body to variables captured
// from the enclosing function:
//
//   - an element write to a captured map (maps are never safe for
//     concurrent mutation) unless the body holds a mutex;
//   - an element write to a captured slice whose index involves no
//     goroutine-local variable — a constant or outer-scope index means
//     every worker hits the same slot;
//   - a direct write (assignment, ++/--, compound assign) to a captured
//     scalar, struct field, or pointer target, unless the body holds a
//     mutex;
//   - capture of a loop variable of an enclosing for/range loop — the
//     classic pre-Go-1.22-semantics bug shape; even with per-iteration
//     variables, passing the value as an argument keeps per-worker
//     identity explicit and is the idiom this repo pins in tests.
//
// Channel sends need no special case: they are synchronization.
// Index-disjointness is approximated syntactically (any goroutine-local
// identifier in the index expression passes); cross-worker index
// collisions are out of scope for an intraprocedural checker.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc:  "goroutine writes to captured state must be index-disjoint, channel-funneled, or mutex-guarded",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, sharedWritePackages...)
	},
	Run: runSharedWrite,
}

func runSharedWrite(p *Pass) {
	for _, f := range p.Files {
		var loops []ast.Node
		var visit func(n ast.Node)
		visit = func(n ast.Node) {
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				switch m := m.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loops = append(loops, m)
					visit(loopBody(m))
					loops = loops[:len(loops)-1]
					return false
				case *ast.GoStmt:
					if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
						checkGoroutineWrites(p, m, lit, loops)
					}
				}
				return true
			})
		}
		visit(f)
	}
}

// checkGoroutineWrites reports unsafe writes in one goroutine body.
// loops are the for/range statements enclosing the go statement, whose
// loop variables must not be captured.
func checkGoroutineWrites(p *Pass, gs *ast.GoStmt, lit *ast.FuncLit, loops []ast.Node) {
	loopVars := loopVarObjects(p, loops)
	if obj := capturedLoopVar(p, lit, loopVars); obj != nil {
		p.Reportf(gs.Pos(),
			"goroutine captures loop variable %s: pass it as an argument so per-worker identity is explicit", obj.Name())
	}
	guarded := holdsMutex(p, lit.Body)
	report := func(pos token.Pos, format string, args ...any) {
		if !guarded {
			p.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWriteTarget(p, lit, loopVars, lhs, report)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(p, lit, loopVars, n.X, report)
		}
		return true
	})
}

// checkWriteTarget classifies one write destination inside the
// goroutine body and reports it when it mutates captured state without
// a goroutine-local disambiguator.
func checkWriteTarget(p *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool,
	lhs ast.Expr, report func(token.Pos, string, ...any)) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		obj := rootObject(p, e.X)
		if obj == nil || !capturedBy(lit, obj) {
			return
		}
		switch p.TypeOf(e.X).Underlying().(type) {
		case *types.Map:
			report(e.Pos(),
				"concurrent write to captured map %s: maps are unsafe to mutate from goroutines — funnel through a channel or hold a mutex", obj.Name())
		case *types.Slice, *types.Array, *types.Pointer:
			if !indexIsWorkerLocal(p, lit, loopVars, e.Index) {
				report(e.Pos(),
					"write to captured slice %s at a non-worker-local index: every goroutine hits the same slot — index by the worker id or job index", obj.Name())
			}
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		obj := rootObject(p, e)
		if obj == nil || !capturedBy(lit, obj) {
			return
		}
		if _, isChan := p.TypeOf(lhs).(*types.Chan); isChan {
			return
		}
		report(lhs.Pos(),
			"unsynchronized goroutine write to captured %s: funnel the result through a channel, a per-worker slot, or a mutex", obj.Name())
	}
}

// capturedBy reports whether obj is declared outside the literal's
// extent, i.e. the goroutine body reaches it by capture.
func capturedBy(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// indexIsWorkerLocal reports whether the index expression mentions any
// variable declared inside the goroutine body — the syntactic stand-in
// for "each worker computes disjoint indices". A captured loop variable
// counts too: the capture itself is already reported once at the go
// statement, and piling a slice-write diagnostic on top would bury it.
func indexIsWorkerLocal(p *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool, index ast.Expr) bool {
	local := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if loopVars[obj] || !capturedBy(lit, obj) {
			local = true
		}
		return !local
	})
	return local
}

// loopVarObjects collects the objects of the init/key/value variables
// of the enclosing loops.
func loopVarObjects(p *Pass, loops []ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.ForStmt:
			if as, ok := l.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					add(lhs)
				}
			}
		case *ast.RangeStmt:
			if l.Tok == token.DEFINE {
				add(l.Key)
				add(l.Value)
			}
		}
	}
	return vars
}

// capturedLoopVar returns a loop variable of an enclosing loop that the
// goroutine body reads, or nil.
func capturedLoopVar(p *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) types.Object {
	if len(loopVars) == 0 {
		return nil
	}
	var found types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && loopVars[obj] {
				found = obj
			}
		}
		return found == nil
	})
	return found
}

// holdsMutex reports whether the goroutine body locks a sync.Mutex or
// sync.RWMutex at any point; writes in such a body are presumed guarded
// (lock-scope precision is beyond an intraprocedural pass).
func holdsMutex(p *Pass, body *ast.BlockStmt) bool {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if isSyncMutex(p.TypeOf(sel.X)) {
				held = true
			}
		}
		return !held
	})
	return held
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}
