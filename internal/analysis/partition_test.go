package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestPartitionKernelsProved is the static half of the partition
// property pact (the dynamic half lives in the kernel packages'
// partition_prop_test.go files): indexbound must classify the
// subscripts inside the three strided partition kernels — the BKRUS
// refresh rows, the Gabow branch pool, the BKST seed strides — as
// PROVED, not merely fail to report them through a data/guarded
// exemption. If a kernel edit demotes a partition subscript to
// "unknown" the invariant still lints clean (the positive-evidence
// doctrine stays quiet), but this test fails, which is the point:
// ROADMAP item 2 gates kernel changes on the proofs, not the silence.
func TestPartitionKernelsProved(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: loads three real packages with dependencies")
	}
	mod, err := LoadModule(filepath.Join("..", ".."),
		"./internal/core", "./internal/exact", "./internal/steiner")
	if err != nil {
		t.Fatal(err)
	}
	// kernelFile -> classification counts observed inside it.
	kernels := map[string]map[string]int{
		filepath.Join("core", "parallel.go"):    {},
		filepath.Join("exact", "parallel.go"):   {},
		filepath.Join("steiner", "parallel.go"): {},
	}
	for _, pkg := range mod.Pkgs {
		fset := pkg.Fset
		indexBoundHook = func(pos token.Pos, class string) {
			file := fset.Position(pos).Filename
			for suffix, counts := range kernels {
				if strings.HasSuffix(file, string(filepath.Separator)+suffix) {
					counts[class]++
				}
			}
		}
		diags := Run(pkg, []*Analyzer{IndexBound})
		indexBoundHook = nil
		for _, d := range diags {
			t.Errorf("unexpected indexbound finding in %s: %s", pkg.ImportPath, d)
		}
	}
	for suffix, counts := range kernels {
		if counts["finding"] > 0 {
			t.Errorf("%s: %d partition subscripts classified as findings", suffix, counts["finding"])
		}
		if counts["proved"] == 0 {
			t.Errorf("%s: no partition subscript classified proved (got %v); the static witness is gone", suffix, counts)
		}
	}
}
