package analysis

// Unit tests for the interval-domain primitives of interval.go: the
// lattice operations the value-flow analyzers lean on. The fixture
// tests prove the analyzers end to end; these pin the algebra each
// proof step assumes — in particular the asymmetries (constant floors
// on join, refinement-wins on meet, len-ceilings surviving meets) that
// took false positives to discover.

import (
	"go/token"
	"go/types"
	"math"
	"testing"
)

func testVar(name string) types.Object {
	return types.NewVar(token.NoPos, nil, name, types.Typ[types.Int])
}

func TestJoinLo(t *testing.T) {
	k := symKey{root: testVar("s")}
	cases := []struct {
		name string
		a, b sbound
		want sbound
	}{
		{"const min", constBound(3), constBound(7), constBound(3)},
		{"same len base", lenBound(k).addConst(2), lenBound(k), lenBound(k)},
		{"unset wins", sbound{}, constBound(1), sbound{}},
		// len(K)+2 is at least 2: joining with the constant 5 keeps the
		// smaller constant floor rather than dropping to -inf.
		{"const floor", lenBound(k).addConst(2), constBound(5), constBound(2)},
		// Var bounds have no constant floor; mixed bases lose the bound.
		{"var loses", varBound(testVar("x")), constBound(0), sbound{}},
	}
	for _, c := range cases {
		if got := joinLo(c.a, c.b); got != c.want {
			t.Errorf("%s: joinLo(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := joinLo(c.b, c.a); got != c.want {
			t.Errorf("%s (flipped): joinLo(%v, %v) = %v, want %v", c.name, c.b, c.a, got, c.want)
		}
	}
}

func TestJoinHi(t *testing.T) {
	k := symKey{root: testVar("s")}
	cases := []struct {
		name string
		a, b sbound
		want sbound
	}{
		{"const max", constBound(3), constBound(7), constBound(7)},
		{"same len base", lenBound(k).addConst(-1), lenBound(k), lenBound(k)},
		// No ceiling trick exists upward: len is unbounded above.
		{"mixed loses", lenBound(k), constBound(100), sbound{}},
	}
	for _, c := range cases {
		if got := joinHi(c.a, c.b); got != c.want {
			t.Errorf("%s: joinHi(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := joinHi(c.b, c.a); got != c.want {
			t.Errorf("%s (flipped): joinHi(%v, %v) = %v, want %v", c.name, c.b, c.a, got, c.want)
		}
	}
}

func TestMeetRefinementWins(t *testing.T) {
	k := symKey{root: testVar("s")}
	// On a base mismatch the new refinement replaces a stale lower
	// bound: guards beat arithmetic for this layer's proof obligations.
	if got := meetLo(varBound(testVar("x")), constBound(0)); got != constBound(0) {
		t.Errorf("meetLo(var, 0) = %v, want the refinement 0", got)
	}
	// Same base keeps the tighter side.
	if got := meetLo(constBound(2), constBound(1)); got != constBound(2) {
		t.Errorf("meetLo(2, 1) = %v, want 2", got)
	}
	// A len-relative ceiling survives a meet with a var ceiling — it is
	// the bound indexbound can discharge against the slice itself.
	if got := meetHi(lenBound(k).addConst(-1), varBound(testVar("m"))); got != lenBound(k).addConst(-1) {
		t.Errorf("meetHi(len-1, var) = %v, want len-1 kept", got)
	}
	// But a const ceiling does replace a var ceiling.
	if got := meetHi(varBound(testVar("m")), constBound(10)); got != constBound(10) {
		t.Errorf("meetHi(var, 10) = %v, want 10", got)
	}
}

func TestWidenIval(t *testing.T) {
	k := symKey{root: testVar("s")}
	prev := ival{lo: constBound(0), hi: lenBound(k).addConst(-1)}
	// A stable floor with a moved ceiling: only the ceiling widens.
	next := ival{lo: constBound(0), hi: lenBound(k)}
	got := widenIval(prev, next)
	if got.lo != constBound(0) {
		t.Errorf("widen dropped the stable floor: %v", got)
	}
	if got.hi.set {
		t.Errorf("widen kept the moved ceiling: %v", got)
	}
	// Fully stable intervals survive untouched.
	if got := widenIval(prev, prev); got != prev {
		t.Errorf("widen(x, x) = %v, want %v", got, prev)
	}
}

func TestAddConstSaturates(t *testing.T) {
	if got := constBound(satOverflow - 1).addConst(2); got.set {
		t.Errorf("overflowing addConst kept the bound: %v", got)
	}
	if got := (sbound{}).addConst(1); got.set {
		t.Errorf("addConst on unset produced a bound: %v", got)
	}
	if got := constBound(5).addConst(-3); got != constBound(2) {
		t.Errorf("addConst(5, -3) = %v, want 2", got)
	}
}

func TestLeqBoundChasing(t *testing.T) {
	env := newEnv()
	s := symKey{root: testVar("s")}
	x := testVar("x")

	// Direct: same base compares constants.
	if !leqBound(env, constBound(3), constBound(3), 2) {
		t.Error("3 <= 3 failed")
	}
	// c <= len(K)+d holds unconditionally when c-d <= 0 (len >= 0).
	if !leqBound(env, constBound(0), lenBound(s), 2) {
		t.Error("0 <= len(s) failed without any facts")
	}
	if leqBound(env, constBound(1), lenBound(s), 2) {
		t.Error("1 <= len(s) proved with no length facts")
	}
	// With the fact len(s) >= 4 the comparison discharges.
	env.lens[s] = ival{lo: constBound(4)}
	if !leqBound(env, constBound(3), lenBound(s), 2) {
		t.Error("3 <= len(s) failed under fact len(s) >= 4")
	}
	// len(s)+c <= const chases the fact ceiling.
	env.lens[s] = ival{lo: constBound(0), hi: constBound(10)}
	if !leqBound(env, lenBound(s).addConst(2), constBound(12), 2) {
		t.Error("len(s)+2 <= 12 failed under fact len(s) <= 10")
	}
	if leqBound(env, lenBound(s).addConst(3), constBound(12), 2) {
		t.Error("len(s)+3 <= 12 proved under fact len(s) <= 10")
	}
	// Var bounds chase the variable's interval.
	env.iv[x] = ival{lo: constBound(1), hi: lenBound(s).addConst(-1)}
	if !leqBound(env, varBound(x), lenBound(s).addConst(-1), 2) {
		t.Error("x <= len(s)-1 failed with x's ceiling len(s)-1")
	}
	// Depth exhaustion stays sound: no proof, not a wrong one.
	if leqBound(env, varBound(x), lenBound(s).addConst(-1), 0) {
		t.Error("depth-0 chase still proved a cross-base comparison")
	}
}

func TestJoinNilLattice(t *testing.T) {
	w := token.Pos(7)
	both := joinNil(nilYes(w), nilNo())
	if !both.mayNil || !both.mayNonNil {
		t.Errorf("join(yes, no) = %+v, want both flags", both)
	}
	if both.witness != w {
		t.Errorf("join lost the nil witness: %+v", both)
	}
	if got := joinNil(nilBottom(), nilNo()); got.mayNil || !got.mayNonNil {
		t.Errorf("join(bottom, no) = %+v, want mayNonNil only", got)
	}
}

func TestNarrowRange(t *testing.T) {
	if lo, hi, ok := narrowRange(types.Typ[types.Int32]); !ok || lo != math.MinInt32 || hi != math.MaxInt32 {
		t.Errorf("narrowRange(int32) = %d, %d, %v", lo, hi, ok)
	}
	if lo, hi, ok := narrowRange(types.Typ[types.Uint16]); !ok || lo != 0 || hi != math.MaxUint16 {
		t.Errorf("narrowRange(uint16) = %d, %d, %v", lo, hi, ok)
	}
	if _, _, ok := narrowRange(types.Typ[types.Int64]); ok {
		t.Error("narrowRange(int64) claimed a narrow range")
	}
	if _, _, ok := narrowRange(types.Typ[types.Float64]); ok {
		t.Error("narrowRange(float64) claimed a narrow range")
	}
}
