package analysis

// indexbound proves every slice/array subscript and slice expression in
// the hot construction packages stays within [0, len) — or says exactly
// why it cannot. The headline client is the PR9 worker-partition idiom:
//
//	go func(g int) {
//		for i := g; i < len(items); i += nw { items[i] = ... }
//	}(g)
//
// which proves from the call-site seed (g ∈ [0, nw-1]) plus the loop
// guard's len-relative refinement (i ≤ len(items)-1).
//
// Classification (DESIGN.md §15):
//
//   - PROVED: the interval engine shows 0 ≤ lo and hi < len(base)
//     (or hi ≤ len for slice bounds). No diagnostic.
//   - DATA-EXEMPT: the subscript's value derives from data loads (slice
//     elements, struct fields, receives). Intervals prove control
//     arithmetic; data-dependent subscripts are the province of the
//     conformance and property suites. No diagnostic.
//   - GUARDED-EXEMPT: the subscript is bounded by a dominating guard
//     against a *different* length or a plain variable — sufficiency is
//     a data invariant (e.g. two slices built to equal length),
//     witnessed dynamically by the partition property tests. The lower
//     bound must still prove ≥ 0. No diagnostic.
//   - UNKNOWN-EXEMPT: the engine has no evidence at all (indexes
//     arriving through heap.Interface callbacks, union-find ids,
//     search results). An obligation with no evidence is a data
//     invariant, same as GUARDED — exempt, witnessed dynamically.
//   - FINDING: positive evidence of a hazard — a constant lower bound
//     below zero that no guard removed, an upper bound that is
//     off-by-one against the subscript's own base (hi = len(base)+c
//     with c past the allowed slack), or constant slice bounds that
//     are provably inverted.
//
// The asymmetry is deliberate: the analyzer's FINDINGs are claims the
// interval engine can defend ("this index is -1 when the loop exhausts
// without a match"), never absence-of-proof noise. What it cannot
// defend it classifies, and the classification is observable through
// the indexBoundHook so the golden tests can assert that the partition
// kernels are PROVED rather than merely silent.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// indexBoundHook, when non-nil, observes the classification of every
// checked subscript: "proved", "data", "guarded", "unknown", or
// "finding". Tests use it to assert the partition kernels PROVE rather
// than fall through to an exemption.
var indexBoundHook func(pos token.Pos, class string)

func indexBoundClass(pos token.Pos, class string) {
	if indexBoundHook != nil {
		indexBoundHook(pos, class)
	}
}

var indexBoundPackages = []string{
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
}

// IndexBound reports slice/array subscripts in the hot packages that
// are not provably in-bounds under the dominating guards.
var IndexBound = &Analyzer{
	Name: "indexbound",
	Doc:  "control-derived slice/array subscripts in hot packages must be provably within [0, len) under dominating guards",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, indexBoundPackages...)
	},
	Run: runIndexBound,
}

func runIndexBound(p *Pass) {
	forEachFuncAbs(p, func(fa *funcAbs, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // visited with its own seeded funcAbs
			case *ast.IndexExpr:
				checkIndexExpr(p, fa, n)
			case *ast.SliceExpr:
				checkSliceExpr(p, fa, n)
			}
			return true
		})
	})
}

// forEachFuncAbs visits every declared function body in the pass's
// files with its value-flow result, then every function literal inside
// it with a call-site/capture-seeded result, recursively. The visitor
// must not descend into nested literals itself.
func forEachFuncAbs(p *Pass, visit func(fa *funcAbs, body *ast.BlockStmt)) {
	m := p.module()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var fa *funcAbs
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				if fn := m.byObj[obj]; fn != nil {
					fa = m.funcAbsFor(fn)
				}
			}
			if fa == nil {
				fa = analyzeFunc(p, fd.Body, paramObjects(p, fd), m, nil, nil)
			}
			visitWithLits(p, m, fa, fd.Body, visit)
		}
	}
}

func visitWithLits(p *Pass, m *Module, fa *funcAbs, body *ast.BlockStmt, visit func(*funcAbs, *ast.BlockStmt)) {
	visit(fa, body)
	// Call-argument map: a literal that is invoked where it appears
	// (including `go lit(args)` / `defer lit(args)`) gets its parameters
	// seeded from the call's arguments.
	litCalls := map[*ast.FuncLit][]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				args := call.Args
				if args == nil {
					args = []ast.Expr{}
				}
				litCalls[lit] = args
			}
		}
		return true
	})
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	for _, lit := range lits {
		inner := litAbs(p, fa, lit, litCalls[lit], m)
		visitWithLits(p, m, inner, lit.Body, visit)
	}
}

// indexableBase reports whether t can be subscripted with an integer
// (slice, array, pointer-to-array, string), excluding maps.
func indexableBase(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func checkIndexExpr(p *Pass, fa *funcAbs, e *ast.IndexExpr) {
	baseT := p.TypeOf(e.X)
	if !indexableBase(baseT) {
		return
	}
	if it := p.TypeOf(e.Index); it == nil || !isIntType(it) {
		return // generic instantiation or untypable
	}
	env := fa.envAt(e.Pos())
	iv, pv := fa.evalIval(env, e.Index)
	if pv == provData {
		indexBoundClass(e.Index.Pos(), "data")
		return // data-exempt: conformance/property territory
	}
	reportBoundViolation(p, fa, env, e.X, e.Index, iv, -1, "index")
}

func checkSliceExpr(p *Pass, fa *funcAbs, e *ast.SliceExpr) {
	baseT := p.TypeOf(e.X)
	if !indexableBase(baseT) {
		return
	}
	env := fa.envAt(e.Pos())
	bounds := []ast.Expr{e.Low, e.High, e.Max}
	ivals := make([]ival, len(bounds))
	for i, b := range bounds {
		if b == nil {
			continue
		}
		iv, pv := fa.evalIval(env, b)
		if pv == provData {
			indexBoundClass(e.Pos(), "data")
			return // any data-derived bound exempts the whole expression
		}
		ivals[i] = iv
	}
	// 0 ≤ lo: finding only on positive evidence of negativity.
	if e.Low != nil {
		if ivals[0].lo.set && ivals[0].lo.kind == bkConst && ivals[0].lo.c < 0 && !geZeroBound(env, ivals[0].lo) {
			p.Reportf(e.Low.Pos(), "slice lower bound %s can be %d: provably negative on some path",
				types.ExprString(e.Low), ivals[0].lo.c)
			return
		}
	}
	// hi ≤ len(base) — a slice bound may equal the length, hence slack 0.
	for i, b := range bounds[1:] {
		if b == nil {
			continue
		}
		if done := reportBoundViolation(p, fa, env, e.X, b, ivals[i+1], 0, "slice upper bound"); done {
			return
		}
	}
	// lo ≤ hi: provably-inverted constant bounds are the only static
	// claim worth making; anything symbolic is ordered by the same data
	// invariants the upper-bound exemptions lean on. The canonical
	// chunked form hi = lo + nonneg is recognized so the hook records a
	// proof rather than an exemption.
	if e.Low != nil && e.High != nil {
		switch {
		case leqBound(env, ivals[0].hi, ivals[1].lo, 2) || hiIsLoPlusNonneg(fa, env, e.Low, e.High):
			indexBoundClass(e.Pos(), "proved")
		default:
			lc, lok := constOf(ivals[0])
			hc, hok := constOf(ivals[1])
			if lok && hok && lc > hc {
				p.Reportf(e.Pos(), "slice bounds %s:%s are provably inverted (%d > %d)",
					types.ExprString(e.Low), types.ExprString(e.High), lc, hc)
			} else {
				indexBoundClass(e.Pos(), "guarded")
			}
		}
	}
}

// reportBoundViolation checks idx against len(base)+slack: slack −1
// for a subscript (idx < len), 0 for a slice bound (idx ≤ len).
// Reports and returns true on a finding; false means proved or exempt.
func reportBoundViolation(p *Pass, fa *funcAbs, env *absEnv, base, idx ast.Expr, iv ival, slack int64, what string) bool {
	// Lower bound: a finding needs positive evidence — a constant
	// floor below zero that no dominating guard lifted. An unknown
	// floor is a data invariant (UNKNOWN-EXEMPT), not a claim.
	if iv.lo.set && iv.lo.kind == bkConst && iv.lo.c < 0 && !geZeroBound(env, iv.lo) {
		p.Reportf(idx.Pos(), "%s %s into %s can be %d: provably negative on some path",
			what, types.ExprString(idx), types.ExprString(base), iv.lo.c)
		return true
	}
	loProved := iv.lo.set && geZeroBound(env, iv.lo)

	// Upper bound: try the proof through every available length form.
	key, haveKey := fa.canonicalKey(base)
	hiProved := false
	if iv.hi.set {
		if lv, ok := fa.evalLen(env, base); ok && lv.lo.set {
			hiProved = leqBound(env, iv.hi, lv.lo.addConst(slack), 2)
		}
		if !hiProved && haveKey {
			hiProved = leqBound(env, iv.hi, lenBound(key).addConst(slack), 2)
		}
	}
	if hiProved && loProved {
		indexBoundClass(idx.Pos(), "proved")
		return false
	}
	// Off-by-one against the subscript's own base: hi = len(base)+c
	// with c past the slack is a definite hazard, not a guard — the
	// index reaches len(base) itself on the loop's last pass.
	if !hiProved && haveKey && iv.hi.set && iv.hi.kind == bkLen && iv.hi.key == key && iv.hi.c > slack {
		p.Reportf(idx.Pos(), "%s %s can reach len(%s)%+d: off-by-one against its own base",
			what, types.ExprString(idx), types.ExprString(base), iv.hi.c)
		return true
	}
	// Everything else is exempt: bounded by another length or a
	// variable (GUARDED — sufficiency is a data invariant like
	// n == len(pts), witnessed by the property tests), or wholly
	// unknown (UNKNOWN — heap callbacks, ids, search results).
	switch {
	case hiProved || iv.hi.set:
		indexBoundClass(idx.Pos(), "guarded")
	default:
		indexBoundClass(idx.Pos(), "unknown")
	}
	return false
}

// hiIsLoPlusNonneg recognizes hi written as lo + k with k provably
// non-negative — the canonical chunked-partition form.
func hiIsLoPlusNonneg(fa *funcAbs, env *absEnv, lo, hi ast.Expr) bool {
	b, ok := ast.Unparen(hi).(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		return false
	}
	loS := types.ExprString(ast.Unparen(lo))
	var rest ast.Expr
	switch {
	case types.ExprString(ast.Unparen(b.X)) == loS:
		rest = b.Y
	case types.ExprString(ast.Unparen(b.Y)) == loS:
		rest = b.X
	default:
		return false
	}
	rv, _ := fa.evalIval(env, rest)
	return rv.lo.set && geZeroBound(env, rv.lo)
}
