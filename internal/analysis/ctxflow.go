package analysis

// ctxflow generalizes ctxpoll across call boundaries: a cancellable
// function must thread its context (or cancel.Checker) down to every
// instance-sized loop it can reach in the module, not just its own. The
// local analyzer cannot see a ctx dropped at a call site — f(ctx)
// calling g() calling h() whose O(n²) scan never polls — because g and
// h individually have no context and therefore no local obligation.
// ctxflow computes a module-wide "hungry" summary by fixed point:
//
//	hungry(f) = f has an instance-sized work loop that reaches no
//	            poll (directly or through module callees), or
//	            f calls a hungry module function without forwarding
//	            a ctx/Checker, outside any polled loop of f
//
// and reports the call site where a cancellable function drops its
// context into a hungry callee. A call inside a loop that itself polls
// is exempt: the per-iteration poll bounds the cancellation gap to one
// callee invocation, which is exactly the stride-poll design the
// construction engine uses (poll once per edge, keep the subroutines
// context-free).

import (
	"go/ast"
	"go/token"
)

// CtxFlow reports context-dropping call sites in cancellable functions
// of the construction packages (the ctxpoll allowlist).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "cancellable entrypoints must thread ctx/cancel.Checker to every instance-sized loop they reach, across calls",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, ctxPollPackages...)
	},
	Run: runCtxFlow,
}

// hungrySummary is the module-level cancellation fact about a function.
type hungrySummary struct {
	hungry bool
	why    string // reason chain for diagnostics
	polls  bool   // body contains a poll call (directly or via module callees)
}

func runCtxFlow(p *Pass) {
	m := p.module()
	sums := m.hungrySummaries()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := m.byObj[p.Info.Defs[fd.Name]]
			if fn == nil || !handlesCancellation(p, fd.Body) {
				continue
			}
			forEachCall(fn, func(call *ast.CallExpr) {
				callee := m.resolve(p.pkg, call)
				if callee == nil {
					return
				}
				s := sums[callee]
				if s == nil || !s.hungry || callPassesCancel(p, call) {
					return
				}
				if m.inPolledLoop(fn, call.Pos()) {
					return
				}
				p.Reportf(call.Pos(),
					"context dropped at call to %s: %s; thread ctx or a cancel.Checker through this call",
					callee.decl.Name.Name, s.why)
			})
		}
	}
}

// hungrySummaries computes the module's cancellation-reachability
// summaries by monotone fixed point.
func (m *Module) hungrySummaries() map[*modFunc]*hungrySummary {
	if m.hungry != nil {
		return m.hungry
	}
	m.hungry = map[*modFunc]*hungrySummary{}
	for _, fn := range m.order {
		m.hungry[fn] = &hungrySummary{polls: bodyPollsDirect(fn)}
	}
	// polls propagates through module calls first (a function whose
	// callee polls counts as reaching a poll)...
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			s := m.hungry[fn]
			if s.polls {
				continue
			}
			p := fn.pass()
			forEachCall(fn, func(call *ast.CallExpr) {
				if s.polls {
					return
				}
				if callee := m.resolve(fn.pkg, call); callee != nil && m.hungry[callee].polls {
					s.polls = true
					changed = true
				}
				_ = p
			})
		}
	}
	// ...then hungriness propagates up through ctx-less calls.
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			s := m.hungry[fn]
			if s.hungry {
				continue
			}
			if pos, ok := m.localHungryLoop(fn); ok {
				s.hungry = true
				s.why = "instance-sized loop without a cancellation path at " + positionString(fn, pos)
				changed = true
				continue
			}
			p := fn.pass()
			forEachCall(fn, func(call *ast.CallExpr) {
				if s.hungry {
					return
				}
				callee := m.resolve(fn.pkg, call)
				if callee == nil {
					return
				}
				cs := m.hungry[callee]
				if cs.hungry && !callPassesCancel(p, call) && !m.inPolledLoop(fn, call.Pos()) {
					s.hungry = true
					s.why = "calls " + callee.decl.Name.Name + " (" + positionString(fn, call.Pos()) + "): " + cs.why
					changed = true
				}
			})
		}
	}
	return m.hungry
}

func positionString(fn *modFunc, pos token.Pos) string {
	pp := fn.pkg.Fset.Position(pos)
	return pp.Filename + ":" + itoa(pp.Line)
}

// bodyPollsDirect reports whether the function body contains a poll
// call (cancel.Checker Tick/Err, ctx.Done/Err, or a ctx-forwarding
// call) outside nested function literals.
func bodyPollsDirect(fn *modFunc) bool {
	p := fn.pass()
	found := false
	forEachCall(fn, func(call *ast.CallExpr) {
		if !found && isPollCall(p, call) {
			found = true
		}
	})
	return found
}

// localHungryLoop finds an instance-sized work loop in fn whose body —
// including module callees, and including any enclosing loop of fn —
// never reaches a poll. Returns the loop position.
func (m *Module) localHungryLoop(fn *modFunc) (token.Pos, bool) {
	p := fn.pass()
	var foundPos token.Pos
	found := false
	var visit func(n ast.Node, enclosingPolled bool)
	visit = func(n ast.Node, enclosingPolled bool) {
		ast.Inspect(n, func(mn ast.Node) bool {
			if found || mn == n {
				return !found
			}
			switch mn.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				polled := enclosingPolled || m.loopReachesPoll(fn, mn)
				if !polled && instanceSized(p, mn) && loopDoesWork(p, mn) {
					foundPos, found = mn.Pos(), true
					return false
				}
				visit(loopBody(mn), polled)
				return false
			}
			return true
		})
	}
	visit(fn.decl.Body, false)
	return foundPos, found
}

// loopReachesPoll reports whether the loop body reaches a poll call,
// looking through module callees that do not take a context themselves
// (their bodies may still hold the poll — e.g. a helper hiding the
// Checker behind a struct field).
func (m *Module) loopReachesPoll(fn *modFunc, loop ast.Node) bool {
	p := fn.pass()
	body := loopBody(loop)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPollCall(p, call) {
			found = true
			return false
		}
		if callee := m.resolve(fn.pkg, call); callee != nil && m.hungry[callee] != nil && m.hungry[callee].polls {
			found = true
			return false
		}
		return true
	})
	return found
}

// inPolledLoop reports whether pos sits inside a loop of fn whose body
// reaches a poll.
func (m *Module) inPolledLoop(fn *modFunc, pos token.Pos) bool {
	polled := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(mn ast.Node) bool {
			if polled {
				return false
			}
			switch mn.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				if mn.Pos() <= pos && pos < mn.End() && m.loopReachesPoll(fn, mn) {
					polled = true
					return false
				}
			}
			return true
		})
	}
	walk(fn.decl.Body)
	return polled
}
