// Package analysis is a small stdlib-only static-analysis framework
// plus the seventeen domain analyzers that machine-check this
// repository's code invariants. The function-local analyzers:
//
//   - floatcmp: geometric weights are float64 and must never be
//     compared exactly outside the approved epsilon helpers in
//     internal/geom (Euclidean-mode table reproductions break
//     silently otherwise).
//   - maporder: constructions must be deterministic for a fixed
//     input, so map-iteration order must never reach a slice, an
//     output stream, or a float accumulator without an intervening
//     sort.
//   - wallclock: deterministic construction packages must not read
//     the wall clock directly; timing belongs to internal/obs timers
//     so the hot paths stay reproducible and nil-gated.
//   - obsgate: every obs recording call site must be reachable only
//     behind a nil-scope gate (or inside a counter-set method whose
//     call sites are gated), preserving the "observation off by
//     default costs one pointer test" contract.
//   - ctxpoll: cancellable functions must poll their context or
//     cancel.Checker inside every instance-sized work loop.
//   - parallelgate, waitpair, sharedwrite: the goroutine invariants —
//     gated worker spawns, paired Add/Done, no unsynchronized writes
//     to captured shared state.
//   - errdrop: construction errors must not be silently discarded.
//
// The interprocedural analyzers (built on the module-wide call graph
// and per-function summaries of summary.go, the def-use chains of
// dataflow.go, and the taint engine of taint.go):
//
//   - detflow: nondeterminism taint (map order, select winners,
//     clocks, random values, formatted pointers) must not reach an
//     exported return or an output write without a sort.
//   - ctxflow: cancellable entrypoints must thread ctx/cancel.Checker
//     down to every instance-sized loop they can reach, across calls.
//   - allocloop: instance-sized loops in the hot construction
//     packages must not allocate per iteration, directly or through
//     callees; scratch buffers with grow guards are the approved way.
//   - lockorder: the module-wide lock-acquisition-order graph over
//     named mutex classes must be acyclic.
//
// The value-flow analyzers (built on the SSA-lite interval engine of
// interval.go — an interval abstract domain with len-relative bounds,
// branch-condition refinement, and loop widening — with argument and
// return abstractions exchanged through the module fixed point of
// intervalmod.go):
//
//   - indexbound: subscripts and slice expressions in the hot kernel
//     packages must carry no positive evidence of being out of
//     bounds; the worker lo:hi partition arithmetic is the headline
//     client.
//   - nilflow: pointer derefs, field accesses through pointers, and
//     map writes must be dominated by a nil check whenever the value
//     is nil on some path; the obs layer's nil-gated instruments are
//     the proved-clean idiom.
//   - intwidth: n*n-scale size computations must be provably 64-bit —
//     width pins per hot package, and every narrowing conversion must
//     be clamp-proved or boundary-guarded.
//   - chanleak: spawned goroutines whose only exits are channel ops
//     must have a pairing close/receive/send reachable on every
//     spawner path, directly or through callee channel-op summaries.
//
// The framework loads packages with `go list` (syntax via go/parser,
// types via go/types and the toolchain's export data), runs each
// analyzer over the packages it applies to, and reports diagnostics
// with file:line:col positions. Findings are suppressed per line with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: a suppression without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by `lint -list`.
	Doc string
	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path. A nil AppliesTo means every package. The
	// driver consults this; tests may run an analyzer on any package
	// directly.
	AppliesTo func(importPath string) bool
	// Run inspects one type-checked package and reports findings
	// through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkg   *Package // backlink for the shared CFG/call-graph caches
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding a reasoned //lint:ignore directive
	// covers. Run drops these; RunAll keeps them flagged so machine
	// consumers (lint -format json) can audit the suppression load.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer that applies to pkg and returns the
// surviving diagnostics: suppressed findings are dropped, malformed
// suppressions are reported, and the result is sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	all := RunAll(pkg, analyzers)
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// RunAll is Run without the suppression filter: findings a reasoned
// //lint:ignore covers are kept with Suppressed set, so a machine
// consumer sees the full finding load including what the tree chose to
// pin.
func RunAll(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			pkg:      pkg,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = append(diags, applySuppressions(pkg, analyzers, &diags)...)
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// matching findings on its own line (trailing comment) and on the line
// directly below it (directive on a line of its own).
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Position
}

func (d ignoreDirective) covers(pos token.Position) bool {
	return d.file == pos.Filename && (d.line == pos.Line || d.line+1 == pos.Line)
}

// parseIgnores extracts the //lint:ignore directives of one file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			d := ignoreDirective{file: pos.Filename, line: pos.Line, pos: pos}
			if len(fields) > 0 {
				d.analyzer = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// applySuppressions flags suppressed findings in diags in place and
// returns extra diagnostics about malformed or unused directives. Only
// directives naming one of the analyzers that actually ran can be
// reported as unused.
func applySuppressions(pkg *Package, ran []*Analyzer, diags *[]Diagnostic) []Diagnostic {
	var ignores []ignoreDirective
	for _, f := range pkg.Files {
		ignores = append(ignores, parseIgnores(pkg.Fset, f)...)
	}
	if len(ignores) == 0 {
		return nil
	}
	var extra []Diagnostic
	used := make([]bool, len(ignores))
	for j, d := range *diags {
		for i, ig := range ignores {
			if ig.analyzer == d.Analyzer && ig.reason != "" && ig.covers(d.Pos) {
				(*diags)[j].Suppressed, used[i] = true, true
			}
		}
	}
	for i, ig := range ignores {
		switch {
		case ig.analyzer == "" || ig.reason == "":
			extra = append(extra, Diagnostic{
				Analyzer: "lint",
				Pos:      ig.pos,
				Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
			})
		case !used[i] && analyzerRan(ig.analyzer, ran, pkg.ImportPath):
			extra = append(extra, Diagnostic{
				Analyzer: "lint",
				Pos:      ig.pos,
				Message:  fmt.Sprintf("unused //lint:ignore %s directive (nothing to suppress here)", ig.analyzer),
			})
		}
	}
	return extra
}

// analyzerRan reports whether the named analyzer was applied to the
// package in this Run call.
func analyzerRan(name string, ran []*Analyzer, importPath string) bool {
	for _, a := range ran {
		if a.Name == name && (a.AppliesTo == nil || a.AppliesTo(importPath)) {
			return true
		}
	}
	return false
}

// All returns the repository's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp, MapOrder, WallClock, ObsGate,
		CtxPoll, ParallelGate, WaitPair, SharedWrite, ErrDrop,
		DetFlow, CtxFlow, AllocLoop, LockOrder,
		IndexBound, NilFlow, IntWidth, ChanLeak,
	}
}

// pathIn reports whether importPath is one of the given paths.
func pathIn(importPath string, paths ...string) bool {
	for _, p := range paths {
		if importPath == p {
			return true
		}
	}
	return false
}
