// Fixture: clean idioms, a justified suppression, and one stale
// suppression for the lockorder analyzer.
package fixture

import "sync"

// registry is a single-class lock used without nesting: no edges at
// all.
type registry struct {
	mu sync.Mutex
	m  map[string]int
}

func (r *registry) set(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

func (r *registry) get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[k]
}

// publish nests two classes in one consistent direction only
// (registry.mu -> stats.mu): an edge without a reverse path is not a
// cycle.
type stats struct {
	mu     sync.Mutex
	writes int
}

func (r *registry) publish(s *stats, k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
}

// handoff releases the first lock before taking the second: no point
// where both are held, so no edge.
func (r *registry) handoff(s *stats) {
	r.mu.Lock()
	n := len(r.m)
	r.mu.Unlock()
	s.mu.Lock()
	s.writes += n
	s.mu.Unlock()
}

// localOnly locks a function-local mutex: locals have no nameable
// class and never enter the graph.
func localOnly() int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return 1
}

// pool acquires its own class twice by design, ordered by a global
// slot index: the self-edge is suppressed with the tie-break named.
type pool struct {
	mu   sync.Mutex
	next *pool
}

func (p *pool) steal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:ignore lockorder victim is always the higher slot index, pinned by TestPoolStealOrder
	p.next.mu.Lock()
	p.next.mu.Unlock()
}

// stale directive: get takes one lock with nothing held, so there is
// nothing to suppress and the directive itself must be reported.
//lint:ignore lockorder suppressing a single unnested acquisition // want:lint
func (r *registry) peek(k string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[k]
	return v, ok
}
