// Fixture: true positives for the lockorder analyzer (type-checked as
// if it were the serving package). Lines marked `want:lockorder` must
// each produce exactly one diagnostic.
//
// The cycle is the classic two-mutex deadlock: bump acquires
// cache.mu -> entry.mu while refresh acquires entry.mu -> cache.mu.
// Each function is locally fine; only the module-wide order graph sees
// the cycle, and every acquisition site on a cyclic edge is reported.
package fixture

import "sync"

type cache struct {
	mu   sync.Mutex
	ents []*entry
}

type entry struct {
	mu sync.Mutex
	n  int
}

// bump: cache.mu held, then entry.mu acquired.
func (c *cache) bump(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.mu.Lock() // want:lockorder
	e.n++
	e.mu.Unlock()
}

// refresh: entry.mu held, then cache.mu acquired — the reverse order.
func (e *entry) refresh(c *cache) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c.mu.Lock() // want:lockorder
	c.ents = append(c.ents, e)
	c.mu.Unlock()
}

// size acquires cache.mu; on its own it is harmless.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ents)
}

// report creates the entry.mu -> cache.mu edge interprocedurally: the
// lock hides inside size, reached through a call made under entry.mu.
func (e *entry) report(c *cache) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return c.size() // want:lockorder
}

// merge acquires the entry class while already holding it: with
// per-instance locks of one class there is no program-visible order,
// so the self-edge is reported too.
func (e *entry) merge(o *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o.mu.Lock() // want:lockorder
	e.n += o.n
	o.mu.Unlock()
}
