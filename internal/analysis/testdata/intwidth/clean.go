// Fixture: clean idioms the intwidth analyzer must stay silent on,
// plus one stale suppression (want:lint).
package fixture

import "math"

// The width pin is itself the first clean idiom: the blank constant
// fails to compile where int is narrower than 63 bits, which is what
// licenses WideClean's arithmetic.
const _ uint = 1 << 62

// WideClean does the size arithmetic in int, which the pin above
// guarantees is 64 bits; nothing to flag.
func WideClean(n int) int {
	return n * n
}

// ClampedConvClean clamps before narrowing, so the operand interval
// provably fits int32.
func ClampedConvClean(n int) int32 {
	if n < 0 {
		n = 0
	}
	if n > math.MaxInt32 {
		n = math.MaxInt32
	}
	return int32(n)
}

// KnobClean narrows a value a helper in another file has already
// clamped: the proof crosses the call through the result summary.
func KnobClean(n int) int32 {
	return int32(clampWorkers(n))
}

// StaleSuppression narrows after a clamp the analyzer already proves;
// the suppression is therefore unused and must be reported.
func StaleSuppression(n int) int32 {
	if n < 0 || n > 100 {
		n = 0
	}
	//lint:ignore intwidth suppressing a conversion the clamp already proves // want:lint
	return int32(n)
}
