// Fixture: true positives for the intwidth analyzer. The width pin
// lives in clean.go, so every finding here is about arithmetic, not
// the pin. Lines marked `want:intwidth` must each produce exactly one
// diagnostic.
package fixture

// CellsBad computes a cell count in int32: the product of two
// unbounded 32-bit values overflows silently.
func CellsBad(n int32) int32 {
	return n * n // want:intwidth
}

// ShiftBad shifts an unbounded 32-bit value out of its type's range.
func ShiftBad(n int32) int32 {
	return n << 8 // want:intwidth
}

// NarrowBad converts an unbounded size to int32 without a clamp.
func NarrowBad(n int) int32 {
	return int32(n) // want:intwidth
}

// ChainBad narrows a size computed by a helper in another file whose
// result summary is unbounded above.
func ChainBad(k int) int32 {
	return int32(pairCount(k)) // want:intwidth
}
