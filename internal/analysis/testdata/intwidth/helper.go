// Fixture helpers: result summaries must flow through the module fixed
// point into the conversion checks of the other files.
package fixture

// pairCount is the classic n*(n-1)/2 size computation, done in int as
// the width pin demands; its result summary is unbounded above.
func pairCount(n int) int {
	return n * (n - 1) / 2
}

// clampWorkers bounds a knob to [0, 1024]; its result summary proves
// the narrowing in KnobClean.
func clampWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > 1024 {
		n = 1024
	}
	return n
}
