// Fixture: true positives for the detflow analyzer (type-checked as if
// it were a construction package). Lines marked `want:detflow` must
// each produce exactly one diagnostic.
package fixture

import (
	"fmt"
	"time"
)

// KeysUnsorted leaks map-iteration order through its exported return:
// the slice is accumulated under a map range and never sorted.
func KeysUnsorted(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	return out // want:detflow
}

// KeysViaHelper leaks the same order interprocedurally: the taint is
// introduced inside keysOf (see helper.go) and surfaces only at this
// exported return.
func KeysViaHelper(m map[string]int) []string {
	return keysOf(m) // want:detflow
}

// FirstWinner returns whichever channel happened to be ready first —
// a select winner is scheduler-ordered, not input-ordered.
func FirstWinner(a, b chan int) int {
	var v int
	select {
	case v = <-a:
	case v = <-b:
	}
	return v // want:detflow
}

// Stamp returns a wall-clock read from a deterministic package.
func Stamp() string {
	return time.Now().String() // want:detflow
}

// Describe formats a pointer: the address differs across runs.
func Describe(n *node) string {
	return fmt.Sprintf("%p", n) // want:detflow
}

// dumpKeys is unexported, so its return is nobody's contract — but the
// print writes map-ordered bytes to output.
func dumpKeys(m map[string]int) {
	keys := []string{}
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Println(keys) // want:detflow
}

type node struct{ next *node }
