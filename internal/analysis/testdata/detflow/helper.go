// Fixture helpers: the taint summaries must carry facts from this file
// into findings reported in bad.go / clean.go.
package fixture

// keysOf introduces map-order taint; its callers inherit it through
// the module taint summary.
func keysOf(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	return out
}

// identity propagates whatever taint its argument carries.
func identity(s []string) []string { return s }
