// Fixture: clean idioms, suppressions, and one stale suppression for
// the detflow analyzer. Only the stale directive may produce a (lint)
// diagnostic.
package fixture

import (
	"fmt"
	"sort"
)

// KeysSorted is the approved idiom: the append-under-range taint is
// killed by the sort before the value escapes.
func KeysSorted(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeysSortedAcrossCalls sanitizes a value tainted by a helper: the
// sort is a clean redefinition even though the taint came from another
// function (and through a propagating identity call).
func KeysSortedAcrossCalls(m map[string]int) []string {
	out := identity(keysOf(m))
	sort.Strings(out)
	return out
}

// dumpSorted prints only after ordering: no finding.
func dumpSorted(m map[string]int) {
	keys := []string{}
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(keys)
}

// ValuesDeterministic ranges a map but accumulates an order-free
// reduction fed to no sink: map range values themselves are clean,
// only order-sensitive accumulation taints.
func ValuesDeterministic(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// DebugKeys carries a justified suppression: the finding is real but
// accepted, so it must not surface.
func DebugKeys(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	//lint:ignore detflow diagnostic-only dump; callers are pinned order-free by TestDebugKeysUnordered
	return out
}

// stale directive: nothing on the next line produces a detflow
// finding, so the suppression itself must be reported.
//lint:ignore detflow suppressing nothing at all here // want:lint
func alreadyClean() int { return 42 }
