// Fixture: clean idioms, a justified suppression, and one stale
// suppression for the allocloop analyzer.
package fixture

// hoisted allocates once before the loop: the canonical fix.
func hoisted(weights []float64) float64 {
	buf := make([]float64, 8)
	total := 0.0
	for _, w := range weights {
		buf[0] = w
		total += buf[0]
	}
	return total
}

// growGuardedInline re-allocates only when capacity runs out — the
// core.Scratch attach shape, exempt by the cap-check guard.
func growGuardedInline(weights []float64) float64 {
	var buf []float64
	total := 0.0
	for i, w := range weights {
		if cap(buf) < i+1 {
			buf = make([]float64, (i+1)*2)
		}
		buf[i] = w
		total += buf[i]
	}
	return total
}

// scratchViaCall calls the grow-guarded attach helper per iteration:
// the callee's summary is empty, so the call is clean.
func scratchViaCall(weights []float64) float64 {
	var s scratchBuf
	total := 0.0
	for i, w := range weights {
		buf := s.attach(i + 1)
		buf[i] = w
		total += buf[i]
	}
	return total
}

// appended grows a slice with append: amortized by the runtime, owned
// by other analyzers, not flagged here.
func appended(weights []float64) []float64 {
	out := make([]float64, 0, len(weights))
	for _, w := range weights {
		out = append(out, w*w)
	}
	return out
}

// suppressed allocates per iteration on purpose, with a reason.
func suppressed(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		//lint:ignore allocloop cold error path runs at most once per build, pinned by TestSuppressedColdPath
		buf := make([]float64, 8)
		buf[0] = w
		total += buf[0]
	}
	return total
}

// stale directive: the hoisted allocation below is already outside the
// loop, so the suppression must itself be reported.
//lint:ignore allocloop suppressing an allocation that is not in a loop // want:lint
func alreadyHoisted(weights []float64) []float64 {
	out := make([]float64, len(weights))
	copy(out, weights)
	return out
}
