// Fixture: true positives for the allocloop analyzer (type-checked as
// if it were a hot construction package). Lines marked
// `want:allocloop` must each produce exactly one diagnostic.
package fixture

// perEdgeAlloc allocates a fresh buffer on every iteration of an
// instance-sized loop: the direct shape.
func perEdgeAlloc(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		buf := make([]float64, 8) // want:allocloop
		buf[0] = w
		total += buf[0]
	}
	return total
}

// perEdgeNew allocates through new instead of make.
func perEdgeNew(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		p := new(float64) // want:allocloop
		*p = w
		total += *p
	}
	return total
}

// perEdgeViaCall hides the allocation behind a helper: newBuf (see
// helper.go) allocates on every call, so the call site is the finding.
func perEdgeViaCall(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		buf := newBuf() // want:allocloop
		buf[0] = w
		total += buf[0]
	}
	return total
}

// perEdgeViaChain reaches the allocation two calls down: the summary
// chain (wrap -> newBuf -> make) must survive the extra hop.
func perEdgeViaChain(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		buf := wrap() // want:allocloop
		buf[0] = w
		total += buf[0]
	}
	return total
}
