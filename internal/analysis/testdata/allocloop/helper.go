// Fixture helpers: the allocation summaries must carry facts from
// this file into findings reported in bad.go.
package fixture

// newBuf allocates unconditionally on every call.
func newBuf() []float64 {
	return make([]float64, 16)
}

// wrap adds one hop above the allocation.
func wrap() []float64 {
	return newBuf()
}

// growGuarded allocates only when the scratch is too small: the
// approved idiom, invisible to the summary.
type scratchBuf struct{ buf []float64 }

func (s *scratchBuf) attach(n int) []float64 {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	return s.buf[:n]
}
