// Fixture: true positives for the ctxpoll analyzer (type-checked as if
// it were a construction package). Lines marked `want:ctxpoll` must
// each produce exactly one diagnostic.
package fixture

import (
	"context"

	"repro/internal/cancel"
)

// scanWithoutPoll handles a Checker but its instance-sized scan never
// ticks it.
func scanWithoutPoll(chk *cancel.Checker, weights []float64) float64 {
	_ = chk.Err() // polled once up front, not inside the loop
	total := 0.0
	for _, w := range weights { // want:ctxpoll
		total += heavy(w)
	}
	return total
}

// drainUnderCtx runs a worklist loop without ever reading the context
// it was handed.
func drainUnderCtx(ctx context.Context, pending []int) int {
	_ = ctx
	total := 0
	for len(pending) > 0 { // want:ctxpoll
		total += heavyInt(pending[0])
		pending = pending[1:]
	}
	return total
}

// goroutineScopePollsBeforeLoop: the literal body is its own scope,
// and a one-shot poll before the scan does not cover the scan itself.
func goroutineScopePollsBeforeLoop(chk *cancel.Checker, weights []float64) {
	done := make(chan struct{})
	go func() {
		if chk.Err() != nil {
			return
		}
		for _, w := range weights { // want:ctxpoll
			heavy(w)
		}
		close(done)
	}()
	<-done
}

func heavy(w float64) float64 { return w * w }

func heavyInt(n int) int { return n + 1 }
