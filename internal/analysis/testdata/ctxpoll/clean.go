// Fixture: clean cases for the ctxpoll analyzer — none of these lines
// may produce a diagnostic.
package fixture

import (
	"context"

	"repro/internal/cancel"
)

// polledScan ticks the stride checker every iteration: the canonical
// shape.
func polledScan(ctx context.Context, weights []float64) (float64, error) {
	chk := cancel.New(ctx, 1024)
	total := 0.0
	for _, w := range weights {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		total += heavy(w)
	}
	return total, nil
}

// outerPollCoversInner: the enclosing loop polls, so the nested scan it
// drives inherits the poll.
func outerPollCoversInner(chk *cancel.Checker, rows [][]float64) error {
	for _, row := range rows {
		if err := chk.Tick(); err != nil {
			return err
		}
		for _, w := range row {
			heavy(w)
		}
	}
	return nil
}

// forwardsCtx hands the context to its per-item callee; the callee
// inherits the polling obligation.
func forwardsCtx(ctx context.Context, weights []float64) error {
	for _, w := range weights {
		if err := buildOne(ctx, w); err != nil {
			return err
		}
	}
	return nil
}

// notCancellable never sees a context or checker, so it owes no polls.
func notCancellable(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += heavy(w)
	}
	return total
}

// workerCountLoop is bounded by a plain local, not the instance.
func workerCountLoop(ctx context.Context, w int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for g := 0; g < w; g++ {
		heavyInt(g)
	}
	return nil
}

// suppressed documents a justified exemption.
func suppressed(ctx context.Context, weights []float64) float64 {
	_ = ctx
	total := 0.0
	//lint:ignore ctxpoll fixture: post-construction fold, cheap relative to the build
	for _, w := range weights {
		total += heavy(w)
	}
	return total
}

func buildOne(ctx context.Context, w float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	heavy(w)
	return nil
}
