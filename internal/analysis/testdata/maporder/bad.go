// Fixture: true positives for the maporder analyzer. Lines marked
// `want:maporder` must each produce exactly one diagnostic at that
// file:line.
package fixture

import "fmt"

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want:maporder
	}
	return out
}

func printsDirectly(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want:maporder
	}
}

func floatAccumulation(m map[int]float64) float64 {
	var wirelength float64
	for _, w := range m {
		wirelength += w // want:maporder
	}
	return wirelength
}

type edgeList struct{ edges []int }

func fieldAppend(l *edgeList, m map[int]bool) {
	for v := range m {
		l.edges = append(l.edges, v) // want:maporder
	}
}
