// Fixture: clean cases for the maporder analyzer — none of these
// lines may produce a diagnostic.
package fixture

import "sort"

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // sorted below: the approved idiom
	}
	sort.Strings(out)
	return out
}

func sortSliceAfter(m map[int]float64) []float64 {
	var ws []float64
	for _, w := range m {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}

func intAccumulation(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v // integer addition is associative: order cannot leak
	}
	return s
}

func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func innerSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := append([]int(nil), vs...) // local slice dies inside the loop body
		n += len(local)
	}
	return n
}

func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered
	}
	return out
}
