// Fixture helpers: the nil-state of lookup's result must flow through
// the module summary into ChainBad's finding.
package fixture

// lookup returns the head node, or nil when disabled.
func lookup(on bool) *node {
	if on {
		return &node{val: 3}
	}
	return nil
}
