// Fixture: true positives for the nilflow analyzer. Lines marked
// `want:nilflow` must each produce exactly one diagnostic.
package fixture

type node struct {
	next *node
	val  int
}

// DerefBad dereferences a pointer that is nil unless the branch ran.
func DerefBad(on bool) int {
	var p *int
	if on {
		v := 7
		p = &v
	}
	return *p // want:nilflow
}

// MapWriteBad writes into a map that is provably nil: reads of a nil
// map are defined, writes panic.
func MapWriteBad() {
	var m map[string]int
	m["k"] = 1 // want:nilflow
}

// ChainBad dereferences a result that another file's helper returns
// nil on one path; the nil-state crosses the call through the module
// summary.
func ChainBad(on bool) int {
	h := lookup(on)
	return h.val // want:nilflow
}
