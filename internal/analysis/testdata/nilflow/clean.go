// Fixture: clean idioms the nilflow analyzer must stay silent on, plus
// one stale suppression (want:lint).
package fixture

// scope mirrors the obs idiom: a nil receiver means "observation off",
// and every method gates on it before touching a field.
type scope struct {
	hits int
}

// Inc is the nil-gated method: the dominating check makes the
// fallthrough receiver provably non-nil.
func (s *scope) Inc() {
	if s == nil {
		return
	}
	s.hits++
}

// NilMapReadClean reads and deletes from a possibly-nil map: both are
// defined on nil maps; only writes panic.
func NilMapReadClean(on bool) int {
	var m map[string]int
	if on {
		m = map[string]int{"k": 1}
	}
	delete(m, "gone")
	return m["k"]
}

// ParamClean dereferences a parameter: parameters carry no nil
// evidence (the conformance suites own that contract), so bottom stays
// clean.
func ParamClean(p *int) int {
	return *p
}

// StaleSuppression dereferences a fresh address, which is provably
// non-nil; the suppression is therefore unused and must be reported.
func StaleSuppression(on bool) bool {
	q := &on
	//lint:ignore nilflow suppressing a deref of a fresh address // want:lint
	return *q
}
