// Fixture: clean cases for the parallelgate analyzer — none of these
// lines may produce a diagnostic.
package fixture

import (
	"runtime"
	"sync"
)

const parallelMin = 128

// gatedFanOut is the canonical shape: a GOMAXPROCS gate dominating the
// spawn, with the serial arm bypassing it entirely.
func gatedFanOut(rows [][]float64) {
	if w := runtime.GOMAXPROCS(0); w > 1 && len(rows) >= parallelMin {
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(rows); i += w {
					fill(rows[i])
				}
			}(g)
		}
		wg.Wait()
		return
	}
	for i := range rows {
		fill(rows[i])
	}
}

// selfGatedRecursive gates on its own depth budget, serial arm first —
// the psort shape.
func selfGatedRecursive(rows [][]float64, depth int) {
	if depth <= 0 || len(rows) < parallelMin {
		for i := range rows {
			fill(rows[i])
		}
		return
	}
	mid := len(rows) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		selfGatedRecursive(rows[:mid], depth-1)
	}()
	selfGatedRecursive(rows[mid:], depth-1)
	wg.Wait()
}

// ungatedHelper has no gate of its own, but it is unexported and its
// only callers dominate the call with a worker gate: the geom
// fillParallel shape.
func ungatedHelper(rows [][]float64, w int) {
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(rows); i += w {
				fill(rows[i])
			}
		}(g)
	}
	wg.Wait()
}

// gatedCaller gates the helper call; the serial arm bypasses it.
func gatedCaller(rows [][]float64) {
	if w := runtime.GOMAXPROCS(0); w > 1 && len(rows) >= parallelMin {
		ungatedHelper(rows, w)
		return
	}
	for i := range rows {
		fill(rows[i])
	}
}

// suppressed documents a justified exemption: a background drainer
// that is not a parallel kernel at all.
func suppressed(events chan []float64) {
	//lint:ignore parallelgate fixture: single background drainer, not a fan-out kernel
	go func() {
		for row := range events {
			fill(row)
		}
	}()
}
