// Fixture: true positives for the parallelgate analyzer (type-checked
// as if it were a parallel-kernel package). Lines marked
// `want:parallelgate` must each produce exactly one diagnostic.
package fixture

import "sync"

// alwaysSpawns fans out unconditionally: no worker-count gate, no
// serial fallback.
func alwaysSpawns(rows [][]float64) {
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) { // want:parallelgate
			defer wg.Done()
			fill(rows[i])
		}(i)
	}
	wg.Wait()
}

// spawnLoopIsNoGate: the worker loop's own `g < w` bound is not a
// gate — with w >= 1 the pool always spawns, so there is no serial
// path.
func spawnLoopIsNoGate(rows [][]float64, w int) {
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) { // want:parallelgate
			defer wg.Done()
			for i := g; i < len(rows); i += w {
				fill(rows[i])
			}
		}(g)
	}
	wg.Wait()
}

// exportedUngatedHelper spawns without a gate and is exported, so the
// caller-side escape hatch does not apply: outside callers cannot be
// checked.
func ExportedUngatedHelper(rows [][]float64, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want:parallelgate
		defer wg.Done()
		for i := range rows {
			fill(rows[i])
		}
	}()
}

func fill(row []float64) {
	for j := range row {
		row[j] = 0
	}
}
