// Fixture: true positives for the sharedwrite analyzer. Lines marked
// `want:sharedwrite` must each produce exactly one diagnostic.
package fixture

import "sync"

// sharedSlot: every worker writes the same captured slice element.
func sharedSlot(rows [][]float64, out []float64) {
	var wg sync.WaitGroup
	wg.Add(len(rows))
	for i := range rows {
		go func(i int) {
			defer wg.Done()
			out[0] = out[0] + sum(rows[i]) // want:sharedwrite
		}(i)
	}
	wg.Wait()
}

// mapWrite: maps are never safe for concurrent mutation.
func mapWrite(rows [][]float64, totals map[int]float64) {
	var wg sync.WaitGroup
	wg.Add(len(rows))
	for i := range rows {
		go func(i int) {
			defer wg.Done()
			totals[0] = sum(rows[i]) // want:sharedwrite
		}(i)
	}
	wg.Wait()
}

// scalarAccumulate: racy read-modify-write of a captured accumulator.
func scalarAccumulate(rows [][]float64) float64 {
	total := 0.0
	var wg sync.WaitGroup
	wg.Add(len(rows))
	for i := range rows {
		go func(i int) {
			defer wg.Done()
			total += sum(rows[i]) // want:sharedwrite
		}(i)
	}
	wg.Wait()
	return total
}

// loopVarCapture reads the loop variable instead of taking it as an
// argument.
func loopVarCapture(rows [][]float64, out []float64) {
	var wg sync.WaitGroup
	wg.Add(len(rows))
	for i := range rows {
		go func() { // want:sharedwrite
			defer wg.Done()
			out[i] = sum(rows[i])
		}()
	}
	wg.Wait()
}

func sum(row []float64) float64 {
	t := 0.0
	for _, v := range row {
		t += v
	}
	return t
}
