// Fixture: clean cases for the sharedwrite analyzer — none of these
// lines may produce a diagnostic.
package fixture

import "sync"

// disjointSlots: each worker owns the slot named by its argument.
func disjointSlots(rows [][]float64, out []float64) {
	var wg sync.WaitGroup
	wg.Add(len(rows))
	for i := range rows {
		go func(i int) {
			defer wg.Done()
			out[i] = sumClean(rows[i])
		}(i)
	}
	wg.Wait()
}

// stridedSlots: worker g owns every w-th row — the fillParallel shape.
func stridedSlots(rows [][]float64, out []float64, w int) {
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(rows); i += w {
				out[i] = sumClean(rows[i])
			}
		}(g)
	}
	wg.Wait()
}

// channelFunnel: results travel through a channel; the send is the
// synchronization.
func channelFunnel(rows [][]float64) float64 {
	res := make(chan float64, len(rows))
	for i := range rows {
		go func(i int) {
			res <- sumClean(rows[i])
		}(i)
	}
	total := 0.0
	for range rows {
		total += <-res
	}
	return total
}

// mutexGuarded: the accumulator write is under a lock.
func mutexGuarded(rows [][]float64) float64 {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0.0
	wg.Add(len(rows))
	for i := range rows {
		go func(i int) {
			defer wg.Done()
			s := sumClean(rows[i])
			mu.Lock()
			total += s
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return total
}

// localOnly mutates goroutine-local state; captures are read-only.
func localOnly(rows [][]float64, res chan float64) {
	for i := range rows {
		go func(i int) {
			t := 0.0
			for _, v := range rows[i] {
				t += v
			}
			res <- t
		}(i)
	}
}

// suppressed documents a justified exemption: a single writer that the
// spawner joins before reading.
func suppressed(row []float64, out *float64, done chan struct{}) {
	go func() {
		//lint:ignore sharedwrite fixture: single goroutine, joined via done before any read
		*out = sumClean(row)
		close(done)
	}()
}

func sumClean(row []float64) float64 {
	t := 0.0
	for _, v := range row {
		t += v
	}
	return t
}
