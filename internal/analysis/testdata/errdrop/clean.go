// Fixture: clean cases for the errdrop analyzer — none of these lines
// may produce a diagnostic.
package fixture

import (
	"fmt"
	"strings"
)

// handled checks the error.
func handled() error {
	if err := validate(3); err != nil {
		return err
	}
	return nil
}

// explicitDiscard states the intent with a blank assignment.
func explicitDiscard() {
	_ = validate(3)
	_, _ = build(3)
}

// printFamily: fmt's Print errors are terminal-I/O noise by
// convention.
func printFamily(w *strings.Builder) {
	fmt.Println("building")
	fmt.Fprintf(w, "n=%d", 3)
}

// builderWrites: strings.Builder methods never return a non-nil error.
func builderWrites(b *strings.Builder) string {
	b.WriteString("edges: ")
	b.WriteByte('[')
	return b.String()
}

// deferredCleanup: deferred calls are best-effort by convention.
func deferredCleanup(s *sink) {
	defer s.flush()
	s.n++
}

// noError drops a plain value, which is the caller's business.
func noError() {
	side(3)
}

// suppressed documents a justified exemption.
func suppressed(s *sink) {
	//lint:ignore errdrop fixture: sink.flush is documented to never fail for in-memory sinks
	s.flush()
}

func side(n int) int { return n + 1 }
