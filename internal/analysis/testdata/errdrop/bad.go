// Fixture: true positives for the errdrop analyzer. Lines marked
// `want:errdrop` must each produce exactly one diagnostic.
package fixture

// droppedError ignores a bare error result.
func droppedError() {
	validate(3) // want:errdrop
}

// droppedTupleError ignores the error half of a (value, error) pair.
func droppedTupleError() {
	build(3) // want:errdrop
}

// droppedMethodError ignores an error from a method call.
func droppedMethodError(s *sink) {
	s.flush() // want:errdrop
}

func validate(n int) error {
	if n < 0 {
		return errNegative
	}
	return nil
}

func build(n int) (int, error) {
	if err := validate(n); err != nil {
		return 0, err
	}
	return n * n, nil
}

type sink struct{ n int }

func (s *sink) flush() error {
	s.n = 0
	return nil
}

type simpleError string

func (e simpleError) Error() string { return string(e) }

var errNegative error = simpleError("negative size")
