// Fixture: clean and correctly gated cases for the obsgate analyzer —
// none of these lines may produce a diagnostic.
package fixture

import "repro/internal/obs"

// Counters is a counter set: a struct holding only obs instruments.
type Counters struct {
	Edges  *obs.Counter
	Weight *obs.Gauge
}

// NewCounters only resolves instruments (lookups are free of the
// gating contract; a nil scope hands out standalone instruments).
func NewCounters(sc *obs.Scope) *Counters {
	return &Counters{
		Edges:  sc.Counter("edges_examined"),
		Weight: sc.Gauge("total_weight"),
	}
}

// publish records through its own receiver: the nil gate is the
// caller's obligation, enforced at every call site.
func (c *Counters) publish(n int64) {
	c.Edges.Add(n)
	c.Weight.Set(float64(n))
}

// load only reads; reads are not recording calls.
func (c *Counters) load() int64 { return c.Edges.Load() }

func gatedField(c *Counters) {
	if c != nil {
		c.Edges.Inc()
	}
}

func gatedScope(sc *obs.Scope) {
	if sc != nil {
		sc.Counter("nets_routed").Inc()
	}
}

func gatedConjunction(c *Counters, n int64) {
	if c != nil && n > 0 {
		c.Edges.Add(n)
	}
}

func earlyExit(c *Counters) {
	if c == nil {
		return
	}
	c.Edges.Inc()
	c.publish(1)
}

func gatedSetCall(c *Counters) {
	if c != nil {
		c.publish(2)
	}
}

func gatedInstrument(sc *obs.Scope) {
	var hist *obs.Histogram
	if sc != nil {
		hist = sc.Histogram("net_build_seconds", 0.1, 1)
	}
	if hist != nil {
		hist.Observe(0.5)
	}
}

func ungatedRead(c *Counters) int64 {
	return c.load() // read-only counter-set method needs no gate
}
