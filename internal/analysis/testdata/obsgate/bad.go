// Fixture: true positives for the obsgate analyzer. Lines marked
// `want:obsgate` must each produce exactly one diagnostic.
package fixture

import "repro/internal/obs"

func ungatedCounter(c *Counters) {
	c.Edges.Inc() // want:obsgate
}

func ungatedScope(sc *obs.Scope) {
	sc.Gauge("workers").Set(1) // want:obsgate
}

func ungatedTimer(t *obs.Timer) {
	defer t.Start()() // want:obsgate
}

func ungatedSetCall(c *Counters) {
	c.publish(7) // want:obsgate
}

func wrongGate(c *Counters, err error) {
	if err != nil {
		c.Edges.Inc() // want:obsgate
	}
}
