// Fixture: allowlisted and clean cases for the floatcmp analyzer —
// none of these lines may produce a diagnostic.
package fixture

import "math"

func zeroSentinel(w float64) bool {
	return w == 0 // constant zero is the approved "unset" sentinel
}

func infSentinel(d float64) bool {
	return d == math.Inf(1) // assigned, never computed
}

func maxSentinel(d float64) bool {
	return d != math.MaxFloat64
}

func ordering(a, b float64) bool {
	return a < b // orderings are fine, only exact equality is flagged
}

func intCompare(a, b int) bool {
	return a == b
}

func suppressed(a, b float64) bool {
	//lint:ignore floatcmp fixture: comparator-style exact order is intended here
	return a == b
}
