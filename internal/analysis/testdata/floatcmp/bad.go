// Fixture: true positives for the floatcmp analyzer. Lines marked
// `want:floatcmp` must each produce exactly one diagnostic at that
// file:line.
package fixture

// Weight mirrors the named float types used for edge weights.
type Weight float64

func exactEqual(a, b float64) bool {
	return a == b // want:floatcmp
}

func exactNotEqual(a, b Weight) bool {
	return a != b // want:floatcmp
}

func exactAgainstLiteral(wl float64) bool {
	return wl == 1.5 // want:floatcmp
}

func switchOnFloat(x float64) int {
	switch x { // want:floatcmp
	case 0.25:
		return 1
	default:
		return 0
	}
}
