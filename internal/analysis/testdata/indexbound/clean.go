// Fixture: clean idioms the indexbound analyzer must stay silent on,
// plus one stale suppression (want:lint).
package fixture

import "sync"

// StridedClean is the worker-partition idiom the value-flow layer
// exists to prove: every worker's stride index stays in [0, len(out))
// under the loop guard, with the zero floor surviving widening and the
// worker offset seeded from the spawn arguments.
func StridedClean(out []float64, nw int) {
	if nw < 2 {
		nw = 2
	}
	var wg sync.WaitGroup
	for g := 0; g < nw; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(out); i += nw {
				out[i] *= 2
			}
		}(g)
	}
	wg.Wait()
}

// GuardedDataClean subscripts with data-derived indexes behind explicit
// guards: data-derived subscripts carry no static obligation (they are
// the conformance and property suites' job), and the guards mark them
// deliberately handled.
func GuardedDataClean(idx []int, vals []float64) float64 {
	t := 0.0
	for _, j := range idx {
		if j >= 0 && j < len(vals) {
			t += vals[j]
		}
	}
	return t
}

// PopClean drains two stacks kept in lockstep through one guarded
// index: a[last] proves outright, b[last] is guarded by the lockstep
// data invariant the analyzer treats as exempt.
func PopClean(a, b []int) int {
	t := 0
	for len(a) > 0 {
		last := len(a) - 1
		t += a[last] + b[last]
		a = a[:last]
		b = b[:last]
	}
	return t
}

// StaleSuppression subscripts a slice the dominating guard proves
// non-empty; the suppression is therefore unused and must be reported.
func StaleSuppression(s []int) int {
	if len(s) == 0 {
		return 0
	}
	//lint:ignore indexbound suppressing an index the guard already proves in range // want:lint
	return s[0]
}
