// Fixture helpers: interprocedural facts must flow through the module
// summary into the findings and proofs of the other files.
package fixture

// sentinel returns the not-found marker ChainBad forgets to check.
func sentinel() int { return -1 }
