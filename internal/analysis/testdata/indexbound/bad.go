// Fixture: true positives for the indexbound analyzer (type-checked as
// if it were a hot construction package). Lines marked
// `want:indexbound` must each produce exactly one diagnostic.
package fixture

// HeadBad subscripts with a provably negative index: i is the constant
// zero, so i-1 is -1 on every path.
func HeadBad(s []int) int {
	i := 0
	return s[i-1] // want:indexbound
}

// PastEndBad reads one past the end of its own base: len(s) is a valid
// slicing position but never a valid subscript.
func PastEndBad(s []int) int {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)] // want:indexbound
}

// InvertedBad slices with constant bounds that are provably inverted.
// (Literal constants in the slice expression would be caught by the
// compiler; routed through locals they are this analyzer's job.)
func InvertedBad(s []int) []int {
	lo, hi := 2, 1
	return s[lo:hi] // want:indexbound
}

// ChainBad indexes with a sentinel returned by a helper in another
// file: the module summary carries the constant -1 across the call.
func ChainBad(s []int) int {
	j := sentinel()
	return s[j] // want:indexbound
}
