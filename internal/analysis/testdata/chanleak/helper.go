// Fixture helpers: channel-op summaries must flow through these calls
// into the pairing decisions of the other files.
package fixture

// drain receives the single value a spawned sender produces.
func drain(ch chan int) int { return <-ch }

// ignore takes the channel but never operates on it.
func ignore(ch chan int) {}
