// Fixture: clean idioms the chanleak analyzer must stay silent on,
// plus one stale suppression (want:lint).
package fixture

// RangeWorkerClean is the sweep pool idiom: the spawner closes the
// work channel on every path, so the worker's range loop always
// terminates, and it drains the result channel unconditionally.
func RangeWorkerClean(items []float64) float64 {
	next := make(chan int)
	done := make(chan float64)
	go func() {
		t := 0.0
		for i := range next {
			t += items[i]
		}
		done <- t
	}()
	for i := range items {
		next <- i
	}
	close(next)
	return <-done
}

// SelectDefaultClean spawns a goroutine that can always bail through
// the default case: no blocking obligation arises.
func SelectDefaultClean() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// ChainClean hands the channel to a helper in another file that
// provably receives on it: the pairing crosses the call through the
// module-wide op summary.
func ChainClean() int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return drain(ch)
}

// StaleSuppression spawns a sender the unconditional receive below
// already pairs; the suppression is therefore unused and must be
// reported.
func StaleSuppression() int {
	ch := make(chan int)
	//lint:ignore chanleak suppressing a spawn the receive below already pairs // want:lint
	go func() {
		ch <- 5
	}()
	return <-ch
}
