// Fixture: true positives for the chanleak analyzer. Findings are
// reported at the spawn site. Lines marked `want:chanleak` must each
// produce exactly one diagnostic.
package fixture

// ForgottenReceive spawns a sender whose only exit is the channel
// send, then returns early without receiving: when skip is true the
// goroutine blocks forever.
func ForgottenReceive(skip bool) int {
	ch := make(chan int)
	go func() { // want:chanleak
		ch <- 42
	}()
	if skip {
		return 0
	}
	return <-ch
}

// ChainBad hands its channel to a helper in another file that performs
// no operation on it: the module-wide op summary proves no receive is
// reachable, so the sender leaks.
func ChainBad() {
	ch := make(chan int)
	go func() { // want:chanleak
		ch <- 1
	}()
	ignore(ch)
}
