// Fixture: true positives for the ctxflow analyzer (type-checked as if
// it were a cancellable construction package). Lines marked
// `want:ctxflow` must each produce exactly one diagnostic.
package fixture

import (
	"context"
)

// Build is cancellable but drops its context at the call into the
// instance-sized scan: scanAll can run arbitrarily long after ctx is
// cancelled.
func Build(ctx context.Context, weights []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return scanAll(weights) // want:ctxflow
}

// BuildDeep drops the context two calls above the hungry loop: outer
// (see helper.go) only forwards to inner, whose scan never polls. The
// hungriness must propagate up the summary chain.
func BuildDeep(ctx context.Context, weights []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return outer(weights) // want:ctxflow
}

// scanAll is the hungry leaf: instance-sized work loop, no poll, no
// context to poll with.
func scanAll(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += heavy(w)
	}
	return total
}

func heavy(w float64) float64 { return w * w }
