// Fixture helpers: the hungry summary must flow through this file's
// call chain into findings reported in bad.go.
package fixture

// outer has no loop of its own; it is hungry only because inner is.
func outer(weights []float64) float64 {
	return inner(weights)
}

// inner is a hungry leaf reached two calls below the dropped context.
func inner(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += heavy(w)
	}
	return total
}
