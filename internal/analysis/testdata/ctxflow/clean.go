// Fixture: clean idioms, a justified suppression, and one stale
// suppression for the ctxflow analyzer.
package fixture

import (
	"context"

	"repro/internal/cancel"
)

// BuildForwarded threads the context down to the loop: the callee
// polls, so nothing is hungry.
func BuildForwarded(ctx context.Context, weights []float64) float64 {
	return scanCtx(ctx, weights)
}

func scanCtx(ctx context.Context, weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		if ctx.Err() != nil {
			return total
		}
		total += heavy(w)
	}
	return total
}

// BuildStrided makes context-free calls from inside a polled loop —
// the engine's stride design. The per-iteration Tick bounds the
// cancellation gap to one scanAll batch, so the call is exempt.
func BuildStrided(chk *cancel.Checker, batches [][]float64) (float64, error) {
	total := 0.0
	for _, b := range batches {
		if err := chk.Tick(); err != nil {
			return 0, err
		}
		total += scanAll(b)
	}
	return total, nil
}

// striding hides the Checker behind a struct field: the loop in
// scanPolled reaches a poll through the step helper, so nothing here
// is hungry even though no call carries a ctx.
type striding struct{ chk *cancel.Checker }

func (s *striding) step() error { return s.chk.Tick() }

func (s *striding) Scan(ctx context.Context, weights []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return s.scanPolled(weights)
}

func (s *striding) scanPolled(weights []float64) float64 {
	total := 0.0
	for _, w := range weights {
		if s.step() != nil {
			return total
		}
		total += heavy(w)
	}
	return total
}

// BuildChecked drops the context on purpose, with a reasoned
// suppression: no finding may surface.
func BuildChecked(ctx context.Context, weights []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	//lint:ignore ctxflow post-construction O(n) fold, pinned by TestBuildCheckedBounded
	return scanAll(weights)
}

// stale directive: smallSum is not hungry (constant-bound loop), so
// the suppression has nothing to suppress and must itself be reported.
//lint:ignore ctxflow suppressing a loop that is not instance-sized // want:lint
func SmallSum(ctx context.Context, weights []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	return smallSum(weights)
}

func smallSum(weights []float64) float64 {
	total := 0.0
	for i := 0; i < 4; i++ {
		total += heavy(weights[i%len(weights)])
	}
	return total
}
