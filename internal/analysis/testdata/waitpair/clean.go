// Fixture: clean cases for the waitpair analyzer — none of these lines
// may produce a diagnostic.
package fixture

import "sync"

// canonicalPair: Add before spawn, Done deferred first thing in the
// body.
func canonicalPair(rows [][]float64) {
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fillClean(rows[i])
		}(i)
	}
	wg.Wait()
}

// batchAdd reserves the whole pool before the spawn loop; the Add
// dominates every go statement.
func batchAdd(rows [][]float64, w int) {
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(rows); i += w {
				fillClean(rows[i])
			}
		}(g)
	}
	wg.Wait()
}

// pointerWaitGroup passes the group explicitly; the pairing still
// resolves to the same variable.
func pointerWaitGroup(rows [][]float64, wg *sync.WaitGroup) {
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fillClean(rows[i])
		}(i)
	}
}

// suppressed documents a justified exemption: a fire-and-forget
// drainer coordinated by channel close, not a WaitGroup.
func suppressed(events chan []float64, done chan struct{}) {
	//lint:ignore waitpair fixture: drainer signals completion by closing done, pinned by its own test
	go func() {
		defer close(done)
		for row := range events {
			fillClean(row)
		}
	}()
}

func fillClean(row []float64) {
	for j := range row {
		row[j] = 0
	}
}
