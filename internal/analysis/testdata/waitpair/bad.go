// Fixture: true positives for the waitpair analyzer. Lines marked
// `want:waitpair` must each produce exactly one diagnostic.
package fixture

import "sync"

// missingDone never releases the barrier: Wait hangs.
func missingDone(rows [][]float64) {
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) { // want:waitpair
			fill(rows[i])
		}(i)
	}
	wg.Wait()
}

// trailingDone releases the barrier only on the happy path: a panic in
// fill leaks the WaitGroup.
func trailingDone(rows [][]float64) {
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) { // want:waitpair
			fill(rows[i])
			wg.Done()
		}(i)
	}
	wg.Wait()
}

// conditionalDone skips Done on the early-return path.
func conditionalDone(rows [][]float64) {
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) { // want:waitpair
			if len(rows[i]) == 0 {
				return
			}
			defer wg.Done()
			fill(rows[i])
		}(i)
	}
	wg.Wait()
}

// addAfterSpawn races the barrier: Wait can observe a zero counter and
// return before the goroutine runs.
func addAfterSpawn(rows [][]float64) {
	var wg sync.WaitGroup
	for i := range rows {
		go func(i int) { // want:waitpair
			defer wg.Done()
			fill(rows[i])
		}(i)
		wg.Add(1)
	}
	wg.Wait()
}

func fill(row []float64) {
	for j := range row {
		row[j] = 0
	}
}
