// Fixture: true positives for the wallclock analyzer (type-checked as
// if it were a deterministic construction package). Lines marked
// `want:wallclock` must each produce exactly one diagnostic.
package fixture

import "time"

func buildTimed() time.Duration {
	start := time.Now() // want:wallclock
	work()
	return time.Since(start) // want:wallclock
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want:wallclock
}

func work() {}
