// Fixture: clean cases for the wallclock analyzer — none of these
// lines may produce a diagnostic.
package fixture

import (
	"time"

	"repro/internal/obs"
)

// observedBuild times itself through the obs layer: the timer reads
// the clock inside internal/obs, not inside the construction package.
func observedBuild(sc *obs.Scope) {
	if sc != nil {
		defer sc.Timer("build_seconds").Start()()
	}
	work2()
}

// durations as plain values (no clock read) are fine.
func budget(d time.Duration) time.Duration { return 2 * d }

//lint:ignore wallclock fixture: demonstrating a justified suppression
var bootTime = time.Now()

func work2() {}
