package analysis

// intervalmod.go is the interprocedural half of the value-flow layer:
// per-function parameter and result interval summaries propagated
// through the Module call graph by bounded fixed point, in the style of
// summary.go's other caches.
//
// Direction: parameter summaries start at bottom ("no caller seen") and
// join in the abstraction of every resolved call site's arguments;
// functions callable from outside the analyzed module — exported names,
// methods (interface dispatch), and address-taken functions — start at
// top instead, since their callers are invisible. Result summaries are
// re-derived each round by running the intraprocedural interpreter with
// the current parameter seeds. The round count is capped and parameter
// joins widen after two rounds, so the iteration terminates even though
// result re-derivation is not formally monotone; the final round's
// per-function states are cached for the analyzers to query.
//
// Bounds are laundered at the call boundary: a caller-side symbolic
// bound (len of a caller local, a caller variable) means nothing in the
// callee, so only constant parts cross — which is exactly enough for
// the fixture-scale chains (`n := 8; fill(make([]int, n))`) and for
// worker-count floors (`g` in `go func(g int)` is seeded `[0, nw-1]`
// constant-floored to `[0, _]`).

import (
	"go/ast"
	"go/types"
)

// ivalSummary is one function's interprocedural interval summary.
type ivalSummary struct {
	params     []ival     // per declared parameter, joined over call sites
	lenParams  []ival     // parallel: len() facts for slice-like parameters
	seeded     []bool     // whether any call site contributed yet
	results    []ival     // per result position; nil until derived
	nilResults []nilState // per result position; bottom until derived
	rounds     int        // completed derivation rounds, for widening
}

// ivalMaxRounds caps the summary fixed point; parameter joins widen
// after ivalWidenRound completed rounds.
const (
	ivalMaxRounds  = 4
	ivalWidenRound = 2
)

// intervalSummaries returns the module's interval summary table,
// computing it on first use. Re-entrant calls during the fixed point
// (the intraprocedural interpreter consults callee results) observe the
// in-progress table, which is sound: missing results abstract to top.
func (m *Module) intervalSummaries() map[*modFunc]*ivalSummary {
	if m.ivals != nil {
		return m.ivals
	}
	m.ivals = make(map[*modFunc]*ivalSummary, len(m.order))
	m.ivalAbs = make(map[*modFunc]*funcAbs, len(m.order))
	addrTaken := m.addressTakenFuncs()

	for _, fn := range m.order {
		sum := &ivalSummary{}
		np := len(declParams(fn))
		sum.params = make([]ival, np)
		sum.lenParams = make([]ival, np)
		sum.seeded = make([]bool, np)
		if exportedFromPkg(fn) || fn.decl.Recv != nil || addrTaken[fn] {
			for i := range sum.params {
				sum.params[i] = topIval
				sum.lenParams[i] = ival{lo: constBound(0)}
				sum.seeded[i] = true
			}
		}
		m.ivals[fn] = sum
	}

	for round := 0; round < ivalMaxRounds; round++ {
		changed := false
		for _, fn := range m.order {
			if m.deriveFunc(fn, round) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return m.ivals
}

// funcAbsFor returns the cached final-round value-flow result for a
// declared module function, deriving the whole table on first use.
func (m *Module) funcAbsFor(fn *modFunc) *funcAbs {
	m.intervalSummaries()
	if fa := m.ivalAbs[fn]; fa != nil {
		return fa
	}
	fa := m.runFunc(fn)
	m.ivalAbs[fn] = fa
	return fa
}

// runFunc runs the intraprocedural interpreter on fn with its current
// summary seeds.
func (m *Module) runFunc(fn *modFunc) *funcAbs {
	p := fn.pass()
	params := declParams(fn)
	sum := m.ivals[fn]
	var seed, lenSeed map[types.Object]ival
	if sum != nil {
		seed = map[types.Object]ival{}
		lenSeed = map[types.Object]ival{}
		for i, obj := range params {
			if i >= len(sum.params) {
				break
			}
			if sum.seeded[i] {
				if isIntType(obj.Type()) {
					seed[obj] = sum.params[i]
				}
				if isSliceLike(obj.Type()) {
					lenSeed[obj] = sum.lenParams[i]
				}
			}
		}
		// Receivers are always top; they need no explicit entry (absent
		// seed means top for tracked params in entryEnv).
	}
	all := paramObjects(p, fn.decl)
	return analyzeFunc(p, fn.decl.Body, all, m, seed, lenSeed)
}

// deriveFunc recomputes fn's results and pushes its call-site argument
// abstractions into callee parameter summaries. Reports change.
func (m *Module) deriveFunc(fn *modFunc, round int) bool {
	fa := m.runFunc(fn)
	m.ivalAbs[fn] = fa
	changed := false

	sum := m.ivals[fn]
	if rets := fa.rets; rets != nil {
		if sum.results == nil {
			sum.results = make([]ival, len(rets))
			sum.nilResults = make([]nilState, len(rets))
			for i := range rets {
				sum.results[i] = rets[i]
				sum.nilResults[i] = fa.nilRets[i]
			}
			changed = true
		} else if len(sum.results) == len(rets) {
			for i, r := range rets {
				nr := joinIval(sum.results[i], r)
				if round >= ivalWidenRound {
					nr = widenIval(sum.results[i], nr)
					nr = joinIval(sum.results[i], nr)
				}
				if nr != sum.results[i] {
					sum.results[i] = nr
					changed = true
				}
				// The nil lattice is finite: a plain join terminates.
				nn := joinNil(sum.nilResults[i], fa.nilRets[i])
				if nn != sum.nilResults[i] {
					sum.nilResults[i] = nn
					changed = true
				}
			}
		}
	}
	sum.rounds++

	forEachCall(fn, func(call *ast.CallExpr) {
		callee := m.resolve(fn.pkg, call)
		if callee == nil {
			return
		}
		if m.seedCallee(fa, call, callee, round) {
			changed = true
		}
	})
	return changed
}

// seedCallee joins the call's argument abstractions into the callee's
// parameter summary. Variadic tails and mismatched arities degrade to
// top for the affected positions.
func (m *Module) seedCallee(fa *funcAbs, call *ast.CallExpr, callee *modFunc, round int) bool {
	sum := m.ivals[callee]
	if sum == nil || len(sum.params) == 0 {
		return false
	}
	env := fa.envAt(call.Pos())
	changed := false
	variadic := callee.decl.Type.Params != nil && isVariadicDecl(callee)
	for i := range sum.params {
		var av, lv ival
		switch {
		case i < len(call.Args) && !(variadic && i == len(sum.params)-1):
			arg := call.Args[i]
			av = launderIval(func() ival { v, _ := fa.evalIval(env, arg); return v }())
			if t := fa.p.TypeOf(arg); t != nil && isSliceLike(t) {
				if l, ok := fa.evalLen(env, arg); ok {
					lv = launderIval(l)
				} else {
					lv = ival{lo: constBound(0)}
				}
			} else {
				lv = ival{lo: constBound(0)}
			}
		default:
			// Variadic tail, g(args...) forwarding, arity oddities.
			av = topIval
			lv = ival{lo: constBound(0)}
		}
		if !sum.seeded[i] {
			sum.params[i] = av
			sum.lenParams[i] = lv
			sum.seeded[i] = true
			changed = true
			continue
		}
		np := joinIval(sum.params[i], av)
		nl := joinIval(sum.lenParams[i], lv)
		if round >= ivalWidenRound {
			np = joinIval(sum.params[i], widenIval(sum.params[i], np))
			nl = joinIval(sum.lenParams[i], widenIval(sum.lenParams[i], nl))
		}
		if np != sum.params[i] || nl != sum.lenParams[i] {
			sum.params[i], sum.lenParams[i] = np, nl
			changed = true
		}
	}
	return changed
}

// launderIval strips caller-scoped symbolic bounds from an interval so
// it can cross a call boundary: constant bounds survive, a symbolic lo
// degrades to its constant floor, a symbolic hi is dropped.
func launderIval(v ival) ival {
	if v.lo.set && v.lo.kind != bkConst {
		if c, ok := v.lo.constFloor(); ok {
			v.lo = constBound(c)
		} else {
			v.lo = sbound{}
		}
	}
	if v.hi.set && v.hi.kind != bkConst {
		v.hi = sbound{}
	}
	return v
}

// declParams returns fn's declared parameter objects in positional
// order, excluding the receiver and results.
func declParams(fn *modFunc) []types.Object {
	p := fn.pass()
	var out []types.Object
	for _, field := range fn.decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed param still occupies a position
			continue
		}
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			out = append(out, obj)
		}
	}
	// Replace nil placeholders with throwaway distinct keys so index
	// math stays positional; they are never looked up.
	for i, obj := range out {
		if obj == nil {
			out[i] = types.NewVar(fn.decl.Pos(), nil, "_", types.Typ[types.Int])
		}
	}
	return out
}

func isVariadicDecl(fn *modFunc) bool {
	params := fn.decl.Type.Params.List
	if len(params) == 0 {
		return false
	}
	_, ok := params[len(params)-1].Type.(*ast.Ellipsis)
	return ok
}

// addressTakenFuncs finds module functions whose value escapes: an
// identifier or selector use that is not the callee of a call. Their
// call sites are untrackable, so their parameters are top.
func (m *Module) addressTakenFuncs() map[*modFunc]bool {
	out := map[*modFunc]bool{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			callees := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					callees[fun] = true
				case *ast.SelectorExpr:
					callees[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callees[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				if fn := m.byObj[obj]; fn != nil {
					out[fn] = true
				} else if id := funcID(obj); id != "" {
					if fn := m.funcs[id]; fn != nil {
						out[fn] = true
					}
				}
				return true
			})
		}
	}
	return out
}

// litAbs analyzes a function literal occurring inside fn's body with
// parameter seeds taken from its call site when it is immediately
// invoked (including `go lit(args)` / `defer lit(args)`), and captured
// variables seeded from the snapshot of the enclosing state at the
// literal's position. callArgs is nil for escaping literals (stored,
// returned, passed as a value), whose parameters are top.
//
// Soundness caveat, documented in DESIGN.md §15: the capture snapshot
// is the state at literal creation; a `go` literal actually runs later,
// so captured variables that are written between creation and execution
// must not be trusted — findVolatile already blanks any variable
// assigned inside some literal, and the spawner idiom re-binds loop
// variables by parameter passing, which this seeding models exactly.
func litAbs(p *Pass, fa *funcAbs, lit *ast.FuncLit, callArgs []ast.Expr, mod *Module) *funcAbs {
	seed := map[types.Object]ival{}
	lenSeed := map[types.Object]ival{}

	// Capture seeding: every tracked outer variable at the snapshot,
	// minus anything volatile (findVolatile of the inner body will
	// additionally blank inner writes).
	if env, ok := fa.litEnv[lit]; ok {
		for obj, v := range env.iv {
			seed[obj] = v
		}
		for key, v := range env.lens {
			if key.path == "" {
				lenSeed[key.root] = v
			}
		}
	}

	// Call-site parameter seeding.
	params := litParams(p, lit)
	if callArgs != nil {
		env := fa.litEnv[lit]
		if env == nil {
			env = newEnv()
		}
		for i, obj := range params {
			if obj == nil || i >= len(callArgs) {
				continue
			}
			if isIntType(obj.Type()) {
				v, _ := fa.evalIval(env, callArgs[i])
				seed[obj] = v
			}
			if t := p.TypeOf(callArgs[i]); t != nil && isSliceLike(t) {
				if l, ok := fa.evalLen(env, callArgs[i]); ok {
					lenSeed[obj] = l
				}
			}
		}
	}

	all := paramObjects(p, lit)
	// The outer captures are not params, but entryEnv only seeds params;
	// analyzeFunc accepts extra seed entries for non-params via the env
	// maps directly.
	inner := &funcAbs{
		p: p, body: lit.Body, params: all,
		cfg:      buildCFG(lit.Body),
		volatile: map[types.Object]bool{},
		rangeAt:  map[int]*ast.RangeStmt{},
		litEnv:   map[*ast.FuncLit]*absEnv{},
		seed:     seed,
		lenSeed:  lenSeed,
		mod:      mod,
	}
	// Outer volatility transfers: what the outer pass refused to track,
	// the inner pass must refuse too — except objects declared inside
	// this very literal, whose writes the outer findVolatile saw as
	// "assigned in a nested literal" but which are ordinary locals here
	// (the strided loop's own counter, most importantly).
	for obj := range fa.volatile {
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			continue
		}
		inner.volatile[obj] = true
	}
	inner.findVolatile()
	inner.findRanges()
	inner.entryExtra = func(env *absEnv) {
		for obj, v := range seed {
			if _, isParam := env.iv[obj]; !isParam {
				if isIntType(obj.Type()) && !inner.volatile[obj] {
					env.iv[obj] = v
					env.pv[obj] = provControl
				}
			}
		}
		for obj, v := range lenSeed {
			if !inner.volatile[obj] {
				env.lens[symKey{root: obj}] = v
			}
		}
	}
	inner.solve()
	return inner
}

// litParams returns the literal's declared parameter objects in
// positional order (nil for unnamed).
func litParams(p *Pass, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, p.Info.Defs[name])
		}
	}
	return out
}
