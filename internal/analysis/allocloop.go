package analysis

// allocloop guards the hot construction paths against per-iteration
// heap allocation. A make/new inside an instance-sized loop turns an
// O(E) edge scan into O(E) garbage — the engine's scratch-buffer design
// (core.Scratch, grow-guarded attach) exists precisely so repeated
// builds on the same instance size reuse memory. The local shape is
// easy to spot; the expensive one hides behind a call: the loop body
// invokes a helper that allocates on every call. allocloop computes a
// per-function allocation summary by fixed point and reports both the
// direct allocation and the allocating call, with the chain down to the
// make/new in the message.
//
// Exemptions, matching the approved idioms:
//
//   - grow-guarded allocation: a make/new inside an if whose condition
//     inspects len/cap/nil of the destination only runs when the
//     scratch buffer is too small, i.e. O(log growth) times, not per
//     iteration (the core.Scratch.attach shape);
//   - append: growth is amortized by the runtime and the parallelgate
//     /maporder analyzers own append discipline;
//   - composite literals: small fixed-size values the compiler usually
//     keeps on the stack; flagging them drowns the signal.

import (
	"go/ast"
	"go/token"
)

// allocLoopPackages are the hot construction packages where the
// per-iteration allocation budget is zero.
var allocLoopPackages = []string{
	"repro/internal/core",
	"repro/internal/mst",
	"repro/internal/steiner",
	"repro/internal/engine",
}

// AllocLoop reports heap allocations (make/new) reachable inside
// instance-sized loops of the hot packages, directly or through module
// calls.
var AllocLoop = &Analyzer{
	Name: "allocloop",
	Doc:  "instance-sized loops in hot packages must not allocate per iteration; use pooled scratch buffers",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, allocLoopPackages...)
	},
	Run: runAllocLoop,
}

// allocSummary records where a function allocates unconditionally on
// the ordinary path (outside loops of its own — a callee's loop-bound
// allocation is that callee's finding, not the caller's).
type allocSummary struct {
	sites []allocSite
}

// allocSite is one allocation a call to the function performs, with the
// chain of callees leading to it ("" for a direct make/new).
type allocSite struct {
	pos   token.Pos // position in the summarized function (alloc or call)
	what  string    // "make", "new", or the callee chain "f -> g: make"
	depth int       // chain length, to cap message growth
}

func runAllocLoop(p *Pass) {
	m := p.module()
	sums := m.allocSummaries()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := m.byObj[p.Info.Defs[fd.Name]]
			if fn == nil {
				continue
			}
			checkLoopAllocs(p, m, fn, sums)
		}
	}
}

// checkLoopAllocs walks fn's instance-sized loops and reports direct
// allocations and calls to allocating module functions in their bodies.
func checkLoopAllocs(p *Pass, m *Module, fn *modFunc, sums map[*modFunc]*allocSummary) {
	reported := map[token.Pos]bool{}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			return true
		}
		if !instanceSized(p, n) {
			return true
		}
		body := loopBody(n)
		if body == nil {
			return true
		}
		ast.Inspect(body, func(bn ast.Node) bool {
			if _, ok := bn.(*ast.FuncLit); ok {
				return false
			}
			call, ok := bn.(*ast.CallExpr)
			if !ok {
				return true
			}
			if reported[call.Pos()] {
				return true
			}
			if kind := allocKind(p, call); kind != "" {
				if growGuardedIn(body, call) {
					return true
				}
				reported[call.Pos()] = true
				p.Reportf(call.Pos(),
					"%s inside instance-sized loop allocates every iteration; hoist into a scratch buffer", kind)
				return true
			}
			callee := m.resolve(fn.pkg, call)
			if callee == nil || callee == fn {
				return true
			}
			if s := sums[callee]; s != nil && len(s.sites) > 0 {
				reported[call.Pos()] = true
				p.Reportf(call.Pos(),
					"call to %s inside instance-sized loop allocates every iteration (%s); hoist the buffer or pass scratch",
					callee.decl.Name.Name, s.sites[0].what)
			}
			return true
		})
		return true
	})
}

// allocSummaries computes which module functions allocate on every
// call, by fixed point over the call graph.
func (m *Module) allocSummaries() map[*modFunc]*allocSummary {
	if m.alloc != nil {
		return m.alloc
	}
	m.alloc = map[*modFunc]*allocSummary{}
	for _, fn := range m.order {
		m.alloc[fn] = &allocSummary{sites: directAllocs(fn)}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range m.order {
			s := m.alloc[fn]
			p := fn.pass()
			forEachTopLevelCall(fn, func(call *ast.CallExpr) {
				callee := m.resolve(fn.pkg, call)
				if callee == nil || callee == fn {
					return
				}
				cs := m.alloc[callee]
				if cs == nil || len(cs.sites) == 0 {
					return
				}
				if hasSite(s, call.Pos()) {
					return
				}
				first := cs.sites[0]
				if first.depth >= 4 {
					return // cap chain growth; the root finding is enough
				}
				s.sites = append(s.sites, allocSite{
					pos:   call.Pos(),
					what:  callee.decl.Name.Name + " -> " + first.what,
					depth: first.depth + 1,
				})
				changed = true
				_ = p
			})
		}
	}
	return m.alloc
}

func hasSite(s *allocSummary, pos token.Pos) bool {
	for _, site := range s.sites {
		if site.pos == pos {
			return true
		}
	}
	return false
}

// directAllocs finds unconditional-looking make/new calls in fn outside
// its own loops and outside grow guards. Allocations under fn's own
// loops are fn's local problem (checkLoopAllocs sees them when fn's
// package is checked); the summary answers "does calling fn once
// allocate".
func directAllocs(fn *modFunc) []allocSite {
	p := fn.pass()
	var sites []allocSite
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind := allocKind(p, call); kind != "" && !growGuardedIn(fn.decl.Body, call) {
			sites = append(sites, allocSite{pos: call.Pos(), what: kind})
		}
		return true
	})
	return sites
}

// forEachTopLevelCall visits calls in fn outside loops and funclits —
// the calls a single invocation of fn always (modulo branches) makes.
func forEachTopLevelCall(fn *modFunc, visit func(*ast.CallExpr)) {
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// allocKind classifies a call as a heap allocation: "make(...)" or
// "new(...)". Conversions and ordinary calls return "".
func allocKind(p *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	obj := p.Info.Uses[id]
	if obj == nil || obj.Pkg() != nil { // builtins have nil Pkg
		return ""
	}
	switch id.Name {
	case "make":
		return "make"
	case "new":
		return "new"
	}
	return ""
}

// growGuarded reports whether the allocation sits under an if whose
// condition inspects len, cap, or nil — the scratch-grow idiom:
//
//	if cap(s.buf) < n { s.buf = make([]T, n) }
//
// Such an allocation runs O(log n) times across a run, not per
// iteration. ast nodes carry no parent links, so the walk descends from
// root and tracks the innermost enclosing if condition.
func growGuardedIn(root ast.Node, call *ast.CallExpr) bool {
	guarded := false
	var visit func(n ast.Node, underGuard bool)
	visit = func(n ast.Node, underGuard bool) {
		ast.Inspect(n, func(mn ast.Node) bool {
			if guarded || mn == nil {
				return false
			}
			if mn == ast.Node(call) {
				guarded = underGuard
				return false
			}
			if ifs, ok := mn.(*ast.IfStmt); ok && mn != n {
				g := underGuard || condChecksCapacity(ifs.Cond)
				if ifs.Init != nil {
					visit(ifs.Init, underGuard)
				}
				visit(ifs.Cond, underGuard)
				visit(ifs.Body, g)
				if ifs.Else != nil {
					visit(ifs.Else, g)
				}
				return false
			}
			return true
		})
	}
	visit(root, false)
	return guarded
}

// condChecksCapacity reports whether the expression mentions len, cap,
// or a nil comparison — the shapes a grow guard takes.
func condChecksCapacity(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if x.Name == "len" || x.Name == "cap" || x.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}
