package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// parseFuncCFG builds the CFG of the first function declared in src.
func parseFuncCFG(t *testing.T, src string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return buildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// TestCFGShapes pins the graph structure the builder produces for the
// control-flow idioms the analyzers rely on: branch joins, loop
// back-edges (with and without a post statement), labeled break and
// continue across nesting levels, and the defer chain with panic edges.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if-else joins",
			src: `package p
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}`,
			want: `b0 entry -> b2
b1 return -> b7
b2 if.cond -> b3 b5
b3 if.then -> b4
b4 if.done -> b1
b5 if.else -> b4
b6 unreachable -> b1
b7 exit ->
`,
		},
		{
			name: "for with post: body -> post -> head back-edge",
			src: `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`,
			want: `b0 entry -> b2
b1 return -> b7
b2 for.head -> b3 b4
b3 for.body -> b5
b4 for.done -> b1
b5 for.post -> b2
b6 unreachable -> b1
b7 exit ->
`,
		},
		{
			name: "condition-less for: no edge to done",
			src: `package p
func f() {
	for {
		tick()
	}
}`,
			want: `b0 entry -> b2
b1 return -> b5
b2 for.head -> b3
b3 for.body -> b2
b4 for.done -> b1
b5 exit ->
`,
		},
		{
			name: "range: body -> head back-edge",
			src: `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`,
			want: `b0 entry -> b2
b1 return -> b6
b2 range.head -> b3 b4
b3 range.body -> b2
b4 range.done -> b1
b5 unreachable -> b1
b6 exit ->
`,
		},
		{
			name: "labeled break and continue target the outer loop",
			src: `package p
func f(rows [][]int) int {
	s := 0
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
			s += v
		}
	}
	return s
}`,
			// break outer jumps to b4 (the outer range.done), continue
			// outer to b2 (the outer range.head) — not to the inner
			// loop's blocks.
			want: `b0 entry -> b2
b1 return -> b17
b2 range.head -> b3 b4
b3 range.body -> b5
b4 range.done -> b1
b5 range.head -> b6 b7
b6 range.body -> b8
b7 range.done -> b2
b8 if.cond -> b9 b10
b9 if.then -> b4
b10 if.done -> b12
b11 unreachable -> b10
b12 if.cond -> b13 b14
b13 if.then -> b2
b14 if.done -> b5
b15 unreachable -> b14
b16 unreachable -> b1
b17 exit ->
`,
		},
		{
			name: "defer chain with panic edge from a calling block",
			src: `package p
func f(xs []int) {
	defer done()
	use(xs)
}`,
			// b0 contains the use(xs) call, so it may panic: it gets an
			// edge straight into the defer chain (b2) besides the
			// normal return path.
			want: `b0 entry -> b1 b2
b1 return -> b2
b2 defer -> b3
b3 exit ->
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := parseFuncCFG(t, c.src)
			if got := g.debugString(); got != c.want {
				t.Errorf("graph mismatch:\ngot:\n%s\nwant:\n%s", got, c.want)
			}
		})
	}
}

// TestCFGDominators pins the dominance queries the gate analyzers ask:
// a branch condition dominates both arms, an arm never dominates the
// join, and an unconditionally registered defer's block dominates the
// exit while a conditional one's does not.
func TestCFGDominators(t *testing.T) {
	g := parseFuncCFG(t, `package p
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	idom := g.dominators()
	blk := func(kind string) *cfgBlock {
		for _, b := range g.blocks {
			if b.kind == kind {
				return b
			}
		}
		t.Fatalf("no %s block", kind)
		return nil
	}
	cond, then, els, join := blk("if.cond"), blk("if.then"), blk("if.else"), blk("if.done")
	if !dominates(idom, cond, then) || !dominates(idom, cond, els) || !dominates(idom, cond, join) {
		t.Error("if.cond must dominate both arms and the join")
	}
	if dominates(idom, then, join) || dominates(idom, els, join) {
		t.Error("neither arm may dominate the join")
	}
	if !dominates(idom, g.entry, g.exit) {
		t.Error("entry must dominate exit")
	}

	unreachable := blk("unreachable")
	if idom[unreachable.index] != nil {
		t.Error("unreachable blocks must have nil idom")
	}

	// Conditional defer: its registering block must not dominate exit.
	g2 := parseFuncCFG(t, `package p
func f(a int) {
	if a > 0 {
		return
	}
	defer done()
	use(a)
}`)
	idom2 := g2.dominators()
	var deferReg *cfgBlock
	for _, b := range g2.blocks {
		for _, n := range b.nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferReg = b
			}
		}
	}
	if deferReg == nil {
		t.Fatal("no block holds the DeferStmt")
	}
	if dominates(idom2, deferReg, g2.exit) {
		t.Error("a defer registered after an early return must not dominate exit")
	}
}

// TestCFGReachability pins canReach with an avoid predicate — the
// "serial arm bypasses the spawn" question parallelgate asks.
func TestCFGReachability(t *testing.T) {
	g := parseFuncCFG(t, `package p
func f(w int, xs []int) {
	if w > 1 {
		spawn(xs)
		return
	}
	serial(xs)
}`)
	var spawnBlk, serialBlk *cfgBlock
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			s, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch call.Fun.(*ast.Ident).Name {
			case "spawn":
				spawnBlk = b
			case "serial":
				serialBlk = b
			}
		}
	}
	if spawnBlk == nil || serialBlk == nil {
		t.Fatal("missing spawn/serial blocks")
	}
	if g.canReach(serialBlk, spawnBlk, nil) {
		t.Error("the serial arm must not reach the spawn")
	}
	avoid := func(b *cfgBlock) bool { return b == spawnBlk }
	if !g.canReach(serialBlk, g.exit, avoid) {
		t.Error("the serial arm must reach exit while avoiding the spawn")
	}
	if !g.canReach(g.entry, spawnBlk, nil) {
		t.Error("the spawn must be reachable from entry")
	}
}

// invariantRowRe matches the analyzer-name cell of a "Code invariants"
// table row in the README.
var invariantRowRe = regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")

// TestRegistryREADMESync is the conformance check tying the three
// surfaces together: the analyzer registry (All), the lint -list
// output (generated from All, pinned in tools/lint tests), and the
// README "Code invariants" table must name the same analyzers.
func TestRegistryREADMESync(t *testing.T) {
	want := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc, or Run", a.Name)
		}
		if want[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		want[a.Name] = true
	}
	if len(want) != 17 {
		t.Errorf("registry has %d analyzers, want 17", len(want))
	}

	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	section := string(readme)
	if i := strings.Index(section, "## Code invariants"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section[1:], "\n## "); j >= 0 {
			section = section[:j+1]
		}
	} else {
		t.Fatal("README has no \"## Code invariants\" section")
	}
	documented := map[string]bool{}
	for _, m := range invariantRowRe.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	for name := range want {
		if !documented[name] {
			t.Errorf("analyzer %q is not documented in the README invariant table", name)
		}
	}
	for name := range documented {
		if !want[name] {
			t.Errorf("README documents analyzer %q that is not registered", name)
		}
	}
}
