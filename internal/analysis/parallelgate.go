package analysis

// parallelgate enforces the GOMAXPROCS contract of the parallel
// kernels (PR 4): goroutine fan-out must be gated on an available
// worker count, with a serial path that produces byte-identical output
// when the gate says no. An ungated `go` statement means the "serial
// fallback" the conformance suite pins can silently stop being
// exercised — and a single-core host pays goroutine overhead for
// nothing.

import (
	"go/ast"
	"go/token"
	"strings"
)

// parallelGatePackages host the parallel construction kernels.
var parallelGatePackages = []string{
	"repro/internal/geom",
	"repro/internal/graph",
	"repro/internal/engine",
	"repro/internal/serve",
	"repro/internal/core",
	"repro/internal/exact",
	"repro/internal/steiner",
}

// ParallelGate requires every `go` statement to be dominated by a
// worker-count gate with a reachable serial fallback. Accepted shapes,
// checked on the enclosing function's CFG:
//
//   - a dominating branch whose condition reads a worker count — a
//     runtime.GOMAXPROCS call, a call to a function whose name
//     mentions workers, or an identifier named like one (w, workers,
//     depth, anything containing "worker"/"parallel") — and whose
//     other arm can reach the function exit without passing the `go`
//     statement (that arm is the serial path);
//   - for an unexported function with no gate of its own: every
//     package-local call site is itself dominated by such a gate in
//     its caller (the geom fillParallel shape). One caller level only;
//     exported ungated spawns are always reported because outside
//     callers cannot be checked.
var ParallelGate = &Analyzer{
	Name: "parallelgate",
	Doc:  "every go statement needs a dominating worker-count gate with a reachable serial fallback",
	AppliesTo: func(importPath string) bool {
		return pathIn(importPath, parallelGatePackages...)
	},
	Run: runParallelGate,
}

func runParallelGate(p *Pass) {
	cg := pkgCallGraph(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fn := enclosingFuncNode(f, gs.Pos())
			if fn == nil {
				return true
			}
			if gatedAt(p, funcBody(fn), gs.Pos()) {
				return true
			}
			if callersAllGated(p, cg, fn) {
				return true
			}
			p.Reportf(gs.Pos(),
				"ungated go statement: dominate the spawn with a worker-count check that has a serial fallback (or gate every package-local caller)")
			return true
		})
	}
}

// gatedAt reports whether the position (a go statement or a call site)
// inside body is dominated by a worker-count branch one of whose arms
// bypasses the spawn entirely: that arm cannot reach the position's
// block at all, yet still reaches the function exit. Merely having a
// path around the spawn is not enough — the zero-trip exit edge of
// `for g := 0; g < w; g++ { go ... }` reaches the exit without spawning
// but is no serial fallback, because with w >= 1 the pool always runs.
func gatedAt(p *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	g := buildCFG(body)
	blk := g.blockOf(pos)
	if blk == nil {
		return false
	}
	idom := g.dominators()
	if idom[blk.index] == nil {
		return false // unreachable; nothing to prove
	}
	avoid := func(b *cfgBlock) bool { return b == blk }
	for dom := idom[blk.index]; ; dom = idom[dom.index] {
		// A loop head is never the gate, even though its exit edge
		// bypasses the body: `for g := 0; g < w; g++ { go ... }` only
		// skips the spawn when w == 0. Only an if/switch branch counts.
		if dom.kind != "for.head" && dom.kind != "range.head" &&
			len(dom.succs) >= 2 && len(dom.nodes) > 0 {
			if cond, ok := dom.nodes[len(dom.nodes)-1].(ast.Expr); ok && workerGateCond(p, cond) {
				for _, s := range dom.succs {
					if s != blk && !g.canReach(s, blk, nil) && g.canReach(s, g.exit, avoid) {
						return true
					}
				}
			}
		}
		if dom == idom[dom.index] {
			return false // reached entry
		}
	}
}

// callersAllGated implements the helper-function escape hatch: the
// enclosing function is an unexported declaration, it has at least one
// package-local call site, and every such site is dominated by a
// worker gate in its own function.
func callersAllGated(p *Pass, cg *callGraph, fn ast.Node) bool {
	fd, ok := fn.(*ast.FuncDecl)
	if !ok || fd.Name.IsExported() {
		return false
	}
	obj := p.Info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	sites := cg.sites[obj]
	if len(sites) == 0 {
		return false
	}
	for _, site := range sites {
		body := funcBody(site.inFunc)
		if body == nil || !gatedAt(p, body, site.call.Pos()) {
			// Recursive helpers may call themselves from inside the
			// gated region they establish; a self-call dominated by
			// the function's own entry gate is handled by gatedAt, so
			// any failure here is a genuinely ungated site.
			return false
		}
	}
	return true
}

// workerGateCond reports whether the branch condition reads a worker
// count: a runtime.GOMAXPROCS call, a call to a *workers* function, or
// an identifier named like a worker count or parallel threshold.
func workerGateCond(p *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(p, n.Fun, "runtime", "GOMAXPROCS") {
				found = true
			}
		case *ast.Ident:
			if workerishName(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if workerishName(n.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func workerishName(name string) bool {
	switch name {
	case "w", "nw", "workers", "nworkers", "depth":
		return true
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "worker") || strings.Contains(lower, "parallel")
}
