package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

var sweepEps = []float64{0.05, 0.1, 0.2, 0.3, 0.5}

func sweepParams() []Params {
	ps := make([]Params, len(sweepEps))
	for i, e := range sweepEps {
		ps[i] = Params{Eps: e}
	}
	return ps
}

// BenchmarkBKRUSSweepPooled measures an ε-sweep through engine.Sweep,
// which pins one scratch (P-matrix, sorted edges) across all runs.
// Compare allocs/op against BenchmarkBKRUSSweepFresh.
func BenchmarkBKRUSSweepPooled(b *testing.B) {
	in := bench.Random(3, 50, 1000)
	ps := sweepParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), "bkrus", in, ps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBKRUSSweepFresh is the same sweep with a fresh scratch per
// run — the allocation behaviour every caller had before the engine.
func BenchmarkBKRUSSweepFresh(b *testing.B) {
	in := bench.Random(3, 50, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range sweepEps {
			if _, err := core.BKRUS(in, e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepParallel measures sweep throughput over a wider ε grid
// at pinned worker counts. workers=1 is the serial-equivalent baseline;
// on a multi-core host workers=4 should approach 4× cell throughput
// (cells are independent and share no hot state).
func BenchmarkSweepParallel(b *testing.B) {
	in := bench.Random(5, 120, 1000)
	in.DistMatrix()
	eps := []float64{0.02, 0.05, 0.08, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6, 0.7, 0.8, 1.0}
	ps := make([]Params, len(eps))
	for i, e := range eps {
		ps[i] = Params{Eps: e}
	}
	for _, w := range []int{1, 4} {
		b.Run(fmtWorkers(w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SweepParallel(context.Background(), "bkrus", in, ps, SweepOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(ps)), "cells/op")
		})
	}
}

func fmtWorkers(w int) string { return fmt.Sprintf("workers=%d", w) }
