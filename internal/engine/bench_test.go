package engine

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

var sweepEps = []float64{0.05, 0.1, 0.2, 0.3, 0.5}

func sweepParams() []Params {
	ps := make([]Params, len(sweepEps))
	for i, e := range sweepEps {
		ps[i] = Params{Eps: e}
	}
	return ps
}

// BenchmarkBKRUSSweepPooled measures an ε-sweep through engine.Sweep,
// which pins one scratch (P-matrix, sorted edges) across all runs.
// Compare allocs/op against BenchmarkBKRUSSweepFresh.
func BenchmarkBKRUSSweepPooled(b *testing.B) {
	in := bench.Random(3, 50, 1000)
	ps := sweepParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), "bkrus", in, ps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBKRUSSweepFresh is the same sweep with a fresh scratch per
// run — the allocation behaviour every caller had before the engine.
func BenchmarkBKRUSSweepFresh(b *testing.B) {
	in := bench.Random(3, 50, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range sweepEps {
			if _, err := core.BKRUS(in, e); err != nil {
				b.Fatal(err)
			}
		}
	}
}
