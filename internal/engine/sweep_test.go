package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/obs"
)

func epsParams(epss []float64) []Params {
	ps := make([]Params, len(epss))
	for i, e := range epss {
		ps[i] = Params{Eps: e}
	}
	return ps
}

// A parallel sweep must return exactly what the serial sweep returns,
// in input order, at every worker count.
func TestSweepParallelMatchesSweep(t *testing.T) {
	in := bench.P4()
	ps := epsParams([]float64{0.1, 0.25, 0.4, 0.1, 0, 0.3, 0.2, 0.15})
	want, err := Sweep(context.Background(), "bkrus", in, ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got, err := SweepParallel(context.Background(), "bkrus", in, ps, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !sameEdges(got[i].Tree, want[i].Tree) {
				t.Errorf("workers=%d: result %d differs from serial sweep", workers, i)
			}
		}
	}
}

func TestSweepParallelEmptyAndUnknown(t *testing.T) {
	in := bench.P1()
	got, err := SweepParallel(context.Background(), "bkrus", in, nil, SweepOptions{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %v", got, err)
	}
	if _, err := SweepParallel(context.Background(), "no-such", in, epsParams([]float64{0.1}), SweepOptions{}); err == nil {
		t.Fatal("unknown constructor accepted")
	}
}

func TestSweepParallelRejectsPinnedScratch(t *testing.T) {
	in := bench.P1()
	ps := epsParams([]float64{0.1, 0.2})
	ps[1].Scratch = &core.Scratch{}
	if _, err := SweepParallel(context.Background(), "bkrus", in, ps, SweepOptions{}); err == nil {
		t.Fatal("caller-pinned scratch accepted")
	}
}

// Counter totals merged from per-cell registries must equal the serial
// sweep's totals, at any worker count — the deterministic-merge
// contract.
func TestSweepParallelObsMergeDeterministic(t *testing.T) {
	in := bench.P4()

	serialTotals := func() map[string]int64 {
		reg := obs.NewRegistry()
		psr := epsParams([]float64{0.1, 0.25, 0.4, 0.15, 0.3})
		for i := range psr {
			psr[i].Obs = reg
		}
		if _, err := Sweep(context.Background(), "bkrus", in, psr); err != nil {
			t.Fatal(err)
		}
		sc := reg.Scope(core.ScopeName)
		return map[string]int64{
			core.CtrEdgesExamined: sc.Counter(core.CtrEdgesExamined).Load(),
			core.CtrMerges:        sc.Counter(core.CtrMerges).Load(),
			core.CtrWitnessScans:  sc.Counter(core.CtrWitnessScans).Load(),
		}
	}()

	for _, workers := range []int{1, 3, 5} {
		reg := obs.NewRegistry()
		psp := epsParams([]float64{0.1, 0.25, 0.4, 0.15, 0.3})
		for i := range psp {
			psp[i].Obs = reg
		}
		if _, err := SweepParallel(context.Background(), "bkrus", in, psp, SweepOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		sc := reg.Scope(core.ScopeName)
		for name, want := range serialTotals {
			if got := sc.Counter(name).Load(); got != want {
				t.Errorf("workers=%d: %s = %d, want %d", workers, name, got, want)
			}
		}
		esc := reg.Scope(ScopeName)
		if got := esc.Counter(CtrSweepRuns).Load(); got != int64(len(psp)) {
			t.Errorf("workers=%d: %s = %d, want %d", workers, CtrSweepRuns, got, len(psp))
		}
		wantW := workers
		if wantW > len(psp) {
			wantW = len(psp)
		}
		if got := esc.Gauge(GaugeSweepWorkers).Load(); int(got) != wantW {
			t.Errorf("workers=%d: %s = %v, want %d", workers, GaugeSweepWorkers, got, wantW)
		}
	}
}

// A failing cell aborts the sweep with the lowest-index real error;
// cancellation ripple from sibling cells must not mask it.
func TestSweepParallelErrorDeterminism(t *testing.T) {
	reg := NewRegistry()
	sentinel := errors.New("boom")
	reg.Register(Info{Name: "flaky", Kind: Spanning}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if p.Eps < 0.05 {
			return Result{}, fmt.Errorf("cell: %w", sentinel)
		}
		t, err := core.BKRUS(in, p.Eps)
		return Result{Tree: t}, err
	})
	in := bench.P4()
	ps := epsParams([]float64{0.3, 0.2, 0.01, 0.4, 0.02, 0.5})
	for _, workers := range []int{1, 2, 4} {
		_, err := reg.SweepParallel(context.Background(), "flaky", in, ps, SweepOptions{Workers: workers})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want the sentinel failure", workers, err)
		}
	}
}

func TestSweepParallelExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := bench.P4()
	_, err := SweepParallel(ctx, "bkrus", in, epsParams([]float64{0.1, 0.2, 0.3}), SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
