// Package engine is the unified construction front door: every tree
// construction in the repository — the paper's core BKRUS family, the
// baselines, the exact Gabow enumeration, the exchange post-processors,
// the Elmore-delay variants, and the Steiner constructions — registers
// here under a stable name, takes the same explicit Params surface, and
// is driven through one Build call with context cancellation.
//
// The package exists to kill three recurring problems:
//
//   - flag reuse: callers used to smuggle AHHK's c through -eps and
//     pick algorithms with per-binary switch statements. Params makes
//     every knob an explicit named field; the registry makes dispatch
//     data, not code.
//   - obs shims: each layer grew a parallel ...Observed entry point to
//     thread counters in. The engine resolves each layer's scope from
//     Params.Obs at build time instead.
//   - allocation churn in sweeps: ε-sweeps rebuild on one immutable
//     instance many times. Build draws the BKRUS O(n²) scratch from a
//     sync.Pool, and Sweep pins one scratch across a whole parameter
//     list, so repeated runs stop re-allocating the P-matrix and
//     re-sorting the complete edge list.
//
// Determinism: constructors are pure functions of (instance, Params);
// registry listings are sorted by name.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/obs"
	"repro/internal/steiner"
)

// Kind classifies what a constructor produces.
type Kind int

const (
	// Spanning constructors return a spanning tree over the terminals
	// (Result.Tree).
	Spanning Kind = iota
	// Steiner constructors may add Steiner points and return a grid
	// embedding (Result.Steiner).
	Steiner
)

func (k Kind) String() string {
	switch k {
	case Spanning:
		return "spanning"
	case Steiner:
		return "steiner"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params is the one explicit parameter surface shared by every
// registered constructor. Each constructor consults only the fields its
// Info.Needs lists and ignores the rest; zero values are the documented
// defaults (ε = 0 means the tight bound, zero RC model means
// delay.DefaultModel()).
type Params struct {
	// Eps is the path-length slack of the single-bound problem: every
	// source-sink path at most (1+Eps)·R.
	Eps float64
	// Eps1 and Eps2 are the §6 window slacks: every path in
	// [Eps1·R, (1+Eps2)·R].
	Eps1, Eps2 float64
	// AHHKC is the AHHK Prim-Dijkstra trade-off constant (its own field:
	// historically it was smuggled through eps flags).
	AHHKC float64
	// ExchangeDepth caps chained T-exchanges in BKEX (0 = unlimited,
	// i.e. V-1).
	ExchangeDepth int
	// ExchangeBudget caps total exchange-search work in BKH2
	// (0 = unlimited).
	ExchangeBudget int
	// GabowBudget caps spanning trees enumerated by the exact search
	// (0 = exact.DefaultMaxTrees).
	GabowBudget int
	// RC is the Elmore delay model for the delay-bounded constructors; a
	// zero model means delay.DefaultModel().
	RC delay.Model
	// Obs, when non-nil, receives each layer's construction metrics in
	// its usual scope ("core", "baseline", "steiner", ...). nil keeps
	// the historical opportunistic behaviour: layers record into the
	// process default registry when one is installed.
	Obs *obs.Registry
	// Scratch, when non-nil, supplies the reusable BKRUS working buffers
	// (P-matrix, sorted edges). Build and Sweep manage this themselves;
	// set it only to pin a scratch across hand-rolled runs. Not safe for
	// concurrent use.
	Scratch *core.Scratch
	// EagerSort forces the BKRUS family to fully sort the complete edge
	// list up front instead of streaming it lazily. Trees are
	// byte-identical either way; the knob exists for conformance tests
	// and A/B benchmarks.
	EagerSort bool
	// Geometry selects the geometric substrate for the constructors that
	// support both (Info.SparseCapable): dense materializes the distance
	// matrix and complete edge list (the historical behaviour), sparse
	// runs on the distance oracle and octant neighbor graph with no
	// O(n²) state. The zero value GeomAuto resolves by instance size
	// (core.SparseThreshold). Constructors without sparse support ignore
	// the field and stay dense.
	Geometry Geometry
	// RefreshWorkers bounds the workers of the construction inner loops:
	// the BKRUS per-merge refresh (core.Config.RefreshWorkers), the
	// Gabow partition branches (exact.Options.BranchWorkers), and the
	// BKST pair seeding (steiner.Config.SeedWorkers). 0 defers to each
	// layer's package knob (which defaults to runtime.GOMAXPROCS);
	// 1 forces the serial paths. Trees are byte-identical for every
	// setting. SweepParallel clamps the per-cell value so sweep workers ×
	// refresh workers never exceeds the requested total.
	RefreshWorkers int
}

// Geometry re-exports the core substrate selector so engine callers
// need not import core for a Params field.
type Geometry = core.Geometry

// Geometry modes, re-exported from core.
const (
	GeomAuto   = core.GeomAuto
	GeomDense  = core.GeomDense
	GeomSparse = core.GeomSparse
)

// rcModel resolves the Elmore model, defaulting the zero value.
func (p Params) rcModel() delay.Model {
	m := p.RC
	if m.RUnit == 0 && m.CUnit == 0 && m.RDriver == 0 && m.CDriver == 0 && m.Load == nil {
		return delay.DefaultModel()
	}
	return m
}

// coreConfig wires Params into the core layer's build hooks.
func (p Params) coreConfig() core.Config {
	cfg := core.Config{Scratch: p.Scratch, EagerSort: p.EagerSort, Geometry: p.Geometry, RefreshWorkers: p.RefreshWorkers}
	if p.Obs != nil {
		cfg.Counters = core.NewCounters(p.Obs.Scope(core.ScopeName))
	}
	return cfg
}

// steinerConfig wires Params into the Steiner layer's build hooks.
func (p Params) steinerConfig(planar bool) steiner.Config {
	cfg := steiner.Config{Planar: planar, SeedWorkers: p.RefreshWorkers}
	if p.Obs != nil {
		cfg.Counters = steiner.NewCounters(p.Obs.Scope(steiner.ScopeName))
	}
	return cfg
}

// Result is what a constructor produces: exactly one of Tree (spanning)
// or Steiner (rectilinear Steiner embedding) is non-nil, matching the
// constructor's Kind.
type Result struct {
	Tree    *graph.Tree
	Steiner *steiner.SteinerTree
}

// Cost returns the wirelength of whichever tree the result holds.
func (r Result) Cost() float64 {
	if r.Steiner != nil {
		return r.Steiner.Cost()
	}
	if r.Tree != nil {
		return r.Tree.Cost()
	}
	return 0
}

// BuildFunc is the implementation signature of a registered constructor.
type BuildFunc func(ctx context.Context, in *inst.Instance, p Params) (Result, error)

// Constructor is one registered tree construction.
type Constructor interface {
	Name() string
	Kind() Kind
	Build(ctx context.Context, in *inst.Instance, p Params) (Result, error)
}

// Info describes a constructor for listings: which Params fields it
// consults (Needs, by conventional short name: "eps", "eps1", "eps2",
// "c", "depth", "xbudget", "gbudget", "rc") and a one-line doc string.
type Info struct {
	Name  string
	Kind  Kind
	Needs []string
	Doc   string
	// SparseCapable marks constructors that honour Params.Geometry and
	// can run on the sparse substrate (oracle + neighbor graph) without
	// materializing the distance matrix.
	SparseCapable bool
}

// spec is the registry's concrete Constructor.
type spec struct {
	info  Info
	build BuildFunc
}

func (s *spec) Name() string { return s.info.Name }
func (s *spec) Kind() Kind   { return s.info.Kind }
func (s *spec) Build(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
	return s.build(ctx, in, p)
}

// Registry maps constructor names to implementations. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*spec)}
}

// Register adds a constructor. It panics on an empty name, nil build
// function, or duplicate registration — all programmer errors at init
// time, never data-dependent.
func (r *Registry) Register(info Info, build BuildFunc) {
	if info.Name == "" || build == nil {
		panic("engine: Register needs a name and a build function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[info.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate constructor %q", info.Name))
	}
	r.byName[info.Name] = &spec{info: info, build: build}
}

// Lookup resolves a constructor by name. An unknown name returns an
// error listing every registered name, so CLI surfaces can forward it
// verbatim.
func (r *Registry) Lookup(name string) (Constructor, error) {
	r.mu.RLock()
	s, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown constructor %q (known: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	return s, nil
}

// Names returns every registered name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sparseCapable reports whether the named constructor honours
// Params.Geometry (false for unknown names).
func (r *Registry) sparseCapable(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byName[name]
	return ok && s.info.SparseCapable
}

// List returns every registration's Info, sorted by name.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos := make([]Info, 0, len(r.byName))
	for _, s := range r.byName {
		infos = append(infos, s.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// defaultRegistry holds the built-in constructors, registered in
// builtin.go's init.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry of built-in constructors.
func Default() *Registry { return defaultRegistry }

// Register adds a constructor to the default registry.
func Register(info Info, build BuildFunc) { defaultRegistry.Register(info, build) }

// Lookup resolves a name in the default registry.
func Lookup(name string) (Constructor, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }

// List returns the default registry's Infos, sorted by name.
func List() []Info { return defaultRegistry.List() }

// scratchPool recycles BKRUS scratch buffers across Build calls so
// repeated single builds (servers, routers) converge to zero
// steady-state allocation for the O(n²) working state.
var scratchPool = sync.Pool{New: func() interface{} { return new(core.Scratch) }}

// Build resolves name and runs it with a pooled scratch (unless the
// caller pinned one in p.Scratch).
func (r *Registry) Build(ctx context.Context, name string, in *inst.Instance, p Params) (Result, error) {
	c, err := r.Lookup(name)
	if err != nil {
		return Result{}, err
	}
	if p.Scratch == nil {
		s := scratchPool.Get().(*core.Scratch)
		defer func() {
			// Release before parking: a pooled scratch that kept its edge
			// stream would pin the last instance (and its O(n²) edge list)
			// for the pool entry's whole lifetime.
			s.Release()
			scratchPool.Put(s)
		}()
		p.Scratch = s
	}
	return c.Build(ctx, in, p)
}

// Sweep runs one named constructor over a list of parameter settings on
// a single instance, reusing one scratch for the whole sweep: the edge
// list is sorted once and the P-matrix allocated once. The context is
// checked between runs (and inside each construction's own loops), so a
// cancelled ctx aborts the sweep promptly. Results are returned in
// input order; the first error aborts the sweep.
func (r *Registry) Sweep(ctx context.Context, name string, in *inst.Instance, ps []Params) ([]Result, error) {
	c, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	var scratch core.Scratch
	// The shared scratch caches the instance's partially sorted edge
	// stream across the sweep; drop that cache at teardown so nothing
	// that outlives the sweep (a caller-pinned p.Scratch alias, a future
	// pooled variant) keeps the instance and its O(n²) edges alive.
	defer scratch.Release()
	out := make([]Result, len(ps))
	for i, p := range ps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p.Scratch == nil {
			p.Scratch = &scratch
		}
		res, err := c.Build(ctx, in, p)
		if err != nil {
			return nil, fmt.Errorf("engine: sweep %s[%d]: %w", name, i, err)
		}
		out[i] = res
	}
	return out, nil
}

// Build runs a named constructor from the default registry.
func Build(ctx context.Context, name string, in *inst.Instance, p Params) (Result, error) {
	return defaultRegistry.Build(ctx, name, in, p)
}

// Sweep runs a parameter sweep through the default registry.
func Sweep(ctx context.Context, name string, in *inst.Instance, ps []Params) ([]Result, error) {
	return defaultRegistry.Sweep(ctx, name, in, ps)
}
