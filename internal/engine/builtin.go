// Built-in constructor registrations. They live here, inside the engine
// package, rather than in per-layer init functions: the engine's Params
// already imports every construction layer (delay.Model, core.Scratch,
// steiner.SteinerTree), so layers registering themselves would create
// import cycles. The cost is one central file; the benefit is that the
// layers stay plain libraries with no registration side effects.
package engine

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/exact"
	"repro/internal/exchange"
	"repro/internal/graph"
	"repro/internal/inst"
	"repro/internal/mst"
	"repro/internal/obs"
	"repro/internal/steiner"
)

// requireNonNegative rejects negative slack parameters with the field's
// conventional short name, keeping error text uniform across
// constructors.
func requireNonNegative(name string, v float64) error {
	if v < 0 {
		return fmt.Errorf("engine: negative %s %g", name, v)
	}
	return nil
}

// baselineCounters resolves the baseline layer's instrument set for a
// build: explicit registry if set, else the historical default-registry
// pickup.
func baselineCounters(p Params) *baseline.Counters {
	if p.Obs != nil {
		return baseline.NewCounters(p.Obs.Scope(baseline.ScopeName))
	}
	if sc := obs.DefaultScope(baseline.ScopeName); sc != nil {
		return baseline.NewCounters(sc)
	}
	return nil
}

// exactOptions wires Params into the exact layer's search options:
// budget, branch worker pin, and counters (explicit registry if set;
// the exact layer's own default-registry pickup covers the rest).
func exactOptions(p Params) exact.Options {
	opt := exact.Options{MaxTrees: p.GabowBudget, BranchWorkers: p.RefreshWorkers}
	if p.Obs != nil {
		opt.Counters = exact.NewCounters(p.Obs.Scope(exact.ScopeName))
	}
	return opt
}

func spanning(t *graph.Tree, err error) (Result, error) {
	if err != nil {
		return Result{}, err
	}
	return Result{Tree: t}, nil
}

func steinerResult(st *steiner.SteinerTree, err error) (Result, error) {
	if err != nil {
		return Result{}, err
	}
	return Result{Steiner: st}, nil
}

func init() {
	// Unbounded references.
	Register(Info{
		Name: "mst", Kind: Spanning, SparseCapable: true,
		Doc: "minimal spanning tree (Kruskal); path lengths unbounded",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if p.Geometry.Sparse(in.N()) {
			// Kruskal over the octant neighbor stream selects exactly the
			// dense MST edges (the neighbor graph contains them all, and
			// a greedy scan over a superset of its own selection makes
			// identical decisions) without enumerating the complete graph.
			t, ok := mst.KruskalFrom(in.N(), graph.NewSparseEdgeStream(in.Index(), graph.Source))
			if !ok {
				return Result{}, fmt.Errorf("engine: sparse mst left %d of %d nodes unconnected", in.N()-1-len(t.Edges), in.N())
			}
			return spanning(t, nil)
		}
		return spanning(mst.Kruskal(in.DistMatrix()), nil)
	})
	Register(Info{
		Name: "spt", Kind: Spanning,
		Doc: "shortest path tree (source star under a complete metric); minimal radius, maximal cost",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		return spanning(mst.SPT(in.DistMatrix(), graph.Source), nil)
	})
	Register(Info{
		Name: "maxst", Kind: Spanning,
		Doc: "maximal-cost spanning tree; adversarial reference for bound experiments",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		return spanning(mst.Maximal(in.DistMatrix()), nil)
	})

	// The paper's core construction and its §6 window variant.
	Register(Info{
		Name: "bkrus", Kind: Spanning, Needs: []string{"eps"}, SparseCapable: true,
		Doc: "bounded Kruskal (§3): every source-sink path ≤ (1+ε)·R",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(core.BKRUSBuild(ctx, in, core.UpperOnly(in, p.Eps), p.coreConfig()))
	})
	Register(Info{
		Name: "bkruslu", Kind: Spanning, Needs: []string{"eps1", "eps2"}, SparseCapable: true,
		Doc: "bounded Kruskal with the §6 window: paths in [ε1·R, (1+ε2)·R]",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps1", p.Eps1); err != nil {
			return Result{}, err
		}
		if err := requireNonNegative("eps2", p.Eps2); err != nil {
			return Result{}, err
		}
		return spanning(core.BKRUSBuild(ctx, in, core.LowerUpper(in, p.Eps1, p.Eps2), p.coreConfig()))
	})

	// Prior-work baselines.
	Register(Info{
		Name: "bprim", Kind: Spanning, Needs: []string{"eps"},
		Doc: "bounded Prim baseline (Cong-Kahng-Robins)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(baseline.BPRIMBuild(ctx, in, p.Eps, baselineCounters(p)))
	})
	Register(Info{
		Name: "brbc", Kind: Spanning, Needs: []string{"eps"},
		Doc: "bounded-radius bounded-cost baseline (MST tour with shortcuts)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(baseline.BRBCBuild(ctx, in, p.Eps, baselineCounters(p)))
	})
	Register(Info{
		Name: "ahhk", Kind: Spanning, Needs: []string{"c"},
		Doc: "AHHK Prim-Dijkstra trade-off; c∈[0,1] blends MST (0) toward SPT (1)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		return spanning(baseline.AHHKBuild(ctx, in, p.AHHKC))
	})

	// §5 exchange post-processing.
	Register(Info{
		Name: "bkh2", Kind: Spanning, Needs: []string{"eps", "xbudget"},
		Doc: "BKRUS + depth-2 negative-sum-exchange heuristic (§5)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(exchange.BKH2Budget(ctx, in, p.Eps, p.ExchangeBudget))
	})
	Register(Info{
		Name: "bkex", Kind: Spanning, Needs: []string{"eps", "depth"},
		Doc: "BKRUS + unbounded negative-sum-exchange search (§5 exact method)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(exchange.BKEX(ctx, in, p.Eps, p.ExchangeDepth))
	})

	// §4 exact enumeration.
	Register(Info{
		Name: "bmstg", Kind: Spanning, Needs: []string{"eps", "gbudget"},
		Doc: "optimal BMST by Gabow-style tree enumeration (§4)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(exact.BMSTG(ctx, in, p.Eps, exactOptions(p)))
	})
	Register(Info{
		Name: "bmstglu", Kind: Spanning, Needs: []string{"eps1", "eps2", "gbudget"},
		Doc: "optimal BMST under the §6 window by tree enumeration",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps1", p.Eps1); err != nil {
			return Result{}, err
		}
		if err := requireNonNegative("eps2", p.Eps2); err != nil {
			return Result{}, err
		}
		b := core.LowerUpper(in, p.Eps1, p.Eps2)
		return spanning(exact.BMSTGBounds(ctx, in, b, exactOptions(p)))
	})

	// §3.2 Elmore-delay variants.
	Register(Info{
		Name: "elmore", Kind: Spanning, Needs: []string{"eps", "rc"},
		Doc: "BKRUS under the Elmore delay bound (1+ε)·R_delay (§3.2)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(delay.BKRUSElmoreBuild(ctx, in, p.Eps, p.rcModel()))
	})
	Register(Info{
		Name: "bkh2elmore", Kind: Spanning, Needs: []string{"eps", "rc"},
		Doc: "Elmore-bounded BKRUS + depth-2 exchange search",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return spanning(delay.BKH2Elmore(ctx, in, p.Eps, p.rcModel()))
	})

	// §7 Steiner constructions (Manhattan metric only).
	Register(Info{
		Name: "bkst", Kind: Steiner, Needs: []string{"eps"},
		Doc: "bounded path length Steiner tree on the Hanan grid (§7)",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return steinerResult(steiner.BKSTBuild(ctx, in, core.UpperOnly(in, p.Eps), p.steinerConfig(false)))
	})
	Register(Info{
		Name: "bkstlu", Kind: Steiner, Needs: []string{"eps1", "eps2"},
		Doc: "bounded Steiner tree with the §6 window",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps1", p.Eps1); err != nil {
			return Result{}, err
		}
		if err := requireNonNegative("eps2", p.Eps2); err != nil {
			return Result{}, err
		}
		return steinerResult(steiner.BKSTBuild(ctx, in, core.LowerUpper(in, p.Eps1, p.Eps2), p.steinerConfig(false)))
	})
	Register(Info{
		Name: "bkstplanar", Kind: Steiner, Needs: []string{"eps"},
		Doc: "bounded Steiner tree restricted to planar embeddings",
	}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		if err := requireNonNegative("eps", p.Eps); err != nil {
			return Result{}, err
		}
		return steinerResult(steiner.BKSTBuild(ctx, in, core.UpperOnly(in, p.Eps), p.steinerConfig(true)))
	})
}
