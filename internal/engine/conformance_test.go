package engine

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/graph"
	"repro/internal/inst"
)

// conformanceParams gives every registered constructor a parameter
// setting that must succeed on the shared fixtures. Registering a new
// constructor without extending this table fails the suite, which is
// the point: every algorithm rides the same conformance harness.
var conformanceParams = map[string]Params{
	"mst":        {},
	"spt":        {},
	"maxst":      {},
	"bkrus":      {Eps: 0.2},
	"bkruslu":    {Eps1: 0, Eps2: 0.25},
	"bprim":      {Eps: 0.2},
	"brbc":       {Eps: 0.2},
	"ahhk":       {AHHKC: 0.5},
	"bkh2":       {Eps: 0.2, ExchangeBudget: 200000},
	"bkex":       {Eps: 0.2, ExchangeDepth: 2},
	"bmstg":      {Eps: 0.2},
	"bmstglu":    {Eps1: 0, Eps2: 0.25},
	"elmore":     {Eps: 0.3},
	"bkh2elmore": {Eps: 0.3},
	"bkst":       {Eps: 0.3},
	"bkstlu":     {Eps1: 0, Eps2: 0.35},
	"bkstplanar": {Eps: 0.3},
}

// conformanceBounds returns the wirelength path bounds a constructor
// promises for its parameters, or ok=false for constructors whose
// guarantee is not a wirelength window (references, AHHK, Elmore).
func conformanceBounds(name string, in *inst.Instance, p Params) (core.Bounds, bool) {
	switch name {
	case "bkrus", "bprim", "brbc", "bkh2", "bkex", "bmstg", "bkst", "bkstplanar":
		return core.UpperOnly(in, p.Eps), true
	case "bkruslu", "bmstglu", "bkstlu":
		return core.LowerUpper(in, p.Eps1, p.Eps2), true
	default:
		return core.Bounds{}, false
	}
}

func conformanceFixtures() []struct {
	name string
	in   *inst.Instance
} {
	return []struct {
		name string
		in   *inst.Instance
	}{
		{"p1", bench.P1()},
		{"p2", bench.P2()},
		{"rand8", bench.Random(1, 8, 100)},
	}
}

// edgeString is the byte-level identity of a build result: two runs of
// a deterministic constructor must produce it verbatim.
func edgeString(r Result) string {
	if r.Steiner != nil {
		return fmt.Sprintf("%v", r.Steiner.Edges())
	}
	return fmt.Sprintf("%v", r.Tree.Edges)
}

// TestConformance drives every registered constructor over the shared
// fixtures and checks the contract common to all of them: a valid
// connected source-rooted tree, path bounds honoured where the
// algorithm promises them, and byte-identical output across two runs.
func TestConformance(t *testing.T) {
	infos := List()
	for _, info := range infos {
		if _, ok := conformanceParams[info.Name]; !ok {
			t.Errorf("constructor %q has no conformance parameters; extend conformanceParams", info.Name)
		}
	}
	for _, info := range infos {
		p, ok := conformanceParams[info.Name]
		if !ok {
			continue
		}
		for _, fx := range conformanceFixtures() {
			t.Run(info.Name+"/"+fx.name, func(t *testing.T) {
				first, err := Build(context.Background(), info.Name, fx.in, p)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				switch info.Kind {
				case Spanning:
					checkSpanning(t, info.Name, fx.in, first, p)
				case Steiner:
					checkSteiner(t, info.Name, fx.in, first, p)
				}
				second, err := Build(context.Background(), info.Name, fx.in, p)
				if err != nil {
					t.Fatalf("rebuild: %v", err)
				}
				if edgeString(first) != edgeString(second) {
					t.Errorf("two runs differ:\n  %s\n  %s", edgeString(first), edgeString(second))
				}
				// The lazily streamed edge order is the unique sorted
				// order, so forcing the historical eager full sort must
				// reproduce the tree byte for byte.
				pe := p
				pe.EagerSort = true
				eager, err := Build(context.Background(), info.Name, fx.in, pe)
				if err != nil {
					t.Fatalf("eager rebuild: %v", err)
				}
				if edgeString(first) != edgeString(eager) {
					t.Errorf("stream and eager-sort builds differ:\n  %s\n  %s", edgeString(first), edgeString(eager))
				}
			})
		}
	}
}

// TestConformanceGeometryAutoMatchesDense pins the PR-8 compatibility
// satellite: at conformance scale (every fixture is far below
// core.SparseThreshold) Geometry auto must resolve dense, so every
// registered constructor — sparse-capable or not — produces
// byte-identical output under auto and forced-dense parameters.
func TestConformanceGeometryAutoMatchesDense(t *testing.T) {
	for _, info := range List() {
		p, ok := conformanceParams[info.Name]
		if !ok {
			continue
		}
		for _, fx := range conformanceFixtures() {
			t.Run(info.Name+"/"+fx.name, func(t *testing.T) {
				pa := p
				pa.Geometry = GeomAuto
				auto, err := Build(context.Background(), info.Name, fx.in, pa)
				if err != nil {
					t.Fatalf("auto build: %v", err)
				}
				pd := p
				pd.Geometry = GeomDense
				dense, err := Build(context.Background(), info.Name, fx.in, pd)
				if err != nil {
					t.Fatalf("dense build: %v", err)
				}
				if edgeString(auto) != edgeString(dense) {
					t.Errorf("auto and dense builds differ:\n  %s\n  %s", edgeString(auto), edgeString(dense))
				}
			})
		}
	}
}

// TestSparseMSTMatchesDense forces the sparse substrate on the mst
// constructor: Kruskal over the octant neighbor stream must reproduce
// the dense complete-graph Kruskal byte for byte at any size (the
// neighbor graph contains every MST edge under both metrics).
func TestSparseMSTMatchesDense(t *testing.T) {
	fixtures := conformanceFixtures()
	fixtures = append(fixtures, struct {
		name string
		in   *inst.Instance
	}{"rand600", bench.Random(3, 600, 100)})
	for _, fx := range fixtures {
		sparse, err := Build(context.Background(), "mst", fx.in, Params{Geometry: GeomSparse})
		if err != nil {
			t.Fatalf("%s: sparse mst: %v", fx.name, err)
		}
		dense, err := Build(context.Background(), "mst", fx.in, Params{Geometry: GeomDense})
		if err != nil {
			t.Fatalf("%s: dense mst: %v", fx.name, err)
		}
		if edgeString(sparse) != edgeString(dense) {
			t.Errorf("%s: sparse and dense mst differ:\n  %s\n  %s", fx.name, edgeString(sparse), edgeString(dense))
		}
	}
}

func checkSpanning(t *testing.T, name string, in *inst.Instance, r Result, p Params) {
	t.Helper()
	if r.Tree == nil {
		t.Fatalf("%s returned no spanning tree", name)
	}
	if r.Steiner != nil {
		t.Errorf("%s is Spanning but returned a Steiner tree too", name)
	}
	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("%s tree invalid: %v", name, err)
	}
	if r.Tree.N != in.N() {
		t.Fatalf("%s tree spans %d nodes, instance has %d", name, r.Tree.N, in.N())
	}
	d := r.Tree.PathLengthsFrom(graph.Source)
	for v := 1; v < r.Tree.N; v++ {
		if math.IsInf(d[v], 1) {
			t.Fatalf("%s: sink %d unreachable from the source", name, v)
		}
	}
	if b, ok := conformanceBounds(name, in, p); ok && !core.FeasibleTree(r.Tree, b) {
		t.Errorf("%s tree violates its bounds [%g, %g]", name, b.Lower, b.Upper)
	}
	if name == "elmore" || name == "bkh2elmore" {
		m := delay.DefaultModel()
		bound := (1 + p.Eps) * delay.StarR(in, m)
		if got := delay.SourceRadius(r.Tree, m); got > bound*(1+1e-9) {
			t.Errorf("%s Elmore radius %g above bound %g", name, got, bound)
		}
	}
}

func checkSteiner(t *testing.T, name string, in *inst.Instance, r Result, p Params) {
	t.Helper()
	if r.Steiner == nil {
		t.Fatalf("%s returned no Steiner tree", name)
	}
	if r.Tree != nil {
		t.Errorf("%s is Steiner but returned a spanning tree too", name)
	}
	if err := r.Steiner.Validate(); err != nil {
		t.Fatalf("%s Steiner tree invalid: %v", name, err)
	}
	b, ok := conformanceBounds(name, in, p)
	if !ok {
		return
	}
	for term, d := range r.Steiner.PathLengths() {
		if term == 0 {
			continue
		}
		if !b.WithinUpper(d) || !b.WithinLower(d) {
			t.Errorf("%s terminal %d path %g outside [%g, %g]", name, term, d, b.Lower, b.Upper)
		}
	}
}
