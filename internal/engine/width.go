package engine

// The orchestration layer forwards instance sizes into the size
// computations of the construction packages (rows*n buffers, sweep
// grids) carried out in int, which is only safe because int is 64 bits
// on every supported platform. The blank constant fails to compile on
// a 32-bit-int platform, turning the silent assumption into a build
// error; the intwidth analyzer checks that every hot package carries
// it.
const _ uint = 1 << 62
