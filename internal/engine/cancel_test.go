package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/inst"
	"repro/internal/mst"
)

// A context cancelled while the exact enumeration is deep in its search
// tree must surface ctx.Err() promptly instead of grinding through the
// tree budget. The window [0.97·R, R] is infeasible for a random
// 14-sink instance, so without cancellation the search enumerates its
// whole budget.
func TestCancelAbortsBMSTGMidSearch(t *testing.T) {
	in := bench.Random(7, 14, 100)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()

	_, err := Build(ctx, "bmstglu", in, Params{Eps1: 0.97, Eps2: 0, GabowBudget: 2000000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancel returned %v, want context.Canceled", err)
	}
}

// A pre-cancelled context must abort every registered constructor that
// does nontrivial work, before or shortly after it starts.
func TestPreCancelledContextAborts(t *testing.T) {
	in := bench.P3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"bmstg", "bkh2", "bkex"} {
		if _, err := Build(ctx, name, in, conformanceParams[name]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx returned %v, want context.Canceled", name, err)
		}
	}
}

// Cancelling between sweep iterations must stop the sweep at the next
// boundary and return ctx.Err(), regardless of how cheap the individual
// builds are.
func TestSweepCancelledMidway(t *testing.T) {
	r := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	builds := 0
	r.Register(Info{Name: "selfcancel", Kind: Spanning}, func(ctx context.Context, in *inst.Instance, p Params) (Result, error) {
		builds++
		if builds == 3 {
			cancel()
		}
		return Result{Tree: mst.Kruskal(in.DistMatrix())}, nil
	})

	_, err := r.Sweep(ctx, "selfcancel", bench.P1(), make([]Params, 10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if builds != 3 {
		t.Errorf("sweep ran %d builds after cancellation at the 3rd, want exactly 3", builds)
	}
}

// A pre-cancelled sweep must not build anything.
func TestSweepPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps := []Params{{Eps: 0.1}, {Eps: 0.2}}
	if _, err := Sweep(ctx, "bkrus", bench.P4(), ps); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled sweep returned %v, want context.Canceled", err)
	}
}
