package engine

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/inst"
	"repro/internal/obs"
)

func TestClampRefreshWorkers(t *testing.T) {
	cases := []struct {
		requested, sweepWorkers, want int
	}{
		{8, 4, 2},   // even split
		{3, 2, 1},   // floor, never below the serial inner path
		{9, 2, 4},   // floor
		{2, 8, 1},   // more sweep workers than refresh budget
		{5, 1, 5},   // serial sweep passes the request through
		{0, 1, 0},   // serial sweep keeps the layer-default sentinel
		{16, 16, 1}, // fully spent on sweep cells
	}
	for _, c := range cases {
		if got := clampRefreshWorkers(c.requested, c.sweepWorkers); got != c.want {
			t.Errorf("clampRefreshWorkers(%d, %d) = %d, want %d", c.requested, c.sweepWorkers, got, c.want)
		}
	}
	// requested = 0 under a parallel sweep caps at GOMAXPROCS.
	want := runtime.GOMAXPROCS(0) / 2
	if want < 1 {
		want = 1
	}
	if got := clampRefreshWorkers(0, 2); got != want {
		t.Errorf("clampRefreshWorkers(0, 2) = %d, want %d", got, want)
	}
}

// TestSweepParallelRefreshClampGauge pins the obs surface of the clamp:
// a 2-worker sweep with an 8-worker refresh budget runs each cell at 4
// refresh workers, and the engine scope's gauges expose both counts.
func TestSweepParallelRefreshClampGauge(t *testing.T) {
	in := randomMetricInstance(1, 30, 100, geom.Manhattan)
	reg := obs.NewRegistry()
	ps := []Params{
		{Eps: 0.1, Obs: reg, RefreshWorkers: 8},
		{Eps: 0.2, Obs: reg, RefreshWorkers: 8},
		{Eps: 0.3, Obs: reg, RefreshWorkers: 8},
	}
	if _, err := SweepParallel(context.Background(), "bkrus", in, ps, SweepOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	sc := reg.Scope(ScopeName)
	if got := sc.Gauge(GaugeSweepWorkers).Load(); got != 2 {
		t.Errorf("sweep_workers gauge = %g, want 2", got)
	}
	if got := sc.Gauge(GaugeSweepRefreshWorkers).Load(); got != 4 {
		t.Errorf("sweep_refresh_workers gauge = %g, want 4", got)
	}
	// The core layer saw the clamped count, not the requested one.
	if got := reg.Scope("core").Gauge("refresh_workers").Load(); got != 4 {
		t.Errorf("core refresh_workers gauge = %g, want clamped 4", got)
	}
}

func randomMetricInstance(seed int64, sinks int, extent float64, m geom.Metric) *inst.Instance {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, sinks)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	}
	src := geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent}
	return inst.MustNew(src, pts, m)
}

// counterTotals flattens a registry snapshot's counters into a
// comparable map, dropping worker-telemetry instruments whose totals
// legitimately vary with the worker count (they count pool usage, not
// construction semantics).
func counterTotals(reg *obs.Registry) map[string]int64 {
	out := map[string]int64{}
	for _, sc := range reg.Snapshot().Scopes {
		for _, c := range sc.Counters {
			if sc.Name == "exact" && c.Name == "branches_parallel" {
				continue
			}
			out[sc.Name+"."+c.Name] = c.Value
		}
	}
	return out
}

// TestWorkersDeterminismProperty is the sweep-wide determinism property
// the PR-9 tentpole promises: BKRUS (dense and sparse geometry, both
// metrics), BMST_G, and BKST build byte-identical trees with identical
// construction counter totals at workers ∈ {1, 2, 4, 8} on random
// instances.
func TestWorkersDeterminismProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	type tc struct {
		label string
		name  string
		in    *inst.Instance
		p     Params
	}
	cases := []tc{
		{"bkrus/manhattan/dense", "bkrus", randomMetricInstance(21, 120, 1000, geom.Manhattan), Params{Eps: 0.2, Geometry: GeomDense}},
		{"bkrus/euclidean/dense", "bkrus", randomMetricInstance(22, 120, 1000, geom.Euclidean), Params{Eps: 0.2, Geometry: GeomDense}},
		{"bkrus/manhattan/sparse", "bkrus", randomMetricInstance(23, 400, 1e5, geom.Manhattan), Params{Eps: 0.1, Geometry: GeomSparse}},
		{"bkrus/euclidean/sparse", "bkrus", randomMetricInstance(24, 400, 1e5, geom.Euclidean), Params{Eps: 0.1, Geometry: GeomSparse}},
		{"bmstg/manhattan", "bmstg", randomMetricInstance(25, 9, 100, geom.Manhattan), Params{Eps: 0.1}},
		{"bmstg/euclidean", "bmstg", randomMetricInstance(26, 9, 100, geom.Euclidean), Params{Eps: 0.1}},
		{"bkst/manhattan", "bkst", randomMetricInstance(27, 60, 40, geom.Manhattan), Params{Eps: 0.2}},
	}
	for _, c := range cases {
		t.Run(c.label, func(t *testing.T) {
			var wantEdges string
			var wantCounters map[string]int64
			for _, w := range []int{1, 2, 4, 8} {
				p := c.p
				p.RefreshWorkers = w
				reg := obs.NewRegistry()
				p.Obs = reg
				res, err := Build(context.Background(), c.name, c.in, p)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				edges := edgeString(res)
				counters := counterTotals(reg)
				if w == 1 {
					wantEdges, wantCounters = edges, counters
					continue
				}
				if edges != wantEdges {
					t.Errorf("workers=%d tree differs from serial:\n  %s\n  %s", w, edges, wantEdges)
				}
				if len(counters) != len(wantCounters) {
					t.Errorf("workers=%d counter set %v, want %v", w, counters, wantCounters)
					continue
				}
				for k, v := range wantCounters {
					if counters[k] != v {
						t.Errorf("workers=%d counter %s = %d, want %d", w, k, counters[k], v)
					}
				}
			}
		})
	}
}

// TestConformanceWorkersByteIdentical is the acceptance gate over the
// whole registry: every registered constructor builds byte-identically
// at workers 1 and 4 on the conformance fixtures.
func TestConformanceWorkersByteIdentical(t *testing.T) {
	for _, info := range List() {
		p, ok := conformanceParams[info.Name]
		if !ok {
			continue
		}
		for _, fx := range conformanceFixtures() {
			t.Run(info.Name+"/"+fx.name, func(t *testing.T) {
				ps := p
				ps.RefreshWorkers = 1
				serial, err := Build(context.Background(), info.Name, fx.in, ps)
				if err != nil {
					t.Fatalf("serial build: %v", err)
				}
				pp := p
				pp.RefreshWorkers = 4
				parallel, err := Build(context.Background(), info.Name, fx.in, pp)
				if err != nil {
					t.Fatalf("parallel build: %v", err)
				}
				if edgeString(serial) != edgeString(parallel) {
					t.Errorf("workers 1 and 4 builds differ:\n  %s\n  %s", edgeString(serial), edgeString(parallel))
				}
			})
		}
	}
}
