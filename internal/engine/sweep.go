package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/inst"
	"repro/internal/obs"
)

// ScopeName is the obs scope the engine layer records into.
const ScopeName = "engine"

// Instrument names of the engine scope, as they appear in a -metrics
// JSON report. OBSERVABILITY.md is the catalogue.
const (
	// GaugeSweepWorkers records the worker count of the most recent
	// parallel sweep that fed the registry.
	GaugeSweepWorkers = "sweep_workers"
	// GaugeSweepRefreshWorkers records the effective per-cell refresh
	// worker count after the goroutine clamp (sweep workers × refresh
	// workers never exceeds the requested total).
	GaugeSweepRefreshWorkers = "sweep_refresh_workers"
	// CtrSweepRuns counts individual sweep cells completed.
	CtrSweepRuns = "sweep_runs"
)

// SweepOptions configures a parallel parameter sweep.
type SweepOptions struct {
	// Workers bounds the worker pool. 0 means runtime.GOMAXPROCS; the
	// pool never exceeds the number of sweep cells.
	Workers int
}

// clampRefreshWorkers bounds the total goroutine fan-out when a
// parallel sweep drives parallel construction kernels: with
// sweepWorkers cells in flight, each cell gets requested/sweepWorkers
// refresh workers (at least 1, i.e. the serial inner path), so the
// product never exceeds the requested total. requested = 0 means "the
// machine", so the cap defaults to runtime.GOMAXPROCS. A serial sweep
// passes the request through untouched.
func clampRefreshWorkers(requested, sweepWorkers int) int {
	if sweepWorkers <= 1 {
		return requested
	}
	total := requested
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	eff := total / sweepWorkers
	if eff < 1 {
		eff = 1
	}
	return eff
}

func (o SweepOptions) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SweepParallel runs one named constructor over a list of parameter
// settings on a single instance, like Sweep, but fans the cells out
// over a bounded worker pool. Each worker draws one pooled core.Scratch
// and keeps it for every cell it serves, so a worker's cells share one
// partially sorted edge stream exactly as a serial sweep does.
//
// Determinism: results are returned in input order regardless of
// scheduling, and each cell is a pure function of (instance, Params),
// so the result slice is identical to Sweep's. Cells that carry an Obs
// registry record into a private per-cell registry during the run;
// after the fan-in barrier the private registries are merged into the
// caller's registries in input order (obs.Registry.Merge), so counter
// totals and gauge values are reproducible too.
//
// Cancellation: ctx aborts in-flight constructions (each construction
// polls it) and prevents unstarted cells from launching. The first
// failing cell by input order determines the returned error; a
// cancellation triggered by another cell's failure is not misreported
// as the primary error.
//
// Params.Scratch must be nil in every cell: a caller-pinned scratch is
// not safe to share across workers.
func (r *Registry) SweepParallel(ctx context.Context, name string, in *inst.Instance, ps []Params, opt SweepOptions) ([]Result, error) {
	c, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	// While validating cells, classify which geometry caches the sweep
	// will touch: only a sweep whose every cell resolves sparse on a
	// sparse-capable constructor can skip the O(n²) matrix.
	capable := r.sparseCapable(name)
	needDense, needSparse := !capable, false
	//lint:ignore ctxpoll cell validation is O(sweep cells) with constant per-cell work, bounded by the caller's sweep width, not instance size
	for i := range ps {
		if ps[i].Scratch != nil {
			return nil, fmt.Errorf("engine: parallel sweep %s[%d]: Params.Scratch must be nil (scratches are per-worker)", name, i)
		}
		if capable && ps[i].Geometry.Sparse(in.N()) {
			needSparse = true
		} else {
			needDense = true
		}
	}
	if len(ps) == 0 {
		return []Result{}, nil
	}
	// The instance builds its geometry caches lazily and those first
	// builds are not safe for concurrent use; force the ones the cells
	// resolved to before fan-out.
	if needDense {
		in.DistMatrix()
	}
	if needSparse {
		in.Index() //lint:ignore ctxflow pre-fan-out geometry force, same contract as the DistMatrix line above: one bounded O(n·√n)-expected build before any cell launches
	}

	w := opt.workers(len(ps))
	ctx, stop := context.WithCancel(ctx)
	defer stop()

	out := make([]Result, len(ps))
	errs := make([]error, len(ps))
	// Private per-cell registries, merged into the caller's registries
	// after the barrier so shared-registry sweeps stay deterministic.
	priv := make([]*obs.Registry, len(ps))

	// runCell is the per-cell body shared by the serial path and the
	// worker pool, so both produce byte-identical results and obs.
	runCell := func(i int, s *core.Scratch) {
		p := ps[i]
		p.Scratch = s
		p.RefreshWorkers = clampRefreshWorkers(p.RefreshWorkers, w)
		if p.Obs != nil {
			priv[i] = obs.NewRegistry()
			p.Obs = priv[i]
		}
		res, err := c.Build(ctx, in, p)
		if err != nil {
			errs[i] = fmt.Errorf("engine: sweep %s[%d]: %w", name, i, err)
			stop()
			return
		}
		out[i] = res
		if reg := priv[i]; reg != nil {
			sc := reg.Scope(ScopeName)
			if sc != nil {
				sc.Counter(CtrSweepRuns).Inc()
				sc.Gauge(GaugeSweepWorkers).Set(float64(w))
				sc.Gauge(GaugeSweepRefreshWorkers).Set(float64(p.RefreshWorkers))
			}
		}
	}

	if w == 1 {
		// Serial fallback: one pooled scratch serves every cell in
		// input order, exactly as a single pool worker would, without
		// paying for the channel and the goroutine.
		func() {
			s := scratchPool.Get().(*core.Scratch)
			defer func() {
				s.Release()
				scratchPool.Put(s)
			}()
			for i := range ps {
				if ctx.Err() != nil {
					break // unstarted cells stay unlaunched, as in the pool
				}
				runCell(i, s)
			}
		}()
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := scratchPool.Get().(*core.Scratch)
				defer func() {
					s.Release()
					scratchPool.Put(s)
				}()
				for i := range next {
					runCell(i, s)
				}
			}()
		}
	feed:
		for i := range ps {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}

	// Deterministic error selection: the lowest-index real failure wins;
	// cells whose error is just the cancellation ripple of another
	// cell's failure never mask it. If every recorded error is a
	// cancellation, the sweep was externally cancelled.
	var firstCancel error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = e
			}
			continue
		}
		return nil, e
	}
	if err := ctx.Err(); err != nil && firstCancel != nil {
		return nil, firstCancel
	}
	// Cells never launched because of external cancellation also fail
	// the sweep, even when no worker recorded an error.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Fold per-cell registries into the callers' registries in input
	// order — the merge order, not goroutine scheduling, decides gauge
	// last-write-wins.
	//lint:ignore ctxpoll post-barrier O(cells) registry fold; aborting it mid-merge would break the merge-order contract pinned by TestSweepParallelObsMergeDeterministic
	for i, reg := range priv {
		if reg != nil && ps[i].Obs != nil {
			//lint:ignore allocloop snapshot merge allocates O(counters) per sweep cell, off the per-edge hot path
			ps[i].Obs.Merge(reg) //lint:ignore ctxflow post-barrier registry fold; aborting mid-merge would break the merge-order contract
		}
	}
	return out, nil
}

// SweepParallel runs a parallel parameter sweep through the default
// registry.
func SweepParallel(ctx context.Context, name string, in *inst.Instance, ps []Params, opt SweepOptions) ([]Result, error) {
	return defaultRegistry.SweepParallel(ctx, name, in, ps, opt)
}
